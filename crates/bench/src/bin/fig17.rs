//! Figure 17: sensitivity to counter-cache size (1 KB → 4 MB), with the
//! fixed 32-entry write queue and 1 KB transactions.
//!
//! (a) Counter-cache hit rate: queue and btree access contiguous memory
//!     (one counter line covers a whole 4 KB page), so their hit rates
//!     are high regardless of size; array / hash / rbtree access random
//!     pages and gain with capacity.
//! (b) Workload execution time, normalized to the 1 KB counter cache.

use supermem::metrics::TextTable;
use supermem::workloads::spec::ALL_KINDS;
use supermem::{run_batch, RunConfig, Scheme};
use supermem_bench::{txns, Report};

const CC_SIZES: [(u64, &str); 7] = [
    (1 << 10, "1K"),
    (4 << 10, "4K"),
    (16 << 10, "16K"),
    (64 << 10, "64K"),
    (256 << 10, "256K"),
    (1 << 20, "1M"),
    (4 << 20, "4M"),
];

fn main() {
    let n = txns();
    let mut jobs = Vec::new();
    for kind in ALL_KINDS {
        for (bytes, _) in CC_SIZES {
            let mut rc = RunConfig::new(Scheme::SuperMem, kind);
            // Reuse must dominate first-touch misses for the hit rate to
            // reflect capacity: run several passes over each structure's
            // footprint (the paper's workloads run to completion).
            rc.txns = n.max(600);
            rc.req_bytes = 1024;
            rc.counter_cache_bytes = bytes;
            rc.hash_buckets = 512;
            jobs.push(rc);
        }
    }
    let results = run_batch(&jobs);

    let headers: Vec<String> = std::iter::once("workload".to_owned())
        .chain(CC_SIZES.iter().map(|(_, l)| (*l).to_owned()))
        .collect();
    let mut hits = TextTable::new(headers.clone());
    let mut time = TextTable::new(headers);
    for (kind, row) in ALL_KINDS.iter().zip(results.chunks(CC_SIZES.len())) {
        let mut hit_cells = vec![kind.name().to_owned()];
        let mut time_cells = vec![kind.name().to_owned()];
        let mut base_time = None;
        for r in row {
            let rate = r.counter_cache_hit_rate().unwrap_or(0.0);
            hit_cells.push(format!("{:.1}%", rate * 100.0));
            let cycles = r.total_cycles as f64;
            let base = *base_time.get_or_insert(cycles);
            time_cells.push(format!("{:.3}", cycles / base));
        }
        hits.row(hit_cells);
        time.row(time_cells);
    }
    let mut rep = Report::new("fig17");
    rep.section(
        "Figure 17a: counter-cache hit rate (SuperMem, 1 KB txns)",
        hits,
    );
    rep.section(
        "Figure 17b: execution time vs counter-cache size (normalized to 1K)",
        time,
    );
    rep.emit();
}
