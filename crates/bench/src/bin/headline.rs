//! §5.1.1 headline result: "SuperMem improves the performance by about
//! 2x compared with an encrypted NVM with a baseline write-through
//! counter cache, and achieves the performance comparable to an ideal
//! secure NVM."

use supermem::metrics::{geomean, TextTable};
use supermem::workloads::spec::ALL_KINDS;
use supermem::{run_single, RunConfig, Scheme};
use supermem_bench::txns;

fn main() {
    let n = txns();
    let mut table = TextTable::new(vec![
        "workload".into(),
        "WT/Unsec".into(),
        "SuperMem/Unsec".into(),
        "WT/SuperMem (speedup)".into(),
        "SuperMem/WB (gap to ideal)".into(),
    ]);
    let mut speedups = Vec::new();
    let mut gaps = Vec::new();
    for kind in ALL_KINDS {
        let lat = |scheme: Scheme| {
            let mut rc = RunConfig::new(scheme, kind);
            rc.txns = n;
            rc.req_bytes = 1024;
            run_single(&rc).mean_txn_latency()
        };
        let unsec = lat(Scheme::Unsec);
        let wb = lat(Scheme::WriteBackIdeal);
        let wt = lat(Scheme::WriteThrough);
        let sm = lat(Scheme::SuperMem);
        speedups.push(wt / sm);
        gaps.push(sm / wb);
        table.row(vec![
            kind.name().into(),
            format!("{:.2}", wt / unsec),
            format!("{:.2}", sm / unsec),
            format!("{:.2}x", wt / sm),
            format!("{:.2}", sm / wb),
        ]);
    }
    table.row(vec![
        "geomean".into(),
        String::new(),
        String::new(),
        format!("{:.2}x", geomean(&speedups)),
        format!("{:.2}", geomean(&gaps)),
    ]);
    println!("Headline (§5.1.1): 1 KB transactions, Table 2 configuration");
    println!("{}", table.render());
}
