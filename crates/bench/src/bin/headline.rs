//! §5.1.1 headline result: "SuperMem improves the performance by about
//! 2x compared with an encrypted NVM with a baseline write-through
//! counter cache, and achieves the performance comparable to an ideal
//! secure NVM."

use supermem::metrics::{geomean, TextTable};
use supermem::workloads::spec::ALL_KINDS;
use supermem::{run_batch, RunConfig, Scheme};
use supermem_bench::{txns, Report};

const SCHEMES: [Scheme; 4] = [
    Scheme::Unsec,
    Scheme::WriteBackIdeal,
    Scheme::WriteThrough,
    Scheme::SuperMem,
];

fn main() {
    let n = txns();
    let mut jobs = Vec::new();
    for kind in ALL_KINDS {
        for scheme in SCHEMES {
            let mut rc = RunConfig::new(scheme, kind);
            rc.txns = n;
            rc.req_bytes = 1024;
            jobs.push(rc);
        }
    }
    let results = run_batch(&jobs);

    let mut table = TextTable::new(vec![
        "workload".into(),
        "WT/Unsec".into(),
        "SuperMem/Unsec".into(),
        "WT/SuperMem (speedup)".into(),
        "SuperMem/WB (gap to ideal)".into(),
    ]);
    let mut speedups = Vec::new();
    let mut gaps = Vec::new();
    for (kind, row) in ALL_KINDS.iter().zip(results.chunks(SCHEMES.len())) {
        let [unsec, wb, wt, sm] = [
            row[0].mean_txn_latency(),
            row[1].mean_txn_latency(),
            row[2].mean_txn_latency(),
            row[3].mean_txn_latency(),
        ];
        speedups.push(wt / sm);
        gaps.push(sm / wb);
        table.row(vec![
            kind.name().into(),
            format!("{:.2}", wt / unsec),
            format!("{:.2}", sm / unsec),
            format!("{:.2}x", wt / sm),
            format!("{:.2}", sm / wb),
        ]);
    }
    table.row(vec![
        "geomean".into(),
        String::new(),
        String::new(),
        format!("{:.2}x", geomean(&speedups)),
        format!("{:.2}", geomean(&gaps)),
    ]);
    let mut rep = Report::new("headline");
    rep.section(
        "Headline (§5.1.1): 1 KB transactions, Table 2 configuration",
        table,
    );
    rep.emit();
}
