//! Battery/ADR-domain cost per scheme (the paper's §1 motivation and
//! §7 conclusion): "the battery backup for supporting the large counter
//! cache is expensive and occupies large chip areas. Modern processor
//! vendors only provide a small battery backup for the ADR with the
//! small persistent domain of tens of entries in the write queue."
//!
//! This binary computes the bytes each scheme requires the battery to
//! drain on a power failure, from the Table 2 configuration.

use supermem::metrics::TextTable;
use supermem::sim::Config;
use supermem::Scheme;
use supermem_bench::Report;

fn main() {
    let cfg = Config::default();
    let wq_bytes = cfg.write_queue_entries as u64 * (cfg.line_bytes + 9); // payload + addr + flag
    let register_bytes = 2 * cfg.line_bytes; // the Figure 7 staging register
    let rsr_bytes = 20; // 32-bit page + 64-bit old major + 64 done bits (§3.4.4)

    let mut t = TextTable::new(vec![
        "scheme".into(),
        "write queue".into(),
        "counter cache".into(),
        "extras".into(),
        "battery domain".into(),
        "vs SuperMem".into(),
    ]);
    let mut supermem_total = 0u64;
    for (scheme, cc_backed, extras, note) in [
        (Scheme::Unsec, 0u64, 0u64, "-"),
        (
            Scheme::SuperMem,
            0,
            register_bytes + rsr_bytes,
            "register + RSR",
        ),
        (
            Scheme::WriteBackIdeal,
            cfg.counter_cache_bytes,
            0,
            "whole counter cache",
        ),
        (Scheme::Osiris, 0, 0, "recovery instead of battery"),
    ] {
        let total = wq_bytes + cc_backed + extras;
        if scheme == Scheme::SuperMem {
            supermem_total = total;
        }
        let ratio = if supermem_total > 0 {
            format!("{:.1}x", total as f64 / supermem_total as f64)
        } else {
            "-".into()
        };
        t.row(vec![
            scheme.name().into(),
            format!("{wq_bytes} B"),
            if cc_backed > 0 {
                format!("{} KiB", cc_backed / 1024)
            } else {
                "-".into()
            },
            if extras > 0 {
                format!("{extras} B ({note})")
            } else {
                note.into()
            },
            format!("{total} B"),
            ratio,
        ]);
    }
    let mut rep = Report::new("battery");
    rep.section("ADR battery domain per scheme (Table 2 configuration)", t);
    rep.footnote("The ideal WB needs the battery to drain the entire 256 KiB counter");
    rep.footnote("cache; SuperMem adds only a 2-line register and the 20-byte RSR to");
    rep.footnote("the write queue every vendor already protects.");
    rep.emit();
}
