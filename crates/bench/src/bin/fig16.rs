//! Figure 16: sensitivity to write-queue size (8 → 128 entries), with
//! the fixed 256 KB counter cache and 1 KB transactions.
//!
//! (a) Percentage of counter writes removed by CWC in SuperMem — longer
//!     queues hold more pending counter writes to merge with; the knee
//!     sits near 32 entries (which is why Table 2 uses 32).
//! (b) Mean transaction latency, normalized to the 8-entry queue.

use supermem::metrics::TextTable;
use supermem::workloads::spec::ALL_KINDS;
use supermem::{run_batch, RunConfig, Scheme};
use supermem_bench::{txns, Report};

const QUEUE_SIZES: [usize; 5] = [8, 16, 32, 64, 128];

fn main() {
    let n = txns();
    let mut jobs = Vec::new();
    for kind in ALL_KINDS {
        for q in QUEUE_SIZES {
            let mut rc = RunConfig::new(Scheme::SuperMem, kind);
            rc.txns = n;
            rc.req_bytes = 1024;
            rc.write_queue_entries = q;
            jobs.push(rc);
        }
    }
    let results = run_batch(&jobs);

    let headers: Vec<String> = std::iter::once("workload".to_owned())
        .chain(QUEUE_SIZES.iter().map(|q| format!("wq={q}")))
        .collect();
    let mut reduced = TextTable::new(headers.clone());
    let mut latency = TextTable::new(headers);
    for (kind, row) in ALL_KINDS.iter().zip(results.chunks(QUEUE_SIZES.len())) {
        let mut reduced_cells = vec![kind.name().to_owned()];
        let mut latency_cells = vec![kind.name().to_owned()];
        let mut base_latency = None;
        for r in row {
            let coalesced = r.stats.counter_writes_coalesced;
            let total = coalesced + r.stats.nvm_counter_writes;
            let pct = 100.0 * coalesced as f64 / total.max(1) as f64;
            reduced_cells.push(format!("{pct:.0}%"));
            let lat = r.mean_txn_latency();
            let base = *base_latency.get_or_insert(lat);
            latency_cells.push(format!("{:.2}", lat / base));
        }
        reduced.row(reduced_cells);
        latency.row(latency_cells);
    }
    let mut rep = Report::new("fig16");
    rep.section(
        "Figure 16a: % of counter writes coalesced by CWC (SuperMem)",
        reduced,
    );
    rep.section(
        "Figure 16b: txn latency vs write-queue size (normalized to wq=8)",
        latency,
    );
    rep.emit();
}
