//! Streaming integrity-tree figure: the throughput / recovery-cycles
//! Pareto across the persisted-levels frontier (Triad-NVM-style
//! selective tree persistence over the paper's counter region).
//!
//! Each row arms the Bonsai Merkle Tree and moves the persistence
//! frontier: `eager` is the fully-lazy volatile tree (today's default —
//! node updates are on-chip register writes, recovery re-hashes every
//! counter line), `L1`..`L3` persist tree levels strictly below the
//! frontier through the write queue as first-class node-line traffic.
//! Runtime pays per frontier level (extra NVM writes competing with
//! data/counter traffic); recovery gets cheaper, because the persisted
//! leaf-digest level replaces hashing the whole counter region.
//!
//! `recovery (cyc)` is the deterministic recovery-time estimate of the
//! checked rebuild for a fixed 512-page crash image: persisted line
//! reads at media latency plus SHA-node recomputation above the
//! frontier (`supermem_persist::recovery` accounting).

use supermem::metrics::TextTable;
use supermem::persist::{PMem, RecoveredMemory};
use supermem::sim::Config;
use supermem::workloads::WorkloadKind;
use supermem::{run_batch, RunConfig, Scheme, System};
use supermem_bench::{txns, Report};

const SCHEMES: [Scheme; 2] = [Scheme::WriteThrough, Scheme::SuperMem];

/// Swept frontier points: eager (volatile tree) plus three streaming
/// frontiers of the height-4 default tree.
const FRONTIERS: [(Option<u32>, &str); 4] = [
    (None, "eager"),
    (Some(1), "L1"),
    (Some(2), "L2"),
    (Some(3), "L3"),
];

/// Deterministic recovery cost of a fixed 512-page crash image under
/// `scheme` with the given frontier: the checked rebuild's cycle
/// estimate (line reads + node hashes).
fn recovery_cycles(scheme: Scheme, levels: Option<u32>) -> u64 {
    let mut cfg = scheme.apply(Config::default());
    cfg.integrity_tree = true;
    cfg.persisted_levels = levels;
    cfg.seed = 7;
    let mut sys = System::new(cfg.clone());
    for i in 0..512u64 {
        sys.write(i * 4096, &[i as u8; 64]);
        sys.clwb(i * 4096, 64);
        if i % 8 == 7 {
            sys.sfence();
        }
    }
    sys.sfence();
    sys.checkpoint();
    let rec = RecoveredMemory::from_image_checked(&cfg, sys.crash_now())
        .expect("un-faulted image recovers");
    rec.recovery_cycles()
}

fn main() {
    let n = txns();
    let mut jobs = Vec::new();
    for scheme in SCHEMES {
        for (levels, _) in FRONTIERS {
            let mut rc = RunConfig::new(scheme, WorkloadKind::Queue);
            rc.txns = n;
            rc.req_bytes = 1024;
            rc.integrity_tree = true;
            rc.persisted_levels = levels;
            jobs.push(rc);
        }
    }
    let results = run_batch(&jobs);

    let mut t = TextTable::new(
        [
            "scheme",
            "frontier",
            "txn lat",
            "nvm writes",
            "tree writes",
            "coalesced",
            "recovery (cyc)",
        ]
        .map(str::to_owned)
        .to_vec(),
    );
    for (i, r) in results.iter().enumerate() {
        let scheme = SCHEMES[i / FRONTIERS.len()];
        let (levels, label) = FRONTIERS[i % FRONTIERS.len()];
        t.row(vec![
            scheme.to_string(),
            label.into(),
            format!("{:.0}", r.mean_txn_latency()),
            r.nvm_writes().to_string(),
            r.stats.nvm_tree_writes.to_string(),
            r.stats.tree_updates_coalesced.to_string(),
            recovery_cycles(scheme, levels).to_string(),
        ]);
    }

    let mut rep = Report::new("treesweep");
    rep.section(
        "Streaming integrity tree: persisted-levels frontier sweep \
         (queue workload, tree over the first 4096 counter lines)",
        t,
    );
    rep.footnote(
        "(eager = volatile tree: node updates are on-chip register writes, \
         recovery re-hashes every persisted counter line)",
    );
    rep.footnote(
        "(L{n} persists tree levels < n through the write queue: runtime pays \
         node-line NVM writes, recovery reads the persisted leaf-digest level \
         instead of hashing the counter region)",
    );
    rep.footnote(
        "(recovery (cyc) = checked-rebuild estimate for a fixed 512-page crash \
         image: persisted line reads + node hashes above the frontier)",
    );
    rep.emit();
}
