//! Table 1 + Figure 6: crash recoverability per scheme, swept over
//! *every* write-queue append boundary.
//!
//! Two persistence idioms are tested (both from the paper's §2):
//!
//! 1. **Durable transaction (undo log)** — prepare / mutate / commit
//!    with cache-line flushes and fences (Table 1). Recovery rolls back
//!    an uncommitted transaction from the log; if the log (or its
//!    counters) did not survive, recovery cannot proceed.
//! 2. **Atomic 8-byte in-place update** — the crafted-data-structure
//!    idiom of §2.1 (wB+-tree-style pointers/bitmaps): a bare
//!    write + clwb + sfence with no log. Crash consistency relies
//!    entirely on the flush being atomic with its counter — exactly the
//!    property the staging register provides (Figure 6/7).
//!
//! Expected shape:
//! * `Unsec` and `SuperMem` recover at every crash point in both idioms.
//! * `WT w/o register` survives the logged transaction (the undo log
//!   heals torn lines) but breaks on the in-place update: a crash
//!   between the counter append and the data append leaves the line
//!   undecryptable (Figure 6).
//! * `WB w/o battery` loses dirty counters wholesale and is
//!   unrecoverable once data is mutated (Table 1's "No" rows).

use supermem::metrics::TextTable;
use supermem::persist::{recover_transactions, DirectMem, PMem, RecoveredMemory, TxnManager};
use supermem::sim::{Config, CounterCacheBacking, CounterCacheMode};
use supermem::{sweep, Scheme};
use supermem_bench::Report;

const DATA_ADDR: u64 = 0x2000;
const LOG_ADDR: u64 = 0x10_0000;
const DATA_LEN: usize = 256;

const OLD_WORD: u64 = 0x1111_1111_1111_1111;
const NEW_WORD: u64 = 0x2222_2222_2222_2222;

const SCHEMES: [&str; 4] = ["Unsec", "SuperMem", "WT w/o register", "WB w/o battery"];

#[derive(Debug, Default)]
struct Tally {
    old: u64,
    new: u64,
    unrecoverable: u64,
}

impl Tally {
    fn verdict(&self) -> &'static str {
        if self.unrecoverable == 0 {
            "recoverable at every stage"
        } else {
            "UNRECOVERABLE windows"
        }
    }
}

fn scheme_config(name: &str) -> Config {
    match name {
        "Unsec" => Scheme::Unsec.apply(Config::default()),
        "SuperMem" => Scheme::SuperMem.apply(Config::default()),
        "WT w/o register" => {
            let mut cfg = Scheme::WriteThrough.apply(Config::default());
            cfg.atomic_pair_append = false;
            cfg
        }
        "WB w/o battery" => Config {
            encryption: true,
            counter_cache_mode: CounterCacheMode::WriteBack,
            counter_cache_backing: CounterCacheBacking::None,
            ..Config::default()
        },
        other => unreachable!("unknown scheme {other}"),
    }
}

/// Sweeps one mutation routine over every append-boundary crash point.
fn crash_sweep(
    cfg: &Config,
    base: &DirectMem,
    mutate: impl Fn(&mut DirectMem),
    classify: impl Fn(&mut RecoveredMemory) -> Option<bool>,
) -> (u64, Tally) {
    let mut dry = base.clone();
    let before = dry.controller().append_events();
    mutate(&mut dry);
    dry.shutdown();
    let total = dry.controller().append_events() - before;

    let mut tally = Tally::default();
    for k in 1..=total {
        let mut mem = base.clone();
        mem.controller_mut().arm_crash_after_appends(k);
        mutate(&mut mem);
        let image = mem
            .controller_mut()
            .take_crash_image()
            .expect("armed crash must fire");
        let mut rec = RecoveredMemory::from_image(cfg, image);
        match classify(&mut rec) {
            Some(false) => tally.old += 1,
            Some(true) => tally.new += 1,
            None => tally.unrecoverable += 1,
        }
    }
    (total, tally)
}

fn main() {
    let headers = vec![
        "scheme".into(),
        "crash points".into(),
        "consistent(old)".into(),
        "consistent(new)".into(),
        "unrecoverable".into(),
        "verdict".into(),
    ];

    // --- Experiment 1: durable transaction (Table 1). Each scheme's
    // crash-point sweep is independent, so schemes run in parallel.
    let t1_rows = sweep(&SCHEMES, |name| {
        let cfg = scheme_config(name);
        let mut base = DirectMem::new(&cfg);
        base.persist(DATA_ADDR, &[0x11; DATA_LEN]);
        base.shutdown();
        let (total, tally) = crash_sweep(
            &cfg,
            &base,
            |mem| {
                let mut txm = TxnManager::new(LOG_ADDR, 4096);
                let mut txn = txm.begin();
                txn.write(DATA_ADDR, vec![0x22; DATA_LEN]);
                txn.commit(mem).expect("commit");
            },
            |rec| {
                if recover_transactions(rec, LOG_ADDR).is_err() {
                    return None;
                }
                let mut data = [0u8; DATA_LEN];
                rec.read(DATA_ADDR, &mut data);
                match data {
                    d if d == [0x11; DATA_LEN] => Some(false),
                    d if d == [0x22; DATA_LEN] => Some(true),
                    _ => None,
                }
            },
        );
        vec![
            (*name).into(),
            total.to_string(),
            tally.old.to_string(),
            tally.new.to_string(),
            tally.unrecoverable.to_string(),
            tally.verdict().into(),
        ]
    });
    let mut t1 = TextTable::new(headers.clone());
    for row in t1_rows {
        t1.row(row);
    }

    // --- Experiment 2: atomic in-place update (Figure 6).
    let t2_rows = sweep(&SCHEMES, |name| {
        let cfg = scheme_config(name);
        let mut base = DirectMem::new(&cfg);
        base.persist(DATA_ADDR, &OLD_WORD.to_le_bytes());
        base.shutdown();
        let (total, tally) = crash_sweep(
            &cfg,
            &base,
            |mem| {
                mem.persist(DATA_ADDR, &NEW_WORD.to_le_bytes());
            },
            |rec| match rec.read_u64(DATA_ADDR) {
                OLD_WORD => Some(false),
                NEW_WORD => Some(true),
                _ => None,
            },
        );
        vec![
            (*name).into(),
            total.to_string(),
            tally.old.to_string(),
            tally.new.to_string(),
            tally.unrecoverable.to_string(),
            tally.verdict().into(),
        ]
    });
    let mut t2 = TextTable::new(headers);
    for row in t2_rows {
        t2.row(row);
    }

    let mut rep = Report::new("table1");
    rep.section(
        "Table 1: durable transaction (undo log), crash at every append boundary",
        t1,
    );
    rep.section(
        "Figure 6 scenario: atomic 8-byte in-place update (no log)",
        t2,
    );
    rep.footnote("(old = pre-mutation state; new = mutation visible)");
    rep.emit();
}
