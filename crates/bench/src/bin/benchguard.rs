//! Hot-path regression guard: re-runs the memory-controller micro
//! benchmarks (observers disabled, as in production figure runs) and
//! fails when any exceeds its committed reference in
//! `results/BENCH_sweep.json` by more than `SUPERMEM_BENCH_TOLERANCE`
//! (default 4x — generous on purpose; this catches gross regressions
//! like an always-active probe layer, not minor jitter).

use std::hint::black_box;
use std::process::ExitCode;

use supermem::memctrl::{ChannelSet, MemoryController};
use supermem::nvm::addr::LineAddr;
use supermem::sim::Config;
use supermem::workloads::WorkloadKind;
use supermem::{run_single, RunConfig, Scheme};
use supermem_bench::guard::{check, extract_after_ns, tolerance, GuardCheck};
use supermem_bench::micro::Harness;

fn baseline_json() -> String {
    let path = std::env::var("SUPERMEM_BENCH_BASELINE").unwrap_or_else(|_| {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../results/BENCH_sweep.json"
        )
        .to_owned()
    });
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read bench baseline {path}: {e}"))
}

fn main() -> ExitCode {
    let baseline = baseline_json();
    let tol = match tolerance() {
        Ok(t) => t,
        Err(e) => {
            eprintln!("benchguard: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut h = Harness::new("benchguard");

    for scheme in [Scheme::Unsec, Scheme::WriteThrough, Scheme::SuperMem] {
        let cfg = scheme.apply(Config::default());
        let mut mc = MemoryController::new(&cfg);
        let mut t = 0u64;
        let mut i = 0u64;
        h.bench(&format!("flush_line/{scheme}"), || {
            let line = LineAddr((i % 64) * 64);
            i += 1;
            t = mc.flush_line(black_box(line), [i as u8; 64], t);
            t
        });
    }
    {
        // The sharded front end, flushing round-robin across 4 channels
        // (line address strides whole pages, so the channel selector
        // exercises the interleave path on every call).
        let cfg = Scheme::SuperMem.apply(Config::default().with_channels(4));
        let page = cfg.page_bytes;
        let mut set = ChannelSet::new(&cfg);
        let mut t = 0u64;
        let mut i = 0u64;
        h.bench("flush_line/SuperMem-ch4", || {
            let line = LineAddr((i % 4) * page + (i / 4 % 16) * 64);
            i += 1;
            t = set.flush_line(black_box(line), [i as u8; 64], t);
            t
        });
    }
    {
        let cfg = Scheme::SuperMem.apply(Config::default());
        let mut mc = MemoryController::new(&cfg);
        let mut t = 0;
        for i in 0..64u64 {
            t = mc.flush_line(LineAddr(i * 64), [i as u8; 64], t);
        }
        t = mc.finish(t);
        let mut i = 0u64;
        h.bench("read_line/SuperMem", || {
            let line = LineAddr((i % 64) * 64);
            i += 1;
            let (data, done) = mc.read_line(black_box(line), t);
            t = done;
            data
        });
    }

    {
        // Wall-clock guard for a whole large run on the widest committed
        // configuration: 8 channels, array workload, 40 transactions per
        // iteration. This is the figure-suite shape (front end + barrier
        // engine + crypto + drain fast path together), so it catches
        // regressions the per-call microbenchmarks above cannot see,
        // e.g. a barrier that stops skipping quiescent channels.
        let mut rc = RunConfig::new(Scheme::SuperMem, WorkloadKind::Array);
        rc.txns = 40;
        rc.req_bytes = 1024;
        rc.channels = 8;
        h.bench("single_run/SuperMem-ch8-large", || {
            black_box(run_single(black_box(&rc)))
        });
    }

    let checks: Vec<GuardCheck> = h
        .results()
        .iter()
        .map(|r| {
            let reference = extract_after_ns(&baseline, &r.name)
                .unwrap_or_else(|| panic!("no after_ns reference for {} in baseline", r.name));
            check(&r.name, reference, r.ns_per_iter, tol)
        })
        .collect();

    let mut failed = false;
    for c in &checks {
        let verdict = if c.passed() { "ok" } else { "REGRESSED" };
        println!(
            "{:<22} measured {:>8.1} ns/iter  reference {:>7.1}  limit {:>8.1} ({tol}x)  {verdict}",
            c.name, c.measured_ns, c.reference_ns, c.limit_ns
        );
        failed |= !c.passed();
    }
    if failed {
        eprintln!("benchguard: hot-path regression detected (see REGRESSED rows)");
        return ExitCode::FAILURE;
    }
    println!(
        "benchguard: all {} hot-path benchmarks within tolerance",
        checks.len()
    );
    ExitCode::SUCCESS
}
