//! Hot-path regression guard: re-runs the memory-controller micro
//! benchmarks (observers disabled, as in production figure runs) and
//! fails when any exceeds its committed reference in
//! `results/BENCH_sweep.json` by more than `SUPERMEM_BENCH_TOLERANCE`
//! (default 4x — generous on purpose; this catches gross regressions
//! like an always-active probe layer, not minor jitter).

use std::hint::black_box;
use std::process::ExitCode;

use supermem::memctrl::{ChannelSet, MemoryController};
use supermem::nvm::addr::LineAddr;
use supermem::sim::Config;
use supermem::workloads::WorkloadKind;
use supermem::{run_single, RunConfig, Scheme};
use supermem_bench::guard::{check, extract_after_ns, tolerance, GuardCheck};
use supermem_bench::micro::Harness;
use supermem_kv::{kv_run_case, KvClassification, KvTortureCase};
use supermem_lincheck::{lincheck, LincheckConfig};
use supermem_serve::{run_serve, ServeConfig, StructureKind};

fn baseline_json() -> String {
    let path = std::env::var("SUPERMEM_BENCH_BASELINE").unwrap_or_else(|_| {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../results/BENCH_sweep.json"
        )
        .to_owned()
    });
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read bench baseline {path}: {e}"))
}

fn main() -> ExitCode {
    let baseline = baseline_json();
    let tol = match tolerance() {
        Ok(t) => t,
        Err(e) => {
            eprintln!("benchguard: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut h = Harness::new("benchguard");

    for scheme in [Scheme::Unsec, Scheme::WriteThrough, Scheme::SuperMem] {
        let cfg = scheme.apply(Config::default());
        let mut mc = MemoryController::new(&cfg);
        let mut t = 0u64;
        let mut i = 0u64;
        h.bench(&format!("flush_line/{scheme}"), || {
            let line = LineAddr((i % 64) * 64);
            i += 1;
            t = mc.flush_line(black_box(line), [i as u8; 64], t);
            t
        });
    }
    {
        // The streaming-tree hot path: SuperMem flush with the integrity
        // tree armed at frontier L1, so every counter write runs
        // note_counter_write's pending-cache coalescing and the
        // propagation/node-append machinery rides the queue. Guards the
        // tree-update cost added to the per-flush path.
        let mut cfg = Scheme::SuperMem.apply(Config::default());
        cfg.integrity_tree = true;
        cfg.persisted_levels = Some(1);
        let mut mc = MemoryController::new(&cfg);
        let mut t = 0u64;
        let mut i = 0u64;
        h.bench("flush_line/SuperMem-tree", || {
            let line = LineAddr((i % 64) * 64);
            i += 1;
            t = mc.flush_line(black_box(line), [i as u8; 64], t);
            t
        });
    }
    {
        // The sharded front end, flushing round-robin across 4 channels
        // (line address strides whole pages, so the channel selector
        // exercises the interleave path on every call).
        let cfg = Scheme::SuperMem.apply(Config::default().with_channels(4));
        let page = cfg.page_bytes;
        let mut set = ChannelSet::new(&cfg);
        let mut t = 0u64;
        let mut i = 0u64;
        h.bench("flush_line/SuperMem-ch4", || {
            let line = LineAddr((i % 4) * page + (i / 4 % 16) * 64);
            i += 1;
            t = set.flush_line(black_box(line), [i as u8; 64], t);
            t
        });
    }
    {
        let cfg = Scheme::SuperMem.apply(Config::default());
        let mut mc = MemoryController::new(&cfg);
        let mut t = 0;
        for i in 0..64u64 {
            t = mc.flush_line(LineAddr(i * 64), [i as u8; 64], t);
        }
        t = mc.finish(t);
        let mut i = 0u64;
        h.bench("read_line/SuperMem", || {
            let line = LineAddr((i % 64) * 64);
            i += 1;
            let (data, done) = mc.read_line(black_box(line), t);
            t = done;
            data
        });
    }

    {
        // The serving engine end to end: 4 cores, 64 open-loop requests
        // against one shared stack, shadow-verified. Guards the
        // arbitration loop + CAS retry path + per-core telemetry on top
        // of the ordinary flush machinery.
        let cfg = ServeConfig {
            requests: 64,
            region_len: 1 << 18,
            ..ServeConfig::default()
        };
        h.bench("serve/SuperMem-c4", || {
            black_box(run_serve(black_box(&cfg)).expect("serve config is valid"))
        });

        // The simulated p99 of the same configuration is a pure function
        // of (config, seed): guard it for *exact* equality, so a timing
        // or protocol change that shifts the serving tail must update
        // the committed baseline deliberately.
        let r = run_serve(&cfg).expect("serve config is valid");
        let want = extract_after_ns(&baseline, "serve/SuperMem-c4-p99cyc")
            .unwrap_or_else(|| panic!("no serve/SuperMem-c4-p99cyc reference in baseline"));
        #[allow(clippy::float_cmp)] // u64 cycles round-trip exactly through f64
        if r.p99 as f64 != want {
            eprintln!(
                "benchguard: serve p99 drifted: measured {} cycles, committed {want} \
                 (deterministic value — a real change must update BENCH_sweep.json)",
                r.p99
            );
            return ExitCode::FAILURE;
        }
        println!("serve/SuperMem-c4-p99cyc  exact {} cycles  ok", r.p99);
    }

    {
        // The durable-linearizability model checker on its largest
        // exhaustive CI config (queue, 2 cores x 3 mixed ops, crash
        // after every persist-relevant step: 440 schedules, ~10k crash
        // points). Guards the explorer's clone-per-node, crash-image
        // replay, and dedup costs — the CI lincheck job's 60 s budget
        // rests on this staying cheap.
        let cfg = LincheckConfig::mixed(StructureKind::Queue, 2, 3);
        h.bench("lincheck/queue-2x3", || {
            let r = lincheck(black_box(&cfg));
            assert!(r.violation.is_none(), "lincheck violation in benchguard");
            black_box(r.stats.crash_points)
        });
    }

    {
        // KV recovery wall clock: one full crash-torture case end to
        // end — format the WAL+snapshot store, run the 10-op workload,
        // crash mid-run, rebuild the machine image, run the checksummed
        // recovery (paranoid double pass), and classify against the
        // oracle. The full 1,764-injection kvtorture figure and the CI
        // kv job both rest on this staying in the low milliseconds.
        let case = KvTortureCase {
            scheme: Scheme::SuperMem,
            class: None,
            point: 15,
            seed: 1,
            channels: 1,
        };
        h.bench("kv/recover-case", || {
            let r = kv_run_case(black_box(&case));
            assert!(
                r.classification != KvClassification::Silent,
                "silent KV corruption in benchguard"
            );
            black_box(r.classification)
        });
    }

    {
        // Wall-clock guard for a whole large run on the widest committed
        // configuration: 8 channels, array workload, 40 transactions per
        // iteration. This is the figure-suite shape (front end + barrier
        // engine + crypto + drain fast path together), so it catches
        // regressions the per-call microbenchmarks above cannot see,
        // e.g. a barrier that stops skipping quiescent channels.
        let mut rc = RunConfig::new(Scheme::SuperMem, WorkloadKind::Array);
        rc.txns = 40;
        rc.req_bytes = 1024;
        rc.channels = 8;
        h.bench("single_run/SuperMem-ch8-large", || {
            black_box(run_single(black_box(&rc)))
        });
    }

    let checks: Vec<GuardCheck> = h
        .results()
        .iter()
        .map(|r| {
            let reference = extract_after_ns(&baseline, &r.name)
                .unwrap_or_else(|| panic!("no after_ns reference for {} in baseline", r.name));
            check(&r.name, reference, r.ns_per_iter, tol)
        })
        .collect();

    let mut failed = false;
    for c in &checks {
        let verdict = if c.passed() { "ok" } else { "REGRESSED" };
        println!(
            "{:<22} measured {:>8.1} ns/iter  reference {:>7.1}  limit {:>8.1} ({tol}x)  {verdict}",
            c.name, c.measured_ns, c.reference_ns, c.limit_ns
        );
        failed |= !c.passed();
    }
    if failed {
        eprintln!("benchguard: hot-path regression detected (see REGRESSED rows)");
        return ExitCode::FAILURE;
    }
    println!(
        "benchguard: all {} hot-path benchmarks within tolerance",
        checks.len()
    );
    ExitCode::SUCCESS
}
