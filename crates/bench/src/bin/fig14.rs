//! Figure 14: multi-core transaction execution latency with 1, 4, and 8
//! concurrent programs (one per core), normalized to Unsec at the same
//! program count.
//!
//! Paper shape to reproduce: WT costs 1.8–2.4x; with more programs the
//! banks saturate, so WT+CWC (which removes writes) overtakes WT+XBank
//! (which only spreads them); SuperMem still tracks the ideal WB.

use supermem::{run_multicore, RunConfig};
use supermem_bench::{normalized_figure_report, txns};

const PROGRAMS: [usize; 3] = [1, 4, 8];

fn main() {
    let n = txns().min(120); // multi-core runs are programs x txns
    let titles: Vec<String> = PROGRAMS
        .iter()
        .enumerate()
        .map(|(part, programs)| {
            format!(
                "Figure 14{}: {programs}-program txn latency (normalized to Unsec)",
                (b'a' + part as u8) as char
            )
        })
        .collect();
    normalized_figure_report(
        "fig14",
        &titles,
        |part, kind, scheme| {
            let mut rc = RunConfig::new(scheme, kind);
            rc.txns = n;
            rc.req_bytes = 1024;
            rc.programs = PROGRAMS[part];
            rc.array_footprint = 2 << 20; // per-program footprint
            rc
        },
        run_multicore,
        supermem::RunResult::mean_txn_latency,
    )
    .emit();
}
