//! Figure 14: multi-core transaction execution latency with 1, 4, and 8
//! concurrent programs (one per core), normalized to Unsec at the same
//! program count.
//!
//! Paper shape to reproduce: WT costs 1.8–2.4x; with more programs the
//! banks saturate, so WT+CWC (which removes writes) overtakes WT+XBank
//! (which only spreads them); SuperMem still tracks the ideal WB.

use supermem::scheme::FIGURE_SCHEMES;
use supermem::workloads::spec::ALL_KINDS;
use supermem::{run_multicore, RunConfig};
use supermem_bench::{normalized_table, txns};

fn main() {
    let n = txns().min(120); // multi-core runs are programs x txns
    for (part, programs) in [1usize, 4, 8].iter().enumerate() {
        let mut rows = Vec::new();
        for kind in ALL_KINDS {
            let mut values = Vec::new();
            for scheme in FIGURE_SCHEMES {
                let mut rc = RunConfig::new(scheme, kind);
                rc.txns = n;
                rc.req_bytes = 1024;
                rc.programs = *programs;
                rc.array_footprint = 2 << 20; // per-program footprint
                let r = run_multicore(&rc);
                values.push(r.mean_txn_latency());
            }
            rows.push((kind.name().to_owned(), values));
        }
        let title = format!(
            "Figure 14{}: {programs}-program txn latency (normalized to Unsec)",
            (b'a' + part as u8) as char
        );
        println!(
            "{}",
            normalized_table(&title, &FIGURE_SCHEMES.map(|s| s.name()), &rows)
        );
    }
}
