//! Serving-tail figure (extension beyond the paper): p50/p99/p999
//! sojourn latency for four cores hammering one *shared* lock-free
//! persistent structure through the secure-memory write path.
//!
//! The paper's evaluation is closed-loop — each core owns its region
//! and throughput is the number. A storage service cares about the
//! other axis: when requests arrive on their own schedule, what do the
//! slowest ones pay? Three scenarios per structure:
//!
//! 1. **baseline** — mixed read/write Zipfian traffic at a moderate
//!    arrival rate; the tails reflect CAS contention plus the ordinary
//!    counter-fetch/crypto/queue path.
//! 2. **storm** — backlogged write-only traffic, long enough that the
//!    hot lines (the stack/queue heads, the hot hash buckets) wrap
//!    their 7-bit minor counters and force whole-page re-encryptions;
//!    the p999 column shows the requests that arrived mid-storm.
//! 3. **degraded** — bank 0 fail-stopped at time zero; the service
//!    keeps answering (poisoned reads, dropped writes are counted) and
//!    the tail shows what the loss costs.
//!
//! Every cell is deterministic in the seed: re-running this binary
//! reproduces the table byte for byte.

use supermem::metrics::TextTable;
use supermem_bench::{txns, Report};
use supermem_serve::{run_serve, ServeConfig, ServeReport, StructureKind};

fn baseline(structure: StructureKind) -> ServeConfig {
    ServeConfig {
        structure,
        requests: txns(),
        ..ServeConfig::default()
    }
}

/// Write-only, backlogged, hot-keyed: the head/bucket lines absorb one
/// write per operation, so `2 * txns()` requests wrap the 7-bit minor
/// counters (128 writes per line) several times over.
fn storm(structure: StructureKind) -> ServeConfig {
    ServeConfig {
        read_pct: 0,
        mean_gap: 0,
        requests: 2 * txns(),
        // Two buckets concentrate the hash writes the way the single
        // head pointer concentrates the stack's and queue's.
        hash_buckets: 2,
        ..baseline(structure)
    }
}

fn degraded(structure: StructureKind) -> ServeConfig {
    ServeConfig {
        degraded_bank: Some(0),
        ..baseline(structure)
    }
}

fn row(label: &str, r: &ServeReport) -> Vec<String> {
    vec![
        label.to_owned(),
        r.structure.to_string(),
        r.completed.to_string(),
        r.p50.to_string(),
        r.p99.to_string(),
        r.p999.to_string(),
        format!("{:.0}", r.mean),
        r.max.to_string(),
        r.retries.to_string(),
        r.reencryptions.to_string(),
    ]
}

fn headers() -> Vec<String> {
    [
        "scenario",
        "structure",
        "reqs",
        "p50",
        "p99",
        "p999",
        "mean",
        "max",
        "retries",
        "reenc",
    ]
    .map(str::to_owned)
    .to_vec()
}

fn main() {
    let mut tails = TextTable::new(headers());
    let mut storms: Vec<(ServeReport, ServeReport)> = Vec::new();
    let mut degraded_rows = TextTable::new(
        [
            "structure",
            "reqs",
            "p50",
            "p999",
            "max",
            "poisoned",
            "dropped",
        ]
        .map(str::to_owned)
        .to_vec(),
    );

    for structure in StructureKind::ALL {
        let base = run_serve(&baseline(structure)).expect("baseline serve");
        tails.row(row("baseline", &base));
        let hot = run_serve(&storm(structure)).expect("storm serve");
        tails.row(row("storm", &hot));
        storms.push((base, hot));

        let deg = run_serve(&degraded(structure)).expect("degraded serve");
        degraded_rows.row(vec![
            deg.structure.to_string(),
            deg.completed.to_string(),
            deg.p50.to_string(),
            deg.p999.to_string(),
            deg.max.to_string(),
            deg.poisoned_reads.to_string(),
            deg.dropped_writes.to_string(),
        ]);
    }

    let mut blowup = TextTable::new(
        [
            "structure",
            "storm reenc",
            "p999/p50 (storm)",
            "p999 vs baseline",
        ]
        .map(str::to_owned)
        .to_vec(),
    );
    for (base, hot) in &storms {
        blowup.row(vec![
            hot.structure.to_string(),
            hot.reencryptions.to_string(),
            format!("{:.1}x", hot.p999 as f64 / hot.p50.max(1) as f64),
            format!("{:.1}x", hot.p999 as f64 / base.p999.max(1) as f64),
        ]);
    }

    let mut rep = Report::new("servesweep");
    rep.section(
        "Open-loop serving tails: 4 cores, one shared structure, SuperMem \
         (sojourn latency, cycles)",
        tails,
    );
    rep.section(
        "Re-encryption storms: tail blowup under backlogged write-only traffic",
        blowup,
    );
    rep.section(
        "Degraded mode: bank 0 fail-stopped, service keeps answering",
        degraded_rows,
    );
    rep.footnote(
        "(sojourn = completion - arrival; storm traffic wraps the hot lines' \
         7-bit minor counters, forcing page re-encryptions mid-run)",
    );
    rep.footnote(
        "(degraded runs skip shadow verification: poisoned reads legitimately \
         diverge; baseline and storm runs are verified against the shadow model)",
    );
    rep.emit();
}
