//! Read/write-mix study (extension; paper §2.2.3 context).
//!
//! Counter-mode encryption hides OTP generation behind the NVM array
//! read, so an encrypted NVM's *read* path is nearly free — the entire
//! secure-PM overhead is on the write path. Sweeping a YCSB-style mix
//! from write-only to read-only makes that asymmetry measurable: every
//! scheme's gap to Unsec shrinks as reads dominate, and the gaps
//! between schemes (which differ only in counter-write handling)
//! collapse.

use supermem::metrics::TextTable;
use supermem::workloads::WorkloadKind;
use supermem::{run_single, RunConfig, Scheme};
use supermem_bench::txns;

const MIXES: [(u8, &str); 4] = [
    (0, "insert-only"),
    (50, "YCSB-A (50% read)"),
    (95, "YCSB-B (95% read)"),
    (100, "YCSB-C (read-only)"),
];

fn main() {
    let n = txns();
    let mut t = TextTable::new(vec![
        "mix".into(),
        "Unsec".into(),
        "WT".into(),
        "SuperMem".into(),
        "WT/Unsec".into(),
        "SuperMem/Unsec".into(),
    ]);
    for (pct, label) in MIXES {
        let lat = |scheme: Scheme| {
            let mut rc = RunConfig::new(scheme, WorkloadKind::Ycsb);
            rc.txns = n;
            rc.req_bytes = 1024;
            rc.ycsb_read_pct = pct;
            run_single(&rc).mean_txn_latency()
        };
        let unsec = lat(Scheme::Unsec);
        let wt = lat(Scheme::WriteThrough);
        let sm = lat(Scheme::SuperMem);
        t.row(vec![
            label.into(),
            format!("{unsec:.0}"),
            format!("{wt:.0}"),
            format!("{sm:.0}"),
            format!("{:.2}", wt / unsec),
            format!("{:.2}", sm / unsec),
        ]);
    }
    println!("Operation-mix sweep over the B-tree KV store (cycles per op)");
    println!("{}", t.render());
    println!("Encryption overhead lives on the write path: as reads take over,");
    println!("even the naive WT scheme converges to Unsec (paper §2.2.3).");
}
