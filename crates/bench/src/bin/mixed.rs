//! Read/write-mix study (extension; paper §2.2.3 context).
//!
//! Counter-mode encryption hides OTP generation behind the NVM array
//! read, so an encrypted NVM's *read* path is nearly free — the entire
//! secure-PM overhead is on the write path. Sweeping a YCSB-style mix
//! from write-only to read-only makes that asymmetry measurable: every
//! scheme's gap to Unsec shrinks as reads dominate, and the gaps
//! between schemes (which differ only in counter-write handling)
//! collapse.

use supermem::metrics::TextTable;
use supermem::workloads::WorkloadKind;
use supermem::{run_batch, RunConfig, Scheme};
use supermem_bench::{txns, Report};

const MIXES: [(u8, &str); 4] = [
    (0, "insert-only"),
    (50, "YCSB-A (50% read)"),
    (95, "YCSB-B (95% read)"),
    (100, "YCSB-C (read-only)"),
];

const SCHEMES: [Scheme; 3] = [Scheme::Unsec, Scheme::WriteThrough, Scheme::SuperMem];

fn main() {
    let n = txns();
    let mut jobs = Vec::new();
    for (pct, _) in MIXES {
        for scheme in SCHEMES {
            let mut rc = RunConfig::new(scheme, WorkloadKind::Ycsb);
            rc.txns = n;
            rc.req_bytes = 1024;
            rc.ycsb_read_pct = pct;
            jobs.push(rc);
        }
    }
    let results = run_batch(&jobs);

    let mut t = TextTable::new(vec![
        "mix".into(),
        "Unsec".into(),
        "WT".into(),
        "SuperMem".into(),
        "WT/Unsec".into(),
        "SuperMem/Unsec".into(),
    ]);
    for ((_, label), row) in MIXES.iter().zip(results.chunks(SCHEMES.len())) {
        let [unsec, wt, sm] = [
            row[0].mean_txn_latency(),
            row[1].mean_txn_latency(),
            row[2].mean_txn_latency(),
        ];
        t.row(vec![
            (*label).into(),
            format!("{unsec:.0}"),
            format!("{wt:.0}"),
            format!("{sm:.0}"),
            format!("{:.2}", wt / unsec),
            format!("{:.2}", sm / unsec),
        ]);
    }
    let mut rep = Report::new("mixed");
    rep.section(
        "Operation-mix sweep over the B-tree KV store (cycles per op)",
        t,
    );
    rep.footnote("Encryption overhead lives on the write path: as reads take over,");
    rep.footnote("even the naive WT scheme converges to Unsec (paper §2.2.3).");
    rep.emit();
}
