//! Channel-scaling sweep (journal extension of the paper): transaction
//! throughput for WT and SuperMem as the memory system is sharded over
//! address-interleaved channels (default sweep 1 → 8, or any list given
//! via `--channels-list`).
//!
//! The conference paper evaluates a single memory channel; the journal
//! version (*A Secure and Persistent Memory System for NVM*) and
//! Triad-NVM both use multi-channel configurations. Each channel owns a
//! full controller — write queue, counter cache port, staging register,
//! banks — so flushes to different channels overlap completely. Cells
//! are throughput normalized to the first channel count of the same
//! scheme and workload (higher is better); scaling should be monotonic
//! but sub-linear, since same-channel dependences (counter and data of
//! one line share a channel) and core-side serialization remain.

use supermem::metrics::TextTable;
use supermem::workloads::spec::ALL_KINDS;
use supermem::{run_batch, RunConfig, Scheme};
use supermem_bench::{txns, Report};

const SCHEMES: [Scheme; 2] = [Scheme::WriteThrough, Scheme::SuperMem];

/// Parses `--channels-list 1,2,4,8` (or `--channels-list=1,2,4,8`) from
/// the process arguments; the hard-coded 1→8 sweep is only the default.
fn channels_list() -> Result<Vec<usize>, String> {
    let mut list = vec![1, 2, 4, 8];
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let value = if arg == "--channels-list" {
            args.next()
                .ok_or_else(|| "--channels-list needs a value (e.g. 1,2,4)".to_owned())?
        } else if let Some(v) = arg.strip_prefix("--channels-list=") {
            v.to_owned()
        } else {
            return Err(format!("unknown flag `{arg}` (only --channels-list)"));
        };
        list = value
            .split(',')
            .map(|tok| {
                let n: usize = tok
                    .trim()
                    .parse()
                    .map_err(|_| format!("invalid channel count `{tok}`"))?;
                if n == 0 || !n.is_power_of_two() {
                    return Err(format!("channel count {n} must be a power of two"));
                }
                Ok(n)
            })
            .collect::<Result<_, String>>()?;
        if list.is_empty() {
            return Err("--channels-list must name at least one channel count".to_owned());
        }
    }
    Ok(list)
}

fn main() {
    let channels = match channels_list() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("channelsweep: {e}");
            std::process::exit(2);
        }
    };
    let n = txns();
    let mut jobs = Vec::new();
    for scheme in SCHEMES {
        for kind in ALL_KINDS {
            for &ch in &channels {
                let mut rc = RunConfig::new(scheme, kind);
                rc.txns = n;
                rc.req_bytes = 1024;
                rc.channels = ch;
                jobs.push(rc);
            }
        }
    }
    let results = run_batch(&jobs);

    let headers: Vec<String> = std::iter::once("workload".to_owned())
        .chain(channels.iter().map(|c| format!("ch={c}")))
        .collect();
    let first = channels[0];
    let plural = if first == 1 { "" } else { "s" };
    let mut rep = Report::new("channelsweep");
    let mut chunks = results.chunks(channels.len());
    for scheme in SCHEMES {
        let mut t = TextTable::new(headers.clone());
        for kind in ALL_KINDS {
            let row = chunks.next().expect("one chunk per (scheme, workload)");
            let base = row[0].total_cycles;
            let mut cells = vec![kind.name().to_owned()];
            for r in row {
                cells.push(format!("{:.2}", base as f64 / r.total_cycles as f64));
            }
            t.row(cells);
        }
        rep.section(
            &format!("Channel scaling: {scheme} throughput, normalized to {first} channel{plural}"),
            t,
        );
    }
    rep.footnote(&format!(
        "(cells = cycles({first} channel{plural}) / cycles(N channels); higher is better)"
    ));
    rep.emit();
}
