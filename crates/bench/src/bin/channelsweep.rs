//! Channel-scaling sweep (journal extension of the paper): transaction
//! throughput for WT and SuperMem as the memory system is sharded over
//! 1 → 8 address-interleaved channels.
//!
//! The conference paper evaluates a single memory channel; the journal
//! version (*A Secure and Persistent Memory System for NVM*) and
//! Triad-NVM both use multi-channel configurations. Each channel owns a
//! full controller — write queue, counter cache port, staging register,
//! banks — so flushes to different channels overlap completely. Cells
//! are throughput normalized to the 1-channel run of the same scheme
//! and workload (higher is better); scaling should be monotonic but
//! sub-linear, since same-channel dependences (counter and data of one
//! line share a channel) and core-side serialization remain.

use supermem::metrics::TextTable;
use supermem::workloads::spec::ALL_KINDS;
use supermem::{run_batch, RunConfig, Scheme};
use supermem_bench::{txns, Report};

const CHANNELS: [usize; 4] = [1, 2, 4, 8];
const SCHEMES: [Scheme; 2] = [Scheme::WriteThrough, Scheme::SuperMem];

fn main() {
    let n = txns();
    let mut jobs = Vec::new();
    for scheme in SCHEMES {
        for kind in ALL_KINDS {
            for ch in CHANNELS {
                let mut rc = RunConfig::new(scheme, kind);
                rc.txns = n;
                rc.req_bytes = 1024;
                rc.channels = ch;
                jobs.push(rc);
            }
        }
    }
    let results = run_batch(&jobs);

    let headers: Vec<String> = std::iter::once("workload".to_owned())
        .chain(CHANNELS.iter().map(|c| format!("ch={c}")))
        .collect();
    let mut rep = Report::new("channelsweep");
    let mut chunks = results.chunks(CHANNELS.len());
    for scheme in SCHEMES {
        let mut t = TextTable::new(headers.clone());
        for kind in ALL_KINDS {
            let row = chunks.next().expect("one chunk per (scheme, workload)");
            let base = row[0].total_cycles;
            let mut cells = vec![kind.name().to_owned()];
            for r in row {
                cells.push(format!("{:.2}", base as f64 / r.total_cycles as f64));
            }
            t.row(cells);
        }
        rep.section(
            &format!("Channel scaling: {scheme} throughput, normalized to 1 channel"),
            t,
        );
    }
    rep.footnote("(cells = cycles(1 channel) / cycles(N channels); higher is better)");
    rep.emit();
}
