//! Osiris comparison (paper §6 related work).
//!
//! Ye et al.'s Osiris relaxes counter persistence: counters stay in a
//! volatile write-back cache, every Nth update is persisted, and spare
//! ECC bits let recovery re-derive lost counters by trial decryption.
//! The SuperMem paper's criticism: "Osiris incurs long counter recovery
//! time when the system is recovered from a failure and the recovery
//! time linearly increases with the memory size. In contrast, SuperMem
//! and SCA do not need to recover counters."
//!
//! This binary quantifies both halves of that trade:
//!   1. runtime — Osiris writes fewer counters than SuperMem (it is
//!      close to the ideal WB);
//!   2. recovery — Osiris must scan every written line and pay trial
//!      decryptions, growing linearly with the footprint, while
//!      SuperMem's recovery is O(1).

use supermem::metrics::TextTable;
use supermem::persist::recover_osiris;
use supermem::workloads::spec::ALL_KINDS;
use supermem::workloads::{WorkloadKind, WorkloadSpec};
use supermem::{run_batch, sweep, RunConfig, Scheme, SystemBuilder};
use supermem_bench::{txns, Report};

const SCHEMES: [Scheme; 3] = [Scheme::WriteBackIdeal, Scheme::Osiris, Scheme::SuperMem];

fn main() {
    let n = txns();

    // --- Part 1: runtime comparison.
    let mut jobs = Vec::new();
    for kind in ALL_KINDS {
        for scheme in SCHEMES {
            let mut rc = RunConfig::new(scheme, kind);
            rc.txns = n;
            rc.req_bytes = 1024;
            jobs.push(rc);
        }
    }
    let results = run_batch(&jobs);

    let mut rt = TextTable::new(vec![
        "workload".into(),
        "WB(ideal) lat".into(),
        "Osiris lat".into(),
        "SuperMem lat".into(),
        "Osiris writes".into(),
        "SuperMem writes".into(),
    ]);
    for (kind, row) in ALL_KINDS.iter().zip(results.chunks(SCHEMES.len())) {
        let (wb, osiris, sm) = (&row[0], &row[1], &row[2]);
        let base = wb.mean_txn_latency();
        rt.row(vec![
            kind.name().into(),
            "1.00".into(),
            format!("{:.2}", osiris.mean_txn_latency() / base),
            format!("{:.2}", sm.mean_txn_latency() / base),
            format!("{:.2}", osiris.nvm_writes() as f64 / wb.nvm_writes() as f64),
            format!("{:.2}", sm.nvm_writes() as f64 / wb.nvm_writes() as f64),
        ]);
    }

    // --- Part 2: recovery cost vs footprint. Each footprint's
    // run-crash-recover cycle is independent, so they sweep too.
    let footprints: [u64; 4] = [256, 1024, 4096, 8192];
    let rec_rows = sweep(&footprints, |&footprint_kb| {
        let cfg = Scheme::Osiris.apply(supermem::sim::Config::default());
        let mut sys = SystemBuilder::new().scheme(Scheme::Osiris).build();
        let spec = WorkloadSpec::new(WorkloadKind::Array)
            .with_txns(50)
            .with_req_bytes(1024)
            .with_array_footprint(footprint_kb << 10);
        let mut w = spec.build(&mut sys).expect("valid spec");
        for _ in 0..50 {
            w.step(&mut sys).expect("txn");
        }
        let (_, report) = recover_osiris(&cfg, sys.crash_now()).expect("osiris window configured");
        vec![
            format!("{footprint_kb} KiB"),
            report.lines_scanned.to_string(),
            report.trial_decryptions.to_string(),
            report.counters_corrected.to_string(),
            "0 (strict counters)".into(),
        ]
    });
    let mut rec = TextTable::new(vec![
        "footprint".into(),
        "lines scanned".into(),
        "trial decryptions".into(),
        "counters fixed".into(),
        "SuperMem equivalent".into(),
    ]);
    for row in rec_rows {
        rec.row(row);
    }

    let mut rep = Report::new("osiris");
    rep.section(
        "Osiris vs SuperMem, runtime (normalized to the ideal WB)",
        rt,
    );
    rep.section(
        "Osiris post-crash counter recovery cost (array workload, 50 txns)",
        rec,
    );
    rep.footnote("Recovery work grows with the written footprint — the §6 criticism —");
    rep.footnote("while SuperMem restarts instantly: its counters are always persisted.");
    rep.emit();
}
