//! Design ablations called out in DESIGN.md:
//!
//! 1. **Bank placement × CWC grid** (paper Figure 8 / §3.3): latency of
//!    every {SingleBank, SameBank, CrossBank} × {CWC off, CWC on}
//!    combination over the write-through counter cache, normalized to
//!    SingleBank without CWC (= the WT baseline). CrossBank+CWC is
//!    SuperMem.
//! 2. **Per-bank write distribution**: where data and counter writes
//!    land for each placement — SingleBank funnels every counter write
//!    into bank 7, SameBank doubles each data bank's load, CrossBank
//!    spreads pairs half the bank space apart.

use supermem::metrics::TextTable;
use supermem::sim::CounterPlacement;
use supermem::workloads::spec::ALL_KINDS;
use supermem::workloads::WorkloadKind;
use supermem::{run_single, RunConfig, Scheme};
use supermem_bench::txns;

const PLACEMENTS: [(CounterPlacement, &str); 3] = [
    (CounterPlacement::SingleBank, "SingleBank"),
    (CounterPlacement::SameBank, "SameBank"),
    (CounterPlacement::CrossBank, "XBank"),
];

fn main() {
    let n = txns();

    // --- 1. placement x CWC latency grid.
    let mut headers = vec!["workload".to_owned()];
    for (_, pname) in PLACEMENTS {
        headers.push(pname.to_owned());
        headers.push(format!("{pname}+CWC"));
    }
    let mut grid = TextTable::new(headers);
    for kind in ALL_KINDS {
        let mut cells = vec![kind.name().to_owned()];
        let mut base = None;
        for (placement, _) in PLACEMENTS {
            for cwc in [false, true] {
                let mut rc = RunConfig::new(Scheme::WriteThrough, kind);
                rc.txns = n;
                rc.req_bytes = 1024;
                rc.placement_override = Some(placement);
                rc.cwc_override = Some(cwc);
                let lat = run_single(&rc).mean_txn_latency();
                let b = *base.get_or_insert(lat);
                cells.push(format!("{:.2}", lat / b));
            }
        }
        grid.row(cells);
    }
    println!("Ablation 1: WT latency by counter placement x CWC (normalized to SingleBank)");
    println!("{}", grid.render());

    // --- 2. per-bank write distribution (queue workload).
    let mut dist = TextTable::new(
        std::iter::once("placement".to_owned())
            .chain((0..8).map(|b| format!("bank{b}")))
            .collect(),
    );
    for (placement, pname) in PLACEMENTS {
        let mut rc = RunConfig::new(Scheme::WriteThrough, WorkloadKind::Queue);
        rc.txns = n;
        rc.req_bytes = 1024;
        rc.placement_override = Some(placement);
        let r = run_single(&rc);
        let total: u64 = r.stats.bank_writes.iter().sum();
        let mut cells = vec![pname.to_owned()];
        for &w in r.stats.bank_writes.iter().take(8) {
            cells.push(format!("{:.0}%", 100.0 * w as f64 / total.max(1) as f64));
        }
        dist.row(cells);
    }
    println!("Ablation 2: share of NVM writes per bank (queue, WT, 1 KB txns)");
    println!("{}", dist.render());
}
