//! Design ablations called out in DESIGN.md:
//!
//! 1. **Bank placement × CWC grid** (paper Figure 8 / §3.3): latency of
//!    every {SingleBank, SameBank, CrossBank} × {CWC off, CWC on}
//!    combination over the write-through counter cache, normalized to
//!    SingleBank without CWC (= the WT baseline). CrossBank+CWC is
//!    SuperMem.
//! 2. **Per-bank write distribution**: where data and counter writes
//!    land for each placement — SingleBank funnels every counter write
//!    into bank 7, SameBank doubles each data bank's load, CrossBank
//!    spreads pairs half the bank space apart.

use supermem::metrics::TextTable;
use supermem::sim::CounterPlacement;
use supermem::workloads::spec::ALL_KINDS;
use supermem::workloads::WorkloadKind;
use supermem::{run_batch, RunConfig, Scheme};
use supermem_bench::{txns, Report};

const PLACEMENTS: [(CounterPlacement, &str); 3] = [
    (CounterPlacement::SingleBank, "SingleBank"),
    (CounterPlacement::SameBank, "SameBank"),
    (CounterPlacement::CrossBank, "XBank"),
];

fn main() {
    let n = txns();

    // Both experiments go into one job list so a single sweep covers
    // the full binary: the placement x CWC grid first, then the three
    // per-bank distribution runs.
    let mut jobs = Vec::new();
    for kind in ALL_KINDS {
        for (placement, _) in PLACEMENTS {
            for cwc in [false, true] {
                let mut rc = RunConfig::new(Scheme::WriteThrough, kind);
                rc.txns = n;
                rc.req_bytes = 1024;
                rc.placement_override = Some(placement);
                rc.cwc_override = Some(cwc);
                jobs.push(rc);
            }
        }
    }
    let grid_jobs = jobs.len();
    for (placement, _) in PLACEMENTS {
        let mut rc = RunConfig::new(Scheme::WriteThrough, WorkloadKind::Queue);
        rc.txns = n;
        rc.req_bytes = 1024;
        rc.placement_override = Some(placement);
        jobs.push(rc);
    }
    let results = run_batch(&jobs);

    // --- 1. placement x CWC latency grid.
    let mut headers = vec!["workload".to_owned()];
    for (_, pname) in PLACEMENTS {
        headers.push(pname.to_owned());
        headers.push(format!("{pname}+CWC"));
    }
    let mut grid = TextTable::new(headers);
    let cells_per_kind = PLACEMENTS.len() * 2;
    for (kind, row) in ALL_KINDS
        .iter()
        .zip(results[..grid_jobs].chunks(cells_per_kind))
    {
        let mut cells = vec![kind.name().to_owned()];
        let mut base = None;
        for r in row {
            let lat = r.mean_txn_latency();
            let b = *base.get_or_insert(lat);
            cells.push(format!("{:.2}", lat / b));
        }
        grid.row(cells);
    }

    // --- 2. per-bank write distribution (queue workload).
    let mut dist = TextTable::new(
        std::iter::once("placement".to_owned())
            .chain((0..8).map(|b| format!("bank{b}")))
            .collect(),
    );
    for ((_, pname), r) in PLACEMENTS.iter().zip(&results[grid_jobs..]) {
        let total: u64 = r.stats.bank_writes.iter().sum();
        let mut cells = vec![(*pname).to_owned()];
        for &w in r.stats.bank_writes.iter().take(8) {
            cells.push(format!("{:.0}%", 100.0 * w as f64 / total.max(1) as f64));
        }
        dist.row(cells);
    }

    let mut rep = Report::new("ablation");
    rep.section(
        "Ablation 1: WT latency by counter placement x CWC (normalized to SingleBank)",
        grid,
    );
    rep.section(
        "Ablation 2: share of NVM writes per bank (queue, WT, 1 KB txns)",
        dist,
    );
    rep.emit();
}
