//! Trace-driven scheme comparison.
//!
//! Captures each workload's memory-operation trace *once* on a
//! functional memory, then replays the identical trace through every
//! scheme's timed machine — the classic decoupled methodology of
//! trace-driven architecture simulation (gem5/NVMain studies work the
//! same way). Because every scheme sees byte-identical traffic, the
//! comparison isolates the memory system completely.

use supermem::metrics::TextTable;
use supermem::scheme::FIGURE_SCHEMES;
use supermem::trace::encode;
use supermem::workloads::spec::ALL_KINDS;
use supermem::{record_workload_trace, replay_trace, sweep, RunConfig, Scheme};
use supermem_bench::{txns, Report};

fn main() {
    let n = txns();
    // One job per workload: record the trace, then replay it through
    // every scheme. The replays share the recorded trace, so the
    // workload is the natural parallel grain.
    let rows = sweep(&ALL_KINDS, |kind| {
        let mut rc = RunConfig::new(Scheme::SuperMem, *kind);
        rc.txns = n;
        rc.req_bytes = 1024;
        rc.array_footprint = 1 << 20;
        let trace = record_workload_trace(&rc);
        let encoded = encode(&trace);
        let mut cells = vec![kind.name().to_owned()];
        let mut base = None;
        for scheme in FIGURE_SCHEMES {
            let mut rc = rc.clone();
            rc.scheme = scheme;
            let lat = replay_trace(&rc, &trace).mean_txn_latency();
            let b = *base.get_or_insert(lat);
            cells.push(format!("{:.2}", lat / b));
        }
        cells.push(format!("{} KiB", encoded.len() / 1024));
        cells
    });

    let mut table = TextTable::new(
        std::iter::once("workload".to_owned())
            .chain(FIGURE_SCHEMES.iter().map(|s| s.name().to_owned()))
            .chain(std::iter::once("trace size".to_owned()))
            .collect(),
    );
    for cells in rows {
        table.row(cells);
    }
    let mut rep = Report::new("tracebench");
    rep.section(
        "Trace-driven replay: one recorded trace per workload, every scheme\n(txn latency normalized to Unsec; identical traffic everywhere)",
        table,
    );
    rep.emit();
}
