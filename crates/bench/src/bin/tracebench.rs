//! Trace-driven scheme comparison.
//!
//! Captures each workload's memory-operation trace *once* on a
//! functional memory, then replays the identical trace through every
//! scheme's timed machine — the classic decoupled methodology of
//! trace-driven architecture simulation (gem5/NVMain studies work the
//! same way). Because every scheme sees byte-identical traffic, the
//! comparison isolates the memory system completely.

use supermem::metrics::TextTable;
use supermem::scheme::FIGURE_SCHEMES;
use supermem::trace::encode;
use supermem::workloads::spec::ALL_KINDS;
use supermem::{record_workload_trace, replay_trace, RunConfig, Scheme};
use supermem_bench::txns;

fn main() {
    let n = txns();
    let mut table = TextTable::new(
        std::iter::once("workload".to_owned())
            .chain(FIGURE_SCHEMES.iter().map(|s| s.name().to_owned()))
            .chain(std::iter::once("trace size".to_owned()))
            .collect(),
    );
    for kind in ALL_KINDS {
        let mut rc = RunConfig::new(Scheme::SuperMem, kind);
        rc.txns = n;
        rc.req_bytes = 1024;
        rc.array_footprint = 1 << 20;
        let trace = record_workload_trace(&rc);
        let encoded = encode(&trace);
        let mut cells = vec![kind.name().to_owned()];
        let mut base = None;
        for scheme in FIGURE_SCHEMES {
            let mut rc = rc.clone();
            rc.scheme = scheme;
            let lat = replay_trace(&rc, &trace).mean_txn_latency();
            let b = *base.get_or_insert(lat);
            cells.push(format!("{:.2}", lat / b));
        }
        cells.push(format!("{} KiB", encoded.len() / 1024));
        table.row(cells);
    }
    println!("Trace-driven replay: one recorded trace per workload, every scheme");
    println!("(txn latency normalized to Unsec; identical traffic everywhere)");
    println!("{}", table.render());
}
