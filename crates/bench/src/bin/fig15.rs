//! Figure 15: the number of NVM write requests, normalized to Unsec,
//! for 256 B / 1 KB / 4 KB transaction request sizes.
//!
//! Paper shape to reproduce: WT is 2x regardless of request size; the
//! ideal WB adds only 3–16% (less at larger sizes); SuperMem removes
//! 20–27% of WT's writes at 256 B, 35–42% at 1 KB, and 45–48% at 4 KB
//! thanks to better spatial locality feeding CWC.

use supermem::scheme::FIGURE_SCHEMES;
use supermem::workloads::spec::ALL_KINDS;
use supermem::{run_single, RunConfig};
use supermem_bench::{normalized_table, txns, REQUEST_SIZES};

fn main() {
    let n = txns();
    for (part, req) in REQUEST_SIZES.iter().enumerate() {
        let mut rows = Vec::new();
        for kind in ALL_KINDS {
            let mut values = Vec::new();
            for scheme in FIGURE_SCHEMES {
                let mut rc = RunConfig::new(scheme, kind);
                rc.txns = n;
                rc.req_bytes = *req;
                let r = run_single(&rc);
                values.push(r.nvm_writes() as f64);
            }
            rows.push((kind.name().to_owned(), values));
        }
        let title = format!(
            "Figure 15{}: NVM write requests, {req} B requests (normalized to Unsec)",
            (b'a' + part as u8) as char
        );
        println!(
            "{}",
            normalized_table(&title, &FIGURE_SCHEMES.map(|s| s.name()), &rows)
        );
    }
}
