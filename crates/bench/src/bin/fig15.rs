//! Figure 15: the number of NVM write requests, normalized to Unsec,
//! for 256 B / 1 KB / 4 KB transaction request sizes.
//!
//! Paper shape to reproduce: WT is 2x regardless of request size; the
//! ideal WB adds only 3–16% (less at larger sizes); SuperMem removes
//! 20–27% of WT's writes at 256 B, 35–42% at 1 KB, and 45–48% at 4 KB
//! thanks to better spatial locality feeding CWC.

use supermem::{run_single, RunConfig};
use supermem_bench::{normalized_figure_report, txns, REQUEST_SIZES};

fn main() {
    let n = txns();
    let titles: Vec<String> = REQUEST_SIZES
        .iter()
        .enumerate()
        .map(|(part, req)| {
            format!(
                "Figure 15{}: NVM write requests, {req} B requests (normalized to Unsec)",
                (b'a' + part as u8) as char
            )
        })
        .collect();
    normalized_figure_report(
        "fig15",
        &titles,
        |part, kind, scheme| {
            let mut rc = RunConfig::new(scheme, kind);
            rc.txns = n;
            rc.req_bytes = REQUEST_SIZES[part];
            rc
        },
        run_single,
        |r| r.nvm_writes() as f64,
    )
    .emit();
}
