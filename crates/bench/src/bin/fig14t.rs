//! Figure 14, event-granularity variant: the same multi-core sweep as
//! `fig14`, but with per-core traces interleaved one memory operation
//! at a time — closer to the paper's cycle-driven gem5 cores than the
//! transaction-granularity scheduler in `fig14`.

use supermem::scheme::FIGURE_SCHEMES;
use supermem::workloads::spec::ALL_KINDS;
use supermem::{run_multicore_trace, RunConfig};
use supermem_bench::{normalized_table, txns};

fn main() {
    let n = txns().min(100);
    for (part, programs) in [1usize, 4, 8].iter().enumerate() {
        let mut rows = Vec::new();
        for kind in ALL_KINDS {
            let mut values = Vec::new();
            for scheme in FIGURE_SCHEMES {
                let mut rc = RunConfig::new(scheme, kind);
                rc.txns = n;
                rc.req_bytes = 1024;
                rc.programs = *programs;
                rc.array_footprint = 2 << 20;
                let r = run_multicore_trace(&rc);
                values.push(r.mean_txn_latency());
            }
            rows.push((kind.name().to_owned(), values));
        }
        let title = format!(
            "Figure 14{} (event-interleaved): {programs}-program txn latency (normalized to Unsec)",
            (b'a' + part as u8) as char
        );
        println!(
            "{}",
            normalized_table(&title, &FIGURE_SCHEMES.map(|s| s.name()), &rows)
        );
    }
}
