//! Figure 14, event-granularity variant: the same multi-core sweep as
//! `fig14`, but with per-core traces interleaved one memory operation
//! at a time — closer to the paper's cycle-driven gem5 cores than the
//! transaction-granularity scheduler in `fig14`.

use supermem::{run_multicore_trace, RunConfig};
use supermem_bench::{normalized_figure_report, txns};

const PROGRAMS: [usize; 3] = [1, 4, 8];

fn main() {
    let n = txns().min(100);
    let titles: Vec<String> = PROGRAMS
        .iter()
        .enumerate()
        .map(|(part, programs)| {
            format!(
                "Figure 14{} (event-interleaved): {programs}-program txn latency (normalized to Unsec)",
                (b'a' + part as u8) as char
            )
        })
        .collect();
    normalized_figure_report(
        "fig14t",
        &titles,
        |part, kind, scheme| {
            let mut rc = RunConfig::new(scheme, kind);
            rc.txns = n;
            rc.req_bytes = 1024;
            rc.programs = PROGRAMS[part];
            rc.array_footprint = 2 << 20;
            rc
        },
        run_multicore_trace,
        supermem::RunResult::mean_txn_latency,
    )
    .emit();
}
