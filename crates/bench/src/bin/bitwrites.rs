//! Bit-write study: full-line counter mode vs DEUCE dual-counter
//! encryption vs unencrypted NVM (§6 related-work context).
//!
//! SuperMem reduces write *requests*; DEUCE reduces written *bits* (PCM
//! write energy and cell wear scale with flipped bits, and unmodified
//! cells cost nothing). Full-line counter mode re-randomizes the whole
//! 64-byte line on every write (~256 flipped bits); DEUCE leaves
//! untouched words' ciphertext bit-identical. This harness replays each
//! workload's flush stream through three functional data paths and
//! counts the flips.

use std::collections::{HashMap, HashSet};

use supermem::crypto::deuce::{DeuceEngine, DeuceMeta};
use supermem::crypto::{deuce::bit_flips, EncryptionEngine};
use supermem::metrics::TextTable;
use supermem::trace::TraceEvent;
use supermem::workloads::spec::ALL_KINDS;
use supermem::{record_workload_trace, sweep, RunConfig, Scheme};
use supermem_bench::{txns, Report};

#[derive(Default)]
struct Flips {
    unsec: u64,
    ctr: u64,
    deuce: u64,
    writes: u64,
}

fn replay_flips(trace: &[TraceEvent]) -> Flips {
    let ctr_engine = EncryptionEngine::new([1; 16]);
    let deuce_engine = DeuceEngine::new([2; 16]);
    // Volatile plaintext (the CPU caches), per line.
    let mut plain: HashMap<u64, [u8; 64]> = HashMap::new();
    let mut dirty: HashSet<u64> = HashSet::new();
    // Persistent state per path.
    let mut nvm_plain: HashMap<u64, [u8; 64]> = HashMap::new();
    let mut nvm_ctr: HashMap<u64, ([u8; 64], u64)> = HashMap::new();
    let mut nvm_deuce: HashMap<u64, ([u8; 64], DeuceMeta, [u8; 64])> = HashMap::new();
    let mut out = Flips::default();

    for event in trace {
        match event {
            TraceEvent::Write { addr, bytes } => {
                for (i, &b) in bytes.iter().enumerate() {
                    let a = addr + i as u64;
                    let line = a & !63;
                    plain.entry(line).or_insert([0; 64])[(a - line) as usize] = b;
                    dirty.insert(line);
                }
            }
            TraceEvent::Clwb { addr, len } => {
                if *len == 0 {
                    continue;
                }
                let first = addr & !63;
                let last = (addr + len - 1) & !63;
                let mut line = first;
                loop {
                    if dirty.remove(&line) {
                        let new_plain = plain[&line];
                        out.writes += 1;

                        // Unsec: bits that actually changed in plaintext.
                        let old = nvm_plain.insert(line, new_plain).unwrap_or([0; 64]);
                        out.unsec += bit_flips(&old, &new_plain) as u64;

                        // Full-line counter mode: fresh pad every write.
                        let (old_cipher, minor) =
                            nvm_ctr.get(&line).copied().unwrap_or(([0; 64], 0));
                        let new_cipher =
                            ctr_engine.encrypt_line(&new_plain, line, 0, (minor % 127 + 1) as u8);
                        out.ctr += bit_flips(&old_cipher, &new_cipher) as u64;
                        nvm_ctr.insert(line, (new_cipher, minor + 1));

                        // DEUCE: dual-counter, word-granular.
                        let entry = nvm_deuce.entry(line).or_insert((
                            [0; 64],
                            DeuceMeta::default(),
                            [0; 64],
                        ));
                        let (old_cipher, meta, old_plain_stored) = entry;
                        let had_old = meta.count > 0;
                        let old_plain_copy = *old_plain_stored;
                        let new_cipher = deuce_engine.write(
                            meta,
                            line,
                            had_old.then_some(&old_plain_copy),
                            &new_plain,
                        );
                        out.deuce += bit_flips(old_cipher, &new_cipher) as u64;
                        *old_cipher = new_cipher;
                        *old_plain_stored = new_plain;
                    }
                    if line == last {
                        break;
                    }
                    line += 64;
                }
            }
            _ => {}
        }
    }
    out
}

fn main() {
    let n = txns();
    // One job per workload: record the flush stream, then replay it
    // through the three functional data paths.
    let rows = sweep(&ALL_KINDS, |kind| {
        let mut rc = RunConfig::new(Scheme::Unsec, *kind);
        rc.txns = n;
        rc.req_bytes = 1024;
        rc.array_footprint = 1 << 20;
        let trace = record_workload_trace(&rc);
        let f = replay_flips(&trace);
        let per = |v: u64| v as f64 / f.writes.max(1) as f64;
        vec![
            kind.name().to_owned(),
            f.writes.to_string(),
            format!("{:.0}", per(f.unsec)),
            format!("{:.0}", per(f.ctr)),
            format!("{:.0}", per(f.deuce)),
            format!("{:.2}x", f.deuce as f64 / f.ctr.max(1) as f64),
        ]
    });

    let mut t = TextTable::new(vec![
        "workload".into(),
        "line writes".into(),
        "Unsec bits/write".into(),
        "CTR bits/write".into(),
        "DEUCE bits/write".into(),
        "DEUCE vs CTR".into(),
    ]);
    for row in rows {
        t.row(row);
    }
    let mut rep = Report::new("bitwrites");
    rep.section("Bits flipped per 64-byte line write (512 bits max)", t);
    rep.footnote("Full-line counter mode pays ~256 flips per write regardless of the");
    rep.footnote("store; DEUCE's word-granular dual counters approach the plaintext");
    rep.footnote("cost — the §6 'reduce the writes of encrypted data' line of work,");
    rep.footnote("orthogonal to SuperMem's request-count reduction.");
    rep.emit();
}
