//! SCA comparison (paper §2.3/§6): selective counter-atomicity gets
//! write-back efficiency by modifying software; SuperMem gets within a
//! few percent of it while staying application-transparent.
//!
//! The SCA rows here run every workload through the `ScaSystem`
//! adapter — the "recompiled" application — while the other rows run
//! the unmodified workload binary.

use supermem::metrics::TextTable;
use supermem::sca::ScaSystem;
use supermem::workloads::spec::ALL_KINDS;
use supermem::workloads::WorkloadSpec;
use supermem::{run_single, sweep, RunConfig, Scheme, SystemBuilder};
use supermem_bench::{txns, Report};

/// Runs one workload through the SCA adapter, mirroring `run_single`'s
/// measurement discipline.
fn run_sca(rc: &RunConfig) -> (f64, u64, u64) {
    let mut mem = ScaSystem::new(
        SystemBuilder::new()
            .scheme(Scheme::Sca)
            .seed(rc.seed)
            .build(),
    );
    let spec = WorkloadSpec::new(rc.kind)
        .with_txns(rc.txns)
        .with_req_bytes(rc.req_bytes)
        .with_seed(rc.seed)
        .with_array_footprint(rc.array_footprint);
    let mut w = spec.build(&mut mem).expect("valid spec");
    mem.inner_mut().checkpoint();
    mem.inner_mut().reset_stats();
    let mut latencies = Vec::with_capacity(rc.txns as usize);
    for _ in 0..rc.txns {
        let start = mem.inner().now();
        w.step(&mut mem).expect("txn");
        latencies.push(mem.inner().now() - start);
    }
    mem.inner_mut().checkpoint();
    let writes = mem.stats().nvm_writes_total();
    let writebacks = mem.counter_writebacks();
    w.verify(&mut mem).expect("verify");
    let mean = latencies.iter().sum::<u64>() as f64 / latencies.len() as f64;
    (mean, writes, writebacks)
}

fn main() {
    let n = txns();
    // One job per workload row; each row needs the WB/SuperMem runs and
    // the SCA adapter run, so the row is the parallel grain.
    let rows = sweep(&ALL_KINDS, |kind| {
        let run = |scheme: Scheme| {
            let mut rc = RunConfig::new(scheme, *kind);
            rc.txns = n;
            rc.req_bytes = 1024;
            run_single(&rc)
        };
        let wb = run(Scheme::WriteBackIdeal);
        let sm = run(Scheme::SuperMem);
        let mut rc = RunConfig::new(Scheme::Sca, *kind);
        rc.txns = n;
        rc.req_bytes = 1024;
        let (sca_lat, sca_writes, writebacks) = run_sca(&rc);
        let base = wb.mean_txn_latency();
        vec![
            kind.name().into(),
            "1.00".into(),
            format!("{:.2}", sca_lat / base),
            format!("{:.2}", sm.mean_txn_latency() / base),
            format!("{:.2}", sca_writes as f64 / wb.nvm_writes() as f64),
            format!("{:.2}", sm.nvm_writes() as f64 / wb.nvm_writes() as f64),
            writebacks.to_string(),
        ]
    });

    let mut t = TextTable::new(vec![
        "workload".into(),
        "WB lat".into(),
        "SCA lat".into(),
        "SuperMem lat".into(),
        "SCA writes".into(),
        "SuperMem writes".into(),
        "SCA sw calls".into(),
    ]);
    for row in rows {
        t.row(row);
    }
    let mut rep = Report::new("sca");
    rep.section(
        "SCA vs SuperMem (normalized to the battery-backed ideal WB)",
        t,
    );
    rep.footnote("SCA needs \"SCA sw calls\" explicit counter_cache_writeback()s compiled");
    rep.footnote("into the application; SuperMem needs zero software changes (paper §1).");
    rep.emit();
}
