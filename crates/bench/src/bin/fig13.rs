//! Figure 13: single-core transaction execution latency, normalized to
//! the un-encrypted NVM (Unsec), for 256 B / 1 KB / 4 KB transaction
//! request sizes, across the five workloads and six schemes.
//!
//! Paper shape to reproduce: WT costs 1.7–2x Unsec; WT+CWC recovers
//! 17–24% (256 B) up to 40–48% (4 KB); WT+XBank up to 45%; SuperMem
//! lands within a few percent of the ideal WB.

use supermem::scheme::FIGURE_SCHEMES;
use supermem::workloads::spec::ALL_KINDS;
use supermem::{run_single, RunConfig};
use supermem_bench::{normalized_table, txns, REQUEST_SIZES};

fn main() {
    let n = txns();
    for (part, req) in REQUEST_SIZES.iter().enumerate() {
        let mut rows = Vec::new();
        for kind in ALL_KINDS {
            let mut values = Vec::new();
            for scheme in FIGURE_SCHEMES {
                let mut rc = RunConfig::new(scheme, kind);
                rc.txns = n;
                rc.req_bytes = *req;
                let r = run_single(&rc);
                values.push(r.mean_txn_latency());
            }
            rows.push((kind.name().to_owned(), values));
        }
        let title = format!(
            "Figure 13{}: single-core txn latency, {req} B requests (normalized to Unsec)",
            (b'a' + part as u8) as char
        );
        println!(
            "{}",
            normalized_table(
                &title,
                &FIGURE_SCHEMES.map(|s| s.name()),
                &rows
            )
        );
    }
}
