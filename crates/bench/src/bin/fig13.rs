//! Figure 13: single-core transaction execution latency, normalized to
//! the un-encrypted NVM (Unsec), for 256 B / 1 KB / 4 KB transaction
//! request sizes, across the five workloads and six schemes.
//!
//! Paper shape to reproduce: WT costs 1.7–2x Unsec; WT+CWC recovers
//! 17–24% (256 B) up to 40–48% (4 KB); WT+XBank up to 45%; SuperMem
//! lands within a few percent of the ideal WB.

use supermem::{run_single, RunConfig};
use supermem_bench::{normalized_figure_report, txns, REQUEST_SIZES};

fn main() {
    let n = txns();
    let titles: Vec<String> = REQUEST_SIZES
        .iter()
        .enumerate()
        .map(|(part, req)| {
            format!(
                "Figure 13{}: single-core txn latency, {req} B requests (normalized to Unsec)",
                (b'a' + part as u8) as char
            )
        })
        .collect();
    normalized_figure_report(
        "fig13",
        &titles,
        |part, kind, scheme| {
            let mut rc = RunConfig::new(scheme, kind);
            rc.txns = n;
            rc.req_bytes = REQUEST_SIZES[part];
            rc
        },
        run_single,
        supermem::RunResult::mean_txn_latency,
    )
    .emit();
}
