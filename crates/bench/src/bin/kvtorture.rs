//! KV crash-torture figure (extension beyond the paper): the
//! recoverable KV store — checksummed WAL plus rotating validated
//! snapshots on the secure machine — crashed at **every** write-queue
//! append it performs, crossed with every media fault class, recovered,
//! and differentially judged against the in-DRAM oracle of
//! acknowledged operations.
//!
//! Reading the tables:
//!
//! * **recovered-committed** — every operation issued before the crash
//!   survived (the in-flight one happened to reach the media).
//! * **lost-unacked-tail** — acknowledged operations all survived; only
//!   the never-acknowledged in-flight tail is gone. This is the WAL
//!   contract working as designed, not a failure.
//! * **detected** — the recovered state is degraded but *honestly* so:
//!   a typed `RecoveryError`, damage visible in the recovery report
//!   (rejected snapshots, skipped records), or a hardware signal (ECC
//!   detection, poisoned read, dirty-shutdown latch).
//! * **silent** — acknowledged data wrong with no signal. The whole
//!   figure exists to show this column is zero everywhere.
//!
//! Every cell is deterministic in the seed set: re-running this binary
//! reproduces the table byte for byte, at any `SUPERMEM_THREADS` or
//! `SUPERMEM_RUN_THREADS`.

use supermem::metrics::TextTable;
use supermem::nvm::FaultClass;
use supermem_bench::Report;
use supermem_kv::torture::KV_TORTURE_SCHEMES;
use supermem_kv::{kv_crash_points, kv_run_torture, KvClassification, KvTortureConfig};

fn main() {
    let cfg = KvTortureConfig::default();
    let report = kv_run_torture(&cfg);

    let mut by_scheme = TextTable::new(
        [
            "scheme",
            "cases",
            "recovered-committed",
            "lost-unacked-tail",
            "detected",
            "silent",
            "verdict",
        ]
        .map(str::to_owned)
        .to_vec(),
    );
    for s in report.by_scheme() {
        by_scheme.row(vec![
            s.scheme.name().to_owned(),
            s.cases.to_string(),
            s.committed.to_string(),
            s.lost_tail.to_string(),
            s.detected.to_string(),
            s.silent.to_string(),
            s.verdict().to_owned(),
        ]);
    }

    let mut by_class = TextTable::new(
        [
            "fault",
            "scheme",
            "cases",
            "recovered-committed",
            "lost-unacked-tail",
            "detected",
            "silent",
        ]
        .map(str::to_owned)
        .to_vec(),
    );
    for class in cfg.classes.iter().copied() {
        for scheme in KV_TORTURE_SCHEMES {
            let cell = |c| report.count_cell(scheme, class, c);
            let cases = cell(KvClassification::RecoveredCommitted)
                + cell(KvClassification::LostUnackedTail)
                + cell(KvClassification::Detected)
                + cell(KvClassification::Silent);
            by_class.row(vec![
                class
                    .map_or("none (crash only)", FaultClass::name)
                    .to_owned(),
                scheme.name().to_owned(),
                cases.to_string(),
                cell(KvClassification::RecoveredCommitted).to_string(),
                cell(KvClassification::LostUnackedTail).to_string(),
                cell(KvClassification::Detected).to_string(),
                cell(KvClassification::Silent).to_string(),
            ]);
        }
    }

    let points: Vec<String> = cfg
        .seeds
        .iter()
        .map(|&seed| {
            format!(
                "seed {seed}: {}",
                kv_crash_points(KV_TORTURE_SCHEMES[0], 1, seed, cfg.ops)
            )
        })
        .collect();

    let mut rep = Report::new("kvtorture");
    rep.section(
        "KV store under differential crash torture, per scheme (crash point x fault class x seed)",
        by_scheme,
    );
    rep.section(
        "Per fault class: how each crash landed (SuperMem and the write-through baseline)",
        by_class,
    );
    rep.footnote(&format!(
        "{} injections: every write-queue append of a {}-op WAL+snapshot workload ({} keys, light \
         checkpoint every {} mutations, one epoch rotation) is a crash point; crash points per \
         dry run ({}); {} fault classes + crash-only; seeds {:?}",
        report.total(),
        cfg.ops,
        supermem_kv::torture::KV_TORTURE_KEYSPACE,
        supermem_kv::torture::KV_TORTURE_SNAPSHOT_EVERY,
        points.join(", "),
        cfg.classes.len() - 1,
        cfg.seeds,
    ));
    rep.footnote(
        "(silent = acknowledged data wrong with no typed error, no damage in the recovery \
         report, and no hardware signal; the campaign's pass criterion is zero)",
    );
    rep.emit();

    assert!(
        report.silent().is_empty(),
        "silent corruption in the committed figure campaign"
    );
}
