//! NVM endurance ablation (paper §3.4.1 context).
//!
//! PCM cells survive 10^7–10^9 writes, so DIMM lifetime is bounded by
//! the *hottest* line. In an encrypted NVM the counter lines are that
//! hotspot: every data write anywhere in a 4 KB page rewrites the same
//! 64 B counter line. This binary measures the hottest counter line's
//! wear per scheme — CWC's merging protects the cells directly, not
//! just the write queue.

use supermem::metrics::TextTable;
use supermem::workloads::spec::ALL_KINDS;
use supermem::{run_single, RunConfig, Scheme};
use supermem_bench::txns;

fn main() {
    let n = txns();
    let mut table = TextTable::new(vec![
        "workload".into(),
        "scheme".into(),
        "hottest ctr line".into(),
        "hottest data line".into(),
        "ctr writes total".into(),
        "ctr wear vs WT".into(),
    ]);
    for kind in ALL_KINDS {
        let mut wt_max = None;
        for (scheme, label) in [
            (Scheme::WriteThrough, "WT"),
            (Scheme::SuperMem, "SuperMem"),
            (Scheme::WriteBackIdeal, "WB"),
        ] {
            let mut rc = RunConfig::new(scheme, kind);
            rc.txns = n;
            rc.req_bytes = 1024;
            let r = run_single(&rc);
            let max_ctr = r.wear.max_counter_wear;
            let base = *wt_max.get_or_insert(max_ctr);
            table.row(vec![
                kind.name().into(),
                label.into(),
                max_ctr.to_string(),
                r.wear.max_data_wear.to_string(),
                r.wear.total_counter_writes.to_string(),
                format!("{:.2}", max_ctr as f64 / base.max(1) as f64),
            ]);
        }
    }
    println!("Counter-line endurance by scheme (1 KB transactions)");
    println!("{}", table.render());
    println!("The hottest counter line bounds DIMM lifetime; CWC merges pending");
    println!("counter writes so far fewer ever reach the cells (paper §3.4).");
    println!("(Start-Gap wear leveling — Config::wear_psi — additionally rotates");
    println!("hot lines across physical slots; at device scale one rotation takes");
    println!("billions of writes, so its effect shows in the unit tests, not here.)");
}
