//! NVM endurance ablation (paper §3.4.1 context).
//!
//! PCM cells survive 10^7–10^9 writes, so DIMM lifetime is bounded by
//! the *hottest* line. In an encrypted NVM the counter lines are that
//! hotspot: every data write anywhere in a 4 KB page rewrites the same
//! 64 B counter line. This binary measures the hottest counter line's
//! wear per scheme — CWC's merging protects the cells directly, not
//! just the write queue.

use supermem::metrics::TextTable;
use supermem::workloads::spec::ALL_KINDS;
use supermem::{run_batch, RunConfig, Scheme};
use supermem_bench::{txns, Report};

const SCHEMES: [(Scheme, &str); 3] = [
    (Scheme::WriteThrough, "WT"),
    (Scheme::SuperMem, "SuperMem"),
    (Scheme::WriteBackIdeal, "WB"),
];

fn main() {
    let n = txns();
    let mut jobs = Vec::new();
    for kind in ALL_KINDS {
        for (scheme, _) in SCHEMES {
            let mut rc = RunConfig::new(scheme, kind);
            rc.txns = n;
            rc.req_bytes = 1024;
            jobs.push(rc);
        }
    }
    let results = run_batch(&jobs);

    let mut table = TextTable::new(vec![
        "workload".into(),
        "scheme".into(),
        "hottest ctr line".into(),
        "hottest data line".into(),
        "ctr writes total".into(),
        "ctr wear vs WT".into(),
    ]);
    for (kind, row) in ALL_KINDS.iter().zip(results.chunks(SCHEMES.len())) {
        let mut wt_max = None;
        for ((_, label), r) in SCHEMES.iter().zip(row) {
            let max_ctr = r.wear.max_counter_wear;
            let base = *wt_max.get_or_insert(max_ctr);
            table.row(vec![
                kind.name().into(),
                (*label).into(),
                max_ctr.to_string(),
                r.wear.max_data_wear.to_string(),
                r.wear.total_counter_writes.to_string(),
                format!("{:.2}", max_ctr as f64 / base.max(1) as f64),
            ]);
        }
    }
    let mut rep = Report::new("endurance");
    rep.section(
        "Counter-line endurance by scheme (1 KB transactions)",
        table,
    );
    rep.footnote("The hottest counter line bounds DIMM lifetime; CWC merges pending");
    rep.footnote("counter writes so far fewer ever reach the cells (paper §3.4).");
    rep.footnote("(Start-Gap wear leveling — Config::wear_psi — additionally rotates");
    rep.footnote("hot lines across physical slots; at device scale one rotation takes");
    rep.footnote("billions of writes, so its effect shows in the unit tests, not here.)");
    rep.emit();
}
