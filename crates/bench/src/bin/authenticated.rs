//! Authentication overhead: SuperMem with the Bonsai Merkle Tree wired
//! into the counter-fetch path (the §2.2.1-footnote defense, here made
//! measurable).
//!
//! Verification runs only on counter-cache *misses* (hits are on-chip
//! and already trusted), so the overhead tracks the miss rate: near
//! zero with the 256 KB cache, visible with a deliberately tiny one.

use supermem::metrics::TextTable;
use supermem::workloads::spec::ALL_KINDS;
use supermem::{run_batch, RunConfig, Scheme};
use supermem_bench::{txns, Report};

const CC_SIZES: [(u64, &str); 2] = [(256 << 10, "256K"), (1 << 10, "1K")];

fn main() {
    let n = txns();
    let mut jobs = Vec::new();
    for kind in ALL_KINDS {
        for (cc, _) in CC_SIZES {
            for integrity in [false, true] {
                let mut rc = RunConfig::new(Scheme::SuperMem, kind);
                rc.txns = n;
                rc.req_bytes = 1024;
                rc.counter_cache_bytes = cc;
                rc.integrity_tree = integrity;
                jobs.push(rc);
            }
        }
    }
    let results = run_batch(&jobs);

    let mut t = TextTable::new(vec![
        "workload".into(),
        "cc size".into(),
        "plain lat".into(),
        "auth lat".into(),
        "overhead".into(),
        "verifications".into(),
    ]);
    for (i, pair) in results.chunks(2).enumerate() {
        let kind = ALL_KINDS[i / CC_SIZES.len()];
        let (_, label) = CC_SIZES[i % CC_SIZES.len()];
        let (plain, auth) = (&pair[0], &pair[1]);
        t.row(vec![
            kind.name().into(),
            label.into(),
            format!("{:.0}", plain.mean_txn_latency()),
            format!("{:.0}", auth.mean_txn_latency()),
            format!(
                "{:+.1}%",
                (auth.mean_txn_latency() / plain.mean_txn_latency() - 1.0) * 100.0
            ),
            auth.stats.integrity_verifications.to_string(),
        ]);
    }
    let mut rep = Report::new("authenticated");
    rep.section(
        "SuperMem with counter-region authentication (Bonsai Merkle Tree)",
        t,
    );
    rep.footnote("Verification costs hash-latency x tree-height per counter-cache miss;");
    rep.footnote("with the paper's 256 KB counter cache the overhead is negligible.");
    rep.emit();
}
