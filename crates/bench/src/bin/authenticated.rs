//! Authentication overhead: SuperMem with the Bonsai Merkle Tree wired
//! into the counter-fetch path (the §2.2.1-footnote defense, here made
//! measurable).
//!
//! Verification runs only on counter-cache *misses* (hits are on-chip
//! and already trusted), so the overhead tracks the miss rate: near
//! zero with the 256 KB cache, visible with a deliberately tiny one.

use supermem::metrics::TextTable;
use supermem::workloads::spec::ALL_KINDS;
use supermem::{run_single, RunConfig, Scheme};
use supermem_bench::txns;

fn main() {
    let n = txns();
    let mut t = TextTable::new(vec![
        "workload".into(),
        "cc size".into(),
        "plain lat".into(),
        "auth lat".into(),
        "overhead".into(),
        "verifications".into(),
    ]);
    for kind in ALL_KINDS {
        for (cc, label) in [(256u64 << 10, "256K"), (1 << 10, "1K")] {
            let run = |integrity: bool| {
                let mut rc = RunConfig::new(Scheme::SuperMem, kind);
                rc.txns = n;
                rc.req_bytes = 1024;
                rc.counter_cache_bytes = cc;
                rc.integrity_tree = integrity;
                run_single(&rc)
            };
            let plain = run(false);
            let auth = run(true);
            t.row(vec![
                kind.name().into(),
                label.into(),
                format!("{:.0}", plain.mean_txn_latency()),
                format!("{:.0}", auth.mean_txn_latency()),
                format!(
                    "{:+.1}%",
                    (auth.mean_txn_latency() / plain.mean_txn_latency() - 1.0) * 100.0
                ),
                auth.stats.integrity_verifications.to_string(),
            ]);
        }
    }
    println!("SuperMem with counter-region authentication (Bonsai Merkle Tree)");
    println!("{}", t.render());
    println!("Verification costs hash-latency x tree-height per counter-cache miss;");
    println!("with the paper's 256 KB counter cache the overhead is negligible.");
}
