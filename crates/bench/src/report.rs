//! Figure output: one [`Report`] per binary, rendered as the aligned
//! text tables the committed `results/*.txt` files were generated from,
//! or as machine-readable JSON when the binary is invoked with
//! `--json`.
//!
//! The text rendering is byte-identical to the historical per-table
//! `println!` sequence, so regenerated figures diff clean against the
//! committed outputs.

use supermem::metrics::TextTable;

/// True when the process was invoked with a `--json` argument.
pub fn json_requested() -> bool {
    std::env::args().skip(1).any(|a| a == "--json")
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a list of strings as a JSON array of string literals.
pub fn json_string_array(items: &[String]) -> String {
    let quoted: Vec<String> = items
        .iter()
        .map(|s| format!("\"{}\"", json_escape(s)))
        .collect();
    format!("[{}]", quoted.join(","))
}

/// One titled table plus its explanatory footnote lines.
struct Section {
    /// Title lines printed above the table.
    titles: Vec<String>,
    table: TextTable,
    /// Commentary lines printed below the table.
    footnotes: Vec<String>,
}

/// A figure binary's full output: named sections in print order.
///
/// ```
/// use supermem::metrics::TextTable;
/// use supermem_bench::Report;
///
/// let mut t = TextTable::new(vec!["workload".into(), "WT".into()]);
/// t.row(vec!["array".into(), "1.92".into()]);
/// let mut rep = Report::new("demo");
/// rep.section("Demo table", t);
/// assert!(rep.render_text().starts_with("Demo table\n"));
/// assert!(rep.render_json().contains("\"name\":\"demo\""));
/// ```
pub struct Report {
    name: String,
    sections: Vec<Section>,
}

impl Report {
    /// Creates an empty report for the named figure binary.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            sections: Vec::new(),
        }
    }

    /// Appends a titled table. Embedded `\n` in `title` produces
    /// multiple title lines.
    pub fn section(&mut self, title: &str, table: TextTable) -> &mut Self {
        self.sections.push(Section {
            titles: title.split('\n').map(str::to_owned).collect(),
            table,
            footnotes: Vec::new(),
        });
        self
    }

    /// Appends a commentary line under the most recent section.
    ///
    /// # Panics
    ///
    /// Panics if no section has been added yet.
    pub fn footnote(&mut self, line: &str) -> &mut Self {
        self.sections
            .last_mut()
            .expect("footnote requires a section")
            .footnotes
            .push(line.to_owned());
        self
    }

    /// The historical text output: per section, title line(s), the
    /// rendered table followed by a blank line, then footnote lines.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for s in &self.sections {
            for t in &s.titles {
                out.push_str(t);
                out.push('\n');
            }
            out.push_str(&s.table.render());
            out.push('\n');
            for f in &s.footnotes {
                out.push_str(f);
                out.push('\n');
            }
        }
        out
    }

    /// Machine-readable rendering: the same titles, headers, and cell
    /// strings as the text tables, one JSON document per report.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{{\"name\":\"{}\",", json_escape(&self.name)));
        out.push_str("\"sections\":[");
        for (i, s) in self.sections.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"title\":\"{}\",",
                json_escape(&s.titles.join("\n"))
            ));
            out.push_str(&format!(
                "\"headers\":{},",
                json_string_array(s.table.headers())
            ));
            out.push_str("\"rows\":[");
            for (j, row) in s.table.rows().iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&json_string_array(row));
            }
            out.push_str("],");
            out.push_str(&format!("\"notes\":{}}}", json_string_array(&s.footnotes)));
        }
        out.push_str("]}");
        out
    }

    /// Prints the report: JSON when `--json` was passed, text otherwise.
    pub fn emit(&self) {
        if json_requested() {
            println!("{}", self.render_json());
        } else {
            print!("{}", self.render_text());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_table() -> TextTable {
        let mut t = TextTable::new(vec!["workload".into(), "WT".into()]);
        t.row(vec!["array".into(), "1.92".into()]);
        t
    }

    #[test]
    fn text_matches_historical_println_sequence() {
        let table = demo_table();
        let mut rep = Report::new("demo");
        rep.section("Title A\nTitle B", table.clone());
        rep.footnote("note 1");
        // What the binaries used to do by hand:
        let expected = format!("Title A\nTitle B\n{}\nnote 1\n", table.render());
        assert_eq!(rep.render_text(), expected);
    }

    #[test]
    fn json_contains_all_cells_and_escapes() {
        let mut t = TextTable::new(vec!["k\"ey".into()]);
        t.row(vec!["a\\b".into()]);
        let mut rep = Report::new("demo");
        rep.section("T", t);
        let json = rep.render_json();
        assert!(json.contains("\"k\\\"ey\""));
        assert!(json.contains("\"a\\\\b\""));
        assert!(json.starts_with("{\"name\":\"demo\""));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn escape_handles_control_chars() {
        assert_eq!(json_escape("a\nb\t\u{1}"), "a\\nb\\t\\u0001");
    }
}
