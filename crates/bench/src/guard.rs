//! Hot-path regression guard support: extracting reference timings
//! from the committed `results/BENCH_sweep.json` and comparing fresh
//! measurements against them.
//!
//! The `benchguard` binary re-runs the memory-controller micro
//! benchmarks (observers disabled — the default) and fails when any of
//! them exceeds its committed `after_ns` reference by more than
//! `SUPERMEM_BENCH_TOLERANCE` (a multiplier, default 4.0). The generous
//! default tolerates noisy shared CI hosts while still catching gross
//! hot-path regressions — e.g. an always-on probe layer, an accidental
//! allocation per flush.

/// Extracts `"name": { ... "after_ns": <value> ... }` from the
/// committed benchmark JSON without a JSON parser dependency. Returns
/// `None` when the entry or its `after_ns` field is missing.
pub fn extract_after_ns(json: &str, name: &str) -> Option<f64> {
    let key = format!("\"{name}\"");
    let start = json.find(&key)? + key.len();
    let obj = &json[start..];
    // The entry's object ends at the first closing brace after the key.
    let end = obj.find('}')?;
    let obj = &obj[..end];
    let field = obj.find("\"after_ns\"")? + "\"after_ns\"".len();
    let rest = obj[field..].trim_start().strip_prefix(':')?.trim_start();
    let num: String = rest
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

/// One guard check's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct GuardCheck {
    /// Benchmark name (matches `results/BENCH_sweep.json` keys).
    pub name: String,
    /// Committed reference ns/iter.
    pub reference_ns: f64,
    /// Freshly measured ns/iter.
    pub measured_ns: f64,
    /// The allowed ceiling (`reference_ns * tolerance`).
    pub limit_ns: f64,
}

impl GuardCheck {
    /// Whether the fresh measurement is within the allowed ceiling.
    pub fn passed(&self) -> bool {
        self.measured_ns <= self.limit_ns
    }
}

/// Compares measurements against references under a multiplier.
pub fn check(name: &str, reference_ns: f64, measured_ns: f64, tolerance: f64) -> GuardCheck {
    GuardCheck {
        name: name.to_owned(),
        reference_ns,
        measured_ns,
        limit_ns: reference_ns * tolerance,
    }
}

/// Parses a `SUPERMEM_BENCH_TOLERANCE` value. `None` (variable unset)
/// yields the default 4.0; a set-but-invalid value is an error rather
/// than a silent fallback — a typo like `4,5` or `4x` must not quietly
/// re-enable the default and mask a tightened (or loosened) guard.
///
/// # Errors
///
/// Returns a message naming the bad value when it does not parse as a
/// finite number greater than zero.
pub fn parse_tolerance(raw: Option<&str>) -> Result<f64, String> {
    let Some(raw) = raw else {
        return Ok(4.0);
    };
    match raw.trim().parse::<f64>() {
        Ok(v) if v > 0.0 && v.is_finite() => Ok(v),
        Ok(v) => Err(format!(
            "SUPERMEM_BENCH_TOLERANCE must be a finite multiplier > 0, got `{v}`"
        )),
        Err(_) => Err(format!("SUPERMEM_BENCH_TOLERANCE is not a number: `{raw}`")),
    }
}

/// The guard tolerance multiplier from `SUPERMEM_BENCH_TOLERANCE`
/// (default 4.0; values must be positive and finite).
///
/// # Errors
///
/// Propagates [`parse_tolerance`] errors when the variable is set to
/// something unusable.
pub fn tolerance() -> Result<f64, String> {
    parse_tolerance(std::env::var("SUPERMEM_BENCH_TOLERANCE").ok().as_deref())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
      "microbench": {
        "flush_line/Unsec": { "before_ns": 2294.3, "after_ns": 646.7, "speedup": 3.55 },
        "read_line/SuperMem": { "before_ns": 878.7, "after_ns": 318.5, "speedup": 2.76 }
      }
    }"#;

    #[test]
    fn extracts_after_ns_per_entry() {
        assert_eq!(extract_after_ns(SAMPLE, "flush_line/Unsec"), Some(646.7));
        assert_eq!(extract_after_ns(SAMPLE, "read_line/SuperMem"), Some(318.5));
        assert_eq!(extract_after_ns(SAMPLE, "no_such_bench"), None);
    }

    #[test]
    fn missing_field_is_none() {
        assert_eq!(extract_after_ns(r#"{"x": {"before_ns": 1}}"#, "x"), None);
    }

    #[test]
    #[allow(clippy::float_cmp)] // exact arithmetic on small integers
    fn check_applies_tolerance() {
        let c = check("b", 100.0, 350.0, 4.0);
        assert!(c.passed());
        let c = check("b", 100.0, 450.0, 4.0);
        assert!(!c.passed());
        assert_eq!(c.limit_ns, 400.0);
    }

    #[test]
    #[allow(clippy::float_cmp)] // exact arithmetic on small integers
    fn tolerance_unset_defaults() {
        assert_eq!(parse_tolerance(None), Ok(4.0));
        assert_eq!(parse_tolerance(Some("2.5")), Ok(2.5));
        assert_eq!(parse_tolerance(Some(" 8 ")), Ok(8.0));
    }

    #[test]
    fn tolerance_garbage_is_an_error_not_the_default() {
        // Regression: these used to silently fall back to 4.0.
        for bad in ["4x", "4,5", "", "fast", "NaN", "inf", "0", "-1"] {
            let r = parse_tolerance(Some(bad));
            assert!(r.is_err(), "`{bad}` must be rejected, got {r:?}");
        }
    }
}
