//! Minimal in-tree micro-benchmark harness.
//!
//! The workspace builds fully offline, so the `[[bench]]` targets
//! cannot depend on an external harness crate; this module supplies the
//! small subset actually needed: per-benchmark calibration (pick an
//! iteration count that makes one sample long enough to time), a few
//! repeated samples, and the median ns/iteration.
//!
//! Tuning (environment):
//! * `SUPERMEM_BENCH_MS` — target milliseconds per sample (default 5).
//! * `SUPERMEM_BENCH_SAMPLES` — samples per benchmark (default 9).
//!
//! Output honors `--json` like the figure binaries.

use std::hint::black_box;
use std::time::Instant;

use supermem::metrics::TextTable;

use crate::report::{json_escape, json_requested};

/// One benchmark's measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Median nanoseconds per iteration across samples.
    pub ns_per_iter: f64,
    /// Iterations per timed sample (from calibration).
    pub iters_per_sample: u64,
    /// Number of timed samples.
    pub samples: usize,
}

/// Collects and reports a group of benchmarks.
pub struct Harness {
    group: String,
    sample_ms: f64,
    samples: usize,
    results: Vec<BenchResult>,
}

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|v: &f64| *v > 0.0)
        .unwrap_or(default)
}

impl Harness {
    /// Creates a harness for the named benchmark group.
    pub fn new(group: &str) -> Self {
        Self {
            group: group.to_owned(),
            sample_ms: env_f64("SUPERMEM_BENCH_MS", 5.0),
            samples: env_f64("SUPERMEM_BENCH_SAMPLES", 9.0) as usize,
            results: Vec::new(),
        }
    }

    /// Times `f`, recording the median ns/iteration.
    ///
    /// Calibration doubles the iteration count until one batch runs at
    /// least `SUPERMEM_BENCH_MS` milliseconds (this also warms caches),
    /// then times `SUPERMEM_BENCH_SAMPLES` batches at that count.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        let target_s = self.sample_ms / 1e3;
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed().as_secs_f64();
            if elapsed >= target_s || iters >= 1 << 32 {
                break;
            }
            // Jump close to the target once we have a usable estimate.
            iters = if elapsed > 1e-4 {
                (iters as f64 * (target_s / elapsed) * 1.2).ceil() as u64
            } else {
                iters * 16
            }
            .max(iters + 1);
        }
        let mut per_iter: Vec<f64> = (0..self.samples.max(1))
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                start.elapsed().as_secs_f64() * 1e9 / iters as f64
            })
            .collect();
        per_iter.sort_by(f64::total_cmp);
        self.results.push(BenchResult {
            name: name.to_owned(),
            ns_per_iter: per_iter[per_iter.len() / 2],
            iters_per_sample: iters,
            samples: per_iter.len(),
        });
    }

    /// The measurements recorded so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Renders the results as an aligned text table.
    pub fn render_text(&self) -> String {
        let mut t = TextTable::new(vec![
            "benchmark".into(),
            "ns/iter".into(),
            "iters/sample".into(),
            "samples".into(),
        ]);
        for r in &self.results {
            t.row(vec![
                r.name.clone(),
                format!("{:.1}", r.ns_per_iter),
                r.iters_per_sample.to_string(),
                r.samples.to_string(),
            ]);
        }
        format!("benchmark group: {}\n{}", self.group, t.render())
    }

    /// Renders the results as one JSON document.
    pub fn render_json(&self) -> String {
        let entries: Vec<String> = self
            .results
            .iter()
            .map(|r| {
                format!(
                    "{{\"name\":\"{}\",\"ns_per_iter\":{:.3},\"iters_per_sample\":{},\"samples\":{}}}",
                    json_escape(&r.name),
                    r.ns_per_iter,
                    r.iters_per_sample,
                    r.samples
                )
            })
            .collect();
        format!(
            "{{\"group\":\"{}\",\"results\":[{}]}}",
            json_escape(&self.group),
            entries.join(",")
        )
    }

    /// Prints the results: JSON when `--json` was passed, else text.
    pub fn finish(&self) {
        if json_requested() {
            println!("{}", self.render_json());
        } else {
            println!("{}", self.render_text());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut h = Harness::new("test");
        h.sample_ms = 0.2;
        h.samples = 3;
        let mut x = 0u64;
        h.bench("add", || {
            x = x.wrapping_add(1);
            x
        });
        let r = &h.results()[0];
        assert!(r.ns_per_iter > 0.0);
        assert!(r.iters_per_sample >= 1);
        assert_eq!(r.samples, 3);
        assert!(h.render_text().contains("add"));
        assert!(h.render_json().contains("\"name\":\"add\""));
    }
}
