//! Shared plumbing for the figure-regeneration binaries.
//!
//! Every table and figure of the paper's evaluation has a binary here:
//!
//! | Binary | Reproduces | What it prints |
//! |--------|-----------|----------------|
//! | `fig13` | Figure 13 a/b/c | single-core txn latency, normalized to Unsec, for 256 B / 1 KB / 4 KB requests |
//! | `fig14` | Figure 14 a/b/c | multi-core (1/4/8 programs) txn latency, normalized to Unsec |
//! | `fig14t` | Figure 14 a/b/c | same sweep with event-granularity trace interleaving (faithful cores) |
//! | `fig15` | Figure 15 a/b/c | NVM write requests, normalized to Unsec |
//! | `fig16` | Figure 16 a/b | write-queue-size sweep: % counter writes coalesced; txn latency |
//! | `fig17` | Figure 17 a/b | counter-cache-size sweep: hit rate; normalized execution time |
//! | `table1` | Table 1 | per-stage crash recoverability, per scheme |
//! | `headline` | §5.1.1 | SuperMem vs WT speedup and gap to the ideal WB |
//! | `ablation` | Figure 8 / §3.3-3.4 | bank-placement × CWC grid and per-bank write distribution |
//! | `osiris` | §6 related work | Osiris runtime vs recovery-cost trade |
//! | `endurance` | §3.4.1 context | hottest counter-line wear per scheme |
//! | `tracebench` | methodology | trace-driven replay across schemes |
//! | `battery` | §1/§7 motivation | ADR/battery-domain bytes per scheme |
//! | `mixed` | §2.2.3 context | YCSB-style read/write-mix sweep |
//! | `sca` | §2.3/§6 related work | SCA's software contract vs SuperMem's transparency |
//! | `bitwrites` | §6 related work | bits flipped per write: CTR vs DEUCE vs plaintext |
//! | `authenticated` | §2.2.1 footnote | Merkle-tree verification overhead on SuperMem |
//! | `servesweep` | serving extension | open-loop tail latency on shared lock-free structures: baseline, re-encryption storm, degraded bank |
//!
//! Set `SUPERMEM_TXNS` to change the per-run transaction count (default
//! 200) — the figures' *shapes* are stable well below that.
#![warn(missing_docs)]

pub mod guard;
pub mod micro;
pub mod report;

pub use report::Report;

use supermem::metrics::TextTable;
use supermem::scheme::FIGURE_SCHEMES;
use supermem::workloads::spec::ALL_KINDS;
use supermem::workloads::WorkloadKind;
use supermem::{sweep, RunConfig, RunResult, Scheme};

/// Transactions per run, from `SUPERMEM_TXNS` (default 200).
pub fn txns() -> u64 {
    std::env::var("SUPERMEM_TXNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200)
}

/// The paper's three transaction request sizes.
pub const REQUEST_SIZES: [u64; 3] = [256, 1024, 4096];

/// Builds one normalized-metric table: workloads as rows, schemes as
/// columns, each cell `metric(scheme) / metric(first scheme)`.
pub fn normalized_text_table(scheme_names: &[&str], rows: &[(String, Vec<f64>)]) -> TextTable {
    let mut headers = vec!["workload".to_owned()];
    headers.extend(scheme_names.iter().map(|s| (*s).to_owned()));
    let mut table = TextTable::new(headers);
    for (name, values) in rows {
        let base = values[0];
        let mut cells = vec![name.clone()];
        cells.extend(values.iter().map(|v| format!("{:.2}", v / base)));
        table.row(cells);
    }
    table
}

/// [`normalized_text_table`] rendered under a title line.
pub fn normalized_table(title: &str, scheme_names: &[&str], rows: &[(String, Vec<f64>)]) -> String {
    format!(
        "{title}\n{}",
        normalized_text_table(scheme_names, rows).render()
    )
}

/// The workload × scheme grid behind Figures 13–15: one [`RunConfig`]
/// per (part, workload, scheme) cell, all cells executed through the
/// parallel sweep engine, one table per part with each workload row
/// normalized to the first scheme's metric.
///
/// Cells are reassembled **in input order**, so the rendered report is
/// byte-identical to the historical sequential nested loops.
pub fn normalized_figure_report<F, R, M>(
    name: &str,
    part_titles: &[String],
    make: F,
    runner: R,
    metric: M,
) -> Report
where
    F: Fn(usize, WorkloadKind, Scheme) -> RunConfig,
    R: Fn(&RunConfig) -> RunResult + Sync,
    M: Fn(&RunResult) -> f64,
{
    let mut jobs = Vec::new();
    for part in 0..part_titles.len() {
        for kind in ALL_KINDS {
            for scheme in FIGURE_SCHEMES {
                jobs.push(make(part, kind, scheme));
            }
        }
    }
    let results = sweep(&jobs, |rc| runner(rc));
    let scheme_names = FIGURE_SCHEMES.map(supermem::Scheme::name);
    let cells_per_part = ALL_KINDS.len() * FIGURE_SCHEMES.len();
    let mut rep = Report::new(name);
    for (part, chunk) in results.chunks(cells_per_part).enumerate() {
        let rows: Vec<(String, Vec<f64>)> = ALL_KINDS
            .iter()
            .zip(chunk.chunks(FIGURE_SCHEMES.len()))
            .map(|(kind, cells)| (kind.name().to_owned(), cells.iter().map(&metric).collect()))
            .collect();
        rep.section(
            &part_titles[part],
            normalized_text_table(&scheme_names, &rows),
        );
    }
    rep
}

/// Formats a run's headline numbers for debugging output.
pub fn summarize(r: &RunResult) -> String {
    format!(
        "{} on {} ({}B): {:.0} cyc/txn, {} NVM writes, {} coalesced",
        r.scheme,
        r.workload,
        r.req_bytes,
        r.mean_txn_latency(),
        r.nvm_writes(),
        r.stats.counter_writes_coalesced
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txns_default() {
        // Cannot assume the env var is unset under `cargo test`, so only
        // check that the value is sane.
        assert!(txns() > 0);
    }

    #[test]
    fn normalized_table_divides_by_first_column() {
        let rows = vec![("array".to_owned(), vec![2.0, 4.0, 1.0])];
        let s = normalized_table("T", &["Unsec", "WT", "half"], &rows);
        assert!(s.contains("1.00"));
        assert!(s.contains("2.00"));
        assert!(s.contains("0.50"));
    }
}
