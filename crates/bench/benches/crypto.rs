//! Microbenchmarks of the cryptographic substrate: AES block speed,
//! OTP generation, full-line counter-mode encryption, and split-counter
//! codec throughput. These bound how fast the whole-system simulation
//! can run (every simulated flush performs four real AES blocks).

use std::hint::black_box;
use supermem::crypto::aes::Aes128;
use supermem::crypto::{CounterLine, EncryptionEngine};
use supermem_bench::micro::Harness;

fn main() {
    let mut h = Harness::new("crypto");

    let aes = Aes128::new([7u8; 16]);
    let block = [0x5Au8; 16];
    h.bench("aes128_encrypt_block", || {
        aes.encrypt_block(black_box(block))
    });
    let ct = aes.encrypt_block(block);
    h.bench("aes128_decrypt_block", || aes.decrypt_block(black_box(ct)));

    let engine = EncryptionEngine::new([9u8; 16]);
    let line = [0xC3u8; 64];
    h.bench("otp_64B", || engine.otp(black_box(0x4000), 5, 17));
    h.bench("encrypt_line_64B", || {
        engine.encrypt_line(black_box(&line), 0x4000, 5, 17)
    });

    let mut ctr = CounterLine::new();
    for i in 0..64 {
        for _ in 0..(i % 50) {
            ctr.increment(i);
        }
    }
    h.bench("counterline_encode", || ctr.encode());
    let bytes = ctr.encode();
    h.bench("counterline_decode", || {
        CounterLine::decode(black_box(&bytes))
    });

    h.finish();
}
