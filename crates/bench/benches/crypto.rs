//! Microbenchmarks of the cryptographic substrate: AES block speed,
//! OTP generation, full-line counter-mode encryption, and split-counter
//! codec throughput. These bound how fast the whole-system simulation
//! can run (every simulated flush performs four real AES blocks).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use supermem::crypto::aes::Aes128;
use supermem::crypto::{CounterLine, EncryptionEngine};

fn bench_aes_block(c: &mut Criterion) {
    let aes = Aes128::new([7u8; 16]);
    let block = [0x5Au8; 16];
    c.bench_function("aes128_encrypt_block", |b| {
        b.iter(|| black_box(aes.encrypt_block(black_box(block))))
    });
    c.bench_function("aes128_decrypt_block", |b| {
        let ct = aes.encrypt_block(block);
        b.iter(|| black_box(aes.decrypt_block(black_box(ct))))
    });
}

fn bench_otp_and_line(c: &mut Criterion) {
    let engine = EncryptionEngine::new([9u8; 16]);
    let line = [0xC3u8; 64];
    c.bench_function("otp_64B", |b| {
        b.iter(|| black_box(engine.otp(black_box(0x4000), 5, 17)))
    });
    c.bench_function("encrypt_line_64B", |b| {
        b.iter(|| black_box(engine.encrypt_line(black_box(&line), 0x4000, 5, 17)))
    });
}

fn bench_counter_codec(c: &mut Criterion) {
    let mut ctr = CounterLine::new();
    for i in 0..64 {
        for _ in 0..(i % 50) {
            ctr.increment(i);
        }
    }
    c.bench_function("counterline_encode", |b| b.iter(|| black_box(ctr.encode())));
    let bytes = ctr.encode();
    c.bench_function("counterline_decode", |b| {
        b.iter(|| black_box(CounterLine::decode(black_box(&bytes))))
    });
}

criterion_group!(benches, bench_aes_block, bench_otp_and_line, bench_counter_codec);
criterion_main!(benches);
