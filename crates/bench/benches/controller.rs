//! Microbenchmarks of the memory-controller write path: the cost of a
//! simulated flush under each scheme configuration and the effect of
//! CWC on the append path. Measures *simulator* (host) cost, which is
//! what limits experiment turnaround.

use std::hint::black_box;
use supermem::memctrl::MemoryController;
use supermem::nvm::addr::LineAddr;
use supermem::sim::Config;
use supermem::Scheme;
use supermem_bench::micro::Harness;

fn main() {
    let mut h = Harness::new("controller");

    for scheme in [Scheme::Unsec, Scheme::WriteThrough, Scheme::SuperMem] {
        let cfg = scheme.apply(Config::default());
        let mut mc = MemoryController::new(&cfg);
        let mut t = 0u64;
        let mut i = 0u64;
        h.bench(&format!("flush_line/{scheme}"), || {
            // Rotate over one page's lines: realistic CWC behavior.
            let line = LineAddr((i % 64) * 64);
            i += 1;
            t = mc.flush_line(black_box(line), [i as u8; 64], t);
            t
        });
    }

    {
        let cfg = Scheme::SuperMem.apply(Config::default());
        let mut mc = MemoryController::new(&cfg);
        let mut t = 0;
        for i in 0..64u64 {
            t = mc.flush_line(LineAddr(i * 64), [i as u8; 64], t);
        }
        t = mc.finish(t);
        let mut i = 0u64;
        h.bench("read_line/SuperMem", || {
            let line = LineAddr((i % 64) * 64);
            i += 1;
            let (data, done) = mc.read_line(black_box(line), t);
            t = done;
            data
        });
    }

    h.finish();
}
