//! Microbenchmarks of the memory-controller write path: the cost of a
//! simulated flush under each scheme configuration and the effect of
//! CWC on the append path. Measures *simulator* (host) cost, which is
//! what limits experiment turnaround.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use supermem::memctrl::MemoryController;
use supermem::nvm::addr::LineAddr;
use supermem::sim::Config;
use supermem::Scheme;

fn bench_flush_path(c: &mut Criterion) {
    for scheme in [Scheme::Unsec, Scheme::WriteThrough, Scheme::SuperMem] {
        let cfg = scheme.apply(Config::default());
        c.bench_function(&format!("flush_line/{scheme}"), |b| {
            let mut mc = MemoryController::new(&cfg);
            let mut t = 0u64;
            let mut i = 0u64;
            b.iter(|| {
                // Rotate over one page's lines: realistic CWC behavior.
                let line = LineAddr((i % 64) * 64);
                i += 1;
                t = mc.flush_line(black_box(line), [i as u8; 64], t);
                black_box(t)
            })
        });
    }
}

fn bench_read_path(c: &mut Criterion) {
    let cfg = Scheme::SuperMem.apply(Config::default());
    c.bench_function("read_line/SuperMem", |b| {
        let mut mc = MemoryController::new(&cfg);
        let mut t = 0;
        for i in 0..64u64 {
            t = mc.flush_line(LineAddr(i * 64), [i as u8; 64], t);
        }
        t = mc.finish(t);
        let mut i = 0u64;
        b.iter(|| {
            let line = LineAddr((i % 64) * 64);
            i += 1;
            let (data, done) = mc.read_line(black_box(line), t);
            t = done;
            black_box(data)
        })
    });
}

criterion_group!(benches, bench_flush_path, bench_read_path);
criterion_main!(benches);
