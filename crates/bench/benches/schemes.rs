//! End-to-end scheme benchmarks: one full workload run per scheme,
//! reporting host wall time. The *simulated* results (the paper's
//! figures) come from the `fig13`..`fig17` binaries; this bench tracks
//! the cost of producing them.

use std::hint::black_box;
use supermem::workloads::WorkloadKind;
use supermem::{run_single, RunConfig};
use supermem_bench::micro::Harness;

fn main() {
    let mut h = Harness::new("schemes");

    for scheme in supermem::scheme::FIGURE_SCHEMES {
        h.bench(&format!("run_single/queue/{}", scheme.name()), || {
            let mut rc = RunConfig::new(scheme, WorkloadKind::Queue);
            rc.txns = 50;
            rc.req_bytes = 1024;
            black_box(run_single(&rc))
        });
    }

    for kind in supermem::workloads::spec::ALL_KINDS {
        h.bench(&format!("run_single/supermem/{}", kind.name()), || {
            let mut rc = RunConfig::new(supermem::Scheme::SuperMem, kind);
            rc.txns = 50;
            rc.req_bytes = 1024;
            rc.array_footprint = 1 << 20;
            black_box(run_single(&rc))
        });
    }

    h.finish();
}
