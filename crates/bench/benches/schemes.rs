//! End-to-end scheme benchmarks: one full workload run per scheme,
//! reporting host wall time. The *simulated* results (the paper's
//! figures) come from the `fig13`..`fig17` binaries; this bench tracks
//! the cost of producing them.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use supermem::workloads::WorkloadKind;
use supermem::{run_single, RunConfig};

fn bench_schemes(c: &mut Criterion) {
    let mut group = c.benchmark_group("run_single/queue");
    group.sample_size(10);
    for scheme in supermem::scheme::FIGURE_SCHEMES {
        group.bench_function(scheme.name(), |b| {
            b.iter(|| {
                let mut rc = RunConfig::new(scheme, WorkloadKind::Queue);
                rc.txns = 50;
                rc.req_bytes = 1024;
                black_box(run_single(&rc))
            })
        });
    }
    group.finish();
}

fn bench_workloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("run_single/supermem");
    group.sample_size(10);
    for kind in supermem::workloads::spec::ALL_KINDS {
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                let mut rc = RunConfig::new(supermem::Scheme::SuperMem, kind);
                rc.txns = 50;
                rc.req_bytes = 1024;
                rc.array_footprint = 1 << 20;
                black_box(run_single(&rc))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schemes, bench_workloads);
criterion_main!(benches);
