//! Compact binary trace serialization.
//!
//! Format (all little-endian):
//!
//! ```text
//! +0  magic  u32  0x53_4D_54_52 ("SMTR")
//! +4  version u32 = 1
//! +8  count  u64  number of events
//! then per event: tag u8, followed by tag-specific fields:
//!   0 Read   { addr u64, len u32 }
//!   1 Write  { addr u64, len u32, bytes [len] }
//!   2 Clwb   { addr u64, len u64 }
//!   3 Sfence {}
//!   4 TxnBegin {}
//!   5 TxnEnd {}
//! ```

use crate::event::TraceEvent;

/// Format magic ("SMTR").
pub const MAGIC: u32 = 0x534D_5452;
/// Current format version.
pub const VERSION: u32 = 1;

/// Errors surfaced while decoding a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer does not start with the trace magic.
    BadMagic,
    /// The format version is unsupported.
    BadVersion(u32),
    /// The buffer ended inside an event.
    Truncated,
    /// An unknown event tag was encountered.
    BadTag(u8),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not a trace: bad magic"),
            CodecError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            CodecError::Truncated => write!(f, "trace truncated mid-event"),
            CodecError::BadTag(t) => write!(f, "unknown event tag {t}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Serializes a trace.
pub fn encode(events: &[TraceEvent]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + events.len() * 16);
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(events.len() as u64).to_le_bytes());
    for e in events {
        match e {
            TraceEvent::Read { addr, len } => {
                out.push(0);
                out.extend_from_slice(&addr.to_le_bytes());
                out.extend_from_slice(&len.to_le_bytes());
            }
            TraceEvent::Write { addr, bytes } => {
                out.push(1);
                out.extend_from_slice(&addr.to_le_bytes());
                out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                out.extend_from_slice(bytes);
            }
            TraceEvent::Clwb { addr, len } => {
                out.push(2);
                out.extend_from_slice(&addr.to_le_bytes());
                out.extend_from_slice(&len.to_le_bytes());
            }
            TraceEvent::Sfence => out.push(3),
            TraceEvent::TxnBegin => out.push(4),
            TraceEvent::TxnEnd => out.push(5),
        }
    }
    out
}

/// Deserializes a trace produced by [`encode`].
///
/// # Errors
///
/// Returns a [`CodecError`] describing the first structural problem.
pub fn decode(buf: &[u8]) -> Result<Vec<TraceEvent>, CodecError> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8], CodecError> {
        if buf.len() - *pos < n {
            return Err(CodecError::Truncated);
        }
        let s = &buf[*pos..*pos + n];
        *pos += n;
        Ok(s)
    };
    let rd_u32 = |pos: &mut usize| -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(take(pos, 4)?.try_into().unwrap()))
    };
    let rd_u64 = |pos: &mut usize| -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(take(pos, 8)?.try_into().unwrap()))
    };

    if rd_u32(&mut pos)? != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = rd_u32(&mut pos)?;
    if version != VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let count = rd_u64(&mut pos)? as usize;
    let mut events = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let tag = take(&mut pos, 1)?[0];
        let event = match tag {
            0 => TraceEvent::Read {
                addr: rd_u64(&mut pos)?,
                len: rd_u32(&mut pos)?,
            },
            1 => {
                let addr = rd_u64(&mut pos)?;
                let len = rd_u32(&mut pos)? as usize;
                TraceEvent::Write {
                    addr,
                    bytes: take(&mut pos, len)?.to_vec(),
                }
            }
            2 => TraceEvent::Clwb {
                addr: rd_u64(&mut pos)?,
                len: rd_u64(&mut pos)?,
            },
            3 => TraceEvent::Sfence,
            4 => TraceEvent::TxnBegin,
            5 => TraceEvent::TxnEnd,
            other => return Err(CodecError::BadTag(other)),
        };
        events.push(event);
    }
    if pos != buf.len() {
        return Err(CodecError::Truncated); // trailing garbage
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TraceEvent> {
        vec![
            TraceEvent::TxnBegin,
            TraceEvent::Write {
                addr: 0x1000,
                bytes: vec![1, 2, 3, 4, 5],
            },
            TraceEvent::Clwb {
                addr: 0x1000,
                len: 5,
            },
            TraceEvent::Sfence,
            TraceEvent::Read {
                addr: 0x1000,
                len: 5,
            },
            TraceEvent::TxnEnd,
        ]
    }

    #[test]
    fn roundtrip() {
        let t = sample();
        assert_eq!(decode(&encode(&t)).unwrap(), t);
    }

    #[test]
    fn empty_trace_roundtrips() {
        assert_eq!(decode(&encode(&[])).unwrap(), vec![]);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut buf = encode(&sample());
        buf[0] ^= 0xFF;
        assert_eq!(decode(&buf), Err(CodecError::BadMagic));
    }

    #[test]
    fn rejects_bad_version() {
        let mut buf = encode(&sample());
        buf[4] = 99;
        assert_eq!(decode(&buf), Err(CodecError::BadVersion(99)));
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let buf = encode(&sample());
        for cut in 1..buf.len() {
            assert!(
                decode(&buf[..cut]).is_err(),
                "decode accepted a truncation at {cut}"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut buf = encode(&sample());
        buf.push(0);
        assert!(decode(&buf).is_err());
    }

    #[test]
    fn rejects_unknown_tag() {
        let mut buf = encode(&[]);
        // Claim one event, then emit tag 9.
        buf[8..16].copy_from_slice(&1u64.to_le_bytes());
        buf.push(9);
        assert_eq!(decode(&buf), Err(CodecError::BadTag(9)));
    }
}

#[cfg(test)]
mod randomized {
    //! Deterministic randomized tests (seeded SplitMix64 stands in for
    //! proptest, which is unavailable in offline builds).
    use super::*;
    use supermem_sim::SplitMix64;

    fn random_event(rng: &mut SplitMix64) -> TraceEvent {
        match rng.next_below(6) {
            0 => TraceEvent::Read {
                addr: rng.next_u64(),
                len: rng.next_u64() as u32,
            },
            1 => {
                let mut bytes = vec![0u8; rng.next_below(100) as usize];
                rng.fill_bytes(&mut bytes);
                TraceEvent::Write {
                    addr: rng.next_u64(),
                    bytes,
                }
            }
            2 => TraceEvent::Clwb {
                addr: rng.next_u64(),
                len: rng.next_u64(),
            },
            3 => TraceEvent::Sfence,
            4 => TraceEvent::TxnBegin,
            _ => TraceEvent::TxnEnd,
        }
    }

    #[test]
    fn any_trace_roundtrips() {
        let mut rng = SplitMix64::new(0x7ACE);
        for _ in 0..64 {
            let events: Vec<TraceEvent> = (0..rng.next_below(200))
                .map(|_| random_event(&mut rng))
                .collect();
            assert_eq!(decode(&encode(&events)).unwrap(), events);
        }
    }
}
