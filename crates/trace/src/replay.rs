//! Trace replay.

use supermem_persist::PMem;

use crate::event::TraceEvent;

/// Replays a trace into `mem`, discarding read data. Marker events are
/// skipped. After replay, `mem` holds exactly the bytes the recorded
/// program produced.
pub fn replay<M: PMem>(events: &[TraceEvent], mem: &mut M) {
    let mut scratch = Vec::new();
    for e in events {
        match e {
            TraceEvent::Read { addr, len } => {
                scratch.resize(*len as usize, 0);
                mem.read(*addr, &mut scratch);
            }
            TraceEvent::Write { addr, bytes } => mem.write(*addr, bytes),
            TraceEvent::Clwb { addr, len } => mem.clwb(*addr, *len),
            TraceEvent::Sfence => mem.sfence(),
            TraceEvent::TxnBegin | TraceEvent::TxnEnd => {}
        }
    }
}

/// A replayed transaction's position within the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnSpan {
    /// Index of the `TxnBegin` marker.
    pub begin: usize,
    /// Index of the matching `TxnEnd` marker.
    pub end: usize,
}

/// Replays a trace into `mem`, invoking `observe` with each completed
/// [`TxnSpan`] immediately after its `TxnEnd` marker is reached. The
/// observer typically samples the target system's clock to compute
/// per-transaction latency under a different scheme than the trace was
/// recorded on.
///
/// Returns the spans. Unbalanced markers are tolerated: an unmatched
/// `TxnEnd` is ignored, an unmatched `TxnBegin` never completes.
pub fn replay_transactions<M: PMem>(
    events: &[TraceEvent],
    mem: &mut M,
    mut observe: impl FnMut(TxnSpan, &mut M),
) -> Vec<TxnSpan> {
    let mut spans = Vec::new();
    let mut open: Option<usize> = None;
    let mut scratch = Vec::new();
    for (i, e) in events.iter().enumerate() {
        match e {
            TraceEvent::Read { addr, len } => {
                scratch.resize(*len as usize, 0);
                mem.read(*addr, &mut scratch);
            }
            TraceEvent::Write { addr, bytes } => mem.write(*addr, bytes),
            TraceEvent::Clwb { addr, len } => mem.clwb(*addr, *len),
            TraceEvent::Sfence => mem.sfence(),
            TraceEvent::TxnBegin => open = Some(i),
            TraceEvent::TxnEnd => {
                if let Some(begin) = open.take() {
                    let span = TxnSpan { begin, end: i };
                    observe(span, mem);
                    spans.push(span);
                }
            }
        }
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceRecorder;
    use supermem_persist::VecMem;
    use supermem_sim::SplitMix64;

    #[test]
    fn replay_reproduces_final_contents() {
        // Record a pseudo-random op sequence, replay into a fresh
        // memory, and compare the exercised range byte for byte.
        let mut rng = SplitMix64::new(5);
        let mut original = VecMem::new();
        let trace = {
            let mut rec = TraceRecorder::new(&mut original);
            for _ in 0..200 {
                let addr = rng.next_below(4096);
                let len = 1 + rng.next_below(64) as usize;
                match rng.next_below(3) {
                    0 => {
                        let mut bytes = vec![0u8; len];
                        rng.fill_bytes(&mut bytes);
                        rec.write(addr, &bytes);
                    }
                    1 => {
                        let mut buf = vec![0u8; len];
                        rec.read(addr, &mut buf);
                    }
                    _ => {
                        rec.clwb(addr, len as u64);
                        rec.sfence();
                    }
                }
            }
            rec.into_trace()
        };
        let mut replayed = VecMem::new();
        replay(&trace, &mut replayed);
        let mut a = vec![0u8; 8192];
        let mut b = vec![0u8; 8192];
        original.read(0, &mut a);
        replayed.read(0, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn transaction_spans_are_reported_in_order() {
        let mut mem = VecMem::new();
        let trace = vec![
            TraceEvent::TxnBegin,
            TraceEvent::Write {
                addr: 0,
                bytes: vec![1],
            },
            TraceEvent::TxnEnd,
            TraceEvent::TxnBegin,
            TraceEvent::Sfence,
            TraceEvent::TxnEnd,
        ];
        let mut seen = Vec::new();
        let spans = replay_transactions(&trace, &mut mem, |s, _| seen.push(s));
        assert_eq!(spans.len(), 2);
        assert_eq!(spans, seen);
        assert_eq!(spans[0], TxnSpan { begin: 0, end: 2 });
        assert_eq!(spans[1], TxnSpan { begin: 3, end: 5 });
    }

    #[test]
    fn unbalanced_markers_are_tolerated() {
        let mut mem = VecMem::new();
        let trace = vec![
            TraceEvent::TxnEnd,   // stray end
            TraceEvent::TxnBegin, // never closed
        ];
        let spans = replay_transactions(&trace, &mut mem, |_, _| {});
        assert!(spans.is_empty());
    }
}
