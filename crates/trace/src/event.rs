//! Trace events.

/// One recorded memory operation.
///
/// Writes carry their payload so a replay reconstructs identical NVM
/// contents (and identical ciphertexts, given the same key); reads
/// carry only the length — the data returned at replay time comes from
/// the replayed memory itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A load of `len` bytes at `addr`.
    Read {
        /// Start address.
        addr: u64,
        /// Bytes read.
        len: u32,
    },
    /// A store of the contained bytes at `addr`.
    Write {
        /// Start address.
        addr: u64,
        /// The stored bytes.
        bytes: Vec<u8>,
    },
    /// A `clwb` covering `[addr, addr + len)`.
    Clwb {
        /// Start address.
        addr: u64,
        /// Range length.
        len: u64,
    },
    /// An `sfence`.
    Sfence,
    /// Start of a transaction (latency-measurement marker).
    TxnBegin,
    /// Commit completion of a transaction (latency-measurement marker).
    TxnEnd,
}

impl TraceEvent {
    /// True for the marker events that carry no memory semantics.
    pub fn is_marker(&self) -> bool {
        matches!(self, TraceEvent::TxnBegin | TraceEvent::TxnEnd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markers_are_markers() {
        assert!(TraceEvent::TxnBegin.is_marker());
        assert!(TraceEvent::TxnEnd.is_marker());
        assert!(!TraceEvent::Sfence.is_marker());
        assert!(!TraceEvent::Read { addr: 0, len: 1 }.is_marker());
    }
}
