//! Trace recording.

use supermem_persist::PMem;

use crate::event::TraceEvent;

/// A [`PMem`] adapter that records every operation while forwarding it
/// to the wrapped memory.
///
/// # Examples
///
/// ```
/// use supermem_persist::{PMem, VecMem};
/// use supermem_trace::{TraceEvent, TraceRecorder};
///
/// let mut inner = VecMem::new();
/// let mut rec = TraceRecorder::new(&mut inner);
/// rec.txn_begin();
/// rec.write_u64(0x40, 7);
/// rec.txn_end();
/// let trace = rec.into_trace();
/// assert_eq!(trace.first(), Some(&TraceEvent::TxnBegin));
/// ```
#[derive(Debug)]
pub struct TraceRecorder<'m, M: PMem> {
    inner: &'m mut M,
    events: Vec<TraceEvent>,
}

impl<'m, M: PMem> TraceRecorder<'m, M> {
    /// Wraps `inner`, recording into an empty trace.
    pub fn new(inner: &'m mut M) -> Self {
        Self {
            inner,
            events: Vec::new(),
        }
    }

    /// Marks the start of a transaction.
    pub fn txn_begin(&mut self) {
        self.events.push(TraceEvent::TxnBegin);
    }

    /// Marks the end (commit completion) of a transaction.
    pub fn txn_end(&mut self) {
        self.events.push(TraceEvent::TxnEnd);
    }

    /// Events recorded so far.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Finishes recording and returns the trace.
    pub fn into_trace(self) -> Vec<TraceEvent> {
        self.events
    }
}

impl<M: PMem> PMem for TraceRecorder<'_, M> {
    fn read(&mut self, addr: u64, buf: &mut [u8]) {
        self.events.push(TraceEvent::Read {
            addr,
            len: buf.len() as u32,
        });
        self.inner.read(addr, buf);
    }

    fn write(&mut self, addr: u64, bytes: &[u8]) {
        self.events.push(TraceEvent::Write {
            addr,
            bytes: bytes.to_vec(),
        });
        self.inner.write(addr, bytes);
    }

    fn clwb(&mut self, addr: u64, len: u64) {
        self.events.push(TraceEvent::Clwb { addr, len });
        self.inner.clwb(addr, len);
    }

    fn sfence(&mut self) {
        self.events.push(TraceEvent::Sfence);
        self.inner.sfence();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supermem_persist::VecMem;

    #[test]
    fn records_and_forwards() {
        let mut inner = VecMem::new();
        let mut rec = TraceRecorder::new(&mut inner);
        rec.write(0x10, &[9, 9]);
        rec.clwb(0x10, 2);
        rec.sfence();
        let mut buf = [0u8; 2];
        rec.read(0x10, &mut buf);
        assert_eq!(buf, [9, 9], "operations must pass through");
        let trace = rec.into_trace();
        assert_eq!(trace.len(), 4);
        assert_eq!(
            trace[0],
            TraceEvent::Write {
                addr: 0x10,
                bytes: vec![9, 9]
            }
        );
        assert_eq!(trace[3], TraceEvent::Read { addr: 0x10, len: 2 });
        // The inner memory saw everything too.
        let mut buf = [0u8; 2];
        inner.read(0x10, &mut buf);
        assert_eq!(buf, [9, 9]);
    }

    #[test]
    fn markers_interleave_with_ops() {
        let mut inner = VecMem::new();
        let mut rec = TraceRecorder::new(&mut inner);
        rec.txn_begin();
        rec.write(0, &[1]);
        rec.txn_end();
        let t = rec.into_trace();
        assert!(matches!(t[0], TraceEvent::TxnBegin));
        assert!(matches!(t[2], TraceEvent::TxnEnd));
    }
}
