//! Memory-trace recording and replay.
//!
//! Cycle-level architecture studies (gem5+NVMain included) are usually
//! *trace-driven*: capture a program's memory operations once, then
//! replay them through many machine configurations. This crate brings
//! that methodology to the SuperMem reproduction:
//!
//! * [`TraceRecorder`] wraps any [`supermem_persist::PMem`] and records every read, write,
//!   flush, and fence — plus transaction markers — while passing the
//!   operations through.
//! * [`codec`] serializes traces to a compact, versioned binary format.
//! * [`replay()`] feeds a trace into any other `PMem`, e.g. the timed
//!   `supermem::System` under a different scheme, reproducing exactly
//!   the same memory behavior without re-running the data structures.
//!
//! # Examples
//!
//! ```
//! use supermem_persist::{PMem, VecMem};
//! use supermem_trace::{replay, TraceEvent, TraceRecorder};
//!
//! // Record some activity.
//! let mut inner = VecMem::new();
//! let mut rec = TraceRecorder::new(&mut inner);
//! rec.write(0x100, &[1, 2, 3]);
//! rec.clwb(0x100, 3);
//! rec.sfence();
//! let trace = rec.into_trace();
//! assert_eq!(trace.len(), 3);
//!
//! // Replay it into a fresh memory: same final contents.
//! let mut other = VecMem::new();
//! replay(&trace, &mut other);
//! let mut buf = [0u8; 3];
//! other.read(0x100, &mut buf);
//! assert_eq!(buf, [1, 2, 3]);
//! ```
#![warn(missing_docs)]

pub mod codec;
pub mod event;
pub mod record;
pub mod replay;

pub use codec::{decode, encode, CodecError};
pub use event::TraceEvent;
pub use record::TraceRecorder;
pub use replay::{replay, replay_transactions, TxnSpan};
