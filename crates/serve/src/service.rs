//! Shared lock-free persistent data structures with crash-recoverable
//! linearization points.
//!
//! Three classic structures — a Treiber stack, a Michael-Scott queue,
//! and a bucketed chaining hash — are laid out in persistent memory and
//! served to N simulated cores concurrently. Every mutating operation
//! follows the memento-style descriptor protocol built on
//! [`SlotArray`]:
//!
//! 1. **announce** — the full operation record is persisted `PENDING`
//!    in the core's descriptor slot (one line, one persist);
//! 2. **prepare** — the new node is written and persisted *off to the
//!    side* (unreachable), capturing the expected value of the shared
//!    pointer;
//! 3. **attempt** — the shared pointer is re-read; if it still matches,
//!    the linearizing pointer store is persisted (the "CAS"); if not,
//!    the attempt fails and the operation retries against the new
//!    value;
//! 4. **complete** — the slot is persisted `DONE` with the result.
//!
//! A crash can land between any two of these persists. Recovery
//! ([`recover`]) scans the descriptor slots (checksummed; corruption is
//! *detected*, never guessed around) and walks the structure verifying
//! per-node checksums, so the torture harness can classify every crash
//! image as recovered-old, recovered-new, or detected.
//!
//! The simulator executes one core's phase at a time (simulated time is
//! arbitrated by the engine), so each phase is atomic — but phases of
//! different cores interleave freely, which is exactly the window where
//! real CAS loops race. The cache hierarchy's write-invalidate keeps a
//! failed attempt honest: the re-read always observes the winning
//! core's store via the shared L3.

use std::collections::HashSet;
use std::collections::VecDeque;

use supermem_persist::{Arena, PMem, SlotArray, SlotError, SlotRecord, SlotState, SlotView};

use crate::schedule::{DetachedSchedule, Directive, SchedPoint, Schedule};
use crate::traffic::{ReqKind, Request};

/// Slot-record op code for insert/push/enqueue.
pub const OP_UPDATE: u64 = 1;
/// Slot-record op code for pop/dequeue.
pub const OP_REMOVE: u64 = 2;

/// Node-line word offsets (64-byte nodes, all fields 8-byte words).
const NODE_NEXT: u64 = 0;
const NODE_KEY: u64 = 8;
const NODE_VAL: u64 = 16;
const NODE_SEQ: u64 = 24;
const NODE_CSUM: u64 = 32;

/// Which shared structure a service hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StructureKind {
    /// Treiber stack: push/pop CAS on the head pointer.
    Stack,
    /// Michael-Scott queue: enqueue links at the tail, dequeue swings
    /// the head; lagging tails are helped forward.
    Queue,
    /// Bucketed chaining hash: insert CAS on the bucket head (no
    /// remove; lookups walk the chain).
    Hash,
}

impl StructureKind {
    /// Every structure, in display order.
    pub const ALL: [StructureKind; 3] = [
        StructureKind::Stack,
        StructureKind::Queue,
        StructureKind::Hash,
    ];

    /// Stable display spelling.
    pub fn name(self) -> &'static str {
        match self {
            StructureKind::Stack => "stack",
            StructureKind::Queue => "queue",
            StructureKind::Hash => "hash",
        }
    }

    /// Parses the CLI spelling.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "stack" => Some(StructureKind::Stack),
            "queue" => Some(StructureKind::Queue),
            "hash" => Some(StructureKind::Hash),
            _ => None,
        }
    }
}

impl std::fmt::Display for StructureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The persistent-memory geometry of one service instance: everything
/// recovery needs to find the structure in a crash image.
#[derive(Debug, Clone, Copy)]
pub struct ServiceLayout {
    /// Hosted structure.
    pub kind: StructureKind,
    /// Shared pointer line (stack head / queue head).
    pub meta0: u64,
    /// Second shared pointer line (queue tail; unused otherwise).
    pub meta1: u64,
    /// Per-core descriptor slots.
    pub slots: SlotArray,
    /// First bucket word (hash only).
    pub buckets_base: u64,
    /// Bucket count (hash only; 0 otherwise).
    pub nbuckets: u64,
    /// Node arena span (node pointers must fall inside it).
    pub arena_base: u64,
    /// Exclusive end of the node arena.
    pub arena_end: u64,
}

impl ServiceLayout {
    /// Computes the layout for a service at `base` spanning
    /// `region_len` bytes, serving `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not line-aligned, `cores` is 0, or the
    /// region cannot hold the metadata plus at least one node line.
    pub fn new(
        kind: StructureKind,
        base: u64,
        region_len: u64,
        cores: usize,
        nbuckets: u64,
    ) -> Self {
        assert!(base.is_multiple_of(64), "service base must be line-aligned");
        assert!(cores > 0, "a service needs at least one core");
        let slots = SlotArray::new(base + 128, cores);
        let nbuckets = if kind == StructureKind::Hash {
            nbuckets
        } else {
            0
        };
        let buckets_base = slots.end();
        let buckets_bytes = (nbuckets * 8).div_ceil(64) * 64;
        let arena_base = buckets_base + buckets_bytes;
        let arena_end = base + region_len;
        assert!(
            arena_end >= arena_base + 64,
            "region too small: {region_len} B leaves no node space"
        );
        Self {
            kind,
            meta0: base,
            meta1: base + 64,
            slots,
            buckets_base,
            nbuckets,
            arena_base,
            arena_end,
        }
    }

    fn bucket_addr(&self, key: u64) -> u64 {
        self.buckets_base + (key % self.nbuckets) * 8
    }

    fn node_in_range(&self, addr: u64) -> bool {
        addr >= self.arena_base && addr + 64 <= self.arena_end && addr.is_multiple_of(64)
    }
}

/// Same avalanche mix as the descriptor slots: a torn mix of old and
/// new node words cannot re-checksum by accident.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn node_checksum(next: u64, key: u64, value: u64, seq: u64) -> u64 {
    let mut h = 0x10DE_CAFE_0B57_AC1Eu64;
    for w in [next, key, value, seq] {
        h = mix(h ^ w);
    }
    h
}

fn write_node<M: PMem>(mem: &mut M, addr: u64, next: u64, key: u64, value: u64, seq: u64) {
    mem.write_u64(addr + NODE_NEXT, next);
    mem.write_u64(addr + NODE_KEY, key);
    mem.write_u64(addr + NODE_VAL, value);
    mem.write_u64(addr + NODE_SEQ, seq);
    mem.write_u64(addr + NODE_CSUM, node_checksum(next, key, value, seq));
    mem.clwb(addr, 64);
    mem.sfence();
}

/// Persists one 8-byte shared-pointer store (the linearizing "CAS"
/// publication, or a tail fixup).
fn persist_ptr<M: PMem>(mem: &mut M, addr: u64, value: u64) {
    mem.write_u64(addr, value);
    mem.clwb(addr, 8);
    mem.sfence();
}

/// The linearizing pointer persist followed by the completion persist,
/// under the attached schedule's directive: `SkipPersist` leaves the
/// linearizing store volatile-only, `CompleteFirst` reorders the
/// completion persist ahead of it. Detached, this is exactly
/// `persist_ptr` + `slots.complete`.
fn linearize_and_complete<M: PMem, S: Schedule>(
    layout: &ServiceLayout,
    mem: &mut M,
    sched: &mut S,
    core: usize,
    ptr_addr: u64,
    ptr_value: u64,
    result: u64,
) {
    let dir = sched.at(core, SchedPoint::Linearize);
    if dir == Directive::CompleteFirst {
        layout.slots.complete(mem, core, result);
    }
    if dir == Directive::SkipPersist {
        mem.write_u64(ptr_addr, ptr_value);
    } else {
        persist_ptr(mem, ptr_addr, ptr_value); // linearization
    }
    sched.at(core, SchedPoint::Complete);
    if dir != Directive::CompleteFirst {
        layout.slots.complete(mem, core, result);
    }
}

/// What one [`Service::step`] call amounted to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepResult {
    /// The operation needs more steps (a failed CAS attempt, a helping
    /// step, or a pending tail fixup).
    InFlight,
    /// The operation completed. `result` is the looked-up / popped
    /// value (`None` for misses, empty removes, and updates).
    Done {
        /// Operation result value.
        result: Option<u64>,
    },
}

/// One core's in-flight operation.
#[derive(Debug, Clone, Copy)]
struct OpCtx {
    kind: ReqKind,
    key: u64,
    value: u64,
    phase: Phase,
    /// Allocated node (updates) or the node being unlinked (removes).
    node: u64,
    /// Expected shared-pointer value captured at prepare time.
    observed: u64,
    /// Result value stashed at prepare time (removes).
    result: u64,
    retries: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Announced (writes) or admitted (reads); nothing prepared yet.
    Announced,
    /// Node written / target captured; next step attempts the CAS.
    Prepared,
    /// Queue enqueue linearized; the tail fixup store remains.
    Fixup,
}

/// A concurrent persistent structure served to N cores, verified
/// against a volatile shadow model.
///
/// # Examples
///
/// ```
/// use supermem_persist::VecMem;
/// use supermem_serve::service::{Service, StepResult, StructureKind};
/// use supermem_serve::traffic::{ReqKind, Request};
///
/// let mut mem = VecMem::new();
/// let mut svc = Service::new(&mut mem, StructureKind::Stack, 0x1000, 1 << 16, 2, 0);
/// let req = Request { at: 0, kind: ReqKind::Update, key: 7, value: 99 , };
/// svc.start_op(&mut mem, 0, &req);
/// while svc.step(&mut mem, 0) == StepResult::InFlight {}
/// svc.verify(&mut mem).unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct Service {
    layout: ServiceLayout,
    arena: Arena,
    seqs: Vec<u64>,
    ctx: Vec<Option<OpCtx>>,
    shadow_stack: Vec<(u64, u64)>,
    shadow_queue: VecDeque<(u64, u64)>,
    shadow_hash: Vec<Vec<(u64, u64)>>,
    strict: bool,
    completed: u64,
    retries_total: u64,
}

impl Service {
    /// Initializes the structure in `[base, base + region_len)` for
    /// `cores` cores and persists the initial state (empty structure,
    /// idle descriptor slots).
    ///
    /// # Panics
    ///
    /// Panics on a degenerate layout (see [`ServiceLayout::new`]) or,
    /// for hashes, `nbuckets == 0`.
    pub fn new<M: PMem>(
        mem: &mut M,
        kind: StructureKind,
        base: u64,
        region_len: u64,
        cores: usize,
        nbuckets: u64,
    ) -> Self {
        assert!(
            kind != StructureKind::Hash || nbuckets > 0,
            "a hash service needs at least one bucket"
        );
        let layout = ServiceLayout::new(kind, base, region_len, cores, nbuckets);
        let mut arena = Arena::new(layout.arena_base, layout.arena_end - layout.arena_base);
        layout.slots.init(mem);
        match kind {
            StructureKind::Stack => {
                persist_ptr(mem, layout.meta0, 0);
            }
            StructureKind::Queue => {
                // The sentinel is a real (empty) node; head and tail
                // both start on it. ServiceLayout::new guarantees the
                // arena holds at least one line.
                let Ok(sentinel) = arena.alloc_lines(1) else {
                    unreachable!("layout reserves node space");
                };
                write_node(mem, sentinel, 0, 0, 0, 0);
                persist_ptr(mem, layout.meta0, sentinel);
                persist_ptr(mem, layout.meta1, sentinel);
            }
            StructureKind::Hash => {
                for b in 0..nbuckets {
                    mem.write_u64(layout.buckets_base + b * 8, 0);
                }
                let bytes = (nbuckets * 8).div_ceil(64) * 64;
                mem.clwb(layout.buckets_base, bytes);
                mem.sfence();
            }
        }
        Self {
            layout,
            arena,
            seqs: vec![0; cores],
            ctx: vec![None; cores],
            shadow_stack: Vec::new(),
            shadow_queue: VecDeque::new(),
            shadow_hash: vec![Vec::new(); nbuckets as usize],
            strict: true,
            completed: 0,
            retries_total: 0,
        }
    }

    /// The persistent geometry (recovery needs it).
    pub fn layout(&self) -> ServiceLayout {
        self.layout
    }

    /// Disables inline shadow checks (degraded-mode runs, where
    /// poisoned reads legitimately diverge from the shadow).
    pub fn set_strict(&mut self, strict: bool) {
        self.strict = strict;
    }

    /// Completed operations.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Failed CAS attempts plus helping steps across all cores.
    pub fn retries(&self) -> u64 {
        self.retries_total
    }

    /// `true` while `core` has an operation in flight.
    pub fn in_flight(&self, core: usize) -> bool {
        self.ctx[core].is_some()
    }

    /// Admits a request on `core`: mutating operations durably announce
    /// their descriptor; reads are admitted without one.
    ///
    /// # Panics
    ///
    /// Panics if `core` already has an operation in flight.
    pub fn start_op<M: PMem>(&mut self, mem: &mut M, core: usize, req: &Request) {
        self.start_op_with(mem, core, req, &mut DetachedSchedule);
    }

    /// [`start_op`] with an attached [`Schedule`] hook: the announce
    /// persist reports [`SchedPoint::Announce`] before it runs.
    ///
    /// # Panics
    ///
    /// Panics if `core` already has an operation in flight.
    ///
    /// [`start_op`]: Service::start_op
    pub fn start_op_with<M: PMem, S: Schedule>(
        &mut self,
        mem: &mut M,
        core: usize,
        req: &Request,
        sched: &mut S,
    ) {
        assert!(
            self.ctx[core].is_none(),
            "core {core} already has an op in flight"
        );
        self.seqs[core] += 1;
        let seq = self.seqs[core];
        let kind = if self.layout.kind == StructureKind::Hash && req.kind == ReqKind::Remove {
            ReqKind::Update // hashes have no remove; generator shouldn't send one
        } else {
            req.kind
        };
        if kind != ReqKind::Read {
            let rec = SlotRecord {
                seq,
                op: if kind == ReqKind::Update {
                    OP_UPDATE
                } else {
                    OP_REMOVE
                },
                a: req.key,
                b: req.value,
            };
            sched.at(core, SchedPoint::Announce);
            self.layout.slots.announce(mem, core, &rec);
        }
        self.ctx[core] = Some(OpCtx {
            kind,
            key: req.key,
            value: req.value,
            phase: Phase::Announced,
            node: 0,
            observed: 0,
            result: 0,
            retries: 0,
        });
    }

    /// The node seq stamped into update nodes: globally unique so
    /// recovery can match a pending descriptor to its node.
    fn node_seq(&self, core: usize) -> u64 {
        ((core as u64) << 48) | self.seqs[core]
    }

    /// Allocates one node line, panicking with sizing guidance when the
    /// region cannot hold the request count.
    fn alloc_node(&mut self, core: usize) -> u64 {
        match self.arena.alloc_lines(1) {
            Ok(addr) => addr,
            Err(e) => panic!(
                "serve arena exhausted on core {core}: size the region for the request count ({e})"
            ),
        }
    }

    /// Advances `core`'s in-flight operation by one phase. Reads
    /// complete in a single step; mutations take at least two (prepare,
    /// then one attempt per CAS try).
    ///
    /// # Panics
    ///
    /// Panics if `core` has no operation in flight, or (in strict mode)
    /// if a linearized read disagrees with the shadow model.
    pub fn step<M: PMem>(&mut self, mem: &mut M, core: usize) -> StepResult {
        self.step_with(mem, core, &mut DetachedSchedule)
    }

    /// [`step`] with an attached [`Schedule`] hook: each protocol point
    /// reports a [`SchedPoint`] before executing, and the linearizing
    /// persist honors mutation directives. With [`DetachedSchedule`]
    /// this monomorphizes to exactly the unhooked step.
    ///
    /// # Panics
    ///
    /// Panics if `core` has no operation in flight, or (in strict mode)
    /// if a linearized read disagrees with the shadow model.
    ///
    /// [`step`]: Service::step
    pub fn step_with<M: PMem, S: Schedule>(
        &mut self,
        mem: &mut M,
        core: usize,
        sched: &mut S,
    ) -> StepResult {
        let Some(mut ctx) = self.ctx[core] else {
            panic!("core {core} has no op in flight");
        };
        let out = match (self.layout.kind, ctx.kind) {
            (_, ReqKind::Read) => self.step_read(mem, core, &mut ctx, sched),
            (StructureKind::Stack, ReqKind::Update) => self.step_push(mem, core, &mut ctx, sched),
            (StructureKind::Stack, ReqKind::Remove) => self.step_pop(mem, core, &mut ctx, sched),
            (StructureKind::Queue, ReqKind::Update) => {
                self.step_enqueue(mem, core, &mut ctx, sched)
            }
            (StructureKind::Queue, ReqKind::Remove) => {
                self.step_dequeue(mem, core, &mut ctx, sched)
            }
            (StructureKind::Hash, _) => self.step_hash_insert(mem, core, &mut ctx, sched),
        };
        match out {
            StepResult::InFlight => self.ctx[core] = Some(ctx),
            StepResult::Done { .. } => {
                self.ctx[core] = None;
                self.completed += 1;
                self.retries_total += ctx.retries;
            }
        }
        out
    }

    fn step_read<M: PMem, S: Schedule>(
        &mut self,
        mem: &mut M,
        core: usize,
        ctx: &mut OpCtx,
        sched: &mut S,
    ) -> StepResult {
        sched.at(core, SchedPoint::Read);
        let found = match self.layout.kind {
            StructureKind::Stack => {
                let head = mem.read_u64(self.layout.meta0);
                if head == 0 || !self.layout.node_in_range(head) {
                    None
                } else {
                    Some(mem.read_u64(head + NODE_VAL))
                }
            }
            StructureKind::Queue => {
                let sentinel = mem.read_u64(self.layout.meta0);
                if self.layout.node_in_range(sentinel) {
                    let first = mem.read_u64(sentinel + NODE_NEXT);
                    if first == 0 || !self.layout.node_in_range(first) {
                        None
                    } else {
                        Some(mem.read_u64(first + NODE_VAL))
                    }
                } else {
                    None
                }
            }
            StructureKind::Hash => {
                let mut cur = mem.read_u64(self.layout.bucket_addr(ctx.key));
                let mut found = None;
                let mut hops = 0u64;
                while cur != 0 && self.layout.node_in_range(cur) && hops < 1 << 20 {
                    if mem.read_u64(cur + NODE_KEY) == ctx.key {
                        found = Some(mem.read_u64(cur + NODE_VAL));
                        break;
                    }
                    cur = mem.read_u64(cur + NODE_NEXT);
                    hops += 1;
                }
                found
            }
        };
        if self.strict {
            let expect = match self.layout.kind {
                StructureKind::Stack => self.shadow_stack.last().map(|&(_, v)| v),
                StructureKind::Queue => self.shadow_queue.front().map(|&(_, v)| v),
                StructureKind::Hash => self.shadow_hash[(ctx.key % self.layout.nbuckets) as usize]
                    .iter()
                    .find(|&&(k, _)| k == ctx.key)
                    .map(|&(_, v)| v),
            };
            assert_eq!(
                found, expect,
                "linearized {} read of key {} diverged from the shadow",
                self.layout.kind, ctx.key
            );
        }
        StepResult::Done { result: found }
    }

    fn step_push<M: PMem, S: Schedule>(
        &mut self,
        mem: &mut M,
        core: usize,
        ctx: &mut OpCtx,
        sched: &mut S,
    ) -> StepResult {
        match ctx.phase {
            Phase::Announced => {
                sched.at(core, SchedPoint::Prepare);
                ctx.node = self.alloc_node(core);
                ctx.observed = mem.read_u64(self.layout.meta0);
                write_node(
                    mem,
                    ctx.node,
                    ctx.observed,
                    ctx.key,
                    ctx.value,
                    self.node_seq(core),
                );
                ctx.phase = Phase::Prepared;
                StepResult::InFlight
            }
            Phase::Prepared => {
                let cur = mem.read_u64(self.layout.meta0);
                if cur != ctx.observed {
                    // CAS failure: rebase the node on the new head.
                    sched.at(core, SchedPoint::AttemptFail);
                    ctx.observed = cur;
                    write_node(mem, ctx.node, cur, ctx.key, ctx.value, self.node_seq(core));
                    ctx.retries += 1;
                    return StepResult::InFlight;
                }
                linearize_and_complete(
                    &self.layout,
                    mem,
                    sched,
                    core,
                    self.layout.meta0,
                    ctx.node,
                    ctx.node,
                );
                self.shadow_stack.push((ctx.key, ctx.value));
                StepResult::Done { result: None }
            }
            Phase::Fixup => unreachable!("stacks have no fixup phase"),
        }
    }

    fn step_pop<M: PMem, S: Schedule>(
        &mut self,
        mem: &mut M,
        core: usize,
        ctx: &mut OpCtx,
        sched: &mut S,
    ) -> StepResult {
        match ctx.phase {
            Phase::Announced | Phase::Prepared => {
                let cur = mem.read_u64(self.layout.meta0);
                if ctx.phase == Phase::Prepared && cur != ctx.observed {
                    sched.at(core, SchedPoint::AttemptFail);
                    ctx.retries += 1;
                }
                if cur == 0 || !self.layout.node_in_range(cur) {
                    // Empty (or degraded-poisoned) stack: linearizes at
                    // this read, no pointer store needed.
                    if self.strict {
                        assert!(
                            self.shadow_stack.is_empty(),
                            "pop saw an empty stack the shadow says is non-empty"
                        );
                    }
                    sched.at(core, SchedPoint::Complete);
                    self.layout.slots.complete(mem, core, 0);
                    return StepResult::Done { result: None };
                }
                if ctx.phase == Phase::Announced || cur != ctx.observed {
                    // (Re-)capture the target and its successor.
                    sched.at(core, SchedPoint::Prepare);
                    ctx.observed = cur;
                    ctx.node = mem.read_u64(cur + NODE_NEXT);
                    ctx.result = mem.read_u64(cur + NODE_VAL);
                    ctx.phase = Phase::Prepared;
                    return StepResult::InFlight;
                }
                linearize_and_complete(
                    &self.layout,
                    mem,
                    sched,
                    core,
                    self.layout.meta0,
                    ctx.node,
                    ctx.result,
                );
                let popped = self.shadow_stack.pop();
                if self.strict {
                    assert_eq!(
                        popped.map(|(_, v)| v),
                        Some(ctx.result),
                        "pop result diverged from the shadow"
                    );
                }
                StepResult::Done {
                    result: Some(ctx.result),
                }
            }
            Phase::Fixup => unreachable!("stacks have no fixup phase"),
        }
    }

    fn step_enqueue<M: PMem, S: Schedule>(
        &mut self,
        mem: &mut M,
        core: usize,
        ctx: &mut OpCtx,
        sched: &mut S,
    ) -> StepResult {
        match ctx.phase {
            Phase::Announced => {
                sched.at(core, SchedPoint::Prepare);
                ctx.node = self.alloc_node(core);
                write_node(mem, ctx.node, 0, ctx.key, ctx.value, self.node_seq(core));
                ctx.observed = mem.read_u64(self.layout.meta1);
                ctx.phase = Phase::Prepared;
                StepResult::InFlight
            }
            Phase::Prepared => {
                let tail = mem.read_u64(self.layout.meta1);
                if !self.layout.node_in_range(tail) {
                    // Degraded-poisoned tail: serve the append through
                    // the (possibly dropped) store anyway.
                    linearize_and_complete(
                        &self.layout,
                        mem,
                        sched,
                        core,
                        self.layout.meta1,
                        ctx.node,
                        ctx.node,
                    );
                    self.shadow_queue.push_back((ctx.key, ctx.value));
                    return StepResult::Done { result: None };
                }
                let next = mem.read_u64(tail + NODE_NEXT);
                if next != 0 {
                    // Lagging tail: help it forward, then retry.
                    sched.at(core, SchedPoint::HelpTail);
                    persist_ptr(mem, self.layout.meta1, next);
                    ctx.observed = next;
                    ctx.retries += 1;
                    return StepResult::InFlight;
                }
                // Link at the true tail: the linearizing store.
                let seq = mem.read_u64(tail + NODE_SEQ);
                let key = mem.read_u64(tail + NODE_KEY);
                let val = mem.read_u64(tail + NODE_VAL);
                let dir = sched.at(core, SchedPoint::Linearize);
                if dir == Directive::CompleteFirst {
                    self.layout.slots.complete(mem, core, ctx.node);
                }
                mem.write_u64(tail + NODE_NEXT, ctx.node);
                mem.write_u64(tail + NODE_CSUM, node_checksum(ctx.node, key, val, seq));
                if dir != Directive::SkipPersist {
                    mem.clwb(tail, 64);
                    mem.sfence();
                }
                ctx.observed = tail;
                self.shadow_queue.push_back((ctx.key, ctx.value));
                sched.at(core, SchedPoint::Complete);
                if dir != Directive::CompleteFirst {
                    self.layout.slots.complete(mem, core, ctx.node);
                }
                ctx.phase = Phase::Fixup;
                StepResult::InFlight
            }
            Phase::Fixup => {
                // Swing the tail unless someone already helped past us.
                sched.at(core, SchedPoint::TailFixup);
                if mem.read_u64(self.layout.meta1) == ctx.observed {
                    persist_ptr(mem, self.layout.meta1, ctx.node);
                }
                StepResult::Done { result: None }
            }
        }
    }

    fn step_dequeue<M: PMem, S: Schedule>(
        &mut self,
        mem: &mut M,
        core: usize,
        ctx: &mut OpCtx,
        sched: &mut S,
    ) -> StepResult {
        match ctx.phase {
            Phase::Announced | Phase::Prepared => {
                let sentinel = mem.read_u64(self.layout.meta0);
                if ctx.phase == Phase::Prepared && sentinel != ctx.observed {
                    sched.at(core, SchedPoint::AttemptFail);
                    ctx.retries += 1;
                }
                if !self.layout.node_in_range(sentinel) {
                    // Degraded-poisoned head: report empty.
                    sched.at(core, SchedPoint::Complete);
                    self.layout.slots.complete(mem, core, 0);
                    return StepResult::Done { result: None };
                }
                let first = mem.read_u64(sentinel + NODE_NEXT);
                if first == 0 || !self.layout.node_in_range(first) {
                    if self.strict {
                        assert!(
                            self.shadow_queue.is_empty(),
                            "dequeue saw an empty queue the shadow says is non-empty"
                        );
                    }
                    sched.at(core, SchedPoint::Complete);
                    self.layout.slots.complete(mem, core, 0);
                    return StepResult::Done { result: None };
                }
                if ctx.phase == Phase::Announced || sentinel != ctx.observed {
                    sched.at(core, SchedPoint::Prepare);
                    ctx.observed = sentinel;
                    ctx.node = first;
                    ctx.result = mem.read_u64(first + NODE_VAL);
                    ctx.phase = Phase::Prepared;
                    return StepResult::InFlight;
                }
                // Check the captured first node is still the successor
                // (another dequeuer may have won since prepare).
                if mem.read_u64(sentinel + NODE_NEXT) != ctx.node {
                    sched.at(core, SchedPoint::AttemptFail);
                    ctx.phase = Phase::Announced;
                    ctx.retries += 1;
                    return StepResult::InFlight;
                }
                // Swing the head: the dequeued node becomes the new
                // sentinel. This is the linearization.
                linearize_and_complete(
                    &self.layout,
                    mem,
                    sched,
                    core,
                    self.layout.meta0,
                    ctx.node,
                    ctx.result,
                );
                let popped = self.shadow_queue.pop_front();
                if self.strict {
                    assert_eq!(
                        popped.map(|(_, v)| v),
                        Some(ctx.result),
                        "dequeue result diverged from the shadow"
                    );
                }
                StepResult::Done {
                    result: Some(ctx.result),
                }
            }
            Phase::Fixup => unreachable!("dequeues have no fixup phase"),
        }
    }

    fn step_hash_insert<M: PMem, S: Schedule>(
        &mut self,
        mem: &mut M,
        core: usize,
        ctx: &mut OpCtx,
        sched: &mut S,
    ) -> StepResult {
        let bucket = self.layout.bucket_addr(ctx.key);
        match ctx.phase {
            Phase::Announced => {
                sched.at(core, SchedPoint::Prepare);
                ctx.node = self.alloc_node(core);
                ctx.observed = mem.read_u64(bucket);
                write_node(
                    mem,
                    ctx.node,
                    ctx.observed,
                    ctx.key,
                    ctx.value,
                    self.node_seq(core),
                );
                ctx.phase = Phase::Prepared;
                StepResult::InFlight
            }
            Phase::Prepared => {
                let cur = mem.read_u64(bucket);
                if cur != ctx.observed {
                    sched.at(core, SchedPoint::AttemptFail);
                    ctx.observed = cur;
                    write_node(mem, ctx.node, cur, ctx.key, ctx.value, self.node_seq(core));
                    ctx.retries += 1;
                    return StepResult::InFlight;
                }
                linearize_and_complete(&self.layout, mem, sched, core, bucket, ctx.node, ctx.node);
                self.shadow_hash[(ctx.key % self.layout.nbuckets) as usize]
                    .insert(0, (ctx.key, ctx.value));
                StepResult::Done { result: None }
            }
            Phase::Fixup => unreachable!("hash inserts have no fixup phase"),
        }
    }

    /// The shadow model's entries in the structure's canonical walk
    /// order: stack top-first, queue front-first, hash buckets in order
    /// with newest-first chains.
    pub fn shadow_entries(&self) -> Vec<(u64, u64)> {
        match self.layout.kind {
            StructureKind::Stack => self.shadow_stack.iter().rev().copied().collect(),
            StructureKind::Queue => self.shadow_queue.iter().copied().collect(),
            StructureKind::Hash => self.shadow_hash.iter().flatten().copied().collect(),
        }
    }

    /// Walks the persistent structure and compares it entry-for-entry
    /// with the shadow model.
    ///
    /// # Errors
    ///
    /// Returns a description of the first divergence, bad pointer, or
    /// checksum mismatch.
    pub fn verify<M: PMem>(&self, mem: &mut M) -> Result<(), String> {
        let walked = walk(mem, &self.layout)?;
        let shadow = self.shadow_entries();
        if walked != shadow {
            return Err(format!(
                "{}: persistent walk ({} entries) != shadow ({} entries)",
                self.layout.kind,
                walked.len(),
                shadow.len()
            ));
        }
        Ok(())
    }

    /// Rebuilds a service over a recovered crash image so pending
    /// operations can be re-executed: the arena's bump pointer is
    /// advanced past every reachable node, per-core sequence counters
    /// are restored from the (checksum-verified) descriptor slots, and
    /// the shadow model is reseeded from the walked entries. Strict
    /// shadow checking is off — the caller owns the oracle after a
    /// crash.
    ///
    /// # Errors
    ///
    /// [`RecoverError::Walk`] when the structure walk refuses the
    /// image.
    pub fn from_recovered<M: PMem>(
        mem: &mut M,
        layout: ServiceLayout,
        recovered: &RecoveredServe,
    ) -> Result<Self, RecoverError> {
        let nodes = walk_nodes(mem, &layout).map_err(RecoverError::Walk)?;
        let mut arena = Arena::new(layout.arena_base, layout.arena_end - layout.arena_base);
        if let Some(top) = nodes.iter().map(|n| n.addr + 64).max() {
            arena.reserve_until(top);
        }
        let cores = layout.slots.len();
        let mut seqs = vec![0u64; cores];
        for v in &recovered.slots {
            seqs[v.slot] = v.rec.seq;
        }
        let entries = &recovered.entries;
        let mut shadow_hash = vec![Vec::new(); layout.nbuckets as usize];
        if layout.kind == StructureKind::Hash {
            // The walk visits buckets in order, chains newest-first —
            // exactly the shadow's per-bucket order.
            for &(k, v) in entries {
                shadow_hash[(k % layout.nbuckets) as usize].push((k, v));
            }
        }
        Ok(Self {
            layout,
            arena,
            seqs,
            ctx: vec![None; cores],
            shadow_stack: match layout.kind {
                // Walk order is top-first; the shadow stores bottom-first.
                StructureKind::Stack => entries.iter().rev().copied().collect(),
                _ => Vec::new(),
            },
            shadow_queue: match layout.kind {
                StructureKind::Queue => entries.iter().copied().collect(),
                _ => VecDeque::new(),
            },
            shadow_hash,
            strict: false,
            completed: 0,
            retries_total: 0,
        })
    }

    /// Re-arms `core`'s in-flight context from its `PENDING` descriptor
    /// so a recovery driver can re-execute the announced operation via
    /// [`step_with`]. The descriptor is *not* re-announced and the
    /// sequence counter is pinned to the announced seq, so the node seq
    /// stamped by the re-execution matches the original announce — the
    /// exactly-once applied-check keys on it.
    ///
    /// # Panics
    ///
    /// Panics if the view is not `PENDING`, is for a different slot, or
    /// the core already has an operation in flight.
    ///
    /// [`step_with`]: Service::step_with
    pub fn resume_op(&mut self, core: usize, view: &SlotView) {
        assert_eq!(view.state, SlotState::Pending, "resume needs a pending op");
        assert_eq!(view.slot, core, "descriptor belongs to another core");
        assert!(
            self.ctx[core].is_none(),
            "core {core} already has an op in flight"
        );
        self.seqs[core] = view.rec.seq;
        self.ctx[core] = Some(OpCtx {
            kind: if view.rec.op == OP_REMOVE {
                ReqKind::Remove
            } else {
                ReqKind::Update
            },
            key: view.rec.a,
            value: view.rec.b,
            phase: Phase::Announced,
            node: 0,
            observed: 0,
            result: 0,
            retries: 0,
        });
    }
}

/// One verified node in a structure walk: its line address, payload,
/// and the writer-stamped `(core << 48) | seq` recovery can match to a
/// pending descriptor (0 for the queue sentinel).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeView {
    /// Node line address.
    pub addr: u64,
    /// Payload key.
    pub key: u64,
    /// Payload value.
    pub value: u64,
    /// Writer-stamped node seq.
    pub seq: u64,
}

/// Walks one `next`-linked chain, verifying bounds, checksums, and
/// acyclicity, collecting every node (including a queue sentinel).
fn walk_chain<M: PMem>(
    mem: &mut M,
    layout: &ServiceLayout,
    head: u64,
    seen: &mut HashSet<u64>,
    out: &mut Vec<NodeView>,
) -> Result<(), String> {
    let mut cur = head;
    while cur != 0 {
        if !layout.node_in_range(cur) {
            return Err(format!("pointer {cur:#x} escapes the node arena"));
        }
        if !seen.insert(cur) {
            return Err(format!("cycle through node {cur:#x}"));
        }
        let next = mem.read_u64(cur + NODE_NEXT);
        let key = mem.read_u64(cur + NODE_KEY);
        let value = mem.read_u64(cur + NODE_VAL);
        let seq = mem.read_u64(cur + NODE_SEQ);
        if mem.read_u64(cur + NODE_CSUM) != node_checksum(next, key, value, seq) {
            return Err(format!("node {cur:#x} fails its checksum"));
        }
        out.push(NodeView {
            addr: cur,
            key,
            value,
            seq,
        });
        cur = next;
    }
    Ok(())
}

/// Walks every reachable node in canonical order, verifying bounds,
/// checksums, and acyclicity. The queue sentinel is included (first).
///
/// # Errors
///
/// Returns a description of the first bad pointer, checksum mismatch,
/// or cycle.
pub fn walk_nodes<M: PMem>(mem: &mut M, layout: &ServiceLayout) -> Result<Vec<NodeView>, String> {
    let mut out = Vec::new();
    let mut seen = HashSet::new();
    match layout.kind {
        StructureKind::Stack => {
            let head = mem.read_u64(layout.meta0);
            walk_chain(mem, layout, head, &mut seen, &mut out)?;
        }
        StructureKind::Queue => {
            let sentinel = mem.read_u64(layout.meta0);
            if sentinel == 0 {
                return Err("queue head pointer is null".into());
            }
            walk_chain(mem, layout, sentinel, &mut seen, &mut out)?;
        }
        StructureKind::Hash => {
            for b in 0..layout.nbuckets {
                let head = mem.read_u64(layout.buckets_base + b * 8);
                walk_chain(mem, layout, head, &mut seen, &mut out)?;
            }
        }
    }
    Ok(out)
}

/// Walks the whole structure in canonical order, verifying every node.
///
/// # Errors
///
/// Returns a description of the first bad pointer, checksum mismatch,
/// or cycle — a refusal the torture harness classifies as *detected*.
pub fn walk<M: PMem>(mem: &mut M, layout: &ServiceLayout) -> Result<Vec<(u64, u64)>, String> {
    let nodes = walk_nodes(mem, layout)?;
    let skip = usize::from(layout.kind == StructureKind::Queue);
    Ok(nodes
        .into_iter()
        .skip(skip)
        .map(|n| (n.key, n.value))
        .collect())
}

/// A recovery scan refusing to trust the crash image.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RecoverError {
    /// The descriptor-slot area failed verification.
    Slots(SlotError),
    /// The structure walk found a bad pointer, checksum, or cycle.
    Walk(String),
}

impl std::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoverError::Slots(e) => write!(f, "descriptor scan refused: {e}"),
            RecoverError::Walk(e) => write!(f, "structure walk refused: {e}"),
        }
    }
}

impl std::error::Error for RecoverError {}

/// What recovery reconstructed from a crash image.
#[derive(Debug, Clone)]
pub struct RecoveredServe {
    /// Per-core descriptor slots (checksum-verified).
    pub slots: Vec<SlotView>,
    /// The structure's entries in canonical walk order
    /// (checksum-verified, cycle-free).
    pub entries: Vec<(u64, u64)>,
}

/// Recovers a service from (possibly crashed) persistent memory: scans
/// the descriptor slots and walks the structure, verifying everything.
///
/// # Errors
///
/// [`RecoverError`] when the image cannot be trusted — the caller must
/// treat that as *detected* corruption, never guess.
pub fn recover<M: PMem>(
    mem: &mut M,
    layout: &ServiceLayout,
) -> Result<RecoveredServe, RecoverError> {
    let slots = layout.slots.scan(mem).map_err(RecoverError::Slots)?;
    let entries = walk(mem, layout).map_err(RecoverError::Walk)?;
    Ok(RecoveredServe { slots, entries })
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // unwrap/expect are fine in tests
mod tests {
    use super::*;
    use supermem_persist::{SlotState, VecMem};

    const BASE: u64 = 0x1000;
    const LEN: u64 = 1 << 16;

    fn req(kind: ReqKind, key: u64, value: u64) -> Request {
        Request {
            at: 0,
            kind,
            key,
            value,
        }
    }

    fn run_to_done(svc: &mut Service, mem: &mut VecMem, core: usize, r: &Request) -> Option<u64> {
        svc.start_op(mem, core, r);
        loop {
            if let StepResult::Done { result } = svc.step(mem, core) {
                return result;
            }
        }
    }

    #[test]
    fn stack_push_pop_peek_roundtrip() {
        let mut mem = VecMem::new();
        let mut svc = Service::new(&mut mem, StructureKind::Stack, BASE, LEN, 2, 0);
        for i in 1..=5u64 {
            run_to_done(&mut svc, &mut mem, 0, &req(ReqKind::Update, i, i * 10));
        }
        assert_eq!(
            run_to_done(&mut svc, &mut mem, 1, &req(ReqKind::Read, 0, 0)),
            Some(50)
        );
        assert_eq!(
            run_to_done(&mut svc, &mut mem, 0, &req(ReqKind::Remove, 0, 0)),
            Some(50)
        );
        assert_eq!(
            run_to_done(&mut svc, &mut mem, 0, &req(ReqKind::Remove, 0, 0)),
            Some(40)
        );
        svc.verify(&mut mem).unwrap();
        assert_eq!(svc.completed(), 8);
    }

    #[test]
    fn queue_preserves_fifo_order() {
        let mut mem = VecMem::new();
        let mut svc = Service::new(&mut mem, StructureKind::Queue, BASE, LEN, 2, 0);
        for i in 1..=4u64 {
            run_to_done(&mut svc, &mut mem, 0, &req(ReqKind::Update, i, i * 100));
        }
        assert_eq!(
            run_to_done(&mut svc, &mut mem, 1, &req(ReqKind::Read, 0, 0)),
            Some(100)
        );
        for i in 1..=4u64 {
            assert_eq!(
                run_to_done(&mut svc, &mut mem, 1, &req(ReqKind::Remove, 0, 0)),
                Some(i * 100)
            );
        }
        assert_eq!(
            run_to_done(&mut svc, &mut mem, 0, &req(ReqKind::Remove, 0, 0)),
            None,
            "drained queue pops empty"
        );
        svc.verify(&mut mem).unwrap();
    }

    #[test]
    fn hash_inserts_shadow_newest_first() {
        let mut mem = VecMem::new();
        let mut svc = Service::new(&mut mem, StructureKind::Hash, BASE, LEN, 2, 8);
        run_to_done(&mut svc, &mut mem, 0, &req(ReqKind::Update, 3, 111));
        run_to_done(&mut svc, &mut mem, 0, &req(ReqKind::Update, 11, 222)); // same bucket (mod 8)
        run_to_done(&mut svc, &mut mem, 0, &req(ReqKind::Update, 3, 333)); // shadowing insert
        assert_eq!(
            run_to_done(&mut svc, &mut mem, 1, &req(ReqKind::Read, 3, 0)),
            Some(333),
            "lookup must see the newest insert"
        );
        assert_eq!(
            run_to_done(&mut svc, &mut mem, 1, &req(ReqKind::Read, 11, 0)),
            Some(222)
        );
        assert_eq!(
            run_to_done(&mut svc, &mut mem, 1, &req(ReqKind::Read, 5, 0)),
            None
        );
        svc.verify(&mut mem).unwrap();
    }

    #[test]
    fn interleaved_cas_attempts_retry_and_stay_consistent() {
        // Two cores prepare against the same head; the loser must
        // observe the winner's publication and retry.
        let mut mem = VecMem::new();
        let mut svc = Service::new(&mut mem, StructureKind::Stack, BASE, LEN, 2, 0);
        svc.start_op(&mut mem, 0, &req(ReqKind::Update, 1, 10));
        svc.start_op(&mut mem, 1, &req(ReqKind::Update, 2, 20));
        assert_eq!(svc.step(&mut mem, 0), StepResult::InFlight); // prepare
        assert_eq!(svc.step(&mut mem, 1), StepResult::InFlight); // prepare (same observed)
        assert!(matches!(svc.step(&mut mem, 0), StepResult::Done { .. })); // wins
        assert_eq!(svc.step(&mut mem, 1), StepResult::InFlight); // CAS fails, rebases
        assert!(matches!(svc.step(&mut mem, 1), StepResult::Done { .. })); // wins on retry
        assert_eq!(svc.retries(), 1);
        svc.verify(&mut mem).unwrap();
        assert_eq!(svc.shadow_entries(), vec![(2, 20), (1, 10)]);
    }

    #[test]
    fn queue_helping_advances_a_lagging_tail() {
        // Core 0 links its node but crashes conceptually before the
        // tail fixup (we just don't run its fixup step); core 1's
        // enqueue must help the tail forward and still complete.
        let mut mem = VecMem::new();
        let mut svc = Service::new(&mut mem, StructureKind::Queue, BASE, LEN, 2, 0);
        svc.start_op(&mut mem, 0, &req(ReqKind::Update, 1, 10));
        assert_eq!(svc.step(&mut mem, 0), StepResult::InFlight); // prepare
        assert_eq!(svc.step(&mut mem, 0), StepResult::InFlight); // link; fixup pending
        svc.start_op(&mut mem, 1, &req(ReqKind::Update, 2, 20));
        assert_eq!(svc.step(&mut mem, 1), StepResult::InFlight); // prepare
        assert_eq!(svc.step(&mut mem, 1), StepResult::InFlight); // helps tail forward
        assert!(matches!(svc.step(&mut mem, 1), StepResult::InFlight)); // links
        assert!(matches!(svc.step(&mut mem, 1), StepResult::Done { .. })); // fixup
        assert!(matches!(svc.step(&mut mem, 0), StepResult::Done { .. })); // stale fixup skipped
        assert!(svc.retries() >= 1, "helping must count as a retry");
        svc.verify(&mut mem).unwrap();
        assert_eq!(svc.shadow_entries(), vec![(1, 10), (2, 20)]);
    }

    #[test]
    fn recovery_scan_matches_the_shadow() {
        let mut mem = VecMem::new();
        let mut svc = Service::new(&mut mem, StructureKind::Hash, BASE, LEN, 3, 4);
        for i in 0..9u64 {
            run_to_done(
                &mut svc,
                &mut mem,
                (i % 3) as usize,
                &req(ReqKind::Update, i, i + 1000),
            );
        }
        let rec = recover(&mut mem, &svc.layout()).unwrap();
        assert_eq!(rec.entries, svc.shadow_entries());
        assert_eq!(rec.slots.len(), 3);
        assert!(rec.slots.iter().all(|s| s.state == SlotState::Done));
    }

    #[test]
    fn recovery_refuses_a_corrupted_node() {
        let mut mem = VecMem::new();
        let mut svc = Service::new(&mut mem, StructureKind::Stack, BASE, LEN, 1, 0);
        run_to_done(&mut svc, &mut mem, 0, &req(ReqKind::Update, 1, 10));
        let head = mem.read_u64(svc.layout().meta0);
        mem.write_u64(head + NODE_VAL, 999); // corrupt without re-checksumming
        let err = recover(&mut mem, &svc.layout()).unwrap_err();
        assert!(matches!(err, RecoverError::Walk(_)), "got {err:?}");
    }

    #[test]
    fn structure_kind_parses_its_own_names() {
        for k in StructureKind::ALL {
            assert_eq!(StructureKind::parse(k.name()), Some(k));
        }
        assert_eq!(StructureKind::parse("treap"), None);
    }
}
