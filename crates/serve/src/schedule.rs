//! Scheduling hooks: an explicit interposition point at every
//! shared-memory step of the serving protocol.
//!
//! The engine runs the protocol detached ([`DetachedSchedule`]): every
//! hook call is a no-op the compiler monomorphizes away, so attaching
//! the hook costs nothing on the production path — the same contract as
//! `sim::Probes`. A model checker attaches a real [`Schedule`] to (a)
//! observe which protocol point each step reached (for schedule
//! labeling and reproducers) and (b) inject *protocol mutations* at
//! specific points — skip the linearizing persist, persist the
//! completion record early, bypass the recovery applied-check — so the
//! checker can prove it would catch those bugs.
//!
//! The hook deliberately does **not** choose which core runs next; the
//! checker owns the outer loop (it calls [`Service::step_with`] on the
//! core it wants) and the hook only interposes *within* a step.
//!
//! [`Service::step_with`]: crate::service::Service::step_with

/// A protocol point inside one [`start_op_with`] / [`step_with`] call
/// (or inside a recovery driver), reported to the attached [`Schedule`]
/// in execution order.
///
/// [`start_op_with`]: crate::service::Service::start_op_with
/// [`step_with`]: crate::service::Service::step_with
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPoint {
    /// The descriptor-slot announce persist (mutating ops only).
    Announce,
    /// Node prepared off to the side / removal target captured.
    Prepare,
    /// A CAS attempt observed a changed shared pointer and is about to
    /// rebase (push/insert), recapture (pop/dequeue), or retry.
    AttemptFail,
    /// The linearizing persist is about to run. Honors
    /// [`Directive::SkipPersist`] and [`Directive::CompleteFirst`].
    Linearize,
    /// The completion persist is about to run.
    Complete,
    /// A lagging queue tail is about to be helped forward.
    HelpTail,
    /// The post-linearization queue tail fixup store.
    TailFixup,
    /// A read is about to linearize (no persist).
    Read,
    /// Recovery is about to run the applied-check scan for a pending
    /// descriptor slot. Honors [`Directive::Skip`].
    RecoveryScan {
        /// The descriptor slot being resolved.
        slot: usize,
    },
}

/// What the attached schedule tells the protocol to do at a point.
///
/// Every point accepts [`Directive::Run`]; the non-default directives
/// are only honored at the points documented on [`SchedPoint`] (they
/// exist to inject protocol bugs, not to steer healthy execution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Directive {
    /// Execute the step as written.
    #[default]
    Run,
    /// Perform the linearizing store volatile-only: no `clwb`/`sfence`
    /// (mutant: *skip linearizing persist*).
    SkipPersist,
    /// Persist the completion record *before* the linearizing persist
    /// (mutant: *complete-before-persist reorder*).
    CompleteFirst,
    /// Skip the step entirely — at [`SchedPoint::RecoveryScan`], bypass
    /// the applied-check and re-execute blindly (mutant: *skip recovery
    /// scan*).
    Skip,
}

/// Interposition hook consulted at every [`SchedPoint`].
pub trait Schedule {
    /// Called when `core` reaches `point`; the returned directive is
    /// honored only where [`SchedPoint`] documents it.
    fn at(&mut self, core: usize, point: SchedPoint) -> Directive;
}

/// The production no-op schedule: every call inlines to nothing, so
/// `step` / `start_op` compile to exactly the unhooked protocol.
#[derive(Debug, Clone, Copy, Default)]
pub struct DetachedSchedule;

impl Schedule for DetachedSchedule {
    #[inline(always)]
    fn at(&mut self, _core: usize, _point: SchedPoint) -> Directive {
        Directive::Run
    }
}

/// A schedule that records every `(core, point)` it sees — the history
/// recorder half of the model checker, also handy in tests.
#[derive(Debug, Clone, Default)]
pub struct PointLog {
    /// Every hook call, in execution order.
    pub points: Vec<(usize, SchedPoint)>,
}

impl Schedule for PointLog {
    fn at(&mut self, core: usize, point: SchedPoint) -> Directive {
        self.points.push((core, point));
        Directive::Run
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detached_always_runs() {
        let mut d = DetachedSchedule;
        assert_eq!(d.at(0, SchedPoint::Linearize), Directive::Run);
        assert_eq!(
            d.at(3, SchedPoint::RecoveryScan { slot: 1 }),
            Directive::Run
        );
    }

    #[test]
    fn point_log_records_in_order() {
        let mut log = PointLog::default();
        log.at(0, SchedPoint::Announce);
        log.at(1, SchedPoint::Linearize);
        assert_eq!(
            log.points,
            vec![(0, SchedPoint::Announce), (1, SchedPoint::Linearize)]
        );
    }
}
