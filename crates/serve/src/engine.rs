//! The open-loop serving engine: N simulated cores issuing against one
//! shared structure, arbitrated in simulated time.
//!
//! The engine owns the issue loop the paper's closed-loop benchmarks
//! never needed: requests arrive on an open-loop schedule (fixed at
//! generation time), are assigned round-robin to cores, and each core
//! advances its in-flight operation one phase at a time. The core with
//! the *earliest ready time* always moves next — either its clock (an
//! op in flight) or its next request's arrival, whichever is later —
//! so cross-core interleavings are exactly the ones simulated time
//! dictates, and a fixed `(config, seed)` always produces the identical
//! schedule, op stream, and latency table at any `run_threads` setting.
//!
//! Latency is **sojourn time** (completion minus *arrival*, not minus
//! issue): a request that waits behind a counter-overflow
//! re-encryption storm pays that wait in its p99/p999, which is the
//! whole point of driving the structures open-loop.

use supermem::sim::{Config, Observer, SplitMix64, Telemetry};
use supermem::{Scheme, System};

use crate::service::{Service, StepResult, StructureKind};
use crate::traffic::{ReqKind, Request, TrafficGen, TrafficSpec};

/// Base address of the served structure's persistent region.
pub const REGION_BASE: u64 = 0x10_0000;

/// A serve configuration the engine refused.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServeError {
    /// Core count outside 1..=64.
    Cores(usize),
    /// `read_pct` above 100.
    ReadPct(u8),
    /// Zero requests.
    Requests,
    /// Zero hash buckets.
    Buckets,
    /// Zero keyspace.
    Keyspace,
    /// The region cannot hold one node per mutating request.
    Region {
        /// Bytes the configuration needs.
        need: u64,
        /// Bytes the region holds.
        have: u64,
    },
    /// The underlying machine configuration is invalid.
    Machine(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Cores(n) => write!(f, "core count {n} outside 1..=64"),
            ServeError::ReadPct(p) => write!(f, "read percentage {p} above 100"),
            ServeError::Requests => f.write_str("request count must be positive"),
            ServeError::Buckets => f.write_str("hash bucket count must be positive"),
            ServeError::Keyspace => f.write_str("keyspace must be positive"),
            ServeError::Region { need, have } => {
                write!(
                    f,
                    "region too small: need {need} B for nodes, have {have} B"
                )
            }
            ServeError::Machine(e) => write!(f, "invalid machine config: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Everything one serving run needs: machine, structure, and traffic.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Secure-memory scheme the machine runs.
    pub scheme: Scheme,
    /// Structure being served.
    pub structure: StructureKind,
    /// Simulated cores issuing requests.
    pub cores: usize,
    /// Total requests across all cores.
    pub requests: u64,
    /// Percentage of requests that are reads.
    pub read_pct: u8,
    /// Zipfian skew (0.0 uniform, 0.99 YCSB-hot).
    pub zipf_theta: f64,
    /// Distinct keys.
    pub keyspace: u64,
    /// Mean Poisson inter-arrival gap in cycles (0 = backlogged).
    pub mean_gap: u64,
    /// Master seed (traffic schedule + machine).
    pub seed: u64,
    /// Interleaved memory channels.
    pub channels: usize,
    /// Intra-run worker threads (byte-identical at any setting).
    pub run_threads: usize,
    /// Hash bucket count (hash structure only).
    pub hash_buckets: u64,
    /// Persistent region bytes for the structure + nodes.
    pub region_len: u64,
    /// Fail this bank at time zero and serve through the loss
    /// (degraded mode: shadow verification is skipped because poisoned
    /// reads legitimately diverge).
    pub degraded_bank: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            scheme: Scheme::SuperMem,
            structure: StructureKind::Stack,
            cores: 4,
            requests: 64,
            read_pct: 50,
            zipf_theta: 0.99,
            keyspace: 64,
            mean_gap: 200,
            seed: 1,
            channels: 1,
            run_threads: 1,
            hash_buckets: 16,
            region_len: 1 << 22,
            degraded_bank: None,
        }
    }
}

impl ServeConfig {
    /// Validates the configuration without running it.
    ///
    /// # Errors
    ///
    /// The first [`ServeError`] found.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.cores == 0 || self.cores > 64 {
            return Err(ServeError::Cores(self.cores));
        }
        if self.read_pct > 100 {
            return Err(ServeError::ReadPct(self.read_pct));
        }
        if self.requests == 0 {
            return Err(ServeError::Requests);
        }
        if self.structure == StructureKind::Hash && self.hash_buckets == 0 {
            return Err(ServeError::Buckets);
        }
        if self.keyspace == 0 {
            return Err(ServeError::Keyspace);
        }
        // Metadata + slots + buckets + one node line per mutating
        // request (every non-read allocates at most one node), plus the
        // queue sentinel.
        let buckets = if self.structure == StructureKind::Hash {
            (self.hash_buckets * 8).div_ceil(64) * 64
        } else {
            0
        };
        let need = 128 + 64 * self.cores as u64 + buckets + 64 * (self.requests + 1);
        if self.region_len < need {
            return Err(ServeError::Region {
                need,
                have: self.region_len,
            });
        }
        self.machine_config()
            .validate()
            .map_err(|e| ServeError::Machine(e.to_string()))?;
        Ok(())
    }

    /// The simulator configuration this serve run builds.
    pub fn machine_config(&self) -> Config {
        let mut cfg = self
            .scheme
            .apply(Config::default())
            .with_channels(self.channels)
            .with_run_threads(self.run_threads);
        cfg.cores = self.cores;
        cfg.seed = self.seed;
        cfg
    }

    fn traffic_spec(&self) -> TrafficSpec {
        TrafficSpec {
            requests: self.requests,
            read_pct: self.read_pct,
            zipf_theta: self.zipf_theta,
            keyspace: self.keyspace,
            mean_gap: self.mean_gap,
            seed: self.seed ^ 0xC0FF_EE00_5EED,
            removes: self.structure != StructureKind::Hash,
        }
    }
}

/// Tail-latency table and run evidence from one serving run.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Scheme served under.
    pub scheme: Scheme,
    /// Structure served.
    pub structure: StructureKind,
    /// Cores that issued.
    pub cores: usize,
    /// Requests completed (always equals the configured count).
    pub completed: u64,
    /// Failed CAS attempts + helping steps across all cores.
    pub retries: u64,
    /// Order-sensitive digest of the per-core op streams
    /// (core, seq, op, key, result) — equal digests mean identical
    /// linearization histories.
    pub digest: u64,
    /// Simulated cycle the last core finished (after the drain).
    pub total_cycles: u64,
    /// Median sojourn latency (cycles).
    pub p50: u64,
    /// 99th-percentile sojourn latency.
    pub p99: u64,
    /// 99.9th-percentile sojourn latency.
    pub p999: u64,
    /// Mean sojourn latency.
    pub mean: f64,
    /// Worst-case sojourn latency.
    pub max: u64,
    /// Requests completed per core.
    pub per_core: Vec<u64>,
    /// Pages re-encrypted by minor-counter overflow during the run.
    pub reencryptions: u64,
    /// Poisoned reads served (degraded mode).
    pub poisoned_reads: u64,
    /// Writes dropped at a failed bank (degraded mode).
    pub dropped_writes: u64,
    /// Whether the persistent structure was verified against the
    /// shadow model (skipped in degraded mode).
    pub verified: bool,
    /// Full telemetry (per-core histograms, breakdowns) for JSON
    /// emission.
    pub telemetry: Telemetry,
}

/// Same avalanche mix as the persistent checksums; used for the op
/// digest.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn op_code(kind: ReqKind) -> u64 {
    match kind {
        ReqKind::Update => 1,
        ReqKind::Remove => 2,
        ReqKind::Read => 3,
    }
}

/// One core's issue state inside the arbitration loop.
struct CoreLane {
    queue: std::collections::VecDeque<Request>,
    /// Arrival cycle and kind/key of the op in flight.
    in_flight: Option<(u64, ReqKind, u64)>,
    issued: u64,
    completed: u64,
}

/// Runs a serving experiment.
///
/// # Errors
///
/// [`ServeError`] if the configuration is invalid.
///
/// # Panics
///
/// Panics if (in strict mode) the structure diverges from its shadow
/// model — that is a simulator bug, not a configuration error.
pub fn run_serve(cfg: &ServeConfig) -> Result<ServeReport, ServeError> {
    let (report, _) = run_serve_observed(cfg, Vec::new())?;
    Ok(report)
}

/// Runs a serving experiment with extra observers attached (e.g. the
/// crash-consistency [`Checker`](supermem::Checker)); returns them
/// after the run for inspection.
///
/// # Errors
///
/// [`ServeError`] if the configuration is invalid.
// Justified panics: the four `expect`s below assert open-loop scheduler
// bookkeeping invariants (each message names its own); a failure is an
// engine bug, not an input condition the caller could handle.
#[allow(clippy::disallowed_methods)]
pub fn run_serve_observed(
    cfg: &ServeConfig,
    observers: Vec<Box<dyn Observer>>,
) -> Result<(ServeReport, Vec<Box<dyn Observer>>), ServeError> {
    cfg.validate()?;
    let mut sys = System::new(cfg.machine_config());

    // Initialize the structure single-threaded on core 0, then drain so
    // the measured phase starts from a durable, quiescent machine.
    sys.set_active_core(0);
    let mut svc = Service::new(
        &mut sys,
        cfg.structure,
        REGION_BASE,
        cfg.region_len,
        cfg.cores,
        cfg.hash_buckets,
    );
    sys.checkpoint();
    if let Some(bank) = cfg.degraded_bank {
        sys.controller_mut().mark_bank_failed(bank);
        svc.set_strict(false);
    }
    sys.reset_stats();
    sys.attach_observer(Box::new(Telemetry::default()));
    for obs in observers {
        sys.attach_observer(obs);
    }

    // Round-robin request assignment: global arrival order is preserved
    // within each core's FIFO lane.
    let mut lanes: Vec<CoreLane> = (0..cfg.cores)
        .map(|_| CoreLane {
            queue: std::collections::VecDeque::new(),
            in_flight: None,
            issued: 0,
            completed: 0,
        })
        .collect();
    for (i, req) in TrafficGen::new(&cfg.traffic_spec()).enumerate() {
        lanes[i % cfg.cores].queue.push_back(req);
    }

    let mut digest = 0x00D1_6E57_u64;
    let mut remaining = cfg.requests;
    while remaining > 0 {
        // The earliest-ready core moves next (ties to the lowest core).
        let mut pick: Option<(u64, usize)> = None;
        for (c, lane) in lanes.iter().enumerate() {
            let ready = match (&lane.in_flight, lane.queue.front()) {
                (Some(_), _) => sys.core_now(c),
                (None, Some(r)) => sys.core_now(c).max(r.at),
                (None, None) => continue,
            };
            if pick.is_none_or(|(t, _)| ready < t) {
                pick = Some((ready, c));
            }
        }
        let (_, core) = pick.expect("remaining > 0 implies a ready core");
        sys.set_active_core(core);
        let lane = &mut lanes[core];
        if lane.in_flight.is_none() {
            let req = lane.queue.pop_front().expect("picked lane has a request");
            // An idle core sleeps until the arrival; its clock only
            // moves through memory ops otherwise.
            sys.advance_core_to(core, req.at);
            lane.in_flight = Some((req.at, req.kind, req.key));
            lane.issued += 1;
            svc.start_op(&mut sys, core, &req);
            continue;
        }
        if let StepResult::Done { result } = svc.step(&mut sys, core) {
            let (arrival, kind, key) = lanes[core].in_flight.take().expect("op was in flight");
            let end = sys.core_now(core);
            sys.record_txn(arrival, end);
            lanes[core].completed += 1;
            remaining -= 1;
            for w in [
                core as u64,
                lanes[core].completed,
                op_code(kind),
                key,
                result.unwrap_or(0),
            ] {
                digest = mix(digest ^ w);
            }
        }
    }

    sys.checkpoint();
    let verified = cfg.degraded_bank.is_none();
    if verified {
        svc.verify(&mut sys)
            .unwrap_or_else(|e| panic!("served structure diverged from its shadow: {e}"));
    }

    let stats = sys.stats().clone();
    let mut telemetry = None;
    let mut rest = Vec::new();
    for mut obs in sys.take_observers() {
        if telemetry.is_none() {
            if let Some(t) = obs.as_any_mut().downcast_mut::<Telemetry>() {
                telemetry = Some(std::mem::take(t));
                continue;
            }
        }
        rest.push(obs);
    }
    let telemetry = telemetry.expect("telemetry was attached");
    let h = &telemetry.txn_latency;
    let report = ServeReport {
        scheme: cfg.scheme,
        structure: cfg.structure,
        cores: cfg.cores,
        completed: svc.completed(),
        retries: svc.retries(),
        digest,
        total_cycles: sys.max_now(),
        p50: h.p50(),
        p99: h.p99(),
        p999: h.p999(),
        mean: h.mean(),
        max: h.max(),
        per_core: lanes.iter().map(|l| l.completed).collect(),
        reencryptions: stats.pages_reencrypted,
        poisoned_reads: stats.poisoned_reads,
        dropped_writes: stats.dropped_writes,
        verified,
        telemetry,
    };
    Ok((report, rest))
}

/// A seeded SplitMix64 stream for schedule-affecting helpers (kept here
/// so the engine and bench derive sub-seeds the same way).
pub fn subseed(master: u64, salt: u64) -> u64 {
    SplitMix64::new(master ^ salt).next_u64()
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // unwrap/expect are fine in tests
mod tests {
    use super::*;

    fn quick(structure: StructureKind) -> ServeConfig {
        ServeConfig {
            structure,
            requests: 40,
            cores: 3,
            mean_gap: 100,
            region_len: 1 << 18,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn validation_rejects_malformed_configs() {
        let mut c = quick(StructureKind::Stack);
        c.cores = 0;
        assert_eq!(c.validate(), Err(ServeError::Cores(0)));
        let mut c = quick(StructureKind::Stack);
        c.read_pct = 101;
        assert_eq!(c.validate(), Err(ServeError::ReadPct(101)));
        let mut c = quick(StructureKind::Hash);
        c.hash_buckets = 0;
        assert_eq!(c.validate(), Err(ServeError::Buckets));
        let mut c = quick(StructureKind::Stack);
        c.region_len = 1024;
        assert!(matches!(c.validate(), Err(ServeError::Region { .. })));
        let mut c = quick(StructureKind::Stack);
        c.requests = 0;
        assert_eq!(c.validate(), Err(ServeError::Requests));
    }

    #[test]
    fn every_structure_serves_and_verifies() {
        for kind in StructureKind::ALL {
            let report = run_serve(&quick(kind)).unwrap();
            assert_eq!(report.completed, 40, "{kind}");
            assert!(report.verified, "{kind}");
            assert_eq!(report.per_core.iter().sum::<u64>(), 40, "{kind}");
            assert!(
                report.p50 <= report.p99 && report.p99 <= report.p999,
                "{kind}"
            );
            assert!(report.p999 <= report.max, "{kind}");
            assert!(report.total_cycles > 0, "{kind}");
        }
    }

    #[test]
    fn same_seed_same_digest_and_tail_table() {
        let cfg = quick(StructureKind::Queue);
        let a = run_serve(&cfg).unwrap();
        let b = run_serve(&cfg).unwrap();
        assert_eq!(a.digest, b.digest);
        assert_eq!((a.p50, a.p99, a.p999, a.max), (b.p50, b.p99, b.p999, b.max));
        assert_eq!(a.total_cycles, b.total_cycles);
    }

    #[test]
    fn run_threads_do_not_change_the_run() {
        let mut cfg = quick(StructureKind::Stack);
        let a = run_serve(&cfg).unwrap();
        cfg.run_threads = 4;
        let b = run_serve(&cfg).unwrap();
        assert_eq!(a.digest, b.digest, "run_threads must be byte-identical");
        assert_eq!((a.p50, a.p99, a.p999), (b.p50, b.p99, b.p999));
        assert_eq!(a.total_cycles, b.total_cycles);
    }

    #[test]
    fn different_seeds_change_the_schedule() {
        let mut cfg = quick(StructureKind::Stack);
        let a = run_serve(&cfg).unwrap();
        cfg.seed = 99;
        let b = run_serve(&cfg).unwrap();
        assert_ne!(a.digest, b.digest);
    }

    #[test]
    fn contended_cores_actually_retry() {
        // Backlogged write-only traffic on one hot structure must
        // produce CAS contention across 4 cores.
        let cfg = ServeConfig {
            structure: StructureKind::Stack,
            cores: 4,
            requests: 80,
            read_pct: 0,
            mean_gap: 0,
            region_len: 1 << 18,
            ..ServeConfig::default()
        };
        let report = run_serve(&cfg).unwrap();
        assert!(
            report.retries > 0,
            "no CAS contention at 4 backlogged cores"
        );
        assert!(report.verified);
    }

    #[test]
    fn degraded_mode_serves_through_bank_loss() {
        let cfg = ServeConfig {
            degraded_bank: Some(0),
            ..quick(StructureKind::Stack)
        };
        let report = run_serve(&cfg).unwrap();
        assert_eq!(report.completed, 40, "degraded service must keep answering");
        assert!(!report.verified, "degraded runs skip shadow verification");
        assert!(
            report.poisoned_reads > 0 || report.dropped_writes > 0,
            "bank 0 holds the structure, the fault must bite"
        );
    }

    #[test]
    fn single_core_open_loop_respects_arrivals() {
        let cfg = ServeConfig {
            cores: 1,
            requests: 10,
            mean_gap: 10_000,
            ..quick(StructureKind::Queue)
        };
        let report = run_serve(&cfg).unwrap();
        // Widely spaced arrivals: total time is dominated by the last
        // arrival, and per-op sojourn stays near raw service time.
        assert!(report.total_cycles > 9 * 5_000, "idle warp missing");
        assert_eq!(report.completed, 10);
    }
}
