//! Open-loop traffic generation: Zipfian key skew, a configurable
//! read/write mix, and Poisson inter-arrival gaps at a target offered
//! load.
//!
//! *Open-loop* means arrival times are drawn independently of service
//! completion: a request's timestamp is fixed when it is generated, and
//! a slow server accumulates queueing delay instead of silently
//! throttling the offered load (the closed-loop fallacy). This is what
//! makes tail latency meaningful — p99/p999 include the time requests
//! spend waiting behind a re-encryption storm, not just raw service
//! time.
//!
//! Everything is driven by one [`SplitMix64`] stream, so a (spec, seed)
//! pair always produces the identical request schedule.

use supermem_sim::SplitMix64;

/// What a generated request asks the structure to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqKind {
    /// Insert/push/enqueue `key` with a generated value.
    Update,
    /// Pop/dequeue (hash structures have no remove; the generator maps
    /// this onto [`ReqKind::Update`] for them).
    Remove,
    /// Lookup/peek.
    Read,
}

/// One generated request: arrival time, kind, and operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Open-loop arrival cycle (absolute, monotone across the stream).
    pub at: u64,
    /// Operation kind.
    pub kind: ReqKind,
    /// Zipfian-drawn key.
    pub key: u64,
    /// Generated value (updates only; 0 otherwise).
    pub value: u64,
}

/// Traffic shape: volume, mix, skew, and arrival process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficSpec {
    /// Total requests to generate.
    pub requests: u64,
    /// Percentage of requests that are reads (0..=100).
    pub read_pct: u8,
    /// Zipfian skew exponent θ; 0.0 is uniform, 0.99 is the YCSB
    /// default hot-key skew.
    pub zipf_theta: f64,
    /// Number of distinct keys (ranks) the Zipfian draws from.
    pub keyspace: u64,
    /// Mean inter-arrival gap in cycles (Poisson process). 0 means
    /// fully backlogged: every request arrives at cycle 0.
    pub mean_gap: u64,
    /// RNG seed fixing the whole schedule.
    pub seed: u64,
    /// When true, non-read requests alternate update/remove by a coin
    /// flip; when false they are all updates (hash structures).
    pub removes: bool,
}

impl Default for TrafficSpec {
    fn default() -> Self {
        Self {
            requests: 64,
            read_pct: 50,
            zipf_theta: 0.99,
            keyspace: 64,
            mean_gap: 0,
            seed: 1,
            removes: true,
        }
    }
}

/// Deterministic open-loop request generator.
///
/// # Examples
///
/// ```
/// use supermem_serve::traffic::{TrafficGen, TrafficSpec};
///
/// let spec = TrafficSpec { requests: 10, ..TrafficSpec::default() };
/// let a: Vec<_> = TrafficGen::new(&spec).collect();
/// let b: Vec<_> = TrafficGen::new(&spec).collect();
/// assert_eq!(a, b, "same spec + seed => same schedule");
/// assert_eq!(a.len(), 10);
/// ```
#[derive(Debug, Clone)]
pub struct TrafficGen {
    rng: SplitMix64,
    /// Cumulative Zipfian mass per rank, scaled to `u64::MAX`.
    cum: Vec<u64>,
    remaining: u64,
    clock: u64,
    read_pct: u8,
    mean_gap: u64,
    removes: bool,
}

impl TrafficGen {
    /// Builds the generator, precomputing the Zipfian cumulative table.
    ///
    /// # Panics
    ///
    /// Panics if `keyspace` is 0 or `read_pct > 100`.
    pub fn new(spec: &TrafficSpec) -> Self {
        assert!(spec.keyspace > 0, "keyspace must be positive");
        assert!(spec.read_pct <= 100, "read_pct out of range");
        // Zipfian: P(rank r) ∝ 1 / r^θ over ranks 1..=keyspace. The
        // cumulative table maps a uniform u64 draw to a rank by binary
        // search; θ = 0 degenerates to uniform.
        let n = spec.keyspace as usize;
        let mut cum = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for r in 1..=n {
            total += (r as f64).powf(-spec.zipf_theta);
            cum.push(total);
        }
        let scale = u64::MAX as f64 / total;
        let cum: Vec<u64> = cum.iter().map(|&c| (c * scale) as u64).collect();
        Self {
            rng: SplitMix64::new(spec.seed),
            cum,
            remaining: spec.requests,
            clock: 0,
            read_pct: spec.read_pct,
            mean_gap: spec.mean_gap,
            removes: spec.removes,
        }
    }

    /// Draws one Zipfian rank in `0..keyspace` (rank 0 is the hottest).
    fn zipf_rank(&mut self) -> u64 {
        let u = self.rng.next_u64();
        self.cum.partition_point(|&c| c < u) as u64
    }

    /// Draws one exponential inter-arrival gap with the configured mean
    /// (inverse-CDF on a 53-bit uniform), at least 1 cycle.
    fn poisson_gap(&mut self) -> u64 {
        if self.mean_gap == 0 {
            return 0;
        }
        // Uniform in (0, 1]: never ln(0).
        let u = ((self.rng.next_u64() >> 11) + 1) as f64 / (1u64 << 53) as f64;
        let gap = -(self.mean_gap as f64) * u.ln();
        (gap.round() as u64).max(1)
    }
}

impl Iterator for TrafficGen {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.clock += self.poisson_gap();
        let key = self.zipf_rank();
        let kind = if self.rng.next_below(100) < u64::from(self.read_pct) {
            ReqKind::Read
        } else if self.removes && self.rng.next_below(2) == 0 {
            ReqKind::Remove
        } else {
            ReqKind::Update
        };
        let value = match kind {
            ReqKind::Update => self.rng.next_u64() | 1,
            _ => 0,
        };
        Some(Request {
            at: self.clock,
            kind,
            key,
            value,
        })
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // unwrap/expect are fine in tests
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = TrafficSpec {
            requests: 200,
            mean_gap: 50,
            ..TrafficSpec::default()
        };
        let a: Vec<Request> = TrafficGen::new(&spec).collect();
        let b: Vec<Request> = TrafficGen::new(&spec).collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
    }

    #[test]
    fn arrivals_are_monotone_and_spaced() {
        let spec = TrafficSpec {
            requests: 100,
            mean_gap: 100,
            ..TrafficSpec::default()
        };
        let reqs: Vec<Request> = TrafficGen::new(&spec).collect();
        for w in reqs.windows(2) {
            assert!(w[1].at > w[0].at, "open-loop arrivals must advance");
        }
        let span = reqs.last().unwrap().at - reqs[0].at;
        let mean = span as f64 / 99.0;
        assert!(
            (50.0..200.0).contains(&mean),
            "empirical mean gap {mean:.1} far from 100"
        );
    }

    #[test]
    fn backlogged_traffic_arrives_at_zero() {
        let spec = TrafficSpec {
            requests: 10,
            mean_gap: 0,
            ..TrafficSpec::default()
        };
        assert!(TrafficGen::new(&spec).all(|r| r.at == 0));
    }

    #[test]
    fn zipf_skew_concentrates_on_low_ranks() {
        let spec = TrafficSpec {
            requests: 2000,
            read_pct: 100,
            zipf_theta: 0.99,
            keyspace: 1000,
            ..TrafficSpec::default()
        };
        let hot = TrafficGen::new(&spec).filter(|r| r.key < 10).count();
        // Under θ=0.99 the top 1% of ranks draw a large share; under
        // uniform they would draw ~1%.
        assert!(hot > 400, "only {hot}/2000 hits on the 10 hottest keys");
        let spec_uniform = TrafficSpec {
            zipf_theta: 0.0,
            ..spec
        };
        let hot_u = TrafficGen::new(&spec_uniform)
            .filter(|r| r.key < 10)
            .count();
        assert!(hot_u < 60, "uniform draw is implausibly skewed: {hot_u}");
    }

    #[test]
    fn read_pct_shapes_the_mix() {
        let spec = TrafficSpec {
            requests: 1000,
            read_pct: 80,
            ..TrafficSpec::default()
        };
        let reads = TrafficGen::new(&spec)
            .filter(|r| r.kind == ReqKind::Read)
            .count();
        assert!((700..900).contains(&reads), "reads = {reads}");
        let spec = TrafficSpec {
            read_pct: 0,
            removes: false,
            ..spec
        };
        assert!(TrafficGen::new(&spec).all(|r| r.kind == ReqKind::Update));
    }

    #[test]
    fn keys_stay_inside_the_keyspace() {
        let spec = TrafficSpec {
            requests: 500,
            keyspace: 7,
            ..TrafficSpec::default()
        };
        assert!(TrafficGen::new(&spec).all(|r| r.key < 7));
    }
}
