//! `supermem-serve`: a concurrent serving engine over shared lock-free
//! persistent data structures.
//!
//! The paper's micro-benchmarks are closed-loop and private: each core
//! runs its own workload in its own region, and throughput is the only
//! number. This crate asks the question a storage service would ask:
//! what happens to **tail latency** when N cores hammer one *shared*
//! structure through the secure-memory write path — including while a
//! minor-counter overflow forces a page re-encryption storm, or after a
//! bank fail-stop degrades the media?
//!
//! * [`service`] — a Treiber stack, a Michael-Scott queue, and a
//!   bucketed hash whose CAS linearization points are made
//!   crash-recoverable with per-core descriptor slots
//!   ([`supermem_persist::SlotArray`]), verified against a volatile
//!   shadow model.
//! * [`traffic`] — deterministic open-loop traffic: Zipfian key skew,
//!   configurable read/write mix, Poisson arrivals.
//! * [`engine`] — the multi-core issue loop: earliest-ready-core
//!   arbitration in simulated time, sojourn-latency accounting,
//!   p50/p99/p999 from [`supermem_sim::Log2Histogram`] telemetry.
//! * [`torture`] — a differential crash campaign aimed *inside* the
//!   CAS windows, with an exact two-state oracle per case.
//!
//! # Examples
//!
//! ```
//! use supermem_serve::engine::{run_serve, ServeConfig};
//! use supermem_serve::service::StructureKind;
//!
//! let cfg = ServeConfig {
//!     structure: StructureKind::Queue,
//!     cores: 2,
//!     requests: 16,
//!     region_len: 1 << 18,
//!     ..ServeConfig::default()
//! };
//! let report = run_serve(&cfg).unwrap();
//! assert_eq!(report.completed, 16);
//! assert!(report.p50 <= report.p999);
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod schedule;
pub mod service;
pub mod torture;
pub mod traffic;
mod workload;

pub use engine::{run_serve, run_serve_observed, ServeConfig, ServeError, ServeReport};
pub use schedule::{DetachedSchedule, Directive, PointLog, SchedPoint, Schedule};
pub use service::{
    recover, walk_nodes, NodeView, RecoverError, RecoveredServe, Service, ServiceLayout,
    StructureKind,
};
pub use torture::{run_serve_torture, ServeCase, ServeTortureConfig, ServeTortureReport};
pub use traffic::{ReqKind, Request, TrafficGen, TrafficSpec};
pub use workload::ServeWorkload;
