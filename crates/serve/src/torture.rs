//! Crash torture inside the CAS windows of the served structures.
//!
//! The core torture engine attacks an undo-logged transaction; this
//! one attacks the *lock-free* protocol: one mutating operation on a
//! warmed-up shared structure, crashed (and optionally media-faulted)
//! after every write-queue append boundary it crosses — which places
//! crash points between the descriptor announce, the node persist, the
//! linearizing pointer store, and the completion record.
//!
//! The oracle is exact: with a single tortured operation there are only
//! two legal recovered states, *before* (the op never linearized) and
//! *after* (it did). Recovery ([`crate::service::recover`]) must
//! produce one of them — cross-checked against the descriptor slot: a
//! `DONE` descriptor with a *before* structure (or vice versa for a
//! still-`PENDING` one that clearly applied... which is legal — pending
//! resolves by inspection) is classified honestly. Anything else must
//! be *detected*, never silent.

use supermem::nvm::{FaultClass, FaultSpec};
use supermem::persist::{DirectMem, RecoveredMemory, SlotState};
use supermem::sim::Config;
use supermem::sweep::sweep;
use supermem::torture::Classification;
use supermem::Scheme;

use crate::service::{recover, Service, ServiceLayout, StepResult, StructureKind, OP_UPDATE};
use crate::traffic::{ReqKind, Request};

const BASE: u64 = 0x10_0000;
const REGION: u64 = 1 << 16;
const CORES: usize = 2;
const BUCKETS: u64 = 4;

/// One fully determined serve-torture case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeCase {
    /// Scheme under torture.
    pub scheme: Scheme,
    /// Structure under torture.
    pub structure: StructureKind,
    /// Fault class to inject, or `None` for the crash-only baseline.
    pub class: Option<FaultClass>,
    /// Crash after this many write-queue appends into the tortured op.
    pub point: u64,
    /// Seed fixing the injection's choices.
    pub seed: u64,
}

impl ServeCase {
    /// The CLI invocation reproducing this case's campaign slice.
    pub fn repro(&self) -> String {
        format!(
            "supermem serve --torture --structure {} --scheme {} --fault {} --point {} --seed {}",
            self.structure,
            self.scheme.name().to_ascii_lowercase(),
            self.class.map_or("none", FaultClass::name),
            self.point,
            self.seed
        )
    }
}

/// The outcome of one executed [`ServeCase`].
#[derive(Debug, Clone)]
pub struct ServeCaseResult {
    /// The case that ran.
    pub case: ServeCase,
    /// How it was classified.
    pub classification: Classification,
    /// Human-readable evidence.
    pub detail: String,
}

/// Everything a serve-torture campaign produced.
#[derive(Debug, Clone)]
pub struct ServeTortureReport {
    /// Every executed case, in sweep order.
    pub results: Vec<ServeCaseResult>,
}

impl ServeTortureReport {
    /// Total injections executed.
    pub fn total(&self) -> u64 {
        self.results.len() as u64
    }

    /// The silent-corruption cases (a passing campaign has none).
    pub fn silent(&self) -> Vec<&ServeCaseResult> {
        self.results
            .iter()
            .filter(|r| r.classification == Classification::Silent)
            .collect()
    }

    /// Count of cases with the given classification.
    pub fn count(&self, c: Classification) -> u64 {
        self.results
            .iter()
            .filter(|r| r.classification == c)
            .count() as u64
    }
}

/// Campaign shape.
#[derive(Debug, Clone)]
pub struct ServeTortureConfig {
    /// Schemes to torture.
    pub schemes: Vec<Scheme>,
    /// Structures to torture.
    pub structures: Vec<StructureKind>,
    /// Fault classes (`None` = crash-only baseline).
    pub classes: Vec<Option<FaultClass>>,
    /// Injection seeds.
    pub seeds: Vec<u64>,
    /// Restrict to one crash point, if set.
    pub point: Option<u64>,
}

impl Default for ServeTortureConfig {
    fn default() -> Self {
        let mut classes: Vec<Option<FaultClass>> = vec![None];
        classes.extend(FaultClass::ALL.into_iter().map(Some));
        Self {
            schemes: vec![Scheme::SuperMem],
            structures: StructureKind::ALL.to_vec(),
            classes,
            seeds: vec![1, 2],
            point: None,
        }
    }
}

/// The prologue ops that warm the structure before the tortured op, so
/// crash points land on a non-trivial structure (for stacks/queues the
/// tortured pop/dequeue has something to remove).
fn prologue(structure: StructureKind) -> Vec<Request> {
    let mk = |kind, key, value| Request {
        at: 0,
        kind,
        key,
        value,
    };
    match structure {
        StructureKind::Stack | StructureKind::Queue => vec![
            mk(ReqKind::Update, 1, 0x101),
            mk(ReqKind::Update, 2, 0x202),
            mk(ReqKind::Update, 3, 0x303),
            mk(ReqKind::Remove, 0, 0),
        ],
        StructureKind::Hash => vec![
            mk(ReqKind::Update, 1, 0x101),
            mk(ReqKind::Update, 5, 0x505), // same bucket as 1 (mod 4)
            mk(ReqKind::Update, 2, 0x202),
        ],
    }
}

/// The tortured mutation (always a core-0 write so the descriptor slot
/// under test is slot 0).
fn tortured_request(structure: StructureKind, seed: u64) -> Request {
    let remove = structure != StructureKind::Hash && seed.is_multiple_of(2);
    Request {
        at: 0,
        kind: if remove {
            ReqKind::Remove
        } else {
            ReqKind::Update
        },
        key: 7 + seed,
        value: 0x7000 + seed,
    }
}

fn run_op(svc: &mut Service, mem: &mut DirectMem, core: usize, req: &Request) {
    svc.start_op(mem, core, req);
    while svc.step(mem, core) == StepResult::InFlight {}
}

/// Builds the warmed, durably-shut-down base system and returns it with
/// the service handle (shadow included) positioned before the tortured
/// op.
fn base_system(cfg: &Config, structure: StructureKind) -> (DirectMem, Service) {
    let mut mem = DirectMem::new(cfg);
    let mut svc = Service::new(&mut mem, structure, BASE, REGION, CORES, BUCKETS);
    for req in prologue(structure) {
        run_op(&mut svc, &mut mem, 1, &req);
    }
    mem.shutdown();
    (mem, svc)
}

/// Number of write-queue append boundaries the tortured op crosses —
/// the crash points the sweep visits (dry run, no faults).
pub fn crash_points(scheme: Scheme, structure: StructureKind, seed: u64) -> u64 {
    let cfg = scheme.apply(Config::default());
    let (base, svc) = base_system(&cfg, structure);
    let mut dry = base.clone();
    let mut dry_svc = svc;
    let before = dry.controller().append_events();
    run_op(
        &mut dry_svc,
        &mut dry,
        0,
        &tortured_request(structure, seed),
    );
    dry.shutdown();
    dry.controller().append_events() - before
}

/// Executes one case end to end: warm the structure, capture the
/// *before* oracle, arm the crash, inject, run the tortured op, image,
/// recover, classify.
pub fn run_case(tc: &ServeCase) -> ServeCaseResult {
    let cfg = tc.scheme.apply(Config::default());
    let spec = tc.class.map(|class| FaultSpec {
        class,
        seed: tc.seed,
    });

    let (base, svc) = base_system(&cfg, tc.structure);
    let layout = svc.layout();
    let before = svc.shadow_entries();

    // The *after* oracle: the tortured op completed on an unfaulted
    // clone.
    let req = tortured_request(tc.structure, tc.seed);
    let mut oracle_svc = svc.clone();
    let mut oracle_mem = base.clone();
    run_op(&mut oracle_svc, &mut oracle_mem, 0, &req);
    let after = oracle_svc.shadow_entries();

    let mut mem = base.clone();
    let mut tsvc = svc;
    mem.controller_mut().arm_crash_after_appends(tc.point);
    if let Some(spec) = spec {
        if spec.class.is_power_event() {
            mem.controller_mut().set_fault_plan(spec);
        }
    }
    run_op(&mut tsvc, &mut mem, 0, &req);

    let mut machine = if let Some(m) = mem.controller_mut().take_machine_crash_image() {
        m
    } else {
        mem.shutdown();
        mem.machine_crash_now()
    };
    if let Some(spec) = spec {
        if !spec.class.is_power_event() {
            let ch = (tc.seed as usize) % machine.channels.len();
            machine.channels[ch].store.strike_faults(spec);
        }
    }

    classify(tc, &cfg, &layout, &before, &after, machine)
}

fn classify(
    tc: &ServeCase,
    cfg: &Config,
    layout: &ServiceLayout,
    before: &[(u64, u64)],
    after: &[(u64, u64)],
    machine: supermem::memctrl::MachineCrashImage,
) -> ServeCaseResult {
    let done = |classification, detail| ServeCaseResult {
        case: *tc,
        classification,
        detail,
    };

    let mut rec = match RecoveredMemory::from_machine_image_checked(cfg, machine) {
        Ok(rec) => rec,
        Err(e) => {
            return done(
                Classification::Detected,
                format!("image rebuild refused: {e}"),
            )
        }
    };
    let recovered = match recover(&mut rec, layout) {
        Ok(r) => r,
        Err(e) => return done(Classification::Detected, format!("{e}")),
    };

    // Structure-level differential check against the exact oracle.
    let matches_before = recovered.entries == before;
    let matches_after = recovered.entries == after;

    // Descriptor cross-check: slot 0 belongs to the tortured op. A DONE
    // descriptor for it promises the op linearized — a *before*
    // structure under that promise is a lie (the completion record
    // persisted before the linearizing store did).
    let slot0 = recovered.slots[0];
    let slot_lies = slot0.state == SlotState::Done
        && slot0.rec.seq == 1
        && matches_before
        && !matches_after
        // An update that "completed" must have published its node; an
        // empty-remove completion (result 0 on a remove) legally leaves
        // the structure unchanged.
        && !(slot0.rec.op != OP_UPDATE && slot0.result == 0);

    if (matches_before || matches_after) && !slot_lies {
        let which = if matches_after {
            Classification::RecoveredNew
        } else {
            Classification::RecoveredOld
        };
        return done(
            which,
            format!(
                "{} entries intact (slot0 {:?})",
                if matches_after { "after" } else { "before" },
                slot0.state
            ),
        );
    }

    // Wrong data (or a lying descriptor): acceptable only if something
    // noticed.
    let fc = rec.store().fault_counters();
    let dirty_shutdown = fc.torn_entries > 0 || fc.dropped_writes > 0;
    if fc.any_detected() || dirty_shutdown || rec.media_failures() > 0 {
        return done(
            Classification::Detected,
            format!(
                "degraded structure with detection signals: ecc_detections={} \
                 lost_reads={} transient_failures={} torn_entries={} \
                 dropped_writes={} media_failures={} slot_lies={slot_lies}",
                fc.ecc_detections,
                fc.lost_reads,
                fc.transient_failures,
                fc.torn_entries,
                fc.dropped_writes,
                rec.media_failures()
            ),
        );
    }
    done(
        Classification::Silent,
        format!(
            "recovered {} entries match neither oracle ({} before / {} after) \
             or the descriptor lied (slot_lies={slot_lies}) and nothing detected it",
            recovered.entries.len(),
            before.len(),
            after.len()
        ),
    )
}

/// Runs the full campaign: crash points per (scheme, structure, seed)
/// via dry runs, then every (class, point, seed) fans out over the
/// parallel sweep engine.
pub fn run_serve_torture(cfg: &ServeTortureConfig) -> ServeTortureReport {
    let mut cases: Vec<ServeCase> = Vec::new();
    for &scheme in &cfg.schemes {
        for &structure in &cfg.structures {
            for &seed in &cfg.seeds {
                let total = crash_points(scheme, structure, seed);
                let points: Vec<u64> = match cfg.point {
                    Some(p) => vec![p.clamp(1, total)],
                    None => (1..=total).collect(),
                };
                for &class in &cfg.classes {
                    for &point in &points {
                        cases.push(ServeCase {
                            scheme,
                            structure,
                            class,
                            point,
                            seed,
                        });
                    }
                }
            }
        }
    }
    let results = sweep(&cases, run_case);
    ServeTortureReport { results }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn campaign(
        structure: StructureKind,
        class: Option<FaultClass>,
        seeds: &[u64],
    ) -> ServeTortureReport {
        run_serve_torture(&ServeTortureConfig {
            schemes: vec![Scheme::SuperMem],
            structures: vec![structure],
            classes: vec![class],
            seeds: seeds.to_vec(),
            point: None,
        })
    }

    #[test]
    fn unfaulted_cas_window_crashes_recover_an_oracle_state() {
        for structure in StructureKind::ALL {
            let report = campaign(structure, None, &[1, 2]);
            assert!(report.total() > 0, "{structure}: no crash points");
            for r in &report.results {
                assert!(
                    matches!(
                        r.classification,
                        Classification::RecoveredOld | Classification::RecoveredNew
                    ),
                    "{}: un-faulted case must recover cleanly, got {} ({})",
                    r.case.repro(),
                    r.classification,
                    r.detail
                );
            }
            // The sweep must actually straddle the linearization point:
            // both oracle states must appear somewhere.
            assert!(
                report.count(Classification::RecoveredOld) > 0
                    && report.count(Classification::RecoveredNew) > 0,
                "{structure}: crash points never straddled the CAS"
            );
        }
    }

    #[test]
    fn torn_drains_in_cas_windows_never_corrupt_silently() {
        for structure in StructureKind::ALL {
            let report = campaign(structure, Some(FaultClass::Torn), &[1, 2]);
            assert!(
                report.silent().is_empty(),
                "{structure}: torn drain slipped through: {:?}",
                report.silent().first().map(|r| &r.detail)
            );
        }
    }

    #[test]
    fn double_flips_on_the_structure_are_detected() {
        let report = campaign(StructureKind::Stack, Some(FaultClass::DoubleFlip), &[1, 2]);
        assert!(report.silent().is_empty());
    }

    #[test]
    fn bank_failures_in_cas_windows_never_lie() {
        let report = campaign(StructureKind::Queue, Some(FaultClass::BankFail), &[1, 2]);
        assert!(report.silent().is_empty());
    }

    #[test]
    fn repro_line_names_the_case() {
        let tc = ServeCase {
            scheme: Scheme::SuperMem,
            structure: StructureKind::Hash,
            class: Some(FaultClass::Torn),
            point: 3,
            seed: 2,
        };
        assert_eq!(
            tc.repro(),
            "supermem serve --torture --structure hash --scheme supermem --fault torn --point 3 --seed 2"
        );
    }
}
