//! Adapter registering a served structure behind the unified
//! [`Workload`] trait, so the spec-driven runner machinery (checker
//! harnesses, sweeps) can drive a shared structure exactly like the
//! paper's workloads — one request to completion per `step`.
//!
//! The recoverable KV store registers the same way (`KvWorkload` in
//! `supermem-kv`), driven by this crate's [`TrafficGen`]; it
//! additionally overrides the trait's `recover()` with its WAL+snapshot
//! recovery protocol.

use supermem::persist::{PMem, TxnError};
use supermem::workloads::Workload;

use crate::service::{Service, StepResult, StructureKind};
use crate::traffic::{TrafficGen, TrafficSpec};

/// A served structure driven single-threaded through the workload
/// trait: every `step` runs one generated request to completion on
/// core 0.
///
/// # Examples
///
/// ```
/// use supermem::persist::VecMem;
/// use supermem::workloads::Workload;
/// use supermem_serve::{ServeWorkload, StructureKind, TrafficSpec};
///
/// let mut mem = VecMem::new();
/// let mut w: Box<dyn Workload<VecMem>> = Box::new(ServeWorkload::new(
///     &mut mem,
///     StructureKind::Stack,
///     0x1000,
///     1 << 18,
///     8,
///     TrafficSpec::default(),
/// ));
/// for _ in 0..10 {
///     w.step(&mut mem).unwrap();
/// }
/// assert_eq!(w.committed(), 10);
/// w.verify(&mut mem).unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct ServeWorkload {
    service: Service,
    traffic: TrafficGen,
}

impl ServeWorkload {
    /// Initializes the structure in `[base, base + region_len)` and the
    /// traffic stream that will drive it.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate layout (see
    /// [`Service::new`](crate::service::Service::new)).
    pub fn new<M: PMem>(
        mem: &mut M,
        kind: StructureKind,
        base: u64,
        region_len: u64,
        nbuckets: u64,
        mut spec: TrafficSpec,
    ) -> Self {
        spec.removes = kind != StructureKind::Hash;
        spec.requests = u64::MAX; // the runner decides how many steps
        Self {
            service: Service::new(mem, kind, base, region_len, 1, nbuckets),
            traffic: TrafficGen::new(&spec),
        }
    }

    /// The underlying service (layout access, retry counters).
    pub fn service(&self) -> &Service {
        &self.service
    }
}

impl<M: PMem> Workload<M> for ServeWorkload {
    fn name(&self) -> &'static str {
        match self.service.layout().kind {
            StructureKind::Stack => "serve-stack",
            StructureKind::Queue => "serve-queue",
            StructureKind::Hash => "serve-hash",
        }
    }

    fn step(&mut self, mem: &mut M) -> Result<(), TxnError> {
        let Some(req) = self.traffic.next() else {
            unreachable!("traffic stream is unbounded")
        };
        self.service.start_op(mem, 0, &req);
        while self.service.step(mem, 0) == StepResult::InFlight {}
        Ok(())
    }

    fn verify(&mut self, mem: &mut M) -> Result<(), String> {
        self.service.verify(mem)
    }

    fn committed(&self) -> u64 {
        self.service.completed()
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // unwrap/expect are fine in tests
mod tests {
    use super::*;
    use supermem::persist::VecMem;

    #[test]
    fn trait_object_drives_every_structure() {
        for kind in StructureKind::ALL {
            let mut mem = VecMem::new();
            let mut w: Box<dyn Workload<VecMem>> = Box::new(ServeWorkload::new(
                &mut mem,
                kind,
                0x1000,
                1 << 18,
                8,
                TrafficSpec::default(),
            ));
            for _ in 0..25 {
                w.step(&mut mem).unwrap();
            }
            assert_eq!(w.committed(), 25, "{kind}");
            w.verify(&mut mem).unwrap();
            assert!(w.name().starts_with("serve-"));
        }
    }
}
