//! Run statistics.
//!
//! [`Stats`] is a plain aggregate of the counters the paper's evaluation
//! reports: NVM read/write request counts (split into data and counter
//! traffic), coalescing activity, counter-cache hit rates, write-queue
//! stalls, and per-transaction latencies. Components receive `&mut Stats`
//! and bump fields directly; nothing here is concurrent.

use crate::time::Cycle;

/// Aggregated counters for one simulation run.
///
/// # Examples
///
/// ```
/// use supermem_sim::Stats;
///
/// let mut s = Stats::default();
/// s.nvm_data_writes += 10;
/// s.nvm_counter_writes += 10;
/// s.counter_writes_coalesced += 5;
/// assert_eq!(s.nvm_writes_total(), 20);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Stats {
    /// Data-line write requests issued to NVM banks.
    pub nvm_data_writes: u64,
    /// Counter-line write requests issued to NVM banks.
    pub nvm_counter_writes: u64,
    /// Data-line read requests served by NVM banks.
    pub nvm_data_reads: u64,
    /// Counter-line read requests served by NVM banks (counter-cache misses).
    pub nvm_counter_reads: u64,
    /// Counter writes removed from the write queue by CWC.
    pub counter_writes_coalesced: u64,
    /// Counter-cache hits.
    pub counter_cache_hits: u64,
    /// Counter-cache misses.
    pub counter_cache_misses: u64,
    /// Dirty counter lines written back on eviction (write-back mode).
    pub counter_cache_writebacks: u64,
    /// Cycles spent blocked waiting for write-queue space.
    pub wq_stall_cycles: Cycle,
    /// Number of appends that found the write queue full.
    pub wq_full_events: u64,
    /// Reads forwarded from a pending write-queue entry.
    pub wq_read_forwards: u64,
    /// L1 hits / L2 hits / L3 hits / memory accesses from the core side.
    pub l1_hits: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L3 hits.
    pub l3_hits: u64,
    /// Demand accesses that went to main memory.
    pub mem_accesses: u64,
    /// Cache-line flushes (`clwb`) issued by the program.
    pub clwb_ops: u64,
    /// Memory fences (`sfence`) issued by the program.
    pub sfence_ops: u64,
    /// Pages re-encrypted due to minor-counter overflow.
    pub pages_reencrypted: u64,
    /// Integrity-tree verifications performed on counter fetches.
    pub integrity_verifications: u64,
    /// Integrity-tree verification failures (active tampering detected).
    pub integrity_violations: u64,
    /// Tree node-group line writes issued to NVM banks (streaming
    /// engine only; kept out of [`Stats::nvm_writes_total`] so the
    /// eager figures stay comparable).
    pub nvm_tree_writes: u64,
    /// Leaf updates armed in the streaming pending-update cache.
    pub tree_updates_enqueued: u64,
    /// Armed leaf updates absorbed in place by an already-pending entry
    /// for the same page.
    pub tree_updates_coalesced: u64,
    /// Pending leaf updates propagated to the root (eviction, fence, or
    /// shutdown flush).
    pub tree_propagations: u64,
    /// Propagations forced by pending-cache eviction specifically.
    pub tree_evictions: u64,
    /// Retries of NVM reads that failed transiently.
    pub read_retries: u64,
    /// Single-bit media errors ECC corrected on the read path.
    pub ecc_corrections: u64,
    /// Reads answered with poison (zeroes) after an unrecoverable media
    /// error or retry exhaustion.
    pub poisoned_reads: u64,
    /// Writes dropped in degraded mode because their bank has failed.
    pub dropped_writes: u64,
    /// Committed transactions.
    pub txn_commits: u64,
    /// Per-transaction latencies in cycles.
    pub txn_latencies: Vec<Cycle>,
    /// Per-bank write counts (indexed by bank).
    pub bank_writes: Vec<u64>,
}

impl Stats {
    /// Creates statistics for a machine with `banks` NVM banks.
    pub fn new(banks: usize) -> Self {
        Self {
            bank_writes: vec![0; banks],
            ..Self::default()
        }
    }

    /// Total write requests issued to NVM (data + counters).
    pub fn nvm_writes_total(&self) -> u64 {
        self.nvm_data_writes + self.nvm_counter_writes
    }

    /// Total read requests issued to NVM (data + counters).
    pub fn nvm_reads_total(&self) -> u64 {
        self.nvm_data_reads + self.nvm_counter_reads
    }

    /// Counter-cache hit rate in `[0, 1]`; `None` when there were no
    /// counter-cache accesses.
    pub fn counter_cache_hit_rate(&self) -> Option<f64> {
        let total = self.counter_cache_hits + self.counter_cache_misses;
        (total > 0).then(|| self.counter_cache_hits as f64 / total as f64)
    }

    /// Records the latency of one committed transaction.
    pub fn record_txn(&mut self, latency: Cycle) {
        self.txn_commits += 1;
        self.txn_latencies.push(latency);
    }

    /// Mean transaction latency in cycles; `None` if no transactions ran.
    pub fn mean_txn_latency(&self) -> Option<f64> {
        if self.txn_latencies.is_empty() {
            return None;
        }
        let sum: u128 = self.txn_latencies.iter().map(|&c| c as u128).sum();
        Some(sum as f64 / self.txn_latencies.len() as f64)
    }

    /// The `p`-quantile (0.0..=1.0) of transaction latency, by
    /// nearest-rank on a sorted copy; `None` if no transactions ran.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn txn_latency_quantile(&self, p: f64) -> Option<Cycle> {
        assert!((0.0..=1.0).contains(&p), "quantile must be in [0,1]");
        if self.txn_latencies.is_empty() {
            return None;
        }
        let mut sorted = self.txn_latencies.clone();
        sorted.sort_unstable();
        let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        Some(sorted[rank - 1])
    }

    /// Folds another run's counters into this one (used by the multi-core
    /// driver to merge per-core statistics).
    pub fn merge(&mut self, other: &Stats) {
        self.nvm_data_writes += other.nvm_data_writes;
        self.nvm_counter_writes += other.nvm_counter_writes;
        self.nvm_data_reads += other.nvm_data_reads;
        self.nvm_counter_reads += other.nvm_counter_reads;
        self.counter_writes_coalesced += other.counter_writes_coalesced;
        self.counter_cache_hits += other.counter_cache_hits;
        self.counter_cache_misses += other.counter_cache_misses;
        self.counter_cache_writebacks += other.counter_cache_writebacks;
        self.wq_stall_cycles += other.wq_stall_cycles;
        self.wq_full_events += other.wq_full_events;
        self.wq_read_forwards += other.wq_read_forwards;
        self.l1_hits += other.l1_hits;
        self.l2_hits += other.l2_hits;
        self.l3_hits += other.l3_hits;
        self.mem_accesses += other.mem_accesses;
        self.clwb_ops += other.clwb_ops;
        self.sfence_ops += other.sfence_ops;
        self.pages_reencrypted += other.pages_reencrypted;
        self.integrity_verifications += other.integrity_verifications;
        self.integrity_violations += other.integrity_violations;
        self.nvm_tree_writes += other.nvm_tree_writes;
        self.tree_updates_enqueued += other.tree_updates_enqueued;
        self.tree_updates_coalesced += other.tree_updates_coalesced;
        self.tree_propagations += other.tree_propagations;
        self.tree_evictions += other.tree_evictions;
        self.read_retries += other.read_retries;
        self.ecc_corrections += other.ecc_corrections;
        self.poisoned_reads += other.poisoned_reads;
        self.dropped_writes += other.dropped_writes;
        self.txn_commits += other.txn_commits;
        self.txn_latencies.extend_from_slice(&other.txn_latencies);
        if self.bank_writes.len() < other.bank_writes.len() {
            self.bank_writes.resize(other.bank_writes.len(), 0);
        }
        for (dst, src) in self.bank_writes.iter_mut().zip(&other.bank_writes) {
            *dst += src;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_data_and_counter_traffic() {
        let mut s = Stats::new(8);
        s.nvm_data_writes = 7;
        s.nvm_counter_writes = 3;
        s.nvm_data_reads = 2;
        s.nvm_counter_reads = 5;
        assert_eq!(s.nvm_writes_total(), 10);
        assert_eq!(s.nvm_reads_total(), 7);
    }

    #[test]
    fn hit_rate_none_without_accesses() {
        assert_eq!(Stats::default().counter_cache_hit_rate(), None);
    }

    #[test]
    fn hit_rate_fraction() {
        let s = Stats {
            counter_cache_hits: 3,
            counter_cache_misses: 1,
            ..Stats::default()
        };
        assert_eq!(s.counter_cache_hit_rate(), Some(0.75));
    }

    #[test]
    fn txn_latency_statistics() {
        let mut s = Stats::default();
        for lat in [100u64, 200, 300, 400] {
            s.record_txn(lat);
        }
        assert_eq!(s.txn_commits, 4);
        assert_eq!(s.mean_txn_latency(), Some(250.0));
        assert_eq!(s.txn_latency_quantile(0.5), Some(200));
        assert_eq!(s.txn_latency_quantile(1.0), Some(400));
        assert_eq!(s.txn_latency_quantile(0.0), Some(100));
    }

    #[test]
    fn quantile_none_when_empty() {
        assert_eq!(Stats::default().txn_latency_quantile(0.5), None);
        assert_eq!(Stats::default().mean_txn_latency(), None);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn quantile_rejects_out_of_range() {
        let mut s = Stats::default();
        s.record_txn(1);
        let _ = s.txn_latency_quantile(1.5);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Stats::new(2);
        a.nvm_data_writes = 1;
        a.bank_writes[0] = 4;
        a.record_txn(10);
        let mut b = Stats::new(2);
        b.nvm_data_writes = 2;
        b.bank_writes[1] = 6;
        b.record_txn(20);
        a.merge(&b);
        assert_eq!(a.nvm_data_writes, 3);
        assert_eq!(a.bank_writes, vec![4, 6]);
        assert_eq!(a.txn_commits, 2);
        assert_eq!(a.txn_latencies, vec![10, 20]);
    }

    #[test]
    fn merge_grows_bank_vector() {
        let mut a = Stats::new(1);
        let mut b = Stats::new(4);
        b.bank_writes[3] = 9;
        a.merge(&b);
        assert_eq!(a.bank_writes.len(), 4);
        assert_eq!(a.bank_writes[3], 9);
    }
}
