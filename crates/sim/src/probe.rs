//! Probe/observer layer: fine-grained event stream from the simulated
//! memory system, plus reusable collectors.
//!
//! The memory controller emits [`Event`]s into a [`Probes`] hub. With no
//! observer attached the hub is a single empty-`Vec` branch on the hot path
//! and the event payload is never even constructed (emission sites pass a
//! closure). Attaching an [`Observer`] — typically the batteries-included
//! [`Telemetry`] collector — turns the stream on without perturbing the
//! simulation: observers see events, they never feed back into timing.
//!
//! # Examples
//!
//! ```
//! use supermem_sim::probe::{Event, Log2Histogram, Observer, Probes};
//!
//! /// Counts write-queue enqueues and histograms the queue occupancy.
//! #[derive(Debug, Default, Clone)]
//! struct EnqueueWatcher {
//!     enqueues: u64,
//!     occupancy: Log2Histogram,
//! }
//!
//! impl Observer for EnqueueWatcher {
//!     fn on_event(&mut self, ev: &Event) {
//!         if let Event::WqEnqueue { occupancy, .. } = ev {
//!             self.enqueues += 1;
//!             self.occupancy.record(*occupancy as u64);
//!         }
//!     }
//!     fn box_clone(&self) -> Box<dyn Observer> {
//!         Box::new(self.clone())
//!     }
//!     fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
//!         self
//!     }
//! }
//!
//! let mut probes = Probes::default();
//! probes.attach(Box::new(EnqueueWatcher::default()));
//! probes.emit_with(|| Event::WqEnqueue {
//!     counter: false,
//!     addr: 0x40,
//!     seq: 1,
//!     bank: 0,
//!     at: 10,
//!     occupancy: 1,
//! });
//! ```

use crate::time::Cycle;
use std::any::Any;
use std::fmt;

/// One fine-grained occurrence inside the simulated memory system.
///
/// Variants carry only plain data (cycles, indices, line addresses) so the
/// event stream stays decoupled from controller internals. All cycle values
/// are absolute simulation time.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Event {
    /// A data or counter line entered the ADR-protected write queue.
    WqEnqueue {
        /// `true` for a counter line, `false` for a data line.
        counter: bool,
        /// Line address for data entries; page id for counter entries.
        addr: u64,
        /// Queue sequence number assigned to the entry (monotonic).
        seq: u64,
        /// Destination bank.
        bank: usize,
        /// Cycle at which the entry was appended.
        at: Cycle,
        /// Queue occupancy (entries) immediately after the append.
        occupancy: usize,
    },
    /// A queued line was issued to its NVM bank (left the write queue).
    WqIssue {
        /// `true` for a counter line, `false` for a data line.
        counter: bool,
        /// Line address for data entries; page id for counter entries.
        addr: u64,
        /// Queue sequence number of the departing entry.
        seq: u64,
        /// Destination bank.
        bank: usize,
        /// Cycle at which the entry became eligible to issue.
        ready: Cycle,
        /// Cycle at which the bank actually started servicing it.
        start: Cycle,
        /// Queue occupancy (entries) immediately after the removal.
        occupancy: usize,
    },
    /// Counter write coalescing absorbed a counter write into an entry
    /// already queued for the same counter line.
    WqCoalesce {
        /// Counter page whose queued counter line absorbed the write.
        page: u64,
        /// Queue sequence number of the removed (victim) entry.
        victim_seq: u64,
        /// Cycle of the coalesced (dropped) append.
        at: Cycle,
    },
    /// The 2-line staging register latched a data+counter pair for an
    /// atomic write-queue append (paper Figure 7, `Sto` step). The next
    /// two enqueues must be exactly this pair, at this cycle.
    RegisterStage {
        /// Data line held in the register.
        line: u64,
        /// Counter page paired with the line.
        page: u64,
        /// Cycle the pair leaves the register for the queue.
        at: Cycle,
    },
    /// The write queue was full; the producer stalled waiting for slots.
    WqStall {
        /// Number of free slots the producer needed.
        needed: usize,
        /// Cycle the producer started waiting.
        from: Cycle,
        /// Cycle enough slots became free.
        until: Cycle,
    },
    /// An NVM bank serviced one operation (busy interval).
    BankBusy {
        /// Bank index.
        bank: usize,
        /// First busy cycle.
        start: Cycle,
        /// Cycle the operation completed (exclusive end of interval).
        end: Cycle,
        /// `true` for a write service, `false` for a read.
        write: bool,
    },
    /// The write-through counter cache hit.
    CounterCacheHit {
        /// Counter page that hit.
        page: u64,
        /// Cycle of the lookup.
        at: Cycle,
    },
    /// The write-through counter cache missed (counter fetched from NVM).
    CounterCacheMiss {
        /// Counter page that missed.
        page: u64,
        /// Cycle of the lookup.
        at: Cycle,
    },
    /// An `sfence` retired on a core.
    SfenceRetire {
        /// Core index.
        core: usize,
        /// Cycle the fence retired.
        at: Cycle,
        /// Cycles the core stalled waiting for pending persists (0 if none).
        stall: Cycle,
    },
    /// Minor-counter overflow triggered a page re-encryption.
    ReencryptStart {
        /// Data page being re-encrypted.
        page: u64,
        /// Cycle re-encryption began.
        at: Cycle,
    },
    /// A page re-encryption finished rewriting all its lines.
    ReencryptDone {
        /// Data page that was re-encrypted.
        page: u64,
        /// Number of cache lines rewritten.
        lines: u32,
        /// Cycle the rewrite loop completed.
        at: Cycle,
    },
    /// One line's done-bit was set in the re-encryption status register
    /// (its rewrite entered the ADR domain; a crash now replays only the
    /// remaining lines).
    RsrMarkDone {
        /// Data page being re-encrypted.
        page: u64,
        /// Index of the line within the page whose bit was set.
        idx: u32,
        /// Cycle the rewrite was appended (bit set at the same instant).
        at: Cycle,
    },
    /// The re-encryption status register for a page was retired (all lines
    /// confirmed re-encrypted, RSR slot freed; the resume point after a
    /// crash lands here once recovery completes the page).
    RsrRetired {
        /// Data page whose RSR entry was freed.
        page: u64,
        /// Cycle the RSR entry was released.
        at: Cycle,
    },
    /// One persisted cache-line flush retired, with per-phase timestamps.
    ///
    /// Phases are monotonically ordered: `issued <= counter_ready <=
    /// encrypted <= retired`. `counter_ready - issued` is counter fetch
    /// (cache lookup, NVM counter read, any re-encryption drain),
    /// `encrypted - counter_ready` is crypto (AES pad + register), and
    /// `retired - encrypted` is write-queue admission (slot wait).
    FlushRetired {
        /// Line address being flushed.
        line: u64,
        /// Cycle the flush was issued by the core.
        issued: Cycle,
        /// Cycle the encryption counter was available.
        counter_ready: Cycle,
        /// Cycle the ciphertext was ready.
        encrypted: Cycle,
        /// Cycle the line was accepted into the ADR write queue.
        retired: Cycle,
    },
    /// One memory read was serviced end-to-end.
    ReadServed {
        /// Line address read.
        line: u64,
        /// Cycle the read was issued.
        issued: Cycle,
        /// Cycle data was available.
        done: Cycle,
        /// `true` if data was forwarded from the write queue.
        forwarded: bool,
    },
    /// A transaction committed on a core.
    TxnCommit {
        /// Core index.
        core: usize,
        /// Cycle the transaction began.
        start: Cycle,
        /// Cycle the transaction committed.
        end: Cycle,
    },
    /// A counter write armed a leaf update in the streaming
    /// integrity-tree pending cache (it has not yet reached any
    /// persisted ancestor).
    TreeArm {
        /// Page whose counter line was armed.
        page: u64,
        /// Cycle of the arming.
        at: Cycle,
    },
    /// One armed leaf update was propagated to the root (eviction,
    /// fence, or shutdown flush).
    TreePropagate {
        /// Page whose pending update was folded into the tree.
        page: u64,
        /// Cycle of the propagation.
        at: Cycle,
    },
    /// A propagated node-group line at a strictly-persisted tree level
    /// entered the ADR write queue as first-class write traffic.
    TreeNodeEnqueue {
        /// Digest-array level of the node group (0 = leaf digests).
        level: u32,
        /// Tree-region line id (`level << 32 | group`).
        line: u64,
        /// Queue sequence number assigned to the entry.
        seq: u64,
        /// Cycle at which the entry was appended.
        at: Cycle,
    },
    /// The on-chip root register latched a new value (exactly one per
    /// propagated leaf).
    TreeRootUpdate {
        /// Cycle the root was latched.
        at: Cycle,
    },
}

/// A sink for simulator [`Event`]s.
///
/// Implementations must be pure observers: they may accumulate state but
/// must not influence the simulation (the controller never reads anything
/// back from them). `box_clone`/`as_any_mut` are boilerplate required
/// because the memory controller itself is `Clone` and collectors are
/// retrieved by downcast; see the module-level example for the two-line
/// implementations.
///
/// Observers are `Send` so a controller carrying one can be advanced on
/// an intra-run worker thread (the per-channel barrier engine); they
/// are plain accumulators, so the bound costs implementations nothing.
pub trait Observer: fmt::Debug + Send + 'static {
    /// Called once per emitted event, in simulation order.
    fn on_event(&mut self, ev: &Event);
    /// Clone this observer behind a fresh box ([`Probes`] is `Clone`).
    fn box_clone(&self) -> Box<dyn Observer>;
    /// Downcast support for retrieving concrete collectors after a run.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl Clone for Box<dyn Observer> {
    fn clone(&self) -> Self {
        self.box_clone()
    }
}

/// Hub the memory controller emits events into.
///
/// Default-constructed with no observers, in which case [`Probes::emit_with`]
/// is a single branch and the event closure is never invoked — the hot path
/// is unchanged.
#[derive(Debug, Default, Clone)]
pub struct Probes {
    observers: Vec<Box<dyn Observer>>,
}

impl Probes {
    /// Attach an observer; it receives every event emitted from now on.
    pub fn attach(&mut self, obs: Box<dyn Observer>) {
        self.observers.push(obs);
    }

    /// `true` if at least one observer is attached.
    #[inline]
    pub fn is_active(&self) -> bool {
        !self.observers.is_empty()
    }

    /// Detach and return all observers.
    pub fn take(&mut self) -> Vec<Box<dyn Observer>> {
        std::mem::take(&mut self.observers)
    }

    /// Emit an event, constructing it lazily.
    ///
    /// The closure runs only when at least one observer is attached, so
    /// emission sites can compute event payloads for free in the common
    /// unobserved case.
    #[inline]
    pub fn emit_with(&mut self, make: impl FnOnce() -> Event) {
        if self.observers.is_empty() {
            return;
        }
        let ev = make();
        for obs in &mut self.observers {
            obs.on_event(&ev);
        }
    }
}

/// An observer that records every event verbatim, in emission order.
///
/// This is the replay buffer of the intra-run parallel engine: when
/// sibling channels drain on worker threads, each drains into its own
/// tape, and the tapes are replayed into the shared machine hub in
/// ascending channel order after the join — reproducing byte-for-byte
/// the stream the sequential path emits. Also handy in tests that want
/// to assert on exact event sequences.
///
/// # Examples
///
/// ```
/// use supermem_sim::probe::{Event, EventTape, Probes};
///
/// let mut probes = Probes::default();
/// probes.attach(Box::new(EventTape::default()));
/// probes.emit_with(|| Event::SfenceRetire { core: 0, at: 7, stall: 0 });
/// let tape: Box<EventTape> = probes
///     .take()
///     .remove(0)
///     .as_any_mut()
///     .downcast_mut::<EventTape>()
///     .map(std::mem::take)
///     .map(Box::new)
///     .expect("tape observer");
/// assert_eq!(tape.events().len(), 1);
/// ```
#[derive(Debug, Default, Clone)]
pub struct EventTape {
    events: Vec<Event>,
}

impl EventTape {
    /// The recorded events, in emission order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Consumes the tape, returning the recorded events.
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }
}

impl Observer for EventTape {
    fn on_event(&mut self, ev: &Event) {
        self.events.push(ev.clone());
    }
    fn box_clone(&self) -> Box<dyn Observer> {
        Box::new(self.clone())
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Power-of-two latency histogram with 65 buckets.
///
/// Bucket 0 counts the value 0; bucket `i >= 1` counts values in
/// `[2^(i-1), 2^i)`. Also tracks exact `count`, `sum`, and `max` so
/// aggregate reconciliation against [`crate::Stats`] is lossless.
///
/// # Examples
///
/// ```
/// use supermem_sim::probe::Log2Histogram;
///
/// let mut h = Log2Histogram::default();
/// h.record(0);
/// h.record(5);
/// h.record(5);
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.sum(), 10);
/// assert_eq!(h.buckets()[0], 1); // the zero
/// assert_eq!(h.buckets()[3], 2); // 5 is in [4, 8)
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

// Buckets are summarized rather than dumped; the raw array is noise.
#[allow(clippy::missing_fields_in_debug)]
impl fmt::Debug for Log2Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Log2Histogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("max", &self.max)
            .finish()
    }
}

impl Log2Histogram {
    /// Record one value.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let idx = if value == 0 {
            0
        } else {
            value.ilog2() as usize + 1
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (exact until it saturates at `u64::MAX`,
    /// unreachable for realistic latency streams).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// All 65 buckets; bucket 0 is the value 0, bucket `i` covers
    /// `[2^(i-1), 2^i)`.
    pub fn buckets(&self) -> &[u64; 65] {
        &self.buckets
    }

    /// Inclusive lower bound of bucket `idx`.
    pub fn bucket_lo(idx: usize) -> u64 {
        if idx == 0 {
            0
        } else {
            1u64 << (idx - 1)
        }
    }

    /// `(lo, count)` for each non-empty bucket, in increasing order.
    pub fn nonzero(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_lo(i), c))
    }

    /// The `q`-th percentile (`0.0..=100.0`) of the recorded values:
    /// nearest rank, linearly interpolated toward the *upper* edge of
    /// the matched power-of-two bucket (conservative for tails), and
    /// clamped to the exact observed [`max`] — so the top rank always
    /// reports the true maximum.
    ///
    /// Deterministic: integer arithmetic over the bucket counts, so the
    /// same histogram always reports the same percentile. Returns 0 for
    /// an empty histogram.
    ///
    /// [`max`]: Log2Histogram::max
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 100.0);
        // Nearest rank, 1-based: the smallest rank covering q percent.
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let rank = ((q / 100.0 * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let lo = Self::bucket_lo(i);
                let width = lo; // bucket i >= 1 spans [lo, 2*lo); bucket 0 is {0}
                let k = rank - seen; // 1-based position inside the bucket
                let interp = (u128::from(width) * u128::from(k) / u128::from(c)) as u64;
                // Saturating: in the top bucket `lo + width` is 2^64;
                // the max clamp below restores the right answer.
                return lo.saturating_add(interp).min(self.max);
            }
            seen += c;
        }
        self.max
    }

    /// Median latency (50th percentile).
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// Tail latency: 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// Extreme tail latency: 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.percentile(99.9)
    }

    /// Render the histogram as a self-contained JSON object: exact
    /// aggregates, the percentile summary, and the non-empty buckets.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!(
            "\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p99\":{},\"p999\":{},\"buckets\":[",
            self.count,
            self.sum,
            self.max,
            self.p50(),
            self.p99(),
            self.p999()
        ));
        let mut first = true;
        for (lo, c) in self.nonzero() {
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str(&format!("{{\"lo\":{lo},\"count\":{c}}}"));
        }
        s.push_str("]}");
        s
    }
}

/// Write-queue occupancy time series.
///
/// Samples occupancy at every enqueue and issue. Aggregates (`samples`,
/// `max`, histogram) are always exact; the raw `(cycle, occupancy)` series
/// is retained up to a fixed cap so long runs stay bounded.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OccupancySeries {
    /// Number of enqueue-side samples (equals lines accepted into the queue).
    pub enqueues: u64,
    /// Number of issue-side samples (equals lines drained to banks).
    pub issues: u64,
    /// Maximum observed occupancy.
    pub max: usize,
    /// Log2 histogram over sampled occupancy values.
    pub histogram: Log2Histogram,
    series: Vec<(Cycle, usize)>,
}

/// Cap on the retained raw occupancy series (aggregates are unaffected).
const OCCUPANCY_SERIES_CAP: usize = 1 << 20;

impl OccupancySeries {
    fn sample(&mut self, at: Cycle, occupancy: usize, enqueue: bool) {
        if enqueue {
            self.enqueues += 1;
        } else {
            self.issues += 1;
        }
        self.max = self.max.max(occupancy);
        self.histogram.record(occupancy as u64);
        if self.series.len() < OCCUPANCY_SERIES_CAP {
            self.series.push((at, occupancy));
        }
    }

    /// Raw `(cycle, occupancy)` samples, in simulation order (capped).
    pub fn series(&self) -> &[(Cycle, usize)] {
        &self.series
    }

    /// Total samples taken (enqueue-side plus issue-side).
    pub fn samples(&self) -> u64 {
        self.enqueues + self.issues
    }
}

/// Per-bank service activity accumulated from [`Event::BankBusy`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BankActivity {
    /// Read operations serviced.
    pub reads: u64,
    /// Write operations serviced.
    pub writes: u64,
    /// Total busy cycles (sum of service intervals).
    pub busy_cycles: u64,
    /// Last cycle at which this bank finished an operation.
    pub last_end: Cycle,
}

/// Per-bank utilization collector.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BankUtilization {
    banks: Vec<BankActivity>,
}

impl BankUtilization {
    fn record(&mut self, bank: usize, start: Cycle, end: Cycle, write: bool) {
        if bank >= self.banks.len() {
            self.banks.resize(bank + 1, BankActivity::default());
        }
        let b = &mut self.banks[bank];
        if write {
            b.writes += 1;
        } else {
            b.reads += 1;
        }
        b.busy_cycles += end.saturating_sub(start);
        b.last_end = b.last_end.max(end);
    }

    /// Activity per bank, indexed by bank id.
    pub fn banks(&self) -> &[BankActivity] {
        &self.banks
    }

    /// Busy fraction of `total_cycles` for bank `bank` (0.0 when unknown).
    pub fn utilization(&self, bank: usize, total_cycles: u64) -> f64 {
        if total_cycles == 0 || bank >= self.banks.len() {
            return 0.0;
        }
        self.banks[bank].busy_cycles as f64 / total_cycles as f64
    }
}

/// Where cycles went, summed over every observed flush/read/stall.
///
/// The three flush phases partition each persisted line's latency:
/// `counter_fetch_cycles` (counter cache lookup, NVM counter reads,
/// re-encryption drains), `crypto_cycles` (AES pad + register), and
/// `queue_admission_cycles` (waiting for a free ADR write-queue slot).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyBreakdown {
    /// Flush cycles spent making the encryption counter available.
    pub counter_fetch_cycles: u64,
    /// Flush cycles spent on AES pad generation and the OTP register.
    pub crypto_cycles: u64,
    /// Flush cycles spent waiting for write-queue admission.
    pub queue_admission_cycles: u64,
    /// Persisted line flushes observed.
    pub flushes: u64,
    /// Memory reads observed.
    pub reads: u64,
    /// Reads satisfied by write-queue forwarding.
    pub read_forwards: u64,
    /// Total read service cycles (issue to data-ready).
    pub read_cycles: u64,
    /// Data lines issued from the write queue to banks.
    pub data_writes_issued: u64,
    /// Counter lines issued from the write queue to banks.
    pub counter_writes_issued: u64,
    /// Counter writes absorbed by coalescing.
    pub coalesced: u64,
    /// Producer stalls on a full write queue.
    pub wq_stalls: u64,
    /// Cycles spent stalled on a full write queue.
    pub wq_stall_cycles: u64,
    /// Counter-cache hits observed.
    pub counter_cache_hits: u64,
    /// Counter-cache misses observed.
    pub counter_cache_misses: u64,
    /// Sfences retired.
    pub sfences: u64,
    /// Cycles cores stalled in `sfence` waiting for pending persists.
    pub sfence_stall_cycles: u64,
    /// Page re-encryptions started.
    pub reencryptions: u64,
    /// Transactions committed.
    pub txns: u64,
    /// Total transaction cycles (sum of commit - begin).
    pub txn_cycles: u64,
}

/// Batteries-included collector aggregating the full event stream.
///
/// Attach via `Experiment::observe()` (in `supermem`) or directly with
/// [`Probes::attach`]; retrieve after the run and read the histograms and
/// the [`LatencyBreakdown`].
///
/// # Examples
///
/// ```
/// use supermem_sim::probe::{Event, Observer, Telemetry};
///
/// let mut t = Telemetry::default();
/// t.on_event(&Event::TxnCommit { core: 0, start: 100, end: 250 });
/// assert_eq!(t.txn_latency.count(), 1);
/// assert_eq!(t.txn_latency.sum(), 150);
/// assert_eq!(t.breakdown.txns, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    /// Cycle-attribution totals.
    pub breakdown: LatencyBreakdown,
    /// Per-transaction latency histogram (commit - begin).
    pub txn_latency: Log2Histogram,
    /// Per-flush end-to-end latency histogram (issue to WQ admission).
    pub flush_latency: Log2Histogram,
    /// Per-read service latency histogram.
    pub read_latency: Log2Histogram,
    /// Write-queue occupancy time series.
    pub wq_occupancy: OccupancySeries,
    /// Per-bank busy accounting.
    pub banks: BankUtilization,
    /// Per-core transaction latency histograms, indexed by the issuing
    /// core of each [`Event::TxnCommit`] (grown on demand).
    pub per_core_txn: Vec<Log2Histogram>,
}

impl Observer for Telemetry {
    fn on_event(&mut self, ev: &Event) {
        let b = &mut self.breakdown;
        match *ev {
            Event::WqEnqueue { at, occupancy, .. } => {
                self.wq_occupancy.sample(at, occupancy, true);
            }
            Event::WqIssue {
                counter,
                start,
                occupancy,
                ..
            } => {
                if counter {
                    b.counter_writes_issued += 1;
                } else {
                    b.data_writes_issued += 1;
                }
                self.wq_occupancy.sample(start, occupancy, false);
            }
            Event::WqCoalesce { .. } => b.coalesced += 1,
            Event::WqStall { from, until, .. } => {
                b.wq_stalls += 1;
                b.wq_stall_cycles += until.saturating_sub(from);
            }
            Event::BankBusy {
                bank,
                start,
                end,
                write,
            } => {
                self.banks.record(bank, start, end, write);
            }
            Event::CounterCacheHit { .. } => b.counter_cache_hits += 1,
            Event::CounterCacheMiss { .. } => b.counter_cache_misses += 1,
            Event::SfenceRetire { stall, .. } => {
                b.sfences += 1;
                b.sfence_stall_cycles += stall;
            }
            Event::ReencryptStart { .. } => b.reencryptions += 1,
            Event::ReencryptDone { .. }
            | Event::RsrRetired { .. }
            | Event::RsrMarkDone { .. }
            | Event::RegisterStage { .. }
            | Event::TreeArm { .. }
            | Event::TreePropagate { .. }
            | Event::TreeNodeEnqueue { .. }
            | Event::TreeRootUpdate { .. } => {}
            Event::FlushRetired {
                issued,
                counter_ready,
                encrypted,
                retired,
                ..
            } => {
                b.flushes += 1;
                b.counter_fetch_cycles += counter_ready.saturating_sub(issued);
                b.crypto_cycles += encrypted.saturating_sub(counter_ready);
                b.queue_admission_cycles += retired.saturating_sub(encrypted);
                self.flush_latency.record(retired.saturating_sub(issued));
            }
            Event::ReadServed {
                issued,
                done,
                forwarded,
                ..
            } => {
                b.reads += 1;
                if forwarded {
                    b.read_forwards += 1;
                }
                b.read_cycles += done.saturating_sub(issued);
                self.read_latency.record(done.saturating_sub(issued));
            }
            Event::TxnCommit { core, start, end } => {
                b.txns += 1;
                b.txn_cycles += end.saturating_sub(start);
                self.txn_latency.record(end.saturating_sub(start));
                if core >= self.per_core_txn.len() {
                    self.per_core_txn.resize(core + 1, Log2Histogram::default());
                }
                self.per_core_txn[core].record(end.saturating_sub(start));
            }
        }
    }

    fn box_clone(&self) -> Box<dyn Observer> {
        Box::new(self.clone())
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl Telemetry {
    /// Render the collected telemetry as a self-contained JSON object.
    ///
    /// `total_cycles` scales the per-bank utilization figures; pass the
    /// run's end-to-end cycle count.
    pub fn to_json(&self, total_cycles: u64) -> String {
        let b = &self.breakdown;
        let mut s = String::from("{");
        s.push_str(&format!("\"total_cycles\":{total_cycles},"));
        s.push_str(&format!(
            "\"breakdown\":{{\"counter_fetch_cycles\":{},\"crypto_cycles\":{},\
             \"queue_admission_cycles\":{},\"flushes\":{},\"reads\":{},\
             \"read_forwards\":{},\"read_cycles\":{},\"data_writes_issued\":{},\
             \"counter_writes_issued\":{},\"coalesced\":{},\"wq_stalls\":{},\
             \"wq_stall_cycles\":{},\"counter_cache_hits\":{},\
             \"counter_cache_misses\":{},\"sfences\":{},\"sfence_stall_cycles\":{},\
             \"reencryptions\":{},\"txns\":{},\"txn_cycles\":{}}},",
            b.counter_fetch_cycles,
            b.crypto_cycles,
            b.queue_admission_cycles,
            b.flushes,
            b.reads,
            b.read_forwards,
            b.read_cycles,
            b.data_writes_issued,
            b.counter_writes_issued,
            b.coalesced,
            b.wq_stalls,
            b.wq_stall_cycles,
            b.counter_cache_hits,
            b.counter_cache_misses,
            b.sfences,
            b.sfence_stall_cycles,
            b.reencryptions,
            b.txns,
            b.txn_cycles,
        ));
        s.push_str(&format!(
            "\"histograms\":{{\"txn_latency\":{},\"flush_latency\":{},\"read_latency\":{}}},",
            self.txn_latency.to_json(),
            self.flush_latency.to_json(),
            self.read_latency.to_json()
        ));
        s.push_str(&format!(
            "\"wq_occupancy\":{{\"enqueues\":{},\"issues\":{},\"max\":{},\"mean\":{:.3},\"histogram\":{}}},",
            self.wq_occupancy.enqueues,
            self.wq_occupancy.issues,
            self.wq_occupancy.max,
            self.wq_occupancy.histogram.mean(),
            self.wq_occupancy.histogram.to_json()
        ));
        s.push_str("\"per_core_txn\":[");
        for (i, h) in self.per_core_txn.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&h.to_json());
        }
        s.push_str("],");
        s.push_str("\"banks\":[");
        for (i, bank) in self.banks.banks().iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"bank\":{},\"reads\":{},\"writes\":{},\"busy_cycles\":{},\"utilization\":{:.4}}}",
                i,
                bank.reads,
                bank.writes,
                bank.busy_cycles,
                self.banks.utilization(i, total_cycles)
            ));
        }
        s.push_str("]}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_aggregates() {
        let mut h = Log2Histogram::default();
        for v in [0u64, 1, 1, 2, 3, 4, 7, 8, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 9);
        assert_eq!(h.sum(), 1050);
        assert_eq!(h.max(), 1024);
        assert_eq!(h.buckets()[0], 1); // 0
        assert_eq!(h.buckets()[1], 2); // 1
        assert_eq!(h.buckets()[2], 2); // 2..4
        assert_eq!(h.buckets()[3], 2); // 4..8
        assert_eq!(h.buckets()[4], 1); // 8..16
        assert_eq!(h.buckets()[11], 1); // 1024..2048
        assert_eq!(Log2Histogram::bucket_lo(11), 1024);
    }

    #[test]
    fn emit_with_is_lazy_when_unobserved() {
        let mut probes = Probes::default();
        let mut constructed = false;
        probes.emit_with(|| {
            constructed = true;
            Event::SfenceRetire {
                core: 0,
                at: 0,
                stall: 0,
            }
        });
        assert!(!constructed);
        assert!(!probes.is_active());
    }

    #[test]
    fn telemetry_accumulates_flush_phases() {
        let mut t = Telemetry::default();
        t.on_event(&Event::FlushRetired {
            line: 0,
            issued: 100,
            counter_ready: 110,
            encrypted: 135,
            retired: 140,
        });
        assert_eq!(t.breakdown.counter_fetch_cycles, 10);
        assert_eq!(t.breakdown.crypto_cycles, 25);
        assert_eq!(t.breakdown.queue_admission_cycles, 5);
        assert_eq!(t.flush_latency.sum(), 40);
        let json = t.to_json(1000);
        assert!(json.contains("\"counter_fetch_cycles\":10"));
        assert!(json.contains("\"total_cycles\":1000"));
    }

    #[test]
    fn percentiles_are_exact_on_single_bucket_values() {
        let mut h = Log2Histogram::default();
        assert_eq!(h.percentile(99.0), 0, "empty histogram reports 0");
        for _ in 0..100 {
            h.record(64); // all in [64, 128)
        }
        // Every rank interpolates inside one bucket of identical values;
        // the clamp to max() pins the answer to the exact value.
        assert_eq!(h.p50(), 64);
        assert_eq!(h.p99(), 64);
        assert_eq!(h.p999(), 64);
    }

    #[test]
    fn percentiles_rank_across_buckets() {
        let mut h = Log2Histogram::default();
        for _ in 0..99 {
            h.record(10);
        }
        // One extreme tail sample on top of the 99 small ones.
        h.record(100_000);
        // Rank 50 of 100 interpolates inside the [8,16) bucket.
        assert!((8..16).contains(&h.p50()), "p50 {}", h.p50());
        // Rank 99 of 100 still lands in the [8,16) bucket (upper-edge
        // interpolation can report the bucket's closing edge) ...
        assert!(h.p99() <= 16, "p99 {}", h.p99());
        // ... and the 99.9th percentile is the tail sample itself.
        assert_eq!(h.p999(), 100_000);
        // Monotonic in q.
        assert!(h.p50() <= h.p99() && h.p99() <= h.p999());
    }

    #[test]
    fn percentile_json_and_accessors_agree() {
        let mut h = Log2Histogram::default();
        for v in [5u64, 50, 500, 5000] {
            h.record(v);
        }
        let json = h.to_json();
        assert!(json.contains(&format!("\"p50\":{}", h.p50())), "{json}");
        assert!(json.contains(&format!("\"p999\":{}", h.p999())), "{json}");
    }

    #[test]
    fn telemetry_attributes_txns_to_cores() {
        let mut t = Telemetry::default();
        t.on_event(&Event::TxnCommit {
            core: 0,
            start: 0,
            end: 10,
        });
        t.on_event(&Event::TxnCommit {
            core: 2,
            start: 0,
            end: 30,
        });
        assert_eq!(t.per_core_txn.len(), 3);
        assert_eq!(t.per_core_txn[0].count(), 1);
        assert_eq!(t.per_core_txn[1].count(), 0);
        assert_eq!(t.per_core_txn[2].sum(), 30);
        assert_eq!(t.txn_latency.count(), 2, "aggregate still fed");
        let json = t.to_json(100);
        assert!(json.contains("\"per_core_txn\":["), "{json}");
    }

    #[test]
    fn probes_clone_duplicates_observer_state() {
        let mut probes = Probes::default();
        probes.attach(Box::new(Telemetry::default()));
        probes.emit_with(|| Event::CounterCacheHit { page: 1, at: 5 });
        let mut cloned = probes.clone();
        cloned.emit_with(|| Event::CounterCacheHit { page: 2, at: 6 });
        let orig = probes.take().pop().unwrap();
        let dup = cloned.take().pop().unwrap();
        let mut orig = orig;
        let mut dup = dup;
        let o = orig.as_any_mut().downcast_mut::<Telemetry>().unwrap();
        let d = dup.as_any_mut().downcast_mut::<Telemetry>().unwrap();
        assert_eq!(o.breakdown.counter_cache_hits, 1);
        assert_eq!(d.breakdown.counter_cache_hits, 2);
    }
}
