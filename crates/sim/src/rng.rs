//! Deterministic pseudo-random number generation.
//!
//! Simulation runs must be exactly reproducible: the same seed must produce
//! the same memory-operation stream, the same crash points, and therefore
//! the same figures. We use SplitMix64 (Steele et al., "Fast splittable
//! pseudorandom number generators", OOPSLA 2014), which is tiny, fast, and
//! passes BigCrush when used as a 64-bit generator.

/// A deterministic SplitMix64 pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use supermem_sim::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's method: rejection happens with probability < 2^-32 for
        // the bounds used in this workspace, so the loop almost never spins.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= (bound.wrapping_neg() % bound) {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniformly distributed value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next_below(hi - lo)
    }

    /// Returns `true` with probability `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero or `num > den`.
    pub fn next_bool_ratio(&mut self, num: u64, den: u64) -> bool {
        assert!(den > 0 && num <= den, "invalid ratio {num}/{den}");
        self.next_below(den) < num
    }

    /// Fills `buf` with pseudo-random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Derives an independent generator, e.g. one per simulated core.
    ///
    /// The derived stream is decorrelated from the parent by re-seeding
    /// through the output function.
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn differs_for_different_seeds() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn known_reference_values() {
        // Reference values for seed 0 from the canonical SplitMix64
        // implementation (Vigna, http://prng.di.unimi.it/splitmix64.c).
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64::new(99);
        for bound in [1u64, 2, 3, 7, 100, 1 << 33] {
            for _ in 0..200 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_one_is_always_zero() {
        let mut r = SplitMix64::new(5);
        for _ in 0..10 {
            assert_eq!(r.next_below(1), 0);
        }
    }

    #[test]
    fn next_range_inclusive_exclusive() {
        let mut r = SplitMix64::new(77);
        for _ in 0..500 {
            let v = r.next_range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn next_range_panics_on_empty() {
        SplitMix64::new(0).next_range(5, 5);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = SplitMix64::new(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::new(11);
        let mut v: Vec<u32> = (0..64).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn split_streams_are_decorrelated() {
        let mut parent = SplitMix64::new(42);
        let mut child = parent.split();
        // Not a statistical test; just checks the streams are not identical.
        let p: Vec<u64> = (0..8).map(|_| parent.next_u64()).collect();
        let c: Vec<u64> = (0..8).map(|_| child.next_u64()).collect();
        assert_ne!(p, c);
    }

    #[test]
    fn ratio_extremes() {
        let mut r = SplitMix64::new(8);
        for _ in 0..50 {
            assert!(r.next_bool_ratio(1, 1));
            assert!(!r.next_bool_ratio(0, 1));
        }
    }

    #[test]
    fn next_below_is_roughly_uniform() {
        let mut r = SplitMix64::new(4242);
        let mut buckets = [0u32; 8];
        let n = 80_000;
        for _ in 0..n {
            buckets[r.next_below(8) as usize] += 1;
        }
        let expect = n / 8;
        for &b in &buckets {
            // Allow 5% deviation; SplitMix64 is far better than this.
            assert!((b as i64 - expect as i64).unsigned_abs() < expect as u64 / 20);
        }
    }
}
