//! Fast, deterministic hashing for simulator-internal maps.
//!
//! `std`'s default hasher (SipHash-1-3) is keyed per-`HashMap` with
//! `RandomState` and pays its keyed-PRF cost on every lookup. Simulator
//! maps (the NVM backing store, the write-queue target index, workload
//! shadow state) are keyed by small integers under no adversarial
//! pressure, so a multiply-xor hash in the FxHash family is both much
//! faster and — being unseeded — fully deterministic across runs, which
//! the bit-identical figure regeneration relies on. Iteration order of
//! a `HashMap` is still unspecified; call sites that iterate must sort
//! (see `NvmStore::data_lines`) or be order-insensitive.
//!
//! # Examples
//!
//! ```
//! use supermem_sim::hash::FxHashMap;
//!
//! let mut m: FxHashMap<u64, u32> = FxHashMap::default();
//! m.insert(0x40, 7);
//! assert_eq!(m[&0x40], 7);
//! ```

use std::hash::{BuildHasherDefault, Hasher};

/// The Firefox hash: rotate, xor, multiply per word. Word-at-a-time for
/// integers (the dominant key type here), byte-folded otherwise.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

/// The multiplier from the FxHash family (derived from the golden
/// ratio, as in Firefox and rustc).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut last = [0u8; 8];
            last[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(last));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

/// A `BuildHasher` producing [`FxHasher`]s (unseeded, deterministic).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` with the fast deterministic hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` with the fast deterministic hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(v: T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        // Unseeded: two independent maps hash identically (unlike
        // RandomState). Figure regeneration depends on this.
        assert_eq!(hash_one(0xDEAD_BEEFu64), hash_one(0xDEAD_BEEFu64));
        assert_eq!(hash_one("counter"), hash_one("counter"));
    }

    #[test]
    fn distinct_keys_distinct_hashes() {
        // Not a collision-resistance claim; just a sanity check that
        // nearby integer keys (the common case: line addresses) spread.
        let hashes: Vec<u64> = (0u64..1024).map(|i| hash_one(i * 64)).collect();
        let mut sorted = hashes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), hashes.len());
    }

    #[test]
    fn byte_slices_fold_tail() {
        assert_ne!(hash_one([1u8, 2, 3]), hash_one([1u8, 2, 4]));
        assert_ne!(hash_one([0u8; 9].as_slice()), hash_one([0u8; 8].as_slice()));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..100 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m[&40], 80);
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(7);
        assert!(s.contains(&7));
    }
}
