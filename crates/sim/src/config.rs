//! System configuration.
//!
//! [`Config`] collects every knob of the simulated machine. Defaults follow
//! Table 2 of the paper: an 8-core 2 GHz x86-64 system, 32 KB L1 / 512 KB L2
//! / 4 MB L3, an 8 GB 8-bank PCM main memory with the Xu et al. latency
//! model, a 32-entry ADR-protected write queue, and a 256 KB 8-way counter
//! cache with 8-cycle latency. The AES engine has the 24-cycle latency used
//! by the paper (citing prior work).

use crate::time::{ns_to_cycles, Cycle};
use std::error::Error;
use std::fmt;

/// A violated [`Config`] invariant, reported by [`Config::validate`].
///
/// Each variant names one constraint and carries the offending value(s),
/// so callers can match on the failure class instead of parsing strings.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `line_bytes` is not a power of two.
    LineBytesNotPow2(u64),
    /// `page_bytes` is not a power of two at least as large as a line.
    PageBytesInvalid(u64),
    /// `banks` is not a power of two.
    BanksNotPow2(usize),
    /// `channels` is not a power of two.
    ChannelsNotPow2(usize),
    /// XBank counter placement requires an even number of banks.
    XBankOddBanks(usize),
    /// The write queue cannot hold a data+counter pair.
    WriteQueueTooSmall(usize),
    /// `nvm_bytes` is not a whole number of pages.
    NvmNotWholePages(u64),
    /// The NVM does not split into at least one page per channel.
    NvmTooSmallForChannels {
        /// Total pages in the NVM.
        pages: u64,
        /// Configured channel count.
        channels: usize,
    },
    /// `cores` is zero.
    NoCores,
    /// A cache capacity is not divisible by `ways * line_bytes`.
    CacheGeometry {
        /// Which cache (`"l1"`, `"l2"`, `"l3"`, or `"counter_cache"`).
        cache: &'static str,
        /// Configured capacity in bytes.
        bytes: u64,
        /// Configured associativity.
        ways: usize,
    },
    /// The integrity tree is enabled over zero pages.
    IntegrityTreeNeedsPages,
    /// `persisted_levels` is set while the integrity tree is off.
    PersistedLevelsWithoutTree(u32),
    /// `persisted_levels` exceeds the integrity tree's height.
    PersistedLevelsOutOfRange {
        /// The requested persistence frontier.
        levels: u32,
        /// The tree height for the configured `integrity_pages`.
        height: u32,
    },
    /// Streaming-tree mode needs queue headroom for tree-node writes
    /// alongside a staged data+counter pair.
    StreamingTreeQueueTooSmall(usize),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::LineBytesNotPow2(v) => {
                write!(f, "line_bytes {v} must be a power of two")
            }
            ConfigError::PageBytesInvalid(v) => {
                write!(f, "page_bytes {v} must be a power of two >= line_bytes")
            }
            ConfigError::BanksNotPow2(v) => write!(f, "banks {v} must be a power of two"),
            ConfigError::ChannelsNotPow2(v) => {
                write!(f, "channels {v} must be a power of two")
            }
            ConfigError::XBankOddBanks(v) => {
                write!(f, "XBank placement requires an even bank count (got {v})")
            }
            ConfigError::WriteQueueTooSmall(v) => {
                write!(
                    f,
                    "write queue must hold at least a data+counter pair (got {v})"
                )
            }
            ConfigError::NvmNotWholePages(v) => {
                write!(f, "nvm_bytes {v} must be a whole number of pages")
            }
            ConfigError::NvmTooSmallForChannels { pages, channels } => {
                write!(
                    f,
                    "NVM of {pages} pages cannot be interleaved over {channels} channels"
                )
            }
            ConfigError::NoCores => write!(f, "at least one core is required"),
            ConfigError::CacheGeometry { cache, bytes, ways } => {
                write!(
                    f,
                    "{cache}: {bytes} bytes must be divisible by ways*line ({ways} ways)"
                )
            }
            ConfigError::IntegrityTreeNeedsPages => {
                write!(f, "integrity_tree requires integrity_pages > 0")
            }
            ConfigError::PersistedLevelsWithoutTree(v) => {
                write!(f, "persisted_levels {v} requires integrity_tree")
            }
            ConfigError::PersistedLevelsOutOfRange { levels, height } => {
                write!(
                    f,
                    "persisted_levels {levels} exceeds integrity-tree height {height}"
                )
            }
            ConfigError::StreamingTreeQueueTooSmall(v) => {
                write!(
                    f,
                    "streaming integrity tree requires write_queue_entries >= 4 (got {v})"
                )
            }
        }
    }
}

impl Error for ConfigError {}

/// Policy of the on-chip counter cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CounterCacheMode {
    /// Every counter update is immediately written to NVM (SuperMem).
    WriteThrough,
    /// Counter updates stay in the cache until the line is evicted.
    WriteBack,
}

/// Whether the counter cache contents survive a power failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CounterCacheBacking {
    /// A (large, expensive) battery flushes the whole counter cache on a
    /// crash. This is the paper's *ideal* write-back baseline (WB).
    Battery,
    /// No backup: dirty counters in the cache are lost on a crash.
    None,
}

/// Where the counter line of a data page is placed (paper Figure 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CounterPlacement {
    /// All counters live in one dedicated bank (the conventional layout).
    SingleBank,
    /// The counter line lives in the same bank as its data page.
    SameBank,
    /// The counter line for data in bank `X` lives in bank `(X + N/2) % N`
    /// (the paper's XBank scheme).
    CrossBank,
}

/// A deliberate, named defect injected into the memory controller so the
/// persistency-ordering checker (`supermem-check`) can prove its rules
/// fire. `None` (the default) is the faithful design; every mutation
/// models one of the crash-consistency hazards the paper's mechanisms
/// exist to close.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mutation {
    /// Drop the write-through counter persist: data lines enqueue alone
    /// and the updated counter stays (dirty) in the unbacked cache — the
    /// hazard of §3.2 that rule P1 detects.
    WtOff,
    /// Split the 2-line staging-register append: the controller still
    /// claims atomicity but releases the counter and data lines
    /// separately, reopening the Figure 6 window that rule P2 detects.
    PairSplit,
    /// Invert CWC victim choice: coalescing keeps the *stale* pending
    /// counter entry and drops the newest update — the §3.4 hazard that
    /// rule P3 detects.
    CwcNewest,
    /// Skip one RSR done-bit during page re-encryption, leaving a crash
    /// point where recovery cannot tell the line's encryption epoch —
    /// the §3.4.4 hazard the R-series rules detect.
    RsrSkip,
    /// Skip arming the streaming integrity-tree cache on a counter
    /// write: the data line drains with no tree update ever armed for
    /// its page — the hazard rule T2 detects.
    TreeSkip,
    /// Drop the fence-triggered flush of the pending tree-update cache:
    /// armed leaves survive past the epoch's sfence without reaching
    /// their persisted ancestors — the hazard rule T1 detects.
    TreeLate,
    /// Latch (and report) the root register twice per propagated leaf,
    /// modeling a double-pumped root update — the hazard rule T3
    /// detects.
    TreeDoubleRoot,
}

impl Mutation {
    /// The CLI spelling of this mutation (`--mutate <name>`).
    pub fn name(self) -> &'static str {
        match self {
            Mutation::WtOff => "wt-off",
            Mutation::PairSplit => "pair-split",
            Mutation::CwcNewest => "cwc-newest",
            Mutation::RsrSkip => "rsr-skip",
            Mutation::TreeSkip => "tree-skip",
            Mutation::TreeLate => "tree-late",
            Mutation::TreeDoubleRoot => "tree-double-root",
        }
    }

    /// Parses a CLI spelling; returns `None` for unknown names.
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|m| m.name() == s)
    }

    /// All mutations, in CLI listing order.
    pub const ALL: [Mutation; 7] = [
        Mutation::WtOff,
        Mutation::PairSplit,
        Mutation::CwcNewest,
        Mutation::RsrSkip,
        Mutation::TreeSkip,
        Mutation::TreeLate,
        Mutation::TreeDoubleRoot,
    ];
}

/// Full configuration of the simulated secure-PM system.
///
/// Construct with [`Config::default`] and override fields, or use the
/// builder-style `with_*` helpers.
///
/// # Examples
///
/// ```
/// use supermem_sim::Config;
///
/// let cfg = Config::default().with_write_queue_entries(64);
/// assert_eq!(cfg.write_queue_entries, 64);
/// assert_eq!(cfg.nvm_write_service_cycles(), 626); // tCWD + tWR at 2 GHz
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Config {
    /// CPU frequency in GHz (paper: 2 GHz).
    pub cpu_ghz: f64,
    /// Number of cores (paper: 8).
    pub cores: usize,

    /// Cache line size in bytes (64 everywhere in the paper).
    pub line_bytes: u64,
    /// Page size in bytes (4 KB; one counter line covers one page).
    pub page_bytes: u64,

    /// L1 data cache capacity in bytes.
    pub l1_bytes: u64,
    /// L1 associativity.
    pub l1_ways: usize,
    /// L1 hit latency in cycles.
    pub l1_latency: Cycle,
    /// L2 capacity in bytes.
    pub l2_bytes: u64,
    /// L2 associativity.
    pub l2_ways: usize,
    /// L2 hit latency in cycles.
    pub l2_latency: Cycle,
    /// Shared L3 capacity in bytes.
    pub l3_bytes: u64,
    /// L3 associativity.
    pub l3_ways: usize,
    /// L3 hit latency in cycles.
    pub l3_latency: Cycle,

    /// NVM capacity in bytes (paper: 8 GB).
    pub nvm_bytes: u64,
    /// Number of NVM banks per channel (paper: 8).
    pub banks: usize,
    /// Number of address-interleaved memory channels (power of two).
    ///
    /// Pages interleave across channels (`channel = page % channels`);
    /// each channel owns an independent controller, write queue, counter
    /// cache, and bank set. The paper evaluates a single channel, so the
    /// default is 1 and the `channels = 1` address mapping is bit-identical
    /// to the unsharded layout.
    pub channels: usize,
    /// PCM activate latency tRCD in ns.
    pub trcd_ns: f64,
    /// PCM CAS latency tCL in ns.
    pub tcl_ns: f64,
    /// PCM write delay tCWD in ns.
    pub tcwd_ns: f64,
    /// PCM four-activation window tFAW in ns.
    pub tfaw_ns: f64,
    /// PCM write-to-read turnaround tWTR in ns.
    pub twtr_ns: f64,
    /// PCM write-recovery time tWR in ns (the dominant PCM write cost).
    pub twr_ns: f64,

    /// ADR-protected write-queue capacity in entries (paper: 32).
    pub write_queue_entries: usize,

    /// Counter cache capacity in bytes (paper: 256 KB).
    pub counter_cache_bytes: u64,
    /// Counter cache associativity (paper: 8).
    pub counter_cache_ways: usize,
    /// Counter cache hit latency in cycles (paper: 8).
    pub counter_cache_latency: Cycle,
    /// Counter cache write policy.
    pub counter_cache_mode: CounterCacheMode,
    /// Counter cache crash backing.
    pub counter_cache_backing: CounterCacheBacking,

    /// Whether memory encryption is enabled at all (`false` = Unsec).
    pub encryption: bool,
    /// AES engine latency in cycles (paper: 24).
    pub aes_latency: Cycle,
    /// Counter-line placement across banks.
    pub counter_placement: CounterPlacement,
    /// Whether counter write coalescing (CWC) runs in the write queue.
    pub cwc: bool,
    /// Whether data+counter pairs are appended to the write queue
    /// atomically through the staging register (paper §3.2, Figure 7).
    /// Disabling this models the vulnerable baseline of Figure 6.
    pub atomic_pair_append: bool,
    /// Osiris-style relaxed counter persistence (Ye et al., MICRO'18 —
    /// discussed in the paper's §6): counters stay write-back and
    /// unbacked, but every `window`-th minor increment is persisted and
    /// each data line carries an ECC-derived tag, so recovery can
    /// re-derive lost counters by trial decryption. `None` disables it.
    pub osiris_window: Option<u8>,
    /// Bonsai-Merkle-Tree authentication over the counter region (the
    /// bus-tampering defense the paper's §2.2.1 footnote defers to).
    /// When enabled, counter fetches from NVM verify against the
    /// on-chip root and counter writes update the tree.
    pub integrity_tree: bool,
    /// Pages covered by the integrity tree (a protected region from
    /// page 0; covering all of an 8 GB DIMM would make every simulated
    /// controller carry a multi-megabyte tree).
    pub integrity_pages: u64,
    /// Latency of one tree-level hash in cycles.
    pub hash_latency: Cycle,
    /// Streaming integrity-tree persistence frontier (Triad-NVM style):
    /// `Some(L)` with `L < height` switches the tree to the streaming
    /// engine — counter writes arm a bounded pending-update cache,
    /// propagation is lazy (eviction/fence), and node-group lines at
    /// digest levels `0..L` persist through the write queue while
    /// levels `L..=height` stay volatile and are rebuilt at recovery.
    /// `None` (default) or `Some(height)` keeps the eager engine:
    /// every counter write folds the full root path immediately and no
    /// tree traffic reaches the write queue — byte-identical to the
    /// pre-streaming behavior.
    pub persisted_levels: Option<u32>,
    /// Start-Gap wear leveling beneath the data region: move the gap
    /// every `psi` writes (`None` disables it).
    pub wear_psi: Option<u64>,
    /// Injected known-bad behavior for checker validation (`None` = the
    /// faithful design; see [`Mutation`]).
    pub mutation: Option<Mutation>,

    /// Host worker threads advancing channels *within* one run (a host
    /// execution knob, not a machine parameter: results are identical
    /// at every setting, only wall-clock changes). Channel controllers
    /// between two cross-channel barriers touch disjoint state — pages
    /// interleave `channel = page % channels` — so sibling-channel
    /// drains may run on `run_threads` worker threads and merge
    /// deterministically at the barrier. `1` (the default) keeps the
    /// fully sequential path.
    pub run_threads: usize,
    /// Whether the write-queue drain fast path may skip slab scans that
    /// provably issue nothing (on by default; exact either way). Off
    /// gives the tick-by-tick reference behavior for equivalence tests.
    pub fast_forward: bool,

    /// Master seed for the run.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            cpu_ghz: 2.0,
            cores: 8,
            line_bytes: 64,
            page_bytes: 4096,
            l1_bytes: 32 * 1024,
            l1_ways: 8,
            l1_latency: 2,
            l2_bytes: 512 * 1024,
            l2_ways: 8,
            l2_latency: 16,
            l3_bytes: 4 * 1024 * 1024,
            l3_ways: 8,
            l3_latency: 30,
            nvm_bytes: 8 << 30,
            banks: 8,
            channels: 1,
            trcd_ns: 48.0,
            tcl_ns: 15.0,
            tcwd_ns: 13.0,
            tfaw_ns: 50.0,
            twtr_ns: 7.5,
            twr_ns: 300.0,
            write_queue_entries: 32,
            counter_cache_bytes: 256 * 1024,
            counter_cache_ways: 8,
            counter_cache_latency: 8,
            counter_cache_mode: CounterCacheMode::WriteThrough,
            counter_cache_backing: CounterCacheBacking::None,
            encryption: true,
            aes_latency: 24,
            counter_placement: CounterPlacement::CrossBank,
            cwc: true,
            atomic_pair_append: true,
            osiris_window: None,
            integrity_tree: false,
            integrity_pages: 4096,
            hash_latency: 40,
            persisted_levels: None,
            wear_psi: None,
            mutation: None,
            run_threads: 1,
            fast_forward: true,
            seed: 0xC0FFEE,
        }
    }
}

impl Config {
    /// Sets the write-queue capacity (entries) and returns the config.
    pub fn with_write_queue_entries(mut self, entries: usize) -> Self {
        self.write_queue_entries = entries;
        self
    }

    /// Sets the counter-cache capacity (bytes) and returns the config.
    pub fn with_counter_cache_bytes(mut self, bytes: u64) -> Self {
        self.counter_cache_bytes = bytes;
        self
    }

    /// Sets the master seed and returns the config.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the memory channel count and returns the config.
    pub fn with_channels(mut self, channels: usize) -> Self {
        self.channels = channels;
        self
    }

    /// Sets the intra-run worker-thread count and returns the config.
    /// Values below 1 are treated as 1 (the sequential path).
    pub fn with_run_threads(mut self, run_threads: usize) -> Self {
        self.run_threads = run_threads.max(1);
        self
    }

    /// Enables or disables the drain fast path and returns the config.
    pub fn with_fast_forward(mut self, fast_forward: bool) -> Self {
        self.fast_forward = fast_forward;
        self
    }

    /// Injects a known-bad [`Mutation`] (checker validation only).
    pub fn with_mutation(mut self, mutation: Mutation) -> Self {
        self.mutation = Some(mutation);
        self
    }

    /// Enables the integrity tree and returns the config.
    pub fn with_integrity_tree(mut self, enabled: bool) -> Self {
        self.integrity_tree = enabled;
        self
    }

    /// Sets the streaming-tree persistence frontier and returns the
    /// config (`None` restores the eager engine).
    pub fn with_persisted_levels(mut self, levels: Option<u32>) -> Self {
        self.persisted_levels = levels;
        self
    }

    /// Height of the integrity tree over `integrity_pages` leaves
    /// (8-ary levels above the leaf digests; 4096 pages -> 4).
    pub fn integrity_tree_height(&self) -> u32 {
        let mut n = self.integrity_pages.max(1);
        let mut height = 0;
        while n > 1 {
            n = n.div_ceil(8);
            height += 1;
        }
        height
    }

    /// True when the streaming tree engine is active: the integrity
    /// tree is on and `persisted_levels` sits strictly below the tree
    /// height. `None` or a frontier at/above the height is the eager
    /// engine.
    pub fn streaming_tree(&self) -> bool {
        self.integrity_tree
            && self
                .persisted_levels
                .is_some_and(|l| l < self.integrity_tree_height())
    }

    /// The 128-bit memory-encryption key, derived deterministically from
    /// the seed so a recovered system (same config) can decrypt what the
    /// crashed system wrote — the processor key survives power loss in
    /// real hardware too.
    pub fn encryption_key(&self) -> [u8; 16] {
        let mut rng = crate::rng::SplitMix64::new(self.seed ^ 0x5EC0_4E0E_0FF1_CE00);
        let mut key = [0u8; 16];
        rng.fill_bytes(&mut key);
        key
    }

    /// NVM read service time in cycles: activate + CAS (tRCD + tCL).
    pub fn nvm_read_service_cycles(&self) -> Cycle {
        ns_to_cycles(self.trcd_ns + self.tcl_ns, self.cpu_ghz)
    }

    /// NVM write service time in cycles: write delay + write recovery
    /// (tCWD + tWR). PCM write recovery dominates at 300 ns.
    pub fn nvm_write_service_cycles(&self) -> Cycle {
        ns_to_cycles(self.tcwd_ns + self.twr_ns, self.cpu_ghz)
    }

    /// Write-to-read turnaround penalty in cycles (tWTR).
    pub fn nvm_wtr_cycles(&self) -> Cycle {
        ns_to_cycles(self.twtr_ns, self.cpu_ghz)
    }

    /// Number of cache lines per page (64 for 64 B lines and 4 KB pages).
    pub fn lines_per_page(&self) -> u64 {
        self.page_bytes / self.line_bytes
    }

    /// Total number of pages in the NVM.
    pub fn pages(&self) -> u64 {
        self.nvm_bytes / self.page_bytes
    }

    /// Validates internal consistency of the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a typed [`ConfigError`]
    /// (power-of-two sizes, non-zero capacities, an even bank count for
    /// the XBank mapping, and so on).
    pub fn validate(&self) -> Result<(), ConfigError> {
        fn pow2(v: u64) -> bool {
            v != 0 && v.is_power_of_two()
        }
        if !pow2(self.line_bytes) {
            return Err(ConfigError::LineBytesNotPow2(self.line_bytes));
        }
        if !pow2(self.page_bytes) || self.page_bytes < self.line_bytes {
            return Err(ConfigError::PageBytesInvalid(self.page_bytes));
        }
        if !pow2(self.banks as u64) {
            return Err(ConfigError::BanksNotPow2(self.banks));
        }
        if !pow2(self.channels as u64) {
            return Err(ConfigError::ChannelsNotPow2(self.channels));
        }
        if self.counter_placement == CounterPlacement::CrossBank && !self.banks.is_multiple_of(2) {
            return Err(ConfigError::XBankOddBanks(self.banks));
        }
        if self.write_queue_entries < 2 {
            return Err(ConfigError::WriteQueueTooSmall(self.write_queue_entries));
        }
        if !self.nvm_bytes.is_multiple_of(self.page_bytes) {
            return Err(ConfigError::NvmNotWholePages(self.nvm_bytes));
        }
        if self.pages() < self.channels as u64 {
            return Err(ConfigError::NvmTooSmallForChannels {
                pages: self.pages(),
                channels: self.channels,
            });
        }
        if self.cores == 0 {
            return Err(ConfigError::NoCores);
        }
        for (name, bytes, ways) in [
            ("l1", self.l1_bytes, self.l1_ways),
            ("l2", self.l2_bytes, self.l2_ways),
            ("l3", self.l3_bytes, self.l3_ways),
            (
                "counter_cache",
                self.counter_cache_bytes,
                self.counter_cache_ways,
            ),
        ] {
            if ways == 0 || !bytes.is_multiple_of(self.line_bytes * ways as u64) {
                return Err(ConfigError::CacheGeometry {
                    cache: name,
                    bytes,
                    ways,
                });
            }
        }
        if self.integrity_tree && self.integrity_pages == 0 {
            return Err(ConfigError::IntegrityTreeNeedsPages);
        }
        if let Some(levels) = self.persisted_levels {
            if !self.integrity_tree {
                return Err(ConfigError::PersistedLevelsWithoutTree(levels));
            }
            let height = self.integrity_tree_height();
            if levels > height {
                return Err(ConfigError::PersistedLevelsOutOfRange { levels, height });
            }
        }
        if self.streaming_tree() && self.write_queue_entries < 4 {
            return Err(ConfigError::StreamingTreeQueueTooSmall(
                self.write_queue_entries,
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_table2() {
        let c = Config::default();
        assert!(c.validate().is_ok());
        assert_eq!(c.cores, 8);
        assert_eq!(c.banks, 8);
        assert_eq!(c.nvm_bytes, 8 << 30);
        assert_eq!(c.write_queue_entries, 32);
        assert_eq!(c.counter_cache_bytes, 256 * 1024);
        assert_eq!(c.aes_latency, 24);
        assert_eq!(c.lines_per_page(), 64);
    }

    #[test]
    fn derived_service_times() {
        let c = Config::default();
        assert_eq!(c.nvm_read_service_cycles(), 126); // (48+15) * 2
        assert_eq!(c.nvm_write_service_cycles(), 626); // (13+300) * 2
        assert_eq!(c.nvm_wtr_cycles(), 15); // 7.5 * 2
    }

    #[test]
    fn builder_helpers() {
        let c = Config::default()
            .with_write_queue_entries(8)
            .with_counter_cache_bytes(1024)
            .with_seed(9);
        assert_eq!(c.write_queue_entries, 8);
        assert_eq!(c.counter_cache_bytes, 1024);
        assert_eq!(c.seed, 9);
    }

    #[test]
    fn validate_rejects_bad_geometry() {
        let c = Config {
            line_bytes: 48,
            ..Config::default()
        };
        assert!(c.validate().is_err());
        let c = Config {
            banks: 6,
            ..Config::default()
        };
        assert!(c.validate().is_err());
        let c = Config {
            write_queue_entries: 1,
            ..Config::default()
        };
        assert!(c.validate().is_err());
        // Page smaller than a line.
        let c = Config {
            page_bytes: 32,
            ..Config::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_rejects_odd_banks_for_xbank() {
        let mut c = Config {
            banks: 1,
            counter_placement: CounterPlacement::CrossBank,
            ..Config::default()
        };
        assert!(c.validate().is_err());
        c.counter_placement = CounterPlacement::SingleBank;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validate_rejects_indivisible_cache() {
        let c = Config {
            l1_bytes: 1000,
            ..Config::default()
        };
        assert!(matches!(
            c.validate(),
            Err(ConfigError::CacheGeometry { cache: "l1", .. })
        ));
    }

    #[test]
    fn validate_rejects_non_pow2_channels() {
        let c = Config::default().with_channels(3);
        assert_eq!(c.validate(), Err(ConfigError::ChannelsNotPow2(3)));
        let c = Config::default().with_channels(0);
        assert_eq!(c.validate(), Err(ConfigError::ChannelsNotPow2(0)));
        for ch in [1, 2, 4, 8] {
            assert!(Config::default().with_channels(ch).validate().is_ok());
        }
    }

    #[test]
    fn config_error_displays_offending_value() {
        let c = Config {
            banks: 6,
            ..Config::default()
        };
        let err = c.validate().unwrap_err();
        assert_eq!(err, ConfigError::BanksNotPow2(6));
        assert!(err.to_string().contains('6'));
    }

    #[test]
    fn pages_count() {
        let c = Config::default();
        assert_eq!(c.pages(), (8u64 << 30) / 4096);
    }

    #[test]
    fn integrity_tree_height_matches_arity8() {
        for (pages, height) in [(1u64, 0u32), (8, 1), (9, 2), (64, 2), (512, 3), (4096, 4)] {
            let c = Config {
                integrity_pages: pages,
                ..Config::default()
            };
            assert_eq!(c.integrity_tree_height(), height, "{pages} pages");
        }
    }

    #[test]
    fn persisted_levels_validation() {
        // The knob requires the tree.
        let c = Config::default().with_persisted_levels(Some(2));
        assert_eq!(
            c.validate(),
            Err(ConfigError::PersistedLevelsWithoutTree(2))
        );
        // In range: 4096 pages -> height 4, so 0..=4 are legal.
        for l in 0..=4u32 {
            let c = Config::default()
                .with_integrity_tree(true)
                .with_persisted_levels(Some(l));
            assert!(c.validate().is_ok(), "levels {l}");
        }
        let c = Config::default()
            .with_integrity_tree(true)
            .with_persisted_levels(Some(5));
        assert_eq!(
            c.validate(),
            Err(ConfigError::PersistedLevelsOutOfRange {
                levels: 5,
                height: 4
            })
        );
        // Tree over zero pages is a typed error, not a downstream panic.
        let c = Config {
            integrity_tree: true,
            integrity_pages: 0,
            ..Config::default()
        };
        assert_eq!(c.validate(), Err(ConfigError::IntegrityTreeNeedsPages));
        // Streaming mode needs queue headroom for tree-node traffic.
        let c = Config::default()
            .with_integrity_tree(true)
            .with_persisted_levels(Some(1))
            .with_write_queue_entries(3);
        assert_eq!(
            c.validate(),
            Err(ConfigError::StreamingTreeQueueTooSmall(3))
        );
        // Eager mode keeps the old minimum.
        let c = Config::default()
            .with_integrity_tree(true)
            .with_write_queue_entries(3);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn streaming_tree_predicate() {
        let eager = Config::default().with_integrity_tree(true);
        assert!(!eager.streaming_tree(), "no knob means eager");
        let full = eager.clone().with_persisted_levels(Some(4));
        assert!(
            !full.streaming_tree(),
            "frontier at the height is the eager engine"
        );
        let streaming = eager.clone().with_persisted_levels(Some(1));
        assert!(streaming.streaming_tree());
        let tree_off = Config::default().with_persisted_levels(Some(1));
        assert!(!tree_off.streaming_tree());
    }

    #[test]
    fn tree_mutations_parse_and_list() {
        assert_eq!(Mutation::ALL.len(), 7);
        for m in Mutation::ALL {
            assert_eq!(Mutation::parse(m.name()), Some(m));
        }
        assert_eq!(Mutation::parse("tree-skip"), Some(Mutation::TreeSkip));
        assert_eq!(Mutation::parse("tree-late"), Some(Mutation::TreeLate));
        assert_eq!(
            Mutation::parse("tree-double-root"),
            Some(Mutation::TreeDoubleRoot)
        );
        assert_eq!(Mutation::parse("bogus"), None);
    }
}
