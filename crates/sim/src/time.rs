//! The simulation time base.
//!
//! All components share a single logical clock measured in CPU cycles at the
//! frequency given by [`crate::Config::cpu_ghz`] (2 GHz in the paper's
//! Table 2). Device latencies specified in nanoseconds are converted with
//! [`ns_to_cycles`], rounding *up* so that sub-cycle latencies (such as the
//! paper's tWTR = 7.5 ns) are never silently dropped to zero.

/// A point in simulated time, in CPU cycles since simulation start.
pub type Cycle = u64;

/// Converts a latency in nanoseconds to CPU cycles, rounding up.
///
/// # Examples
///
/// ```
/// use supermem_sim::ns_to_cycles;
///
/// // 2 GHz: one cycle is 0.5 ns.
/// assert_eq!(ns_to_cycles(15.0, 2.0), 30);
/// // Sub-cycle remainders round up (tWTR = 7.5 ns -> 15 cycles exactly).
/// assert_eq!(ns_to_cycles(7.5, 2.0), 15);
/// assert_eq!(ns_to_cycles(7.6, 2.0), 16);
/// // Zero stays zero.
/// assert_eq!(ns_to_cycles(0.0, 2.0), 0);
/// ```
pub fn ns_to_cycles(ns: f64, cpu_ghz: f64) -> Cycle {
    debug_assert!(ns >= 0.0, "latency must be non-negative");
    debug_assert!(cpu_ghz > 0.0, "frequency must be positive");
    (ns * cpu_ghz).ceil() as Cycle
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converts_paper_pcm_timings_at_2ghz() {
        // Table 2: tRCD/tCL/tCWD/tFAW/tWTR/tWR = 48/15/13/50/7.5/300 ns.
        assert_eq!(ns_to_cycles(48.0, 2.0), 96);
        assert_eq!(ns_to_cycles(15.0, 2.0), 30);
        assert_eq!(ns_to_cycles(13.0, 2.0), 26);
        assert_eq!(ns_to_cycles(50.0, 2.0), 100);
        assert_eq!(ns_to_cycles(7.5, 2.0), 15);
        assert_eq!(ns_to_cycles(300.0, 2.0), 600);
    }

    #[test]
    fn rounds_up_fractional_cycles() {
        assert_eq!(ns_to_cycles(0.1, 2.0), 1);
        assert_eq!(ns_to_cycles(0.5, 2.0), 1);
        assert_eq!(ns_to_cycles(0.51, 2.0), 2);
    }

    #[test]
    fn other_frequencies() {
        assert_eq!(ns_to_cycles(10.0, 1.0), 10);
        assert_eq!(ns_to_cycles(10.0, 4.0), 40);
    }
}
