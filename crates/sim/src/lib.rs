//! Simulation kernel for the SuperMem reproduction.
//!
//! This crate provides the time base, deterministic pseudo-random number
//! generation, configuration, and statistics plumbing shared by every other
//! crate in the workspace. It replaces the gem5 event core used by the
//! paper's evaluation with a compact, deterministic substrate.
//!
//! # Examples
//!
//! ```
//! use supermem_sim::{Config, SplitMix64};
//!
//! let cfg = Config::default();
//! assert_eq!(cfg.banks, 8);
//!
//! let mut rng = SplitMix64::new(42);
//! let a = rng.next_u64();
//! let b = rng.next_u64();
//! assert_ne!(a, b);
//! ```
#![deny(missing_docs)]

pub mod config;
pub mod hash;
pub mod probe;
pub mod rng;
pub mod stats;
pub mod time;

pub use config::{
    Config, ConfigError, CounterCacheBacking, CounterCacheMode, CounterPlacement, Mutation,
};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use probe::{
    BankUtilization, Event, EventTape, LatencyBreakdown, Log2Histogram, Observer, OccupancySeries,
    Probes, Telemetry,
};
pub use rng::SplitMix64;
pub use stats::Stats;
pub use time::{ns_to_cycles, Cycle};
