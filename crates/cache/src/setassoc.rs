//! A generic set-associative cache with true-LRU replacement.
//!
//! Keys are abstract line identifiers (`u64`); the set index is
//! `key % sets`, matching the usual low-bits indexing once callers strip
//! the line offset. Values are arbitrary, so the same structure backs the
//! data caches (64-byte payloads) and the counter cache (decoded
//! [`supermem_crypto::CounterLine`]s).

/// An entry evicted to make room for an insertion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Evicted<V> {
    /// The evicted key.
    pub key: u64,
    /// The evicted value.
    pub value: V,
    /// Whether the entry was dirty at eviction time.
    pub dirty: bool,
}

#[derive(Debug, Clone)]
struct Slot<V> {
    key: u64,
    value: V,
    dirty: bool,
    stamp: u64,
}

/// A set-associative LRU cache.
///
/// # Examples
///
/// ```
/// use supermem_cache::SetAssocCache;
///
/// // 2 sets x 2 ways.
/// let mut c: SetAssocCache<&str> = SetAssocCache::new(2, 2);
/// c.insert(0, "a");
/// c.insert(2, "b"); // same set as 0
/// c.get(0);          // touch 0 so 2 becomes LRU
/// let ev = c.insert(4, "c").unwrap(); // evicts 2
/// assert_eq!(ev.key, 2);
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache<V> {
    sets: Vec<Vec<Slot<V>>>,
    ways: usize,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl<V> SetAssocCache<V> {
    /// Creates a cache with `sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0 && ways > 0, "cache geometry must be non-zero");
        Self {
            sets: (0..sets).map(|_| Vec::with_capacity(ways)).collect(),
            ways,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Builds geometry from capacity in bytes, line size and ways
    /// (`sets = capacity / (line * ways)`).
    ///
    /// # Panics
    ///
    /// Panics if the division yields zero sets.
    pub fn with_geometry(capacity_bytes: u64, line_bytes: u64, ways: usize) -> Self {
        let sets = capacity_bytes / (line_bytes * ways as u64);
        Self::new(sets as usize, ways)
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets.len()
    }

    /// Ways per set.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total entries currently resident.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// True if no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime (hits, misses) counted by [`Self::get`]/[`Self::get_mut`].
    pub fn hit_miss(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    fn set_of(&self, key: u64) -> usize {
        (key % self.sets.len() as u64) as usize
    }

    /// Looks up `key`, refreshing its LRU position.
    pub fn get(&mut self, key: u64) -> Option<&V> {
        self.get_entry(key).map(|(v, _)| &*v)
    }

    /// Looks up `key` mutably, refreshing its LRU position.
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        self.get_entry(key).map(|(v, _)| v)
    }

    /// Looks up `key` mutably and exposes its dirty flag, refreshing LRU.
    pub fn get_entry(&mut self, key: u64) -> Option<(&mut V, &mut bool)> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(key);
        let slot = self.sets[set].iter_mut().find(|s| s.key == key);
        if let Some(s) = slot {
            s.stamp = tick;
            self.hits += 1;
            Some((&mut s.value, &mut s.dirty))
        } else {
            self.misses += 1;
            None
        }
    }

    /// Checks residency without perturbing LRU or hit counters.
    pub fn peek(&self, key: u64) -> Option<&V> {
        let set = self.set_of(key);
        self.sets[set]
            .iter()
            .find(|s| s.key == key)
            .map(|s| &s.value)
    }

    /// True if `key` is resident and dirty (no LRU side effects).
    pub fn is_dirty(&self, key: u64) -> bool {
        let set = self.set_of(key);
        self.sets[set]
            .iter()
            .find(|s| s.key == key)
            .is_some_and(|s| s.dirty)
    }

    /// Inserts `key` clean, evicting the set's LRU entry if full.
    /// If `key` is already resident its value is replaced in place (the
    /// dirty bit is preserved) and no eviction occurs.
    pub fn insert(&mut self, key: u64, value: V) -> Option<Evicted<V>> {
        self.insert_with_dirty(key, value, false)
    }

    /// Inserts `key` with an explicit dirty flag, evicting if needed.
    /// For an already-resident key the value is replaced and the dirty
    /// flag is OR-ed in.
    pub fn insert_with_dirty(&mut self, key: u64, value: V, dirty: bool) -> Option<Evicted<V>> {
        self.tick += 1;
        let tick = self.tick;
        let ways = self.ways;
        let set_idx = self.set_of(key);
        let set = &mut self.sets[set_idx];
        if let Some(s) = set.iter_mut().find(|s| s.key == key) {
            s.value = value;
            s.dirty |= dirty;
            s.stamp = tick;
            return None;
        }
        let evicted = if set.len() == ways {
            let lru = set
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.stamp)
                .map(|(i, _)| i)
                .expect("non-empty full set");
            let victim = set.swap_remove(lru);
            Some(Evicted {
                key: victim.key,
                value: victim.value,
                dirty: victim.dirty,
            })
        } else {
            None
        };
        set.push(Slot {
            key,
            value,
            dirty,
            stamp: tick,
        });
        evicted
    }

    /// Overwrites the value of a resident entry without touching LRU
    /// state, dirty bits, or hit statistics. Returns `false` if absent.
    ///
    /// Used to keep outer-level copies value-coherent when an inner
    /// level absorbs a store.
    pub fn set_value_quiet(&mut self, key: u64, value: V) -> bool {
        let set = self.set_of(key);
        match self.sets[set].iter_mut().find(|s| s.key == key) {
            Some(s) => {
                s.value = value;
                true
            }
            None => false,
        }
    }

    /// Marks a resident entry dirty. Returns `false` if `key` is absent.
    pub fn mark_dirty(&mut self, key: u64) -> bool {
        let set = self.set_of(key);
        match self.sets[set].iter_mut().find(|s| s.key == key) {
            Some(s) => {
                s.dirty = true;
                true
            }
            None => false,
        }
    }

    /// Clears a resident entry's dirty bit. Returns `false` if absent.
    pub fn clear_dirty(&mut self, key: u64) -> bool {
        let set = self.set_of(key);
        match self.sets[set].iter_mut().find(|s| s.key == key) {
            Some(s) => {
                s.dirty = false;
                true
            }
            None => false,
        }
    }

    /// Removes `key`, returning its value and dirty flag.
    pub fn remove(&mut self, key: u64) -> Option<(V, bool)> {
        let set = self.set_of(key);
        let idx = self.sets[set].iter().position(|s| s.key == key)?;
        let slot = self.sets[set].swap_remove(idx);
        Some((slot.value, slot.dirty))
    }

    /// Drains every resident entry (used to flush or discard a cache).
    pub fn drain(&mut self) -> Vec<Evicted<V>> {
        let mut out = Vec::with_capacity(self.len());
        for set in &mut self.sets {
            for slot in set.drain(..) {
                out.push(Evicted {
                    key: slot.key,
                    value: slot.value,
                    dirty: slot.dirty,
                });
            }
        }
        out
    }

    /// Iterates over `(key, &value, dirty)` without LRU side effects.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V, bool)> {
        self.sets
            .iter()
            .flat_map(|set| set.iter().map(|s| (s.key, &s.value, s.dirty)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss_accounting() {
        let mut c: SetAssocCache<u8> = SetAssocCache::new(4, 2);
        assert_eq!(c.get(5), None);
        c.insert(5, 1);
        assert_eq!(c.get(5), Some(&1));
        assert_eq!(c.hit_miss(), (1, 1));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c: SetAssocCache<u8> = SetAssocCache::new(1, 2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.get(1); // 2 is now LRU
        let ev = c.insert(3, 30).expect("eviction");
        assert_eq!(ev.key, 2);
        assert!(c.peek(1).is_some());
        assert!(c.peek(3).is_some());
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut c: SetAssocCache<u8> = SetAssocCache::new(1, 2);
        c.insert(1, 10);
        c.mark_dirty(1);
        assert!(c.insert(1, 11).is_none());
        assert_eq!(c.peek(1), Some(&11));
        assert!(c.is_dirty(1), "dirty survives value replacement");
    }

    #[test]
    fn dirty_flag_lifecycle() {
        let mut c: SetAssocCache<u8> = SetAssocCache::new(2, 2);
        c.insert(4, 1);
        assert!(!c.is_dirty(4));
        assert!(c.mark_dirty(4));
        assert!(c.is_dirty(4));
        assert!(c.clear_dirty(4));
        assert!(!c.is_dirty(4));
        assert!(!c.mark_dirty(99), "absent keys cannot be dirtied");
    }

    #[test]
    fn eviction_reports_dirty() {
        let mut c: SetAssocCache<u8> = SetAssocCache::new(1, 1);
        c.insert(1, 10);
        c.mark_dirty(1);
        let ev = c.insert(2, 20).unwrap();
        assert!(ev.dirty);
        assert_eq!(ev.value, 10);
    }

    #[test]
    fn keys_map_to_distinct_sets() {
        let mut c: SetAssocCache<u8> = SetAssocCache::new(2, 1);
        c.insert(0, 1); // set 0
        c.insert(1, 2); // set 1
        assert!(c.insert(2, 3).is_some()); // set 0 again -> evicts key 0
        assert_eq!(c.peek(1), Some(&2));
    }

    #[test]
    fn remove_returns_value_and_dirty() {
        let mut c: SetAssocCache<u8> = SetAssocCache::new(2, 2);
        c.insert(7, 70);
        c.mark_dirty(7);
        assert_eq!(c.remove(7), Some((70, true)));
        assert_eq!(c.remove(7), None);
    }

    #[test]
    fn drain_empties_cache() {
        let mut c: SetAssocCache<u8> = SetAssocCache::new(2, 2);
        for k in 0..4 {
            c.insert(k, k as u8);
        }
        let drained = c.drain();
        assert_eq!(drained.len(), 4);
        assert!(c.is_empty());
    }

    #[test]
    fn with_geometry_matches_paper_counter_cache() {
        // 256 KB, 64 B lines, 8 ways -> 512 sets.
        let c: SetAssocCache<u8> = SetAssocCache::with_geometry(256 * 1024, 64, 8);
        assert_eq!(c.sets(), 512);
        assert_eq!(c.ways(), 8);
    }

    #[test]
    fn peek_does_not_touch_lru() {
        let mut c: SetAssocCache<u8> = SetAssocCache::new(1, 2);
        c.insert(1, 10);
        c.insert(2, 20);
        let _ = c.peek(1); // does NOT refresh key 1
        let ev = c.insert(3, 30).unwrap();
        assert_eq!(ev.key, 1, "peek must not refresh LRU position");
    }

    #[test]
    fn get_entry_exposes_dirty_flag() {
        let mut c: SetAssocCache<u8> = SetAssocCache::new(1, 1);
        c.insert(1, 10);
        {
            let (v, dirty) = c.get_entry(1).unwrap();
            *v = 42;
            *dirty = true;
        }
        assert_eq!(c.peek(1), Some(&42));
        assert!(c.is_dirty(1));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_geometry_rejected() {
        let _: SetAssocCache<u8> = SetAssocCache::new(0, 1);
    }
}

#[cfg(test)]
mod randomized {
    //! Deterministic randomized tests (seeded SplitMix64 stands in for
    //! proptest, which is unavailable in offline builds).
    use super::*;
    use std::collections::HashMap;
    use supermem_sim::SplitMix64;

    /// The cache never exceeds its capacity and any resident entry
    /// holds the most recently inserted value for its key.
    #[test]
    fn capacity_and_coherence() {
        let mut rng = SplitMix64::new(0xCAC4E);
        for _ in 0..64 {
            let mut c: SetAssocCache<u16> = SetAssocCache::new(4, 2);
            let mut shadow: HashMap<u64, u16> = HashMap::new();
            for _ in 0..rng.next_range(1, 200) {
                let k = rng.next_below(32);
                let v = rng.next_u64() as u16;
                c.insert(k, v);
                shadow.insert(k, v);
                assert!(c.len() <= 8);
                if let Some(resident) = c.peek(k) {
                    assert_eq!(resident, &shadow[&k]);
                }
            }
            for (k, v, _) in c.iter() {
                assert_eq!(&shadow[&k], v);
            }
        }
    }

    /// Dirty data is never silently lost: an entry that was marked
    /// dirty either remains resident or is reported dirty on eviction.
    #[test]
    fn no_silent_dirty_loss() {
        let mut rng = SplitMix64::new(0xD127);
        for _ in 0..64 {
            let mut c: SetAssocCache<u64> = SetAssocCache::new(2, 2);
            let mut dirty_outstanding = std::collections::HashSet::new();
            for _ in 0..rng.next_range(1, 100) {
                let k = rng.next_below(16);
                if let Some(ev) = c.insert_with_dirty(k, k, true) {
                    if ev.dirty {
                        dirty_outstanding.remove(&ev.key);
                    }
                }
                dirty_outstanding.insert(k);
                // Every outstanding dirty key must still be resident.
                for d in &dirty_outstanding {
                    assert!(c.is_dirty(*d), "dirty key {d} lost");
                }
            }
        }
    }
}
