//! The CPU-side cache hierarchy.
//!
//! Private L1/L2 per core and a shared L3, all write-back/write-allocate
//! with 64-byte lines, holding *plaintext*. The hierarchy is inclusive:
//! an L3 eviction back-invalidates inner copies and merges the newest
//! dirty data so no bytes are ever silently dropped — except at a crash,
//! when [`CacheHierarchy::discard`] throws everything away, which is the
//! whole reason persistent-memory programs issue `clwb`.
//!
//! The hierarchy is purely reactive: methods return the lines that must
//! travel to the memory controller (dirty evictions, flushed lines); the
//! caller owns all interaction with the encrypted write path.

use supermem_nvm::addr::LineAddr;
use supermem_nvm::LineData;
use supermem_sim::{Config, Cycle};

use crate::setassoc::SetAssocCache;

/// A dirty line leaving the hierarchy toward the memory controller.
pub type Writeback = (LineAddr, LineData);

/// Result of a load probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadResult {
    /// The line contents if any level hit.
    pub data: Option<LineData>,
    /// Core-visible latency of the probe (sum of traversed levels).
    pub latency: Cycle,
    /// Which level hit: 1, 2, 3, or 0 for a full miss.
    pub level: u8,
    /// Dirty lines displaced to memory by promotions.
    pub writebacks: Vec<Writeback>,
}

/// The simulated L1/L2/L3 cache hierarchy.
///
/// # Examples
///
/// ```
/// use supermem_cache::CacheHierarchy;
/// use supermem_nvm::addr::LineAddr;
/// use supermem_sim::Config;
///
/// let mut h = CacheHierarchy::new(&Config::default());
/// let line = LineAddr(0x1000);
/// assert!(h.load(0, line).data.is_none()); // cold miss
/// h.fill(0, line, [7u8; 64]);
/// assert_eq!(h.load(0, line).data, Some([7u8; 64]));
/// ```
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1: Vec<SetAssocCache<LineData>>,
    l2: Vec<SetAssocCache<LineData>>,
    l3: SetAssocCache<LineData>,
    l1_latency: Cycle,
    l2_latency: Cycle,
    l3_latency: Cycle,
    line_bytes: u64,
}

impl CacheHierarchy {
    /// Builds the hierarchy described by `cfg` (sizes, ways, latencies,
    /// core count).
    pub fn new(cfg: &Config) -> Self {
        let mk =
            |bytes: u64, ways: usize| SetAssocCache::with_geometry(bytes, cfg.line_bytes, ways);
        Self {
            l1: (0..cfg.cores)
                .map(|_| mk(cfg.l1_bytes, cfg.l1_ways))
                .collect(),
            l2: (0..cfg.cores)
                .map(|_| mk(cfg.l2_bytes, cfg.l2_ways))
                .collect(),
            l3: mk(cfg.l3_bytes, cfg.l3_ways),
            l1_latency: cfg.l1_latency,
            l2_latency: cfg.l2_latency,
            l3_latency: cfg.l3_latency,
            line_bytes: cfg.line_bytes,
        }
    }

    fn key(&self, line: LineAddr) -> u64 {
        line.0 / self.line_bytes
    }

    /// Probes L1→L2→L3 for `line` on behalf of `core`.
    ///
    /// On an inner miss with an outer hit, the line is promoted into the
    /// inner levels; promotions may displace dirty lines all the way to
    /// memory, returned in [`LoadResult::writebacks`].
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn load(&mut self, core: usize, line: LineAddr) -> LoadResult {
        let key = self.key(line);
        if let Some(data) = self.l1[core].get(key) {
            return LoadResult {
                data: Some(*data),
                latency: self.l1_latency,
                level: 1,
                writebacks: Vec::new(),
            };
        }
        if let Some(data) = self.l2[core].get(key).copied() {
            let writebacks = self.install_l1(core, line, data, false);
            return LoadResult {
                data: Some(data),
                latency: self.l1_latency + self.l2_latency,
                level: 2,
                writebacks,
            };
        }
        if let Some(data) = self.l3.get(key).copied() {
            let mut writebacks = self.install_l2(core, line, data, false);
            writebacks.extend(self.install_l1(core, line, data, false));
            return LoadResult {
                data: Some(data),
                latency: self.l1_latency + self.l2_latency + self.l3_latency,
                level: 3,
                writebacks,
            };
        }
        LoadResult {
            data: None,
            latency: self.l1_latency + self.l2_latency + self.l3_latency,
            level: 0,
            writebacks: Vec::new(),
        }
    }

    /// Installs a line fetched from memory into all levels (inclusive
    /// fill). Returns dirty displacements toward memory.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn fill(&mut self, core: usize, line: LineAddr, data: LineData) -> Vec<Writeback> {
        let mut writebacks = self.install_l3(line, data, false);
        writebacks.extend(self.install_l2(core, line, data, false));
        writebacks.extend(self.install_l1(core, line, data, false));
        writebacks
    }

    /// Overwrites a line that is resident in L1 and marks it dirty.
    /// Returns the L1 store latency.
    ///
    /// Callers establish residency with [`Self::load`] + [`Self::fill`]
    /// first (write-allocate). The store invalidates every *other*
    /// core's private copy of the line (write-invalidate coherence), so
    /// a sharing core's next load misses its private levels and picks
    /// up the new value from the shared L3.
    ///
    /// # Panics
    ///
    /// Panics if the line is not resident in the core's L1 — that is a
    /// protocol violation by the caller, not a recoverable condition.
    pub fn store(&mut self, core: usize, line: LineAddr, data: LineData) -> Cycle {
        let key = self.key(line);
        let (slot, dirty) = self.l1[core]
            .get_entry(key)
            .expect("store to a non-resident line: load/fill first (write-allocate)");
        *slot = data;
        *dirty = true;
        // Keep outer copies value-coherent (single-copy semantics of a
        // real coherent hierarchy): a later L2/L3 hit must never serve a
        // version older than what `clwb` already persisted.
        self.l2[core].set_value_quiet(key, data);
        self.l3.set_value_quiet(key, data);
        // Write-invalidate: other cores' private copies are now stale.
        // Their next load falls through to the shared (value-coherent)
        // L3, which is how shared lock-free structures observe each
        // other's CAS publications.
        for (c, l1) in self.l1.iter_mut().enumerate() {
            if c != core {
                l1.remove(key);
            }
        }
        for (c, l2) in self.l2.iter_mut().enumerate() {
            if c != core {
                l2.remove(key);
            }
        }
        self.l1_latency
    }

    /// `clwb`-style flush: if the line is dirty anywhere, returns the
    /// newest copy (L1 wins over L2 over L3) and clears all dirty bits,
    /// leaving the line resident. Returns `None` when the line is clean
    /// or absent (a `clwb` of a clean line is a no-op at the memory).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn flush_line(&mut self, core: usize, line: LineAddr) -> (Option<LineData>, Cycle) {
        let key = self.key(line);
        let mut newest: Option<LineData> = None;
        // L3 first so inner (newer) copies overwrite `newest`.
        if self.l3.is_dirty(key) {
            newest = self.l3.peek(key).copied();
        }
        self.l3.clear_dirty(key);
        if self.l2[core].is_dirty(key) {
            newest = self.l2[core].peek(key).copied();
        }
        self.l2[core].clear_dirty(key);
        if self.l1[core].is_dirty(key) {
            newest = self.l1[core].peek(key).copied();
        }
        self.l1[core].clear_dirty(key);
        (newest, self.l1_latency)
    }

    /// Drops every cached line (simulated power failure). Dirty data is
    /// lost, exactly as on real hardware.
    pub fn discard(&mut self) {
        for c in &mut self.l1 {
            c.drain();
        }
        for c in &mut self.l2 {
            c.drain();
        }
        self.l3.drain();
    }

    /// Flushes every dirty line out of the hierarchy (clean shutdown /
    /// end-of-run accounting). Inner copies win over outer ones.
    pub fn drain_dirty(&mut self) -> Vec<Writeback> {
        use std::collections::HashMap;
        let mut newest: HashMap<u64, LineData> = HashMap::new();
        // Outer to inner so inner levels overwrite.
        for ev in self.l3.drain() {
            if ev.dirty {
                newest.insert(ev.key, ev.value);
            }
        }
        for c in &mut self.l2 {
            for ev in c.drain() {
                if ev.dirty {
                    newest.insert(ev.key, ev.value);
                }
            }
        }
        for c in &mut self.l1 {
            for ev in c.drain() {
                if ev.dirty {
                    newest.insert(ev.key, ev.value);
                }
            }
        }
        let line_bytes = self.line_bytes;
        let mut out: Vec<Writeback> = newest
            .into_iter()
            .map(|(key, data)| (LineAddr(key * line_bytes), data))
            .collect();
        out.sort_by_key(|(a, _)| a.0);
        out
    }

    /// (hits, misses) of the shared L3 (diagnostics).
    pub fn l3_hit_miss(&self) -> (u64, u64) {
        self.l3.hit_miss()
    }

    fn install_l1(
        &mut self,
        core: usize,
        line: LineAddr,
        data: LineData,
        dirty: bool,
    ) -> Vec<Writeback> {
        let key = self.key(line);
        let mut writebacks = Vec::new();
        if let Some(ev) = self.l1[core].insert_with_dirty(key, data, dirty) {
            if ev.dirty {
                // Dirty L1 victim sinks into L2.
                writebacks.extend(self.install_l2(
                    core,
                    LineAddr(ev.key * self.line_bytes),
                    ev.value,
                    true,
                ));
            }
        }
        writebacks
    }

    fn install_l2(
        &mut self,
        core: usize,
        line: LineAddr,
        data: LineData,
        dirty: bool,
    ) -> Vec<Writeback> {
        let key = self.key(line);
        let mut writebacks = Vec::new();
        if let Some(ev) = self.l2[core].insert_with_dirty(key, data, dirty) {
            if ev.dirty {
                writebacks.extend(self.install_l3(
                    LineAddr(ev.key * self.line_bytes),
                    ev.value,
                    true,
                ));
            }
        }
        writebacks
    }

    fn install_l3(&mut self, line: LineAddr, data: LineData, dirty: bool) -> Vec<Writeback> {
        let key = self.key(line);
        let mut writebacks = Vec::new();
        if let Some(ev) = self.l3.insert_with_dirty(key, data, dirty) {
            let victim_line = LineAddr(ev.key * self.line_bytes);
            // Inclusive back-invalidation: pull the newest copy out of the
            // inner levels before the line leaves the hierarchy.
            let mut newest = ev.value;
            let mut dirty_any = ev.dirty;
            for c in &mut self.l2 {
                if let Some((v, d)) = c.remove(ev.key) {
                    if d {
                        newest = v;
                        dirty_any = true;
                    }
                }
            }
            for c in &mut self.l1 {
                if let Some((v, d)) = c.remove(ev.key) {
                    if d {
                        newest = v;
                        dirty_any = true;
                    }
                }
            }
            if dirty_any {
                writebacks.push((victim_line, newest));
            }
        }
        writebacks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> Config {
        // Tiny caches so evictions are easy to provoke.
        Config {
            cores: 2,
            l1_bytes: 2 * 64,
            l1_ways: 1,
            l2_bytes: 4 * 64,
            l2_ways: 1,
            l3_bytes: 8 * 64,
            l3_ways: 1,
            ..Config::default()
        }
    }

    #[test]
    fn cold_miss_then_fill_then_hit() {
        let mut h = CacheHierarchy::new(&Config::default());
        let line = LineAddr(0x2000);
        let r = h.load(0, line);
        assert_eq!(r.level, 0);
        assert_eq!(r.latency, 2 + 16 + 30);
        h.fill(0, line, [1; 64]);
        let r = h.load(0, line);
        assert_eq!(r.level, 1);
        assert_eq!(r.latency, 2);
        assert_eq!(r.data, Some([1; 64]));
    }

    #[test]
    fn store_marks_dirty_and_flush_returns_newest() {
        let mut h = CacheHierarchy::new(&Config::default());
        let line = LineAddr(0x40);
        h.fill(0, line, [0; 64]);
        h.store(0, line, [9; 64]);
        let (data, _) = h.flush_line(0, line);
        assert_eq!(data, Some([9; 64]));
        // Second flush is a no-op: the line is clean now.
        let (data, _) = h.flush_line(0, line);
        assert_eq!(data, None);
        // Line stays resident after clwb.
        assert_eq!(h.load(0, line).level, 1);
    }

    #[test]
    #[should_panic(expected = "write-allocate")]
    fn store_requires_residency() {
        let mut h = CacheHierarchy::new(&Config::default());
        h.store(0, LineAddr(0x40), [1; 64]);
    }

    #[test]
    fn l2_hit_promotes_to_l1() {
        let mut h = CacheHierarchy::new(&small_cfg());
        // Two lines in the same L1 set evict each other (1-way 2-set L1:
        // keys 0 and 2 share set 0).
        let a = LineAddr(0);
        let b = LineAddr(2 * 64);
        h.fill(0, a, [1; 64]);
        h.fill(0, b, [2; 64]); // displaces `a` from L1 into L2 path
        let r = h.load(0, a);
        assert!(r.level >= 2, "a must hit an outer level, got {}", r.level);
        let r = h.load(0, a);
        assert_eq!(r.level, 1, "promotion must land a in L1");
    }

    #[test]
    fn dirty_data_survives_eviction_cascade() {
        let mut h = CacheHierarchy::new(&small_cfg());
        let a = LineAddr(0);
        h.fill(0, a, [0; 64]);
        h.store(0, a, [0xAA; 64]);
        // Blow the whole hierarchy with conflicting fills; the dirty line
        // must eventually come back out as a writeback, never vanish.
        let mut writebacks = Vec::new();
        for i in 1..64u64 {
            writebacks.extend(h.fill(0, LineAddr(i * 2 * 64 * 8), [i as u8; 64]));
        }
        writebacks.extend(h.drain_dirty());
        let found = writebacks.iter().find(|(l, _)| *l == a);
        assert_eq!(found.map(|(_, d)| *d), Some([0xAA; 64]));
    }

    #[test]
    fn discard_loses_dirty_data() {
        let mut h = CacheHierarchy::new(&Config::default());
        let line = LineAddr(0x80);
        h.fill(0, line, [0; 64]);
        h.store(0, line, [5; 64]);
        h.discard();
        assert!(h.load(0, line).data.is_none());
        assert!(h.drain_dirty().is_empty());
    }

    #[test]
    fn cores_have_private_l1_l2() {
        let mut h = CacheHierarchy::new(&small_cfg());
        let line = LineAddr(0x40);
        h.fill(0, line, [3; 64]);
        // Core 1 misses its private levels but hits shared L3.
        let r = h.load(1, line);
        assert_eq!(r.level, 3);
    }

    #[test]
    fn store_invalidates_other_cores_private_copies() {
        // Core 1 caches a line, core 0 stores to it; core 1's next load
        // must miss its private levels and see the new value from L3.
        let mut h = CacheHierarchy::new(&small_cfg());
        let line = LineAddr(0x40);
        h.fill(1, line, [1; 64]);
        assert_eq!(h.load(1, line).level, 1);
        h.fill(0, line, [1; 64]);
        h.store(0, line, [2; 64]);
        let r = h.load(1, line);
        assert_eq!(r.level, 3, "private copies must have been invalidated");
        assert_eq!(r.data, Some([2; 64]), "L3 must serve the stored value");
        // The writer keeps its own (newest) copy.
        assert_eq!(h.load(0, line).level, 1);
    }

    #[test]
    fn flush_prefers_inner_copy() {
        let mut h = CacheHierarchy::new(&small_cfg());
        let a = LineAddr(0);
        h.fill(0, a, [0; 64]);
        h.store(0, a, [1; 64]);
        // Force `a` out of L1 into L2 (dirty), then re-fill and store a
        // newer value in L1.
        let b = LineAddr(2 * 64);
        h.fill(0, b, [2; 64]);
        let r = h.load(0, a); // promote back (L2 copy dirty, promoted clean copy in L1)
        assert!(r.data.is_some());
        h.store(0, a, [7; 64]); // L1 now has the newest version
        let (data, _) = h.flush_line(0, a);
        assert_eq!(data, Some([7; 64]), "flush must take the L1 copy");
    }

    #[test]
    fn outer_levels_never_serve_stale_data_after_clwb() {
        // Regression: store -> clwb -> clean L1 eviction. A later load
        // hitting L2/L3 must return the stored value, not the stale copy
        // installed at fill time.
        let mut h = CacheHierarchy::new(&small_cfg());
        let a = LineAddr(0);
        h.fill(0, a, [0; 64]); // L1/L2/L3 all hold the old version
        h.store(0, a, [9; 64]);
        let (flushed, _) = h.flush_line(0, a);
        assert_eq!(flushed, Some([9; 64]));
        // Conflict-evict `a` out of L1 (1-way set): key 2 shares set 0.
        h.fill(0, LineAddr(2 * 64), [1; 64]);
        let r = h.load(0, a);
        assert!(r.level >= 2, "must hit an outer level");
        assert_eq!(r.data, Some([9; 64]), "outer copy must be current");
    }

    #[test]
    fn drain_dirty_reports_each_line_once() {
        let mut h = CacheHierarchy::new(&Config::default());
        for i in 0..8u64 {
            let line = LineAddr(i * 64);
            h.fill(0, line, [0; 64]);
            h.store(0, line, [i as u8 + 1; 64]);
        }
        let wbs = h.drain_dirty();
        assert_eq!(wbs.len(), 8);
        let mut addrs: Vec<u64> = wbs.iter().map(|(l, _)| l.0).collect();
        addrs.dedup();
        assert_eq!(addrs.len(), 8);
    }
}
