//! Cache substrate for the SuperMem reproduction.
//!
//! Provides the volatile storage components of the simulated machine:
//!
//! * [`setassoc`] — a generic set-associative LRU cache used by every
//!   concrete cache in the workspace.
//! * [`hierarchy`] — the CPU-side L1/L2/L3 write-back hierarchy with
//!   `clwb`-style line flushing. These caches hold *plaintext*; anything
//!   dirty here is lost on a crash, which is why programs must flush.
//! * [`counter_cache`] — the memory controller's on-chip counter cache
//!   (paper §2.2.4), operable in write-through (SuperMem) or write-back
//!   (conventional/ideal WB) mode.
//!
//! # Examples
//!
//! ```
//! use supermem_cache::setassoc::SetAssocCache;
//!
//! let mut c: SetAssocCache<u32> = SetAssocCache::new(4, 2);
//! c.insert(1, 100);
//! assert_eq!(c.get(1), Some(&100));
//! assert_eq!(c.get(2), None);
//! ```
#![warn(missing_docs)]

pub mod counter_cache;
pub mod hierarchy;
pub mod setassoc;

pub use counter_cache::{CounterCache, CounterCacheOutcome};
pub use hierarchy::CacheHierarchy;
pub use setassoc::SetAssocCache;
