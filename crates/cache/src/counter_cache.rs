//! The memory controller's on-chip counter cache (paper §2.2.4, §3.2).
//!
//! Caches decoded [`CounterLine`]s keyed by page. Two write policies:
//!
//! * **Write-through** (SuperMem): [`CounterCache::update`] returns
//!   [`CounterCacheOutcome::WriteThrough`], telling the controller to
//!   emit a counter write to NVM for *every* data write. Entries are
//!   never dirty, so a crash loses nothing.
//! * **Write-back** (conventional / the paper's ideal WB baseline):
//!   updates dirty the cached entry; a counter write reaches NVM only
//!   when the entry is evicted (or when a battery flushes the cache on a
//!   crash — see [`CounterCache::drain_dirty`]).

use supermem_crypto::CounterLine;
use supermem_sim::CounterCacheMode;

use crate::setassoc::{Evicted, SetAssocCache};

/// What the memory controller must do after a counter update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CounterCacheOutcome {
    /// Write-through: persist this counter line to NVM now.
    WriteThrough,
    /// Write-back: nothing to persist now; the entry is dirty in-cache.
    Deferred,
}

/// The counter cache.
///
/// # Examples
///
/// ```
/// use supermem_cache::{CounterCache, CounterCacheOutcome};
/// use supermem_crypto::CounterLine;
/// use supermem_sim::CounterCacheMode;
/// use supermem_nvm::addr::PageId;
///
/// let mut cc = CounterCache::new(256 * 1024, 64, 8, CounterCacheMode::WriteThrough);
/// assert!(cc.get(PageId(3)).is_none()); // cold
/// cc.fill(PageId(3), CounterLine::new());
/// assert!(cc.get(PageId(3)).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct CounterCache {
    cache: SetAssocCache<CounterLine>,
    mode: CounterCacheMode,
    /// Fault injection (`Mutation::WtOff`): a write-through update is
    /// silently deferred instead, stranding the counter dirty in cache.
    drop_write_through: bool,
}

impl CounterCache {
    /// Builds a counter cache with the given geometry and write policy.
    ///
    /// # Panics
    ///
    /// Panics if the geometry yields zero sets.
    pub fn new(capacity_bytes: u64, line_bytes: u64, ways: usize, mode: CounterCacheMode) -> Self {
        Self {
            cache: SetAssocCache::with_geometry(capacity_bytes, line_bytes, ways),
            mode,
            drop_write_through: false,
        }
    }

    /// The configured write policy.
    pub fn mode(&self) -> CounterCacheMode {
        self.mode
    }

    /// Arms the `wt-off` fault injection: write-through updates are
    /// silently deferred (dirty in cache, nothing persisted). Only the
    /// checker's mutant harness turns this on.
    pub fn inject_drop_write_through(&mut self) {
        self.drop_write_through = true;
    }

    /// Looks up the counters of `page`, refreshing LRU. Counts toward the
    /// hit/miss statistics.
    pub fn get(&mut self, page: supermem_nvm::addr::PageId) -> Option<&CounterLine> {
        self.cache.get(page.0)
    }

    /// Checks residency without LRU or statistics side effects.
    pub fn peek(&self, page: supermem_nvm::addr::PageId) -> Option<&CounterLine> {
        self.cache.peek(page.0)
    }

    /// True if `page` is resident with unpersisted updates. No LRU or
    /// statistics side effects; always `false` for write-through caches.
    pub fn is_dirty(&self, page: supermem_nvm::addr::PageId) -> bool {
        self.cache.is_dirty(page.0)
    }

    /// Inserts counters fetched from NVM. Returns an evicted entry; in
    /// write-back mode a *dirty* eviction must be persisted by the
    /// caller.
    pub fn fill(
        &mut self,
        page: supermem_nvm::addr::PageId,
        line: CounterLine,
    ) -> Option<(supermem_nvm::addr::PageId, CounterLine, bool)> {
        self.cache
            .insert(page.0, line)
            .map(|Evicted { key, value, dirty }| (supermem_nvm::addr::PageId(key), value, dirty))
    }

    /// Applies an updated counter line for `page` after a data write.
    ///
    /// The entry must be resident (the controller faults it in first).
    /// Returns the policy action for the controller.
    ///
    /// # Panics
    ///
    /// Panics if `page` is not resident — the memory controller must
    /// fill before updating.
    pub fn update(
        &mut self,
        page: supermem_nvm::addr::PageId,
        line: CounterLine,
    ) -> CounterCacheOutcome {
        let (slot, dirty) = self
            .cache
            .get_entry(page.0)
            .expect("counter update for a non-resident page: fill first");
        *slot = line;
        match self.mode {
            CounterCacheMode::WriteThrough if self.drop_write_through => {
                // Injected defect: the update never reaches NVM and the
                // cache is unbacked, so a crash loses this counter.
                *dirty = true;
                CounterCacheOutcome::Deferred
            }
            CounterCacheMode::WriteThrough => {
                *dirty = false;
                CounterCacheOutcome::WriteThrough
            }
            CounterCacheMode::WriteBack => {
                *dirty = true;
                CounterCacheOutcome::Deferred
            }
        }
    }

    /// Flushes all dirty entries: returns their contents for write-back
    /// and marks them clean *in place* — resident entries stay cached
    /// (a flush is not an invalidation). Write-through caches return an
    /// empty vector.
    pub fn drain_dirty(&mut self) -> Vec<(supermem_nvm::addr::PageId, CounterLine)> {
        let dirty_keys: Vec<u64> = self
            .cache
            .iter()
            .filter(|(_, _, dirty)| *dirty)
            .map(|(key, _, _)| key)
            .collect();
        dirty_keys
            .into_iter()
            .map(|key| {
                self.cache.clear_dirty(key);
                let value = self
                    .cache
                    .peek(key)
                    .expect("dirty entry vanished during flush")
                    .clone();
                (supermem_nvm::addr::PageId(key), value)
            })
            .collect()
    }

    /// Snapshots the dirty entries without disturbing the cache — what a
    /// battery would persist at a crash instant.
    pub fn dirty_entries(&self) -> Vec<(supermem_nvm::addr::PageId, CounterLine)> {
        self.cache
            .iter()
            .filter(|(_, _, dirty)| *dirty)
            .map(|(key, value, _)| (supermem_nvm::addr::PageId(key), value.clone()))
            .collect()
    }

    /// Clears one page's dirty bit after an explicit writeback.
    /// Returns `false` if the page is not resident.
    pub fn clear_dirty(&mut self, page: supermem_nvm::addr::PageId) -> bool {
        self.cache.clear_dirty(page.0)
    }

    /// Discards everything (crash without battery).
    pub fn discard(&mut self) {
        self.cache.drain();
    }

    /// Lifetime (hits, misses) from [`CounterCache::get`].
    pub fn hit_miss(&self) -> (u64, u64) {
        self.cache.hit_miss()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supermem_nvm::addr::PageId;

    fn wt() -> CounterCache {
        CounterCache::new(64 * 64, 64, 4, CounterCacheMode::WriteThrough)
    }

    fn wb() -> CounterCache {
        CounterCache::new(64 * 64, 64, 4, CounterCacheMode::WriteBack)
    }

    #[test]
    fn write_through_updates_are_never_dirty() {
        let mut cc = wt();
        cc.fill(PageId(1), CounterLine::new());
        let mut line = CounterLine::new();
        line.increment(0);
        assert_eq!(
            cc.update(PageId(1), line),
            CounterCacheOutcome::WriteThrough
        );
        assert!(cc.drain_dirty().is_empty());
    }

    #[test]
    fn write_back_defers_and_tracks_dirty() {
        let mut cc = wb();
        cc.fill(PageId(1), CounterLine::new());
        let mut line = CounterLine::new();
        line.increment(5);
        assert_eq!(
            cc.update(PageId(1), line.clone()),
            CounterCacheOutcome::Deferred
        );
        let dirty = cc.drain_dirty();
        assert_eq!(dirty, vec![(PageId(1), line)]);
    }

    #[test]
    fn eviction_reports_dirtiness() {
        let mut cc = CounterCache::new(64, 64, 1, CounterCacheMode::WriteBack);
        cc.fill(PageId(0), CounterLine::new());
        let mut line = CounterLine::new();
        line.increment(0);
        cc.update(PageId(0), line.clone());
        // Any other page maps to the single set and evicts page 0.
        let (page, value, dirty) = cc.fill(PageId(1), CounterLine::new()).expect("eviction");
        assert_eq!(page, PageId(0));
        assert_eq!(value, line);
        assert!(dirty);
    }

    #[test]
    fn write_through_evictions_are_clean() {
        let mut cc = CounterCache::new(64, 64, 1, CounterCacheMode::WriteThrough);
        cc.fill(PageId(0), CounterLine::new());
        let mut line = CounterLine::new();
        line.increment(0);
        cc.update(PageId(0), line);
        let (_, _, dirty) = cc.fill(PageId(1), CounterLine::new()).expect("eviction");
        assert!(!dirty, "write-through entries must evict clean");
    }

    #[test]
    fn injected_wt_off_defers_and_dirties() {
        let mut cc = wt();
        cc.inject_drop_write_through();
        cc.fill(PageId(1), CounterLine::new());
        let mut line = CounterLine::new();
        line.increment(0);
        assert_eq!(cc.update(PageId(1), line), CounterCacheOutcome::Deferred);
        assert!(cc.is_dirty(PageId(1)), "dropped write-through strands dirt");
    }

    #[test]
    #[should_panic(expected = "fill first")]
    fn update_requires_residency() {
        let mut cc = wt();
        cc.update(PageId(9), CounterLine::new());
    }

    #[test]
    fn discard_drops_everything() {
        let mut cc = wb();
        cc.fill(PageId(2), CounterLine::new());
        cc.update(PageId(2), CounterLine::new());
        cc.discard();
        assert!(cc.peek(PageId(2)).is_none());
        assert!(cc.drain_dirty().is_empty());
    }

    #[test]
    fn hit_miss_counting() {
        let mut cc = wt();
        assert!(cc.get(PageId(7)).is_none());
        cc.fill(PageId(7), CounterLine::new());
        assert!(cc.get(PageId(7)).is_some());
        assert_eq!(cc.hit_miss(), (1, 1));
    }
}
