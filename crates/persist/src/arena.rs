//! A bump allocator over a persistent address range.
//!
//! Persistent data structures need stable addresses inside the simulated
//! NVM. [`Arena`] hands out aligned, non-overlapping ranges from a fixed
//! region — mirroring how the paper's workloads get an OS-contiguous
//! allocation (which is what makes their data writes spatially local,
//! §3.4.2). Allocation metadata is volatile; the experiments rebuild it
//! deterministically, so it needs no crash consistency of its own.

/// Error returned when an arena runs out of space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaExhausted {
    /// Bytes requested.
    pub requested: u64,
    /// Bytes remaining.
    pub remaining: u64,
}

impl std::fmt::Display for ArenaExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "arena exhausted: requested {} bytes, {} remaining",
            self.requested, self.remaining
        )
    }
}

impl std::error::Error for ArenaExhausted {}

/// A bump allocator over `[base, base + len)`.
///
/// # Examples
///
/// ```
/// use supermem_persist::Arena;
///
/// let mut a = Arena::new(0x1000, 0x1000);
/// let x = a.alloc(100, 64)?;
/// let y = a.alloc(100, 64)?;
/// assert_eq!(x % 64, 0);
/// assert!(y >= x + 100);
/// # Ok::<(), supermem_persist::arena::ArenaExhausted>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arena {
    base: u64,
    end: u64,
    next: u64,
}

impl Arena {
    /// Creates an arena over `[base, base + len)`.
    ///
    /// # Panics
    ///
    /// Panics if the range overflows `u64` or `len` is zero.
    pub fn new(base: u64, len: u64) -> Self {
        assert!(len > 0, "arena must have space");
        let Some(end) = base.checked_add(len) else {
            // Justified panic: documented constructor contract (see
            // Panics above) — a range overflowing u64 is a caller bug.
            panic!("arena range overflow: base {base:#x} + len {len:#x}");
        };
        Self {
            base,
            end,
            next: base,
        }
    }

    /// Start of the managed range.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// One past the end of the managed range.
    pub fn end(&self) -> u64 {
        self.end
    }

    /// Bytes still available (ignoring future alignment padding).
    pub fn remaining(&self) -> u64 {
        self.end - self.next
    }

    /// Allocates `size` bytes aligned to `align`.
    ///
    /// # Errors
    ///
    /// Returns [`ArenaExhausted`] if the aligned allocation does not fit.
    ///
    /// # Panics
    ///
    /// Panics if `align` is zero or not a power of two.
    pub fn alloc(&mut self, size: u64, align: u64) -> Result<u64, ArenaExhausted> {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let aligned = (self.next + align - 1) & !(align - 1);
        let end = aligned.checked_add(size).ok_or(ArenaExhausted {
            requested: size,
            remaining: self.remaining(),
        })?;
        if end > self.end {
            return Err(ArenaExhausted {
                requested: size,
                remaining: self.remaining(),
            });
        }
        self.next = end;
        Ok(aligned)
    }

    /// Allocates a whole number of 64-byte lines (the natural unit for
    /// flush-friendly structures).
    ///
    /// # Errors
    ///
    /// Returns [`ArenaExhausted`] if the allocation does not fit.
    pub fn alloc_lines(&mut self, lines: u64) -> Result<u64, ArenaExhausted> {
        self.alloc(lines * 64, 64)
    }

    /// Resets the arena, recycling all space (volatile metadata only).
    pub fn reset(&mut self) {
        self.next = self.base;
    }

    /// Advances the bump pointer to at least `addr`. Recovery uses this
    /// to rebuild the (volatile) allocation metadata of a crash image:
    /// reserving past every reachable node keeps re-executed
    /// allocations from aliasing live data.
    ///
    /// # Panics
    ///
    /// Panics if `addr` lies outside `[base, end]`.
    pub fn reserve_until(&mut self, addr: u64) {
        assert!(
            addr >= self.base && addr <= self.end,
            "reserve_until({addr:#x}) outside [{:#x}, {:#x}]",
            self.base,
            self.end
        );
        self.next = self.next.max(addr);
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // unwrap/expect are fine in tests
mod tests {
    use super::*;

    #[test]
    fn allocations_do_not_overlap() {
        let mut a = Arena::new(0, 1024);
        let x = a.alloc(100, 8).unwrap();
        let y = a.alloc(100, 8).unwrap();
        assert!(x + 100 <= y);
    }

    #[test]
    fn respects_alignment() {
        let mut a = Arena::new(1, 4096);
        let x = a.alloc(10, 64).unwrap();
        assert_eq!(x % 64, 0);
        let y = a.alloc(10, 256).unwrap();
        assert_eq!(y % 256, 0);
    }

    #[test]
    fn exhaustion_reports_sizes() {
        let mut a = Arena::new(0, 128);
        a.alloc(100, 1).unwrap();
        let err = a.alloc(100, 1).unwrap_err();
        assert_eq!(err.requested, 100);
        assert_eq!(err.remaining, 28);
        assert!(err.to_string().contains("exhausted"));
    }

    #[test]
    fn reset_recycles() {
        let mut a = Arena::new(0, 64);
        a.alloc(64, 1).unwrap();
        assert!(a.alloc(1, 1).is_err());
        a.reset();
        assert!(a.alloc(64, 1).is_ok());
    }

    #[test]
    fn alloc_lines_is_line_aligned() {
        let mut a = Arena::new(7, 4096);
        let x = a.alloc_lines(2).unwrap();
        assert_eq!(x % 64, 0);
        let y = a.alloc_lines(1).unwrap();
        assert_eq!(y, x + 128);
    }

    #[test]
    fn getters() {
        let a = Arena::new(100, 50);
        assert_eq!(a.base(), 100);
        assert_eq!(a.end(), 150);
        assert_eq!(a.remaining(), 50);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_alignment_panics() {
        Arena::new(0, 64).alloc(1, 3).unwrap();
    }
}
