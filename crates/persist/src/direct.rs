//! A cache-model-free [`PMem`] over the memory controller.
//!
//! [`DirectMem`] gives programs byte-addressable access to the simulated
//! secure NVM with an *unbounded* volatile write-back buffer standing in
//! for the CPU caches: stores land in the buffer, `clwb` pushes a line
//! through the controller's encrypted write path, `sfence` waits for the
//! retire cycles. On a crash the buffer's dirty lines are simply lost —
//! the same semantics as real CPU caches, without a capacity model.
//!
//! The fully timed system (finite L1/L2/L3) lives in the `supermem`
//! crate; `DirectMem` exists so the persistence and crash-consistency
//! machinery can be exercised and tested below the system layer, and it
//! is what the Table 1 experiments use.

use supermem_memctrl::{ChannelSet, CrashImage, MachineCrashImage, MemoryController};
use supermem_nvm::addr::LineAddr;
use supermem_nvm::LineData;
use supermem_sim::{Config, Cycle};

use crate::pmem::PMem;

/// Per-instruction cost charged for buffer hits (an L1-ish latency).
const HIT_COST: Cycle = 2;

/// Byte-addressable persistent memory backed by a [`ChannelSet`] (one
/// memory controller per configured channel), with an unbounded volatile
/// buffer in place of a cache hierarchy.
///
/// # Examples
///
/// ```
/// use supermem_persist::{pmem::PMem, DirectMem};
/// use supermem_sim::Config;
///
/// let mut mem = DirectMem::new(&Config::default());
/// mem.write_u64(0x100, 77);
/// mem.clwb(0x100, 8);
/// mem.sfence();
/// assert_eq!(mem.read_u64(0x100), 77);
/// ```
#[derive(Debug, Clone)]
pub struct DirectMem {
    mc: ChannelSet,
    buffer: supermem_sim::FxHashMap<u64, (LineData, bool)>,
    now: Cycle,
    pending_retire: Cycle,
}

impl DirectMem {
    /// A fresh system over zeroed NVM.
    pub fn new(cfg: &Config) -> Self {
        Self::from_channels(ChannelSet::new(cfg))
    }

    /// Wraps an existing single-channel controller (e.g. one restarted
    /// on a recovered store).
    ///
    /// # Panics
    ///
    /// Panics if the controller was built for a multi-channel
    /// configuration — wrap a full [`ChannelSet`] instead.
    pub fn from_controller(mc: MemoryController) -> Self {
        Self::from_channels(ChannelSet::from_single(mc))
    }

    /// Wraps an existing channel set.
    pub fn from_channels(mc: ChannelSet) -> Self {
        Self {
            mc,
            buffer: supermem_sim::FxHashMap::default(),
            now: 0,
            pending_retire: 0,
        }
    }

    /// Current simulated cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The underlying memory system.
    pub fn controller(&self) -> &ChannelSet {
        &self.mc
    }

    /// The underlying memory system, mutably (arming crashes,
    /// statistics).
    pub fn controller_mut(&mut self) -> &mut ChannelSet {
        &mut self.mc
    }

    /// Simulates an immediate power failure: buffered dirty lines vanish;
    /// the ADR domain survives as one merged image.
    pub fn crash_now(&self) -> CrashImage {
        self.mc.crash_now()
    }

    /// [`DirectMem::crash_now`] keeping per-channel images separate.
    pub fn machine_crash_now(&self) -> MachineCrashImage {
        self.mc.machine_crash_now()
    }

    /// Flushes every dirty buffered line and drains the controller —
    /// a clean shutdown. Returns the final cycle.
    pub fn shutdown(&mut self) -> Cycle {
        let mut dirty: Vec<(u64, LineData)> = self
            .buffer
            .iter()
            .filter(|(_, (_, d))| *d)
            .map(|(&a, (data, _))| (a, *data))
            .collect();
        dirty.sort_by_key(|(a, _)| *a);
        for (addr, data) in dirty {
            let retire = self.mc.flush_line(LineAddr(addr), data, self.now);
            self.pending_retire = self.pending_retire.max(retire);
            if let Some(entry) = self.buffer.get_mut(&addr) {
                entry.1 = false;
            }
        }
        self.now = self.now.max(self.pending_retire);
        self.now = self.now.max(self.mc.finish(self.now));
        self.now
    }

    fn line_of(addr: u64) -> u64 {
        addr & !63
    }

    fn load_line(&mut self, line_addr: u64) -> LineData {
        if let Some((data, _)) = self.buffer.get(&line_addr) {
            self.now += HIT_COST;
            return *data;
        }
        let (data, done) = self.mc.read_line(LineAddr(line_addr), self.now);
        self.now = done;
        self.buffer.insert(line_addr, (data, false));
        data
    }
}

impl PMem for DirectMem {
    fn read(&mut self, addr: u64, buf: &mut [u8]) {
        let mut i = 0usize;
        while i < buf.len() {
            let a = addr + i as u64;
            let line = Self::line_of(a);
            let off = (a - line) as usize;
            let n = (64 - off).min(buf.len() - i);
            let data = self.load_line(line);
            buf[i..i + n].copy_from_slice(&data[off..off + n]);
            i += n;
        }
    }

    fn write(&mut self, addr: u64, bytes: &[u8]) {
        let mut i = 0usize;
        while i < bytes.len() {
            let a = addr + i as u64;
            let line = Self::line_of(a);
            let off = (a - line) as usize;
            let n = (64 - off).min(bytes.len() - i);
            let mut data = self.load_line(line);
            data[off..off + n].copy_from_slice(&bytes[i..i + n]);
            self.buffer.insert(line, (data, true));
            self.now += 1;
            i += n;
        }
    }

    fn clwb(&mut self, addr: u64, len: u64) {
        if len == 0 {
            return;
        }
        let first = Self::line_of(addr);
        let last = Self::line_of(addr + len - 1);
        let mut line = first;
        loop {
            if let Some((data, dirty)) = self.buffer.get_mut(&line) {
                if *dirty {
                    *dirty = false;
                    let data = *data;
                    let retire = self.mc.flush_line(LineAddr(line), data, self.now);
                    self.pending_retire = self.pending_retire.max(retire);
                    self.now += HIT_COST;
                }
            }
            if line == last {
                break;
            }
            line += 64;
        }
    }

    fn sfence(&mut self) {
        self.now = self.now.max(self.pending_retire) + 1;
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // unwrap/expect are fine in tests
mod tests {
    use super::*;
    use crate::recovery::{recover_transactions, RecoveredMemory, RecoveryOutcome};
    use crate::txn::TxnManager;

    fn cfg() -> Config {
        Config::default()
    }

    #[test]
    fn write_read_roundtrip() {
        let mut mem = DirectMem::new(&cfg());
        let data: Vec<u8> = (0..300).map(|i| i as u8).collect();
        mem.write(1000, &data);
        let mut buf = vec![0u8; 300];
        mem.read(1000, &mut buf);
        assert_eq!(buf, data);
    }

    #[test]
    fn unflushed_writes_lost_on_crash() {
        let cfg = cfg();
        let mut mem = DirectMem::new(&cfg);
        mem.write(0x100, &[7; 8]);
        // No clwb: the write sits in the volatile buffer.
        let image = mem.crash_now();
        let mut rec = RecoveredMemory::from_image(&cfg, image);
        let mut buf = [0u8; 8];
        rec.read(0x100, &mut buf);
        assert_ne!(buf, [7; 8], "unflushed data must not survive");
    }

    #[test]
    fn flushed_writes_survive_crash() {
        let cfg = cfg();
        let mut mem = DirectMem::new(&cfg);
        mem.persist(0x100, &[7; 8]);
        let mut rec = RecoveredMemory::from_image(&cfg, mem.crash_now());
        let mut buf = [0u8; 8];
        rec.read(0x100, &mut buf);
        assert_eq!(buf, [7; 8]);
    }

    #[test]
    fn sfence_waits_for_retires() {
        let mut mem = DirectMem::new(&cfg());
        let before = mem.now();
        mem.write(0x100, &[1; 64]);
        mem.clwb(0x100, 64);
        mem.sfence();
        assert!(mem.now() > before);
    }

    #[test]
    fn clwb_of_clean_lines_is_cheap() {
        let mut mem = DirectMem::new(&cfg());
        mem.persist(0x100, &[1; 8]);
        let writes_before =
            mem.controller().stats().nvm_data_writes + mem.controller().wq_len() as u64;
        mem.clwb(0x100, 8); // clean: no new flush
        mem.sfence();
        let writes_after =
            mem.controller().stats().nvm_data_writes + mem.controller().wq_len() as u64;
        assert_eq!(writes_before, writes_after);
    }

    #[test]
    fn committed_txn_survives_crash_and_recovers_clean() {
        let cfg = cfg();
        let mut mem = DirectMem::new(&cfg);
        let mut txm = TxnManager::new(0x100000, 4096);
        let mut txn = txm.begin();
        txn.write(0x2000, vec![0xAA; 128]);
        txn.commit(&mut mem).unwrap();
        let mut rec = RecoveredMemory::from_image(&cfg, mem.crash_now());
        assert_eq!(
            recover_transactions(&mut rec, 0x100000),
            Ok(RecoveryOutcome::CleanCommitted { seq: 1 })
        );
        let mut buf = [0u8; 128];
        rec.read(0x2000, &mut buf);
        assert_eq!(buf, [0xAA; 128]);
    }

    #[test]
    fn crash_mid_mutate_rolls_back_with_supermem() {
        // The heart of Table 1: crash during the mutate stage; the log
        // is decryptable (counter atomicity!) so the old data returns.
        let cfg = cfg();
        let mut mem = DirectMem::new(&cfg);
        // Establish old data durably.
        mem.persist(0x2000, &[0x11; 128]);
        let mut txm = TxnManager::new(0x100000, 4096);

        // The commit sequence appends: ~3 log lines + header flushes,
        // then data. Arm the crash so it lands inside the data flushes.
        // Log: 2 payload lines + 1 header line + 1 state line = 4 pairs;
        // crash after 5 appends = first data line flushed, second not.
        mem.controller_mut().arm_crash_after_appends(5);
        let mut txn = txm.begin();
        txn.write(0x2000, vec![0x22; 128]);
        txn.commit(&mut mem).unwrap();
        let image = mem
            .controller_mut()
            .take_crash_image()
            .expect("crash fired during mutate");
        let mut rec = RecoveredMemory::from_image(&cfg, image);
        let out = recover_transactions(&mut rec, 0x100000).expect("clean media");
        assert!(
            matches!(out, RecoveryOutcome::RolledBack { .. }),
            "expected rollback, got {out:?}"
        );
        let mut buf = [0u8; 128];
        rec.read(0x2000, &mut buf);
        assert_eq!(buf, [0x11; 128], "old data restored");
    }

    #[test]
    fn shutdown_drains_everything() {
        let cfg = cfg();
        let mut mem = DirectMem::new(&cfg);
        mem.write(0x300, &[5; 8]); // never flushed explicitly
        mem.shutdown();
        let mut rec = RecoveredMemory::from_image(&cfg, mem.crash_now());
        let mut buf = [0u8; 8];
        rec.read(0x300, &mut buf);
        assert_eq!(buf, [5; 8], "shutdown must flush dirty lines");
    }

    #[test]
    fn works_unencrypted_too() {
        let mut c = cfg();
        c.encryption = false;
        let mut mem = DirectMem::new(&c);
        mem.persist(0x500, &[9; 16]);
        let mut rec = RecoveredMemory::from_image(&c, mem.crash_now());
        let mut buf = [0u8; 16];
        rec.read(0x500, &mut buf);
        assert_eq!(buf, [9; 16]);
    }
}
