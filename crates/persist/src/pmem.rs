//! The persistent-memory programming interface.
//!
//! [`PMem`] is what a persistent data structure sees: byte-addressable
//! loads and stores plus the two persistence primitives of §2.1 — `clwb`
//! (flush the cache lines covering a range toward the ADR domain) and
//! `sfence` (block until all prior flushes have retired). The timed
//! implementation lives in the `supermem` crate's `System`; [`VecMem`]
//! here is the functional reference used by unit tests and by trace-free
//! data-structure testing.

use supermem_sim::FxHashMap;

/// Byte-addressable persistent memory as seen by a program.
///
/// Addresses are absolute physical addresses. Implementations must make
/// `read` observe the newest `write` regardless of flush state (stores
/// are visible through the cache hierarchy immediately; only *crash
/// durability* depends on `clwb`/`sfence`).
pub trait PMem {
    /// Reads `buf.len()` bytes starting at `addr`.
    fn read(&mut self, addr: u64, buf: &mut [u8]);

    /// Writes `bytes` starting at `addr`.
    fn write(&mut self, addr: u64, bytes: &[u8]);

    /// Flushes the cache lines covering `[addr, addr + len)` toward
    /// persistence (clwb semantics: lines stay cached, dirty bits clear).
    fn clwb(&mut self, addr: u64, len: u64);

    /// Orders and awaits all previously issued flushes (sfence).
    fn sfence(&mut self);

    /// Convenience: read a little-endian `u64` at `addr`.
    fn read_u64(&mut self, addr: u64) -> u64 {
        let mut b = [0u8; 8];
        self.read(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Convenience: write a little-endian `u64` at `addr`.
    fn write_u64(&mut self, addr: u64, v: u64) {
        self.write(addr, &v.to_le_bytes());
    }

    /// Convenience: write, flush, and fence a range — the idiomatic
    /// "persist this now" sequence.
    fn persist(&mut self, addr: u64, bytes: &[u8]) {
        self.write(addr, bytes);
        self.clwb(addr, bytes.len() as u64);
        self.sfence();
    }
}

/// A purely functional `PMem` with no timing and no crash semantics.
/// Reads of never-written bytes return zero.
///
/// # Examples
///
/// ```
/// use supermem_persist::pmem::{PMem, VecMem};
///
/// let mut m = VecMem::new();
/// m.write_u64(0x100, 42);
/// assert_eq!(m.read_u64(0x100), 42);
/// ```
#[derive(Debug, Clone, Default)]
pub struct VecMem {
    lines: FxHashMap<u64, [u8; 64]>,
    flushes: u64,
    fences: u64,
}

impl VecMem {
    /// An empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of `clwb` calls observed (test instrumentation).
    pub fn flush_count(&self) -> u64 {
        self.flushes
    }

    /// Number of `sfence` calls observed (test instrumentation).
    pub fn fence_count(&self) -> u64 {
        self.fences
    }
}

impl PMem for VecMem {
    fn read(&mut self, addr: u64, buf: &mut [u8]) {
        for (i, b) in buf.iter_mut().enumerate() {
            let a = addr + i as u64;
            let line = a / 64;
            let off = (a % 64) as usize;
            *b = self.lines.get(&line).map_or(0, |l| l[off]);
        }
    }

    fn write(&mut self, addr: u64, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            let a = addr + i as u64;
            let line = a / 64;
            let off = (a % 64) as usize;
            self.lines.entry(line).or_insert([0; 64])[off] = b;
        }
    }

    fn clwb(&mut self, _addr: u64, _len: u64) {
        self.flushes += 1;
    }

    fn sfence(&mut self) {
        self.fences += 1;
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // unwrap/expect are fine in tests
mod tests {
    use super::*;

    #[test]
    fn zero_initialized() {
        let mut m = VecMem::new();
        let mut buf = [0xFFu8; 16];
        m.read(0x1234, &mut buf);
        assert_eq!(buf, [0u8; 16]);
    }

    #[test]
    fn write_read_roundtrip_across_lines() {
        let mut m = VecMem::new();
        let data: Vec<u8> = (0..200).map(|i| i as u8).collect();
        m.write(60, &data); // straddles several 64 B lines
        let mut buf = vec![0u8; 200];
        m.read(60, &mut buf);
        assert_eq!(buf, data);
    }

    #[test]
    fn overlapping_writes_last_wins() {
        let mut m = VecMem::new();
        m.write(0, &[1, 1, 1, 1]);
        m.write(2, &[9, 9]);
        let mut buf = [0u8; 4];
        m.read(0, &mut buf);
        assert_eq!(buf, [1, 1, 9, 9]);
    }

    #[test]
    fn u64_helpers() {
        let mut m = VecMem::new();
        m.write_u64(8, u64::MAX - 1);
        assert_eq!(m.read_u64(8), u64::MAX - 1);
        // Unaligned is fine too.
        m.write_u64(13, 0xDEADBEEF);
        assert_eq!(m.read_u64(13), 0xDEADBEEF);
    }

    #[test]
    fn persist_counts_flush_and_fence() {
        let mut m = VecMem::new();
        m.persist(0, &[1, 2, 3]);
        assert_eq!(m.flush_count(), 1);
        assert_eq!(m.fence_count(), 1);
    }
}
