//! Per-core persistent operation-descriptor slots (memento-style).
//!
//! Lock-free persistent structures linearize at a CAS on a shared
//! pointer, but a crash can land *inside* the CAS window: after the
//! new node is durable, before (or after) the pointer swing, before
//! the completion record. A recovery pass must then decide — for each
//! in-flight operation — whether it took effect, exactly once.
//!
//! The memento/Capsules technique gives every core one cache-line-sized
//! *descriptor slot* in persistent memory. Before attempting an
//! operation the core **announces** it (persists the full operation
//! record with state `PENDING`); after the linearizing store is durable
//! it **completes** it (persists state `DONE` plus the result). Each
//! transition is a single-line persist, so a crash image always holds,
//! per core, exactly one of: an idle slot, a `PENDING` record (op may
//! or may not have linearized — resolved by inspecting the structure),
//! or a `DONE` record (op definitely applied). The slot line carries a
//! checksum so recovery can also *detect* media corruption of the
//! descriptor itself instead of trusting a torn record.
//!
//! # Examples
//!
//! ```
//! use supermem_persist::pmem::VecMem;
//! use supermem_persist::slot::{SlotArray, SlotRecord, SlotState};
//!
//! let mut mem = VecMem::new();
//! let slots = SlotArray::new(0x1000, 2);
//! slots.init(&mut mem);
//!
//! let rec = SlotRecord { seq: 1, op: 7, a: 42, b: 99 };
//! slots.announce(&mut mem, 0, &rec);
//! slots.complete(&mut mem, 0, 1234);
//!
//! let scan = slots.scan(&mut mem).unwrap();
//! assert_eq!(scan[0].state, SlotState::Done);
//! assert_eq!(scan[0].result, 1234);
//! assert_eq!(scan[1].state, SlotState::Idle);
//! ```

use crate::pmem::PMem;

/// Slot-line word offsets (all fields are 8-byte little-endian words).
const OFF_STATE: u64 = 0;
const OFF_SEQ: u64 = 8;
const OFF_OP: u64 = 16;
const OFF_A: u64 = 24;
const OFF_B: u64 = 32;
const OFF_RESULT: u64 = 40;
const OFF_CSUM: u64 = 48;

const STATE_IDLE: u64 = 0;
const STATE_PENDING: u64 = 1;
const STATE_DONE: u64 = 2;

/// The durable lifecycle state of one descriptor slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotState {
    /// No operation in flight (fresh, or the last one was retired).
    Idle,
    /// An operation was announced; it may or may not have linearized.
    Pending,
    /// The operation linearized and its result is recorded.
    Done,
}

/// The announced operation record (structure-defined encoding).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SlotRecord {
    /// Per-core monotonically increasing operation sequence number.
    pub seq: u64,
    /// Operation code (meaning owned by the data structure).
    pub op: u64,
    /// First operand (key, node address, ...).
    pub a: u64,
    /// Second operand (value, expected pointer, ...).
    pub b: u64,
}

/// One slot as seen by a recovery scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotView {
    /// Slot index (one per core).
    pub slot: usize,
    /// Durable lifecycle state.
    pub state: SlotState,
    /// The announced record (zeroed for an idle fresh slot).
    pub rec: SlotRecord,
    /// The recorded result (only meaningful in [`SlotState::Done`]).
    pub result: u64,
}

/// A recovery scan refusing to trust the descriptor area.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SlotError {
    /// The state word holds none of the three legal encodings.
    BadState {
        /// Slot index.
        slot: usize,
        /// The illegal state word found.
        value: u64,
    },
    /// The slot line's checksum does not cover its contents.
    BadChecksum {
        /// Slot index.
        slot: usize,
    },
}

impl std::fmt::Display for SlotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SlotError::BadState { slot, value } => {
                write!(f, "descriptor slot {slot}: illegal state word {value:#x}")
            }
            SlotError::BadChecksum { slot } => {
                write!(f, "descriptor slot {slot}: checksum mismatch")
            }
        }
    }
}

impl std::error::Error for SlotError {}

/// Avalanche mix (splitmix64 finalizer) — spreads every input bit so
/// a torn mix of old and new words cannot re-checksum by accident.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn checksum(state: u64, rec: &SlotRecord, result: u64) -> u64 {
    let mut h = 0x5E17_C0DE_5107_A11Eu64;
    for w in [state, rec.seq, rec.op, rec.a, rec.b, result] {
        h = mix(h ^ w);
    }
    h
}

/// A fixed array of per-core descriptor slots in persistent memory,
/// one 64-byte line per slot.
#[derive(Debug, Clone, Copy)]
pub struct SlotArray {
    base: u64,
    slots: usize,
}

impl SlotArray {
    /// Bytes occupied by one slot (one cache line).
    pub const SLOT_BYTES: u64 = 64;

    /// A slot array of `slots` descriptors starting at line-aligned
    /// `base`.
    ///
    /// # Panics
    /// If `base` is not 64-byte aligned or `slots` is zero.
    pub fn new(base: u64, slots: usize) -> Self {
        assert!(
            base.is_multiple_of(64),
            "slot array base must be line-aligned"
        );
        assert!(slots > 0, "slot array needs at least one slot");
        Self { base, slots }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots
    }

    /// Always false — construction requires at least one slot.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Address of slot `slot`'s line.
    pub fn addr(&self, slot: usize) -> u64 {
        assert!(slot < self.slots, "slot {slot} out of range");
        self.base + slot as u64 * Self::SLOT_BYTES
    }

    /// First byte past the slot area (for carving subsequent regions).
    pub fn end(&self) -> u64 {
        self.base + self.slots as u64 * Self::SLOT_BYTES
    }

    fn write_line<M: PMem>(
        &self,
        mem: &mut M,
        slot: usize,
        state: u64,
        rec: &SlotRecord,
        result: u64,
    ) {
        let a = self.addr(slot);
        mem.write_u64(a + OFF_STATE, state);
        mem.write_u64(a + OFF_SEQ, rec.seq);
        mem.write_u64(a + OFF_OP, rec.op);
        mem.write_u64(a + OFF_A, rec.a);
        mem.write_u64(a + OFF_B, rec.b);
        mem.write_u64(a + OFF_RESULT, result);
        mem.write_u64(a + OFF_CSUM, checksum(state, rec, result));
        mem.clwb(a, Self::SLOT_BYTES);
        mem.sfence();
    }

    /// Writes every slot as a checksummed idle record and persists the
    /// area. Must run once before first use so a recovery scan can
    /// demand a valid checksum on *every* slot.
    pub fn init<M: PMem>(&self, mem: &mut M) {
        for s in 0..self.slots {
            self.write_line(mem, s, STATE_IDLE, &SlotRecord::default(), 0);
        }
    }

    /// Durably announces an operation in `slot`: after this returns the
    /// crash image holds the full `PENDING` record.
    pub fn announce<M: PMem>(&self, mem: &mut M, slot: usize, rec: &SlotRecord) {
        self.write_line(mem, slot, STATE_PENDING, rec, 0);
    }

    /// Durably completes the announced operation in `slot`, recording
    /// `result`. Call only after the linearizing store is durable.
    pub fn complete<M: PMem>(&self, mem: &mut M, slot: usize, result: u64) {
        let view = self.load(mem, slot);
        self.write_line(mem, slot, STATE_DONE, &view.rec, result);
    }

    /// Durably retires `slot` back to idle, keeping the sequence number
    /// so recovery can still order the core's history.
    pub fn retire<M: PMem>(&self, mem: &mut M, slot: usize) {
        let view = self.load(mem, slot);
        self.write_line(mem, slot, STATE_IDLE, &view.rec, 0);
    }

    /// Reads `slot` without checksum verification (the running fast
    /// path; recovery uses [`SlotArray::scan`]).
    pub fn load<M: PMem>(&self, mem: &mut M, slot: usize) -> SlotView {
        let a = self.addr(slot);
        let state = match mem.read_u64(a + OFF_STATE) {
            STATE_PENDING => SlotState::Pending,
            STATE_DONE => SlotState::Done,
            _ => SlotState::Idle,
        };
        SlotView {
            slot,
            state,
            rec: SlotRecord {
                seq: mem.read_u64(a + OFF_SEQ),
                op: mem.read_u64(a + OFF_OP),
                a: mem.read_u64(a + OFF_A),
                b: mem.read_u64(a + OFF_B),
            },
            result: mem.read_u64(a + OFF_RESULT),
        }
    }

    /// Recovery scan: reads every slot, verifies state encoding and
    /// checksum, and returns the per-core views. Any slot that fails
    /// verification aborts the scan with a typed error — the caller
    /// must treat the image as corrupted (detected), never guess.
    pub fn scan<M: PMem>(&self, mem: &mut M) -> Result<Vec<SlotView>, SlotError> {
        let mut out = Vec::with_capacity(self.slots);
        for s in 0..self.slots {
            let a = self.addr(s);
            let state_word = mem.read_u64(a + OFF_STATE);
            let state = match state_word {
                STATE_IDLE => SlotState::Idle,
                STATE_PENDING => SlotState::Pending,
                STATE_DONE => SlotState::Done,
                value => return Err(SlotError::BadState { slot: s, value }),
            };
            let view = self.load(mem, s);
            let want = checksum(state_word, &view.rec, view.result);
            if mem.read_u64(a + OFF_CSUM) != want {
                return Err(SlotError::BadChecksum { slot: s });
            }
            out.push(SlotView { state, ..view });
        }
        Ok(out)
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // unwrap/expect are fine in tests
mod tests {
    use super::*;
    use crate::pmem::VecMem;

    fn fresh() -> (VecMem, SlotArray) {
        let mut mem = VecMem::new();
        let slots = SlotArray::new(0x2000, 4);
        slots.init(&mut mem);
        (mem, slots)
    }

    #[test]
    fn init_scans_clean_and_idle() {
        let (mut mem, slots) = fresh();
        let scan = slots.scan(&mut mem).unwrap();
        assert_eq!(scan.len(), 4);
        assert!(scan.iter().all(|v| v.state == SlotState::Idle));
    }

    #[test]
    fn announce_complete_retire_lifecycle() {
        let (mut mem, slots) = fresh();
        let rec = SlotRecord {
            seq: 3,
            op: 1,
            a: 0xAB,
            b: 0xCD,
        };
        slots.announce(&mut mem, 2, &rec);
        let v = slots.scan(&mut mem).unwrap()[2];
        assert_eq!(v.state, SlotState::Pending);
        assert_eq!(v.rec, rec);

        slots.complete(&mut mem, 2, 77);
        let v = slots.scan(&mut mem).unwrap()[2];
        assert_eq!(v.state, SlotState::Done);
        assert_eq!(v.rec, rec);
        assert_eq!(v.result, 77);

        slots.retire(&mut mem, 2);
        let v = slots.scan(&mut mem).unwrap()[2];
        assert_eq!(v.state, SlotState::Idle);
        assert_eq!(v.rec.seq, 3, "retire keeps the sequence number");
    }

    #[test]
    fn scan_rejects_corrupted_state_word() {
        let (mut mem, slots) = fresh();
        mem.write_u64(slots.addr(1), 9);
        assert_eq!(
            slots.scan(&mut mem),
            Err(SlotError::BadState { slot: 1, value: 9 })
        );
    }

    #[test]
    fn scan_rejects_torn_record() {
        let (mut mem, slots) = fresh();
        let rec = SlotRecord {
            seq: 1,
            op: 4,
            a: 10,
            b: 20,
        };
        slots.announce(&mut mem, 0, &rec);
        // Flip one operand word without re-checksumming (a torn or
        // bit-flipped descriptor line).
        mem.write_u64(slots.addr(0) + 24, 11);
        assert_eq!(
            slots.scan(&mut mem),
            Err(SlotError::BadChecksum { slot: 0 })
        );
    }

    #[test]
    fn each_transition_is_one_line_persist() {
        let (mut mem, slots) = fresh();
        let f0 = mem.flush_count();
        slots.announce(&mut mem, 0, &SlotRecord::default());
        assert_eq!(mem.flush_count(), f0 + 1);
        slots.complete(&mut mem, 0, 1);
        assert_eq!(mem.flush_count(), f0 + 2);
    }

    #[test]
    fn layout_is_dense_lines() {
        let s = SlotArray::new(0, 3);
        assert_eq!(s.addr(0), 0);
        assert_eq!(s.addr(2), 128);
        assert_eq!(s.end(), 192);
    }

    #[test]
    #[should_panic(expected = "line-aligned")]
    fn rejects_unaligned_base() {
        let _ = SlotArray::new(8, 1);
    }
}
