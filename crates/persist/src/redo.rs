//! Durable transactions, redo-log flavor (§2.1 describes both).
//!
//! Where the undo log ([`crate::txn`]) snapshots *old* data and rolls
//! back, the redo log writes the *new* data to the log first and rolls
//! forward:
//!
//! 1. **Log** — write the new data as records plus a checksummed header,
//!    flush, fence.
//! 2. **Commit** — atomically set `state = COMMITTED` (8-byte write),
//!    flush, fence. *This is the commit point*: from here the
//!    transaction is durable even though memory is untouched.
//! 3. **Apply** — write the new data in place, flush, fence.
//! 4. **Retire** — atomically set `state = APPLIED`, flush, fence.
//!
//! Recovery re-applies a `COMMITTED` log (idempotent), ignores `EMPTY` /
//! `APPLIED`, and reports corruption otherwise — the same counter
//! -atomicity dependence as the undo flavor: an undecryptable log means
//! an unrecoverable system.

use crate::log::{
    encode_records, log_checksum, UndoRecord, LOG_HEADER_BYTES, LOG_MAGIC, STATE_COMMITTED,
    STATE_EMPTY,
};
use crate::pmem::PMem;
use crate::recovery::{RecoveredMemory, RecoveryError, RecoveryOutcome};
use crate::txn::TxnError;

/// `state`: records applied in place; the log is retired.
pub const STATE_APPLIED: u64 = 3;

/// Issues redo-logged durable transactions against a fixed log region.
///
/// # Examples
///
/// ```
/// use supermem_persist::{pmem::{PMem, VecMem}, redo::RedoTxnManager};
///
/// let mut mem = VecMem::new();
/// let mut txm = RedoTxnManager::new(0x8000, 1024);
/// let mut txn = txm.begin();
/// txn.write(0x100, vec![7; 16]);
/// txn.commit(&mut mem)?;
/// # Ok::<(), supermem_persist::TxnError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RedoTxnManager {
    log_base: u64,
    log_bytes: u64,
    seq: u64,
}

impl RedoTxnManager {
    /// Creates a manager whose log region is `[log_base, log_base +
    /// log_bytes)`.
    ///
    /// # Panics
    ///
    /// Panics if the region cannot hold the header.
    pub fn new(log_base: u64, log_bytes: u64) -> Self {
        assert!(
            log_bytes > LOG_HEADER_BYTES,
            "log region must exceed the {LOG_HEADER_BYTES}-byte header"
        );
        Self {
            log_base,
            log_bytes,
            seq: 0,
        }
    }

    /// Base address of the log region.
    pub fn log_base(&self) -> u64 {
        self.log_base
    }

    /// Committed transactions so far.
    pub fn committed(&self) -> u64 {
        self.seq
    }

    /// Starts a transaction.
    pub fn begin(&mut self) -> RedoTxn<'_> {
        RedoTxn {
            mgr: self,
            writes: Vec::new(),
        }
    }
}

/// An open redo transaction: a buffered write set.
#[derive(Debug)]
pub struct RedoTxn<'a> {
    mgr: &'a mut RedoTxnManager,
    writes: Vec<(u64, Vec<u8>)>,
}

impl RedoTxn<'_> {
    /// Stages a write of `bytes` at `addr`.
    pub fn write(&mut self, addr: u64, bytes: Vec<u8>) {
        if !bytes.is_empty() {
            self.writes.push((addr, bytes));
        }
    }

    /// Commits via the four-stage redo protocol.
    ///
    /// # Errors
    ///
    /// [`TxnError::LogFull`] if the redo payload exceeds the log region;
    /// the transaction is abandoned without touching memory.
    pub fn commit<M: PMem>(self, mem: &mut M) -> Result<(), TxnError> {
        let RedoTxn { mgr, writes } = self;
        let log = mgr.log_base;
        let records: Vec<UndoRecord> = writes
            .iter()
            .map(|(addr, bytes)| UndoRecord {
                addr: *addr,
                data: bytes.clone(),
            })
            .collect();
        let payload = encode_records(&records);
        if payload.len() as u64 > mgr.log_bytes - LOG_HEADER_BYTES {
            return Err(TxnError::LogFull {
                needed: payload.len() as u64,
                capacity: mgr.log_bytes - LOG_HEADER_BYTES,
            });
        }
        mgr.seq += 1;
        let seq = mgr.seq;

        // 1. Log the NEW data, header state EMPTY.
        mem.write(log + LOG_HEADER_BYTES, &payload);
        mem.write_u64(log, LOG_MAGIC);
        mem.write_u64(log + 8, seq);
        mem.write_u64(log + 16, STATE_EMPTY);
        mem.write_u64(log + 24, payload.len() as u64);
        mem.write_u64(log + 32, log_checksum(seq, &payload));
        mem.clwb(log, LOG_HEADER_BYTES + payload.len() as u64);
        mem.sfence();

        // 2. Commit point.
        mem.write_u64(log + 16, STATE_COMMITTED);
        mem.clwb(log + 16, 8);
        mem.sfence();

        // 3. Apply in place.
        for (addr, bytes) in &writes {
            mem.write(*addr, bytes);
            mem.clwb(*addr, bytes.len() as u64);
        }
        mem.sfence();

        // 4. Retire.
        mem.write_u64(log + 16, STATE_APPLIED);
        mem.clwb(log + 16, 8);
        mem.sfence();
        Ok(())
    }
}

/// Scans a redo-log region and rolls a committed-but-unapplied
/// transaction *forward*. Returns what was found; on
/// [`RecoveryOutcome::RolledBack`] — reused here to mean "records were
/// applied" — the redo records have been written in place.
///
/// # Errors
///
/// [`RecoveryError::DetectedCorrupt`] when reading the header or payload
/// hit an uncorrectable media error; [`RecoveryError::TornLog`] when the
/// log is internally inconsistent.
pub fn recover_redo_transactions(
    mem: &mut RecoveredMemory,
    log_base: u64,
) -> Result<RecoveryOutcome, RecoveryError> {
    use crate::log::{decode_records, read_header};
    let failures_before = mem.media_failures();
    let h = read_header(mem, log_base);
    if mem.media_failures() > failures_before {
        return Err(RecoveryError::DetectedCorrupt(
            "redo-log header read hit an uncorrectable media error".into(),
        ));
    }
    if h.magic != LOG_MAGIC {
        return Ok(RecoveryOutcome::NoLog);
    }
    match h.state {
        STATE_APPLIED | STATE_EMPTY => Ok(RecoveryOutcome::CleanCommitted { seq: h.seq }),
        STATE_COMMITTED => {
            let mut payload = vec![0u8; h.len as usize];
            mem.read(log_base + LOG_HEADER_BYTES, &mut payload);
            if mem.media_failures() > failures_before {
                return Err(RecoveryError::DetectedCorrupt(
                    "redo-log payload read hit an uncorrectable media error".into(),
                ));
            }
            if log_checksum(h.seq, &payload) != h.checksum {
                return Err(RecoveryError::TornLog(format!(
                    "redo log seq {} fails its checksum",
                    h.seq
                )));
            }
            match decode_records(&payload) {
                Some(records) => {
                    for r in &records {
                        mem.write(r.addr, &r.data);
                    }
                    mem.write_u64(log_base + 16, STATE_APPLIED);
                    Ok(RecoveryOutcome::RolledBack {
                        seq: h.seq,
                        records: records.len(),
                    })
                }
                None => Err(RecoveryError::TornLog(format!(
                    "redo log seq {} payload does not decode",
                    h.seq
                ))),
            }
        }
        other => Err(RecoveryError::TornLog(format!(
            "redo log state word {other} matches no protocol stage"
        ))),
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // unwrap/expect are fine in tests
mod tests {
    use super::*;
    use crate::pmem::VecMem;

    #[test]
    fn commit_applies_all_writes() {
        let mut mem = VecMem::new();
        let mut txm = RedoTxnManager::new(0x10000, 4096);
        let mut txn = txm.begin();
        txn.write(0x100, vec![1; 64]);
        txn.write(0x200, vec![2; 32]);
        txn.commit(&mut mem).unwrap();
        let mut buf = [0u8; 64];
        mem.read(0x100, &mut buf);
        assert_eq!(buf, [1; 64]);
        assert_eq!(txm.committed(), 1);
    }

    #[test]
    fn log_ends_applied() {
        let mut mem = VecMem::new();
        let mut txm = RedoTxnManager::new(0x10000, 4096);
        let mut txn = txm.begin();
        txn.write(0, vec![9]);
        txn.commit(&mut mem).unwrap();
        assert_eq!(mem.read_u64(0x10000 + 16), STATE_APPLIED);
    }

    #[test]
    fn log_full_aborts_cleanly() {
        let mut mem = VecMem::new();
        let mut txm = RedoTxnManager::new(0x10000, 128);
        let mut txn = txm.begin();
        txn.write(0x100, vec![1; 256]);
        assert!(txn.commit(&mut mem).is_err());
        assert_eq!(txm.committed(), 0);
    }

    #[test]
    fn fence_protocol_has_four_fences() {
        let mut mem = VecMem::new();
        let mut txm = RedoTxnManager::new(0x10000, 4096);
        let mut txn = txm.begin();
        txn.write(0x100, vec![1; 16]);
        txn.commit(&mut mem).unwrap();
        assert_eq!(mem.fence_count(), 4);
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // unwrap/expect are fine in tests
mod crash_tests {
    use super::*;
    use crate::direct::DirectMem;
    use supermem_sim::Config;

    const DATA: u64 = 0x2000;
    const LOG: u64 = 0x10_0000;

    fn run_txn(mem: &mut DirectMem) {
        let mut txm = RedoTxnManager::new(LOG, 4096);
        let mut txn = txm.begin();
        txn.write(DATA, vec![0x22; 256]);
        txn.commit(mem).expect("commit");
    }

    /// The Table-1-style sweep, redo flavor: every crash point lands on
    /// either the old or the new state after roll-forward, and late
    /// crash points must show the new state (redo commits *early*).
    #[test]
    fn redo_txn_recovers_at_every_append_boundary() {
        let cfg = Config::default();
        let mut base = DirectMem::new(&cfg);
        base.persist(DATA, &[0x11; 256]);
        base.shutdown();
        let mut dry = base.clone();
        let before = dry.controller().append_events();
        run_txn(&mut dry);
        dry.shutdown();
        let total = dry.controller().append_events() - before;

        let mut new_count = 0u64;
        for k in 1..=total {
            let mut mem = base.clone();
            mem.controller_mut().arm_crash_after_appends(k);
            run_txn(&mut mem);
            let image = mem.controller_mut().take_crash_image().expect("fired");
            let mut rec = RecoveredMemory::from_image(&cfg, image);
            recover_redo_transactions(&mut rec, LOG)
                .unwrap_or_else(|e| panic!("crash point {k}: {e}"));
            let mut buf = [0u8; 256];
            rec.read(DATA, &mut buf);
            if buf == [0x22; 256] {
                new_count += 1;
            } else {
                assert_eq!(buf, [0x11; 256], "crash point {k}: garbage state");
            }
        }
        // Redo's commit point is the state flip right after logging: most
        // crash points after it roll forward to the new value.
        assert!(
            new_count >= total / 2,
            "redo must roll forward aggressively"
        );
    }

    /// Roll-forward is idempotent: recovering twice is harmless.
    #[test]
    fn roll_forward_is_idempotent() {
        let cfg = Config::default();
        let mut mem = DirectMem::new(&cfg);
        mem.persist(DATA, &[0x11; 256]);
        // Crash right after the commit point (log + header + flip).
        mem.controller_mut().arm_crash_after_appends(7);
        run_txn(&mut mem);
        let image = mem.controller_mut().take_crash_image().expect("fired");
        let mut rec = RecoveredMemory::from_image(&cfg, image);
        let first = recover_redo_transactions(&mut rec, LOG).expect("clean media");
        let second = recover_redo_transactions(&mut rec, LOG).expect("clean media");
        assert!(matches!(first, RecoveryOutcome::RolledBack { .. }));
        assert!(matches!(second, RecoveryOutcome::CleanCommitted { .. }));
        let mut buf = [0u8; 256];
        rec.read(DATA, &mut buf);
        assert_eq!(buf, [0x22; 256]);
    }
}
