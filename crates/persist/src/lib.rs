//! Persistence layer for the SuperMem reproduction.
//!
//! The paper's workloads are durable transactions over persistent memory
//! (§2.1, §2.3, Table 1). This crate provides that software substrate:
//!
//! * [`pmem`] — the [`PMem`] abstraction of byte-addressable persistent
//!   memory with `clwb`/`sfence` semantics, plus [`VecMem`], a purely
//!   functional implementation for tests.
//! * [`arena`] — a bump allocator carving data-structure storage out of
//!   the persistent address space.
//! * [`log`] — the on-NVM undo-log format with 8-byte-atomic state
//!   transitions and a checksummed header.
//! * [`txn`] — durable transactions: *prepare* (log the old data),
//!   *mutate* (write in place), *commit* (invalidate the log), each stage
//!   fenced exactly as in Table 1.
//! * [`slot`] — per-core operation-descriptor slots (memento-style)
//!   making lock-free CAS linearization points crash-recoverable, with
//!   a checksummed recovery scan.
//! * [`recovery`] — rebuilding a consistent state from a post-crash NVM
//!   image: completing an interrupted page re-encryption from the RSR,
//!   decrypting through the stored counters, and rolling back
//!   uncommitted transactions.
//!
//! # Examples
//!
//! ```
//! use supermem_persist::{pmem::{PMem, VecMem}, txn::TxnManager};
//!
//! let mut mem = VecMem::new();
//! let mut txm = TxnManager::new(0x10_0000, 4096);
//! let mut txn = txm.begin();
//! txn.write(0x1000, vec![1, 2, 3, 4]);
//! txn.commit(&mut mem).unwrap();
//! let mut buf = [0u8; 4];
//! mem.read(0x1000, &mut buf);
//! assert_eq!(buf, [1, 2, 3, 4]);
//! ```
#![warn(missing_docs)]

pub mod arena;
pub mod direct;
pub mod log;
pub mod pmem;
pub mod recovery;
pub mod redo;
pub mod slot;
pub mod txn;

pub use arena::Arena;
pub use direct::DirectMem;
pub use pmem::{PMem, VecMem};
pub use recovery::{
    recover_osiris, recover_transactions, verify_image_integrity, IntegrityVerdict, OsirisReport,
    RecoveredMemory, RecoveryError, RecoveryOutcome, TreeRebuild,
};
pub use redo::{recover_redo_transactions, RedoTxn, RedoTxnManager};
pub use slot::{SlotArray, SlotError, SlotRecord, SlotState, SlotView};
pub use txn::{Txn, TxnError, TxnManager};
