//! Durable transactions (undo logging).
//!
//! A transaction buffers its writes, then commits in the three stages of
//! the paper's Table 1:
//!
//! 1. **Prepare** — read the old contents of every target range, write
//!    them into the log region together with a checksummed header, flush
//!    the log lines, fence, then atomically set `state = VALID` (8-byte
//!    write), flush, fence.
//! 2. **Mutate** — apply the new data in place, flush every touched
//!    line, fence.
//! 3. **Commit** — atomically set `state = COMMITTED`, flush, fence.
//!
//! A crash in *prepare* leaves the data untouched (log not yet VALID); a
//! crash in *mutate* is rolled back from the log; a crash in *commit*
//! either rolls back (state still VALID — the transaction aborts as a
//! unit) or is already complete. All of this of course assumes the log
//! itself is decryptable after the crash — the exact property SuperMem's
//! counter atomicity provides and broken baselines lack.

use crate::log::{
    encode_records, log_checksum, UndoRecord, LOG_HEADER_BYTES, LOG_MAGIC, STATE_COMMITTED,
    STATE_VALID,
};
use crate::pmem::PMem;

/// Errors surfaced by transaction commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnError {
    /// The undo payload does not fit the log region.
    LogFull {
        /// Bytes needed for the payload.
        needed: u64,
        /// Payload capacity of the log region.
        capacity: u64,
    },
}

impl std::fmt::Display for TxnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TxnError::LogFull { needed, capacity } => {
                write!(f, "undo log full: need {needed} bytes, capacity {capacity}")
            }
        }
    }
}

impl std::error::Error for TxnError {}

/// Issues durable transactions against a fixed log region.
///
/// # Examples
///
/// ```
/// use supermem_persist::{pmem::{PMem, VecMem}, TxnManager};
///
/// let mut mem = VecMem::new();
/// let mut txm = TxnManager::new(0x8000, 1024);
/// let mut txn = txm.begin();
/// txn.write(0x100, vec![7; 16]);
/// txn.commit(&mut mem)?;
/// # Ok::<(), supermem_persist::TxnError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnManager {
    log_base: u64,
    log_bytes: u64,
    seq: u64,
}

impl TxnManager {
    /// Creates a manager whose log region is `[log_base, log_base +
    /// log_bytes)`.
    ///
    /// # Panics
    ///
    /// Panics if the region cannot hold the header.
    pub fn new(log_base: u64, log_bytes: u64) -> Self {
        assert!(
            log_bytes > LOG_HEADER_BYTES,
            "log region must exceed the {LOG_HEADER_BYTES}-byte header"
        );
        Self {
            log_base,
            log_bytes,
            seq: 0,
        }
    }

    /// Base address of the log region (recovery needs it).
    pub fn log_base(&self) -> u64 {
        self.log_base
    }

    /// Payload capacity in bytes.
    pub fn payload_capacity(&self) -> u64 {
        self.log_bytes - LOG_HEADER_BYTES
    }

    /// Transactions committed so far.
    pub fn committed(&self) -> u64 {
        self.seq
    }

    /// Starts a transaction.
    pub fn begin(&mut self) -> Txn<'_> {
        Txn {
            mgr: self,
            writes: Vec::new(),
        }
    }
}

/// An open transaction: a buffered write set.
#[derive(Debug)]
pub struct Txn<'a> {
    mgr: &'a mut TxnManager,
    writes: Vec<(u64, Vec<u8>)>,
}

impl Txn<'_> {
    /// Stages a write of `bytes` at `addr`. Later writes overlay earlier
    /// ones at commit time (applied in order).
    pub fn write(&mut self, addr: u64, bytes: Vec<u8>) {
        if !bytes.is_empty() {
            self.writes.push((addr, bytes));
        }
    }

    /// Reads through the write set: staged bytes shadow memory.
    pub fn read<M: PMem>(&self, mem: &mut M, addr: u64, buf: &mut [u8]) {
        mem.read(addr, buf);
        for (waddr, wbytes) in &self.writes {
            let (s, e) = (*waddr, *waddr + wbytes.len() as u64);
            let (bs, be) = (addr, addr + buf.len() as u64);
            let lo = s.max(bs);
            let hi = e.min(be);
            for a in lo..hi {
                buf[(a - bs) as usize] = wbytes[(a - s) as usize];
            }
        }
    }

    /// Number of staged writes.
    pub fn write_count(&self) -> usize {
        self.writes.len()
    }

    /// Total staged bytes.
    pub fn staged_bytes(&self) -> u64 {
        self.writes.iter().map(|(_, b)| b.len() as u64).sum()
    }

    /// Commits: prepare (undo log), mutate (in-place), commit
    /// (invalidate). See the module docs for the fence protocol.
    ///
    /// # Errors
    ///
    /// [`TxnError::LogFull`] if the undo payload exceeds the log region;
    /// the transaction is abandoned without touching memory.
    pub fn commit<M: PMem>(self, mem: &mut M) -> Result<(), TxnError> {
        let Txn { mgr, writes } = self;
        let log = mgr.log_base;

        // ---- Prepare: snapshot old data into undo records.
        let records: Vec<UndoRecord> = writes
            .iter()
            .map(|(addr, bytes)| {
                let mut old = vec![0u8; bytes.len()];
                mem.read(*addr, &mut old);
                UndoRecord {
                    addr: *addr,
                    data: old,
                }
            })
            .collect();
        let payload = encode_records(&records);
        if payload.len() as u64 > mgr.payload_capacity() {
            return Err(TxnError::LogFull {
                needed: payload.len() as u64,
                capacity: mgr.payload_capacity(),
            });
        }
        mgr.seq += 1;
        let seq = mgr.seq;

        // Log payload + header, persist. The state word is explicitly
        // reset to EMPTY: on the very first transaction the header line
        // holds garbage (decrypt of never-written NVM), and a crash
        // before the VALID flip must read as "no log", not corruption.
        mem.write(log + LOG_HEADER_BYTES, &payload);
        mem.write_u64(log, LOG_MAGIC);
        mem.write_u64(log + 8, seq);
        mem.write_u64(log + 16, crate::log::STATE_EMPTY);
        mem.write_u64(log + 24, payload.len() as u64);
        mem.write_u64(log + 32, log_checksum(seq, &payload));
        mem.clwb(log, LOG_HEADER_BYTES + payload.len() as u64);
        mem.sfence();

        // Atomic state flip: the log becomes authoritative.
        mem.write_u64(log + 16, STATE_VALID);
        mem.clwb(log + 16, 8);
        mem.sfence();

        // ---- Mutate: in-place data writes, each line flushed.
        for (addr, bytes) in &writes {
            mem.write(*addr, bytes);
            mem.clwb(*addr, bytes.len() as u64);
        }
        mem.sfence();

        // ---- Commit: atomically retire the log.
        mem.write_u64(log + 16, STATE_COMMITTED);
        mem.clwb(log + 16, 8);
        mem.sfence();
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // unwrap/expect are fine in tests
mod tests {
    use super::*;
    use crate::log::{read_header, STATE_COMMITTED};
    use crate::pmem::VecMem;

    #[test]
    fn commit_applies_all_writes() {
        let mut mem = VecMem::new();
        let mut txm = TxnManager::new(0x10000, 4096);
        let mut txn = txm.begin();
        txn.write(0x100, vec![1; 64]);
        txn.write(0x200, vec![2; 32]);
        txn.commit(&mut mem).unwrap();
        let mut buf = [0u8; 64];
        mem.read(0x100, &mut buf);
        assert_eq!(buf, [1; 64]);
        let mut buf = [0u8; 32];
        mem.read(0x200, &mut buf);
        assert_eq!(buf, [2; 32]);
        assert_eq!(txm.committed(), 1);
    }

    #[test]
    fn log_ends_committed() {
        let mut mem = VecMem::new();
        let mut txm = TxnManager::new(0x10000, 4096);
        let mut txn = txm.begin();
        txn.write(0, vec![9]);
        txn.commit(&mut mem).unwrap();
        let h = read_header(&mut mem, 0x10000);
        assert_eq!(h.state, STATE_COMMITTED);
        assert_eq!(h.magic, LOG_MAGIC);
        assert_eq!(h.seq, 1);
    }

    #[test]
    fn read_sees_staged_writes() {
        let mut mem = VecMem::new();
        mem.write(0x50, &[1, 2, 3, 4]);
        let mut txm = TxnManager::new(0x10000, 4096);
        let mut txn = txm.begin();
        txn.write(0x51, vec![9, 9]);
        let mut buf = [0u8; 4];
        txn.read(&mut mem, 0x50, &mut buf);
        assert_eq!(buf, [1, 9, 9, 4], "staged bytes shadow memory");
        // Memory itself is untouched until commit.
        let mut raw = [0u8; 4];
        mem.read(0x50, &mut raw);
        assert_eq!(raw, [1, 2, 3, 4]);
    }

    #[test]
    fn later_staged_writes_win() {
        let mut mem = VecMem::new();
        let mut txm = TxnManager::new(0x10000, 4096);
        let mut txn = txm.begin();
        txn.write(0x100, vec![1, 1, 1]);
        txn.write(0x101, vec![2]);
        txn.commit(&mut mem).unwrap();
        let mut buf = [0u8; 3];
        mem.read(0x100, &mut buf);
        assert_eq!(buf, [1, 2, 1]);
    }

    #[test]
    fn log_full_aborts_without_side_effects() {
        let mut mem = VecMem::new();
        mem.write(0x100, &[7; 8]);
        let mut txm = TxnManager::new(0x10000, 128); // 64 B payload capacity
        let mut txn = txm.begin();
        txn.write(0x100, vec![1; 256]);
        let err = txn.commit(&mut mem).unwrap_err();
        assert!(matches!(err, TxnError::LogFull { .. }));
        let mut buf = [0u8; 8];
        mem.read(0x100, &mut buf);
        assert_eq!(buf, [7; 8], "aborted txn must not touch data");
        assert_eq!(txm.committed(), 0);
        assert!(err.to_string().contains("full"));
    }

    #[test]
    fn sequences_increment_per_txn() {
        let mut mem = VecMem::new();
        let mut txm = TxnManager::new(0x10000, 4096);
        for i in 1..=3u64 {
            let mut txn = txm.begin();
            txn.write(0, vec![i as u8]);
            txn.commit(&mut mem).unwrap();
            assert_eq!(read_header(&mut mem, 0x10000).seq, i);
        }
    }

    #[test]
    fn empty_txn_commits_cleanly() {
        let mut mem = VecMem::new();
        let mut txm = TxnManager::new(0x10000, 4096);
        let txn = txm.begin();
        assert_eq!(txn.write_count(), 0);
        txn.commit(&mut mem).unwrap();
    }

    #[test]
    fn staged_bytes_accounting() {
        let mut txm = TxnManager::new(0x10000, 4096);
        let mut txn = txm.begin();
        txn.write(0, vec![0; 10]);
        txn.write(100, vec![0; 20]);
        txn.write(200, vec![]); // ignored
        assert_eq!(txn.write_count(), 2);
        assert_eq!(txn.staged_bytes(), 30);
    }

    #[test]
    fn fence_protocol_has_four_fences() {
        // prepare, valid-flip, mutate, commit — one fence each.
        let mut mem = VecMem::new();
        let mut txm = TxnManager::new(0x10000, 4096);
        let mut txn = txm.begin();
        txn.write(0x100, vec![1; 16]);
        txn.commit(&mut mem).unwrap();
        assert_eq!(mem.fence_count(), 4);
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // unwrap/expect are fine in tests
mod randomized {
    //! Deterministic randomized tests (seeded SplitMix64 stands in for
    //! proptest, which is unavailable in offline builds).
    use super::*;
    use crate::pmem::VecMem;
    use std::collections::HashMap;
    use supermem_sim::SplitMix64;

    fn random_bytes(rng: &mut SplitMix64, lo: u64, hi: u64) -> Vec<u8> {
        let mut v = vec![0u8; rng.next_range(lo, hi) as usize];
        rng.fill_bytes(&mut v);
        v
    }

    /// Arbitrary sequences of multi-record transactions leave memory
    /// exactly as a byte-level reference model predicts.
    #[test]
    fn committed_txns_match_reference() {
        let mut rng = SplitMix64::new(0x7317);
        for _ in 0..32 {
            let txns: Vec<Vec<(u64, Vec<u8>)>> = (0..rng.next_range(1, 20))
                .map(|_| {
                    (0..rng.next_range(1, 5))
                        .map(|_| (rng.next_below(2048), random_bytes(&mut rng, 1, 60)))
                        .collect()
                })
                .collect();
            let mut mem = VecMem::new();
            let mut txm = TxnManager::new(0x10_0000, 8192);
            let mut reference: HashMap<u64, u8> = HashMap::new();
            for writes in &txns {
                let mut txn = txm.begin();
                for (addr, bytes) in writes {
                    txn.write(*addr, bytes.clone());
                }
                txn.commit(&mut mem).unwrap();
                for (addr, bytes) in writes {
                    for (i, &b) in bytes.iter().enumerate() {
                        reference.insert(*addr + i as u64, b);
                    }
                }
            }
            for (&addr, &expect) in &reference {
                let mut got = [0u8; 1];
                mem.read(addr, &mut got);
                assert_eq!(got[0], expect, "byte at {addr:#x}");
            }
        }
    }

    /// txn.read always observes staged writes over memory, matching a
    /// byte-level overlay model.
    #[test]
    fn overlay_read_matches_model() {
        let mut rng = SplitMix64::new(0x0731);
        for _ in 0..64 {
            let base = random_bytes(&mut rng, 64, 128);
            let staged: Vec<(u64, Vec<u8>)> = (0..rng.next_below(6))
                .map(|_| (rng.next_below(96), random_bytes(&mut rng, 1, 20)))
                .collect();
            let read_at = rng.next_below(64);
            let read_len = rng.next_range(1, 48) as usize;
            let mut mem = VecMem::new();
            mem.write(0, &base);
            let mut model: Vec<u8> = {
                let mut v = vec![0u8; 160];
                v[..base.len()].copy_from_slice(&base);
                v
            };
            let mut txm = TxnManager::new(0x10_0000, 8192);
            let mut txn = txm.begin();
            for (addr, bytes) in &staged {
                txn.write(*addr, bytes.clone());
                model[*addr as usize..*addr as usize + bytes.len()].copy_from_slice(bytes);
            }
            let mut got = vec![0u8; read_len];
            txn.read(&mut mem, read_at, &mut got);
            assert_eq!(
                &got[..],
                &model[read_at as usize..read_at as usize + read_len]
            );
        }
    }
}
