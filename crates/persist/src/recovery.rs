//! Post-crash recovery.
//!
//! Takes the [`CrashImage`] a power failure left behind and rebuilds a
//! consistent view:
//!
//! 1. If a page re-encryption was in flight, finish it from the
//!    ADR-preserved RSR (paper §3.4.4): lines with a set done bit are
//!    already under `(old_major + 1, 0)`; the rest still decrypt with
//!    the *old* counter line, which the controller deliberately left
//!    untouched in NVM.
//! 2. Serve byte reads by decrypting through the stored counters —
//!    succeeding exactly when counter and data were persisted
//!    atomically, and yielding garbage otherwise (Figure 4).
//! 3. Scan the transaction log and roll back an uncommitted transaction
//!    ([`recover_transactions`]).

use supermem_crypto::{CounterLine, EncryptionEngine};
use supermem_memctrl::CrashImage;
use supermem_nvm::addr::{AddressMap, LineAddr, PageId};
use supermem_nvm::{LineData, NvmStore};
use supermem_sim::Config;

use crate::log::{
    decode_records, log_checksum, read_header, LOG_MAGIC, STATE_COMMITTED, STATE_EMPTY, STATE_VALID,
};
use crate::pmem::PMem;

/// What the log scan found and did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryOutcome {
    /// No recognizable log header at the given address (fresh memory —
    /// or a log whose counters were lost, rendering it undecryptable).
    NoLog,
    /// The last transaction committed; nothing to do.
    CleanCommitted {
        /// Sequence number of the committed transaction.
        seq: u64,
    },
    /// An uncommitted transaction was rolled back from its undo records.
    RolledBack {
        /// Sequence number of the rolled-back transaction.
        seq: u64,
        /// Number of undo records applied.
        records: usize,
    },
    /// The header is recognizable but inconsistent (bad state word, bad
    /// checksum, undecodable records): the data cannot be trusted.
    CorruptLog,
}

/// A functional, decrypted view of a post-crash NVM image.
///
/// Implements [`PMem`] (flush/fence are no-ops — recovery runs against
/// durable state) so the log machinery can operate on it directly.
///
/// # Examples
///
/// ```
/// use supermem_memctrl::MemoryController;
/// use supermem_nvm::addr::LineAddr;
/// use supermem_persist::{pmem::PMem, RecoveredMemory};
/// use supermem_sim::Config;
///
/// let cfg = Config::default();
/// let mut mc = MemoryController::new(&cfg);
/// mc.flush_line(LineAddr(0x1000), [7u8; 64], 0);
/// let image = mc.crash_now();
/// let mut rec = RecoveredMemory::from_image(&cfg, image);
/// let mut buf = [0u8; 4];
/// rec.read(0x1000, &mut buf);
/// assert_eq!(buf, [7, 7, 7, 7]);
/// ```
#[derive(Debug, Clone)]
pub struct RecoveredMemory {
    store: NvmStore,
    map: AddressMap,
    engine: EncryptionEngine,
    encryption: bool,
}

impl RecoveredMemory {
    /// Builds the view, completing any interrupted page re-encryption
    /// recorded in the RSR.
    pub fn from_image(cfg: &Config, image: CrashImage) -> Self {
        let map = AddressMap::new(cfg.nvm_bytes, cfg.line_bytes, cfg.page_bytes, cfg.banks);
        let engine = EncryptionEngine::new(cfg.encryption_key());
        let CrashImage { mut store, rsr, .. } = image;
        if cfg.encryption {
            if let Some(rsr) = rsr {
                let page = rsr.page();
                let old = CounterLine::decode(&store.read_counter(page));
                let new_major = rsr.old_major() + 1;
                for idx in 0..map.lines_per_page() as usize {
                    let line = map.line_in_page(page, idx);
                    let cipher = store.read_data(line);
                    let plain = if rsr.is_done(idx) {
                        engine.decrypt_line(&cipher, line.0, new_major, 0)
                    } else {
                        engine.decrypt_line(&cipher, line.0, old.major(), old.minor(idx))
                    };
                    store.write_data(line, engine.encrypt_line(&plain, line.0, new_major, 0));
                }
                store.write_counter(page, CounterLine::with_major(new_major).encode());
            }
        }
        Self {
            store,
            map,
            engine,
            encryption: cfg.encryption,
        }
    }

    fn read_line_plain(&self, line: LineAddr) -> LineData {
        let cipher = self.store.read_data(line);
        if !self.encryption {
            return cipher;
        }
        let page = self.map.page_of_line(line);
        let idx = self.map.line_index_in_page(line);
        let ctr = CounterLine::decode(&self.store.read_counter(page));
        self.engine
            .decrypt_line(&cipher, line.0, ctr.major(), ctr.minor(idx))
    }

    fn write_line_plain(&mut self, line: LineAddr, plain: LineData) {
        if !self.encryption {
            self.store.write_data(line, plain);
            return;
        }
        let page = self.map.page_of_line(line);
        let idx = self.map.line_index_in_page(line);
        let mut ctr = CounterLine::decode(&self.store.read_counter(page));
        if ctr.increment(idx) == supermem_crypto::IncrementOutcome::Overflow {
            self.reencrypt_page_functional(page, &mut ctr);
            assert!(matches!(
                ctr.increment(idx),
                supermem_crypto::IncrementOutcome::Incremented(_)
            ));
        }
        let cipher = self
            .engine
            .encrypt_line(&plain, line.0, ctr.major(), ctr.minor(idx));
        self.store.write_data(line, cipher);
        self.store.write_counter(page, ctr.encode());
    }

    fn reencrypt_page_functional(&mut self, page: PageId, ctr: &mut CounterLine) {
        let old = ctr.clone();
        ctr.bump_major();
        for idx in 0..self.map.lines_per_page() as usize {
            let line = self.map.line_in_page(page, idx);
            let cipher = self.store.read_data(line);
            let plain = self
                .engine
                .decrypt_line(&cipher, line.0, old.major(), old.minor(idx));
            self.store.write_data(
                line,
                self.engine.encrypt_line(&plain, line.0, ctr.major(), 0),
            );
        }
    }

    /// Consumes the view and returns the (re-encrypted, consistent)
    /// store, e.g. to restart a [`supermem_memctrl::MemoryController`]
    /// on it.
    pub fn into_store(self) -> NvmStore {
        self.store
    }

    /// Borrow of the underlying store (verification).
    pub fn store(&self) -> &NvmStore {
        &self.store
    }
}

impl PMem for RecoveredMemory {
    fn read(&mut self, addr: u64, buf: &mut [u8]) {
        let line_bytes = 64u64;
        let mut i = 0usize;
        while i < buf.len() {
            let a = addr + i as u64;
            let line = LineAddr(a & !(line_bytes - 1));
            let off = (a % line_bytes) as usize;
            let n = ((line_bytes as usize) - off).min(buf.len() - i);
            let data = self.read_line_plain(line);
            buf[i..i + n].copy_from_slice(&data[off..off + n]);
            i += n;
        }
    }

    fn write(&mut self, addr: u64, bytes: &[u8]) {
        let line_bytes = 64u64;
        let mut i = 0usize;
        while i < bytes.len() {
            let a = addr + i as u64;
            let line = LineAddr(a & !(line_bytes - 1));
            let off = (a % line_bytes) as usize;
            let n = ((line_bytes as usize) - off).min(bytes.len() - i);
            let mut data = self.read_line_plain(line);
            data[off..off + n].copy_from_slice(&bytes[i..i + n]);
            self.write_line_plain(line, data);
            i += n;
        }
    }

    fn clwb(&mut self, _addr: u64, _len: u64) {}

    fn sfence(&mut self) {}
}

/// Result of an Osiris-style counter reconstruction pass.
///
/// The interesting cost metric is `trial_decryptions`: real hardware
/// performs one AES + ECC check per trial, and the scan visits every
/// written line — so recovery time grows linearly with the memory
/// footprint, which is precisely the drawback the SuperMem paper's §6
/// cites. SuperMem itself needs none of this (strict counter
/// persistence), so its equivalent report is all zeros.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OsirisReport {
    /// Data lines visited by the scan.
    pub lines_scanned: u64,
    /// Trial decryptions performed.
    pub trial_decryptions: u64,
    /// Minor counters found stale and corrected.
    pub counters_corrected: u64,
    /// Lines whose counter could not be re-derived within the window.
    pub unrecoverable_lines: u64,
}

/// Reconstructs stale counters after a crash of an Osiris-style system
/// (`Config::osiris_window` must be set): for every written data line,
/// trial-decrypts under candidate minors `stored..stored + window` and
/// accepts the one matching the line's ECC tag, then rewrites the
/// corrected counter lines into the image.
///
/// Returns the consistent [`RecoveredMemory`] plus the cost report.
///
/// # Panics
///
/// Panics if the configuration has no Osiris window (nothing to
/// recover — use [`RecoveredMemory::from_image`] directly).
pub fn recover_osiris(cfg: &Config, image: CrashImage) -> (RecoveredMemory, OsirisReport) {
    let window = cfg
        .osiris_window
        .expect("recover_osiris requires Config::osiris_window");
    let map = AddressMap::new(cfg.nvm_bytes, cfg.line_bytes, cfg.page_bytes, cfg.banks);
    let engine = EncryptionEngine::new(cfg.encryption_key());
    let CrashImage { mut store, rsr, .. } = image;
    let mut report = OsirisReport::default();

    // Group written lines by page so each counter line is decoded and
    // rewritten once.
    let mut current_page: Option<(PageId, CounterLine, bool)> = None;
    for line in store.data_lines() {
        let page = map.page_of_line(line);
        match &current_page {
            Some((p, ctr, changed)) if *p != page => {
                if *changed {
                    store.write_counter(*p, ctr.encode());
                }
                current_page = Some((page, CounterLine::decode(&store.read_counter(page)), false));
            }
            None => {
                current_page = Some((page, CounterLine::decode(&store.read_counter(page)), false));
            }
            _ => {}
        }
        let (_, ctr, changed) = current_page.as_mut().expect("page context set");
        report.lines_scanned += 1;
        let tag = store.read_tag(line);
        if tag == 0 {
            continue; // never written through the Osiris path
        }
        let idx = map.line_index_in_page(line);
        let cipher = store.read_data(line);
        let stored = ctr.minor(idx);
        let mut found = false;
        for delta in 0..=window {
            let candidate = stored.saturating_add(delta);
            if candidate >= 128 {
                break;
            }
            report.trial_decryptions += 1;
            let plain = engine.decrypt_line(&cipher, line.0, ctr.major(), candidate);
            if supermem_crypto::line_tag(&plain) == tag {
                if candidate != stored {
                    ctr.set_minor(idx, candidate);
                    *changed = true;
                    report.counters_corrected += 1;
                }
                found = true;
                break;
            }
        }
        if !found {
            report.unrecoverable_lines += 1;
        }
    }
    if let Some((p, ctr, true)) = current_page {
        store.write_counter(p, ctr.encode());
    }
    let rec = RecoveredMemory::from_image(
        cfg,
        CrashImage {
            store,
            rsr,
            bmt_root: None,
        },
    );
    (rec, report)
}

/// Active-tampering verdict for a crash image (see
/// [`verify_image_integrity`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IntegrityVerdict {
    /// The image's counter region matches the trusted root register.
    Clean {
        /// Counter lines folded into the recomputed tree.
        counter_lines_checked: u64,
    },
    /// The recomputed root diverges: the DIMM was modified behind the
    /// controller's back (or rolled back to stale contents).
    Tampered,
}

/// Recomputes the integrity tree over a crash image's counter region and
/// compares it with the trusted root register that survived the crash.
///
/// # Errors
///
/// Returns `Err` if the image carries no root (the system ran without
/// `Config::integrity_tree`).
pub fn verify_image_integrity(
    cfg: &Config,
    image: &CrashImage,
) -> Result<IntegrityVerdict, String> {
    let Some(root) = image.bmt_root else {
        return Err("image has no integrity root: enable Config::integrity_tree".into());
    };
    let mut bmt = supermem_integrity::Bmt::new(cfg.encryption_key(), cfg.integrity_pages);
    let mut checked = 0;
    for page in image.store.counter_lines() {
        if page.0 < cfg.integrity_pages {
            bmt.update(page.0, &image.store.read_counter(page));
            checked += 1;
        }
    }
    if bmt.root() == root {
        Ok(IntegrityVerdict::Clean {
            counter_lines_checked: checked,
        })
    } else {
        Ok(IntegrityVerdict::Tampered)
    }
}

/// Scans the log region at `log_base` and rolls back an uncommitted
/// transaction. Returns what was found; on [`RecoveryOutcome::RolledBack`]
/// the undo records have been applied to `mem`.
pub fn recover_transactions(mem: &mut RecoveredMemory, log_base: u64) -> RecoveryOutcome {
    let h = read_header(mem, log_base);
    if h.magic != LOG_MAGIC {
        return RecoveryOutcome::NoLog;
    }
    match h.state {
        STATE_COMMITTED => RecoveryOutcome::CleanCommitted { seq: h.seq },
        STATE_EMPTY => RecoveryOutcome::NoLog,
        STATE_VALID => {
            let mut payload = vec![0u8; h.len as usize];
            mem.read(log_base + crate::log::LOG_HEADER_BYTES, &mut payload);
            if log_checksum(h.seq, &payload) != h.checksum {
                return RecoveryOutcome::CorruptLog;
            }
            match decode_records(&payload) {
                Some(records) => {
                    for r in &records {
                        mem.write(r.addr, &r.data);
                    }
                    // Retire the log so a second recovery is a no-op.
                    mem.write_u64(log_base + 16, STATE_COMMITTED);
                    RecoveryOutcome::RolledBack {
                        seq: h.seq,
                        records: records.len(),
                    }
                }
                None => RecoveryOutcome::CorruptLog,
            }
        }
        _ => RecoveryOutcome::CorruptLog,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supermem_memctrl::MemoryController;

    fn cfg() -> Config {
        Config::default()
    }

    #[test]
    fn reads_decrypt_flushed_data() {
        let mut mc = MemoryController::new(&cfg());
        let t = mc.flush_line(LineAddr(0x40), [0xAB; 64], 0);
        mc.flush_line(LineAddr(0x80), [0xCD; 64], t);
        let mut rec = RecoveredMemory::from_image(&cfg(), mc.crash_now());
        let mut buf = [0u8; 128];
        rec.read(0x40, &mut buf);
        assert_eq!(&buf[..64], &[0xAB; 64]);
        assert_eq!(&buf[64..], &[0xCD; 64]);
    }

    #[test]
    fn writes_reencrypt_consistently() {
        let mut mc = MemoryController::new(&cfg());
        mc.flush_line(LineAddr(0x100), [1; 64], 0);
        let mut rec = RecoveredMemory::from_image(&cfg(), mc.crash_now());
        rec.write(0x110, &[9, 9, 9]);
        let mut buf = [0u8; 64];
        rec.read(0x100, &mut buf);
        assert_eq!(buf[0x10..0x13], [9, 9, 9]);
        assert_eq!(buf[0], 1);
        // The store still holds ciphertext.
        assert_ne!(rec.store().read_data(LineAddr(0x100))[0], buf[0]);
    }

    #[test]
    fn functional_write_handles_minor_overflow() {
        let cfg = cfg();
        let mut rec = RecoveredMemory::from_image(&cfg, MemoryController::new(&cfg).crash_now());
        // Initialize the neighbor so we can check it survives re-keying.
        rec.write(64, &[5u8; 8]);
        for i in 0..200u32 {
            rec.write(0, &i.to_le_bytes());
        }
        let mut buf = [0u8; 4];
        rec.read(0, &mut buf);
        assert_eq!(u32::from_le_bytes(buf), 199);
        let mut buf = [0u8; 8];
        rec.read(64, &mut buf);
        assert_eq!(buf, [5u8; 8]);
    }

    #[test]
    fn unencrypted_mode_passthrough() {
        let mut c = cfg();
        c.encryption = false;
        let mut mc = MemoryController::new(&c);
        mc.flush_line(LineAddr(0), [3; 64], 0);
        let mut rec = RecoveredMemory::from_image(&c, mc.crash_now());
        let mut buf = [0u8; 8];
        rec.read(0, &mut buf);
        assert_eq!(buf, [3; 8]);
        rec.write(0, &[4; 8]);
        assert_eq!(rec.store().read_data(LineAddr(0))[0], 4, "plaintext store");
    }

    #[test]
    fn completes_interrupted_reencryption_via_rsr() {
        let cfg = cfg();
        let mut mc = MemoryController::new(&cfg);
        // Seed two lines, then overflow line 0's minor counter with an
        // armed crash in the middle of the page rewrite.
        let mut t = mc.flush_line(LineAddr(64), [0x77; 64], 0);
        for i in 0..127u64 {
            t = mc.flush_line(LineAddr(0), [i as u8; 64], t);
        }
        // Next flush overflows and starts re-encryption; crash after a
        // handful of the 64 rewrites.
        mc.arm_crash_after_appends(10);
        mc.flush_line(LineAddr(0), [0xFF; 64], t);
        let image = mc.take_crash_image().expect("crash fired mid-reencryption");
        assert!(image.rsr.is_some(), "RSR must be live in the image");
        let mut rec = RecoveredMemory::from_image(&cfg, image);
        let mut buf = [0u8; 64];
        rec.read(64, &mut buf);
        assert_eq!(buf, [0x77; 64], "bystander line survives the crash");
        rec.read(0, &mut buf);
        // Line 0 is either the pre-overflow value (126) or the new one.
        assert!(
            buf == [126; 64] || buf == [0xFF; 64],
            "hot line must be one of its two consistent versions"
        );
    }

    fn osiris_cfg() -> Config {
        Config {
            counter_cache_mode: supermem_sim::CounterCacheMode::WriteBack,
            counter_cache_backing: supermem_sim::CounterCacheBacking::None,
            osiris_window: Some(4),
            ..Config::default()
        }
    }

    #[test]
    fn osiris_recovers_stale_counters_by_trial_decryption() {
        let cfg = osiris_cfg();
        let mut mc = MemoryController::new(&cfg);
        // Write the same line three times: minors advance to 3 but in
        // write-back mode only the increment hitting `minor % 4 == 0`
        // (none here) persists the counter line — the NVM counter is
        // stale at the crash.
        let mut t = 0;
        for i in 1..=3u8 {
            t = mc.flush_line(LineAddr(0x40), [i; 64], t);
        }
        let image = mc.crash_now();
        // Without reconstruction the line is garbage...
        let mut naive = RecoveredMemory::from_image(&cfg, image.clone());
        let mut buf = [0u8; 64];
        naive.read(0x40, &mut buf);
        assert_ne!(buf, [3u8; 64], "stale counter must not decrypt");
        // ...with Osiris reconstruction it comes back.
        let (mut rec, report) = super::recover_osiris(&cfg, image);
        rec.read(0x40, &mut buf);
        assert_eq!(buf, [3u8; 64]);
        assert_eq!(report.counters_corrected, 1);
        assert_eq!(report.unrecoverable_lines, 0);
        assert!(report.trial_decryptions >= 4, "search cost must show up");
        let _ = t;
    }

    #[test]
    fn osiris_scan_cost_scales_with_footprint() {
        let cfg = osiris_cfg();
        let lines_written = |n: u64| {
            let mut mc = MemoryController::new(&cfg);
            let mut t = 0;
            for i in 0..n {
                t = mc.flush_line(LineAddr(i * 64), [i as u8; 64], t);
            }
            let (_, report) = super::recover_osiris(&cfg, mc.crash_now());
            report.lines_scanned
        };
        assert_eq!(lines_written(16), 16);
        assert_eq!(lines_written(64), 64);
    }

    #[test]
    fn osiris_report_is_clean_when_counters_are_fresh() {
        // A checkpointed (fully drained) Osiris system has current
        // counters: recovery corrects nothing.
        let cfg = osiris_cfg();
        let mut mc = MemoryController::new(&cfg);
        let t = mc.flush_line(LineAddr(0x80), [9; 64], 0);
        mc.finish(t);
        let (mut rec, report) = super::recover_osiris(&cfg, mc.crash_now());
        assert_eq!(report.counters_corrected, 0);
        assert_eq!(report.unrecoverable_lines, 0);
        let mut buf = [0u8; 64];
        rec.read(0x80, &mut buf);
        assert_eq!(buf, [9; 64]);
    }

    #[test]
    #[should_panic(expected = "osiris_window")]
    fn osiris_recovery_requires_the_window() {
        let cfg = Config::default();
        let mc = MemoryController::new(&cfg);
        let _ = super::recover_osiris(&cfg, mc.crash_now());
    }

    #[test]
    fn recovery_of_fresh_memory_reports_nolog() {
        let cfg = cfg();
        let mut rec = RecoveredMemory::from_image(&cfg, MemoryController::new(&cfg).crash_now());
        assert_eq!(
            recover_transactions(&mut rec, 0x10000),
            RecoveryOutcome::NoLog
        );
    }

    #[test]
    fn rollback_restores_old_data_and_is_idempotent() {
        use crate::log::{
            encode_records, log_checksum as ck, UndoRecord, LOG_HEADER_BYTES, LOG_MAGIC,
            STATE_VALID,
        };
        let cfg = cfg();
        let mut rec = RecoveredMemory::from_image(&cfg, MemoryController::new(&cfg).crash_now());
        let log = 0x20000u64;
        // Data was "mutated" to 9s; the log says it used to be 1s.
        rec.write(0x100, &[9; 16]);
        let payload = encode_records(&[UndoRecord {
            addr: 0x100,
            data: vec![1; 16],
        }]);
        rec.write(log + LOG_HEADER_BYTES, &payload);
        rec.write_u64(log, LOG_MAGIC);
        rec.write_u64(log + 8, 5);
        rec.write_u64(log + 16, STATE_VALID);
        rec.write_u64(log + 24, payload.len() as u64);
        rec.write_u64(log + 32, ck(5, &payload));

        let out = recover_transactions(&mut rec, log);
        assert_eq!(out, RecoveryOutcome::RolledBack { seq: 5, records: 1 });
        let mut buf = [0u8; 16];
        rec.read(0x100, &mut buf);
        assert_eq!(buf, [1; 16]);
        // Second scan finds a committed (retired) log.
        assert_eq!(
            recover_transactions(&mut rec, log),
            RecoveryOutcome::CleanCommitted { seq: 5 }
        );
    }

    #[test]
    fn bad_checksum_reports_corrupt() {
        use crate::log::{LOG_MAGIC, STATE_VALID};
        let cfg = cfg();
        let mut rec = RecoveredMemory::from_image(&cfg, MemoryController::new(&cfg).crash_now());
        let log = 0x30000u64;
        rec.write_u64(log, LOG_MAGIC);
        rec.write_u64(log + 8, 1);
        rec.write_u64(log + 16, STATE_VALID);
        rec.write_u64(log + 24, 8);
        rec.write_u64(log + 32, 0xBAD);
        assert_eq!(
            recover_transactions(&mut rec, log),
            RecoveryOutcome::CorruptLog
        );
    }

    #[test]
    fn insane_state_reports_corrupt() {
        use crate::log::LOG_MAGIC;
        let cfg = cfg();
        let mut rec = RecoveredMemory::from_image(&cfg, MemoryController::new(&cfg).crash_now());
        let log = 0x40000u64;
        rec.write_u64(log, LOG_MAGIC);
        rec.write_u64(log + 16, 77);
        assert_eq!(
            recover_transactions(&mut rec, log),
            RecoveryOutcome::CorruptLog
        );
    }
}
