//! Post-crash recovery.
//!
//! Takes the [`CrashImage`] a power failure left behind and rebuilds a
//! consistent view:
//!
//! 1. If a page re-encryption was in flight, finish it from the
//!    ADR-preserved RSR (paper §3.4.4): lines with a set done bit are
//!    already under `(old_major + 1, 0)`; the rest still decrypt with
//!    the *old* counter line, which the controller deliberately left
//!    untouched in NVM.
//! 2. Serve byte reads by decrypting through the stored counters —
//!    succeeding exactly when counter and data were persisted
//!    atomically, and yielding garbage otherwise (Figure 4).
//! 3. Scan the transaction log and roll back an uncommitted transaction
//!    ([`recover_transactions`]).
//!
//! Recovery runs against an *imperfect* DIMM: every media access goes
//! through the store's checked read path, so a [`FaultPlan`] attached to
//! the image surfaces as retried transients, ECC corrections, or — for
//! uncorrectable damage — a typed [`RecoveryError`] instead of a panic
//! or silently wrong bytes.
//!
//! [`FaultPlan`]: supermem_nvm::FaultPlan

use supermem_crypto::{CounterLine, EncryptionEngine};
use supermem_memctrl::{CrashImage, MachineCrashImage};
use supermem_nvm::addr::{AddressMap, LineAddr, PageId};
use supermem_nvm::{LineData, MediaError, NvmStore};
use supermem_sim::Config;

use crate::log::{
    decode_records, log_checksum, read_header, LOG_MAGIC, STATE_COMMITTED, STATE_EMPTY, STATE_VALID,
};
use crate::pmem::PMem;

/// Transient reads are re-issued this many times before the line is
/// declared failed (mirrors the controller's live-path retry budget).
const READ_RETRY_LIMIT: u32 = 3;

/// Recovery-time cost charged per persisted line (counter or tree node)
/// read back from the media, in cycles: one NVM array read.
const RECOVERY_LINE_READ_CYCLES: u64 = 126;

/// Recovery-time cost charged per node hash recomputed or audited.
const RECOVERY_NODE_HASH_CYCLES: u64 = 40;

/// What the log scan found and did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryOutcome {
    /// No recognizable log header at the given address (fresh memory —
    /// or a log whose counters were lost, rendering it undecryptable).
    NoLog,
    /// The last transaction committed; nothing to do.
    CleanCommitted {
        /// Sequence number of the committed transaction.
        seq: u64,
    },
    /// An uncommitted transaction was rolled back from its undo records.
    RolledBack {
        /// Sequence number of the rolled-back transaction.
        seq: u64,
        /// Number of undo records applied.
        records: usize,
    },
}

/// Why a recovery pass could not produce a trusted state.
///
/// The taxonomy matters to the caller: `TornLog` means the *log* is
/// unusable but the data region may simply be pre-transaction;
/// `DetectedCorrupt` means the media itself reported damage the ECC
/// could not correct; `Unrecoverable` means the damage reaches state
/// the recovery algorithm has no second copy of.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryError {
    /// The configuration cannot drive this recovery flavor (e.g.
    /// [`recover_osiris`] without `Config::osiris_window`).
    Config(String),
    /// An uncorrectable media error was detected (ECC detection, a lost
    /// line, retry exhaustion, or an integrity-root mismatch) — the
    /// damage is *known*, not silent.
    DetectedCorrupt(String),
    /// The log header or payload is internally inconsistent (bad state
    /// word, bad checksum, undecodable records): a torn log write.
    TornLog(String),
    /// Damage reaches state with no redundant copy; the image cannot be
    /// rebuilt.
    Unrecoverable(String),
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Config(s) => write!(f, "configuration error: {s}"),
            Self::DetectedCorrupt(s) => write!(f, "detected media corruption: {s}"),
            Self::TornLog(s) => write!(f, "torn log: {s}"),
            Self::Unrecoverable(s) => write!(f, "unrecoverable: {s}"),
        }
    }
}

impl std::error::Error for RecoveryError {}

/// A functional, decrypted view of a post-crash NVM image.
///
/// Implements [`PMem`] (flush/fence are no-ops — recovery runs against
/// durable state) so the log machinery can operate on it directly.
///
/// All media accesses go through the store's checked read path:
/// transient failures are retried (counted in
/// [`RecoveredMemory::read_retries`]); uncorrectable errors poison the
/// line to zeroes and count in [`RecoveredMemory::media_failures`], so
/// callers can distinguish "clean read" from "the DIMM lied".
///
/// # Examples
///
/// ```
/// use supermem_memctrl::MemoryController;
/// use supermem_nvm::addr::LineAddr;
/// use supermem_persist::{pmem::PMem, RecoveredMemory};
/// use supermem_sim::Config;
///
/// let cfg = Config::default();
/// let mut mc = MemoryController::new(&cfg);
/// mc.flush_line(LineAddr(0x1000), [7u8; 64], 0);
/// let image = mc.crash_now();
/// let mut rec = RecoveredMemory::from_image(&cfg, image);
/// let mut buf = [0u8; 4];
/// rec.read(0x1000, &mut buf);
/// assert_eq!(buf, [7, 7, 7, 7]);
/// ```
#[derive(Debug, Clone)]
pub struct RecoveredMemory {
    store: NvmStore,
    map: AddressMap,
    engine: EncryptionEngine,
    encryption: bool,
    read_retries: u64,
    media_failures: u64,
    recovery_cycles: u64,
}

impl RecoveredMemory {
    /// Builds the view, completing any interrupted page re-encryption
    /// recorded in the RSR.
    pub fn from_image(cfg: &Config, image: CrashImage) -> Self {
        let map = AddressMap::with_channels(
            cfg.nvm_bytes,
            cfg.line_bytes,
            cfg.page_bytes,
            cfg.banks,
            cfg.channels,
        );
        let engine = EncryptionEngine::new(cfg.encryption_key());
        let CrashImage { mut store, rsr, .. } = image;
        if cfg.encryption {
            if let Some(rsr) = rsr {
                Self::complete_rsr(&map, &engine, &mut store, &rsr);
            }
        }
        Self {
            store,
            map,
            engine,
            encryption: cfg.encryption,
            read_retries: 0,
            media_failures: 0,
            recovery_cycles: 0,
        }
    }

    /// Builds the view from a multi-channel crash image: each channel's
    /// interrupted page re-encryption (the per-channel RSR) is completed
    /// against that channel's own store first, then the disjoint
    /// per-channel stores are merged into one address space.
    pub fn from_machine_image(cfg: &Config, mut machine: MachineCrashImage) -> Self {
        let map = AddressMap::with_channels(
            cfg.nvm_bytes,
            cfg.line_bytes,
            cfg.page_bytes,
            cfg.banks,
            cfg.channels,
        );
        let engine = EncryptionEngine::new(cfg.encryption_key());
        if cfg.encryption {
            for image in &mut machine.channels {
                if let Some(rsr) = image.rsr.take() {
                    Self::complete_rsr(&map, &engine, &mut image.store, &rsr);
                }
            }
        }
        Self::from_image(cfg, machine.merged())
    }

    /// Finishes the page re-encryption an RSR recorded as in flight:
    /// done lines already decrypt under `(old_major + 1, 0)`, the rest
    /// still decrypt with the old counter line the controller left
    /// untouched; everything is rewritten under the new epoch and the
    /// counter line reset (paper §3.4.4).
    fn complete_rsr(
        map: &AddressMap,
        engine: &EncryptionEngine,
        store: &mut NvmStore,
        rsr: &supermem_memctrl::Rsr,
    ) {
        let page = rsr.page();
        let old = CounterLine::decode(&store.read_counter(page));
        let new_major = rsr.old_major() + 1;
        for idx in 0..map.lines_per_page() as usize {
            let line = map.line_in_page(page, idx);
            let cipher = store.read_data(line);
            let plain = if rsr.is_done(idx) {
                engine.decrypt_line(&cipher, line.0, new_major, 0)
            } else {
                engine.decrypt_line(&cipher, line.0, old.major(), old.minor(idx))
            };
            store.write_data(line, engine.encrypt_line(&plain, line.0, new_major, 0));
        }
        store.write_counter(page, CounterLine::with_major(new_major).encode());
    }

    /// Like [`RecoveredMemory::from_image`], but first re-verifies the
    /// integrity tree over the image's counter region *through the
    /// checked media path*, so both active tampering and uncorrectable
    /// media damage on counter lines surface before any data is trusted.
    ///
    /// Images without an integrity root (the system ran without
    /// `Config::integrity_tree`) skip the tree check and build normally.
    ///
    /// # Errors
    ///
    /// [`RecoveryError::DetectedCorrupt`] when a counter line is
    /// unreadable (uncorrectable ECC error, lost line, retry
    /// exhaustion) or the recomputed root diverges from the trusted
    /// root register.
    pub fn from_image_checked(cfg: &Config, mut image: CrashImage) -> Result<Self, RecoveryError> {
        let rebuild = Self::verify_image_integrity(cfg, &mut image)?;
        let mut rec = Self::from_image(cfg, image);
        rec.read_retries += rebuild.read_retries;
        rec.recovery_cycles += rebuild.recovery_cycles;
        Ok(rec)
    }

    /// [`RecoveredMemory::from_machine_image`] with the per-channel
    /// integrity verification of [`RecoveredMemory::from_image_checked`]:
    /// each channel maintains its own tree over the counter lines it
    /// owns, so each per-channel root is re-verified against that
    /// channel's store before any merging or re-encryption happens.
    ///
    /// # Errors
    ///
    /// [`RecoveryError::DetectedCorrupt`] when any channel's counter
    /// region is unreadable or fails its root check.
    pub fn from_machine_image_checked(
        cfg: &Config,
        mut machine: MachineCrashImage,
    ) -> Result<Self, RecoveryError> {
        let mut retries = 0u64;
        let mut cycles = 0u64;
        for image in &mut machine.channels {
            let rebuild = Self::verify_image_integrity(cfg, image)?;
            retries += rebuild.read_retries;
            cycles += rebuild.recovery_cycles;
        }
        let mut rec = Self::from_machine_image(cfg, machine);
        rec.read_retries += retries;
        rec.recovery_cycles += cycles;
        Ok(rec)
    }

    /// Rebuilds one image's tree via [`rebuild_image_tree`] and lifts a
    /// mismatch into the typed error the checked constructors report.
    fn verify_image_integrity(
        cfg: &Config,
        image: &mut CrashImage,
    ) -> Result<TreeRebuild, RecoveryError> {
        let Some(root) = image.bmt_root else {
            return Ok(TreeRebuild::default());
        };
        let rebuild = rebuild_image_tree(cfg, image, root)?;
        if let Some(level) = rebuild.level_mismatch {
            return Err(RecoveryError::DetectedCorrupt(format!(
                "persisted tree level {level} does not match its children"
            )));
        }
        if !rebuild.root_matches {
            return Err(RecoveryError::DetectedCorrupt(
                "integrity root mismatch: counter region does not match the trusted root".into(),
            ));
        }
        Ok(rebuild)
    }

    /// Transient-read retries performed so far.
    pub fn read_retries(&self) -> u64 {
        self.read_retries
    }

    /// Modeled recovery-time cost, in cycles, of the integrity-tree
    /// rebuild the checked constructors performed (0 for unchecked
    /// builds or images without a root): persisted lines read at
    /// 126 cycles each plus node hashes at 40 cycles each.
    pub fn recovery_cycles(&self) -> u64 {
        self.recovery_cycles
    }

    /// Reads answered with poison (or writes skipped) because the media
    /// reported an uncorrectable error.
    pub fn media_failures(&self) -> u64 {
        self.media_failures
    }

    /// Checked data-line read: retries transients, returns `None` after
    /// an uncorrectable error (counted in `media_failures`).
    fn checked_data_read(&mut self, line: LineAddr) -> Option<LineData> {
        let mut attempt = 0u32;
        loop {
            match self.store.read_data_checked(line) {
                Ok(d) => return Some(d),
                Err(MediaError::Transient) if attempt < READ_RETRY_LIMIT => {
                    attempt += 1;
                    self.read_retries += 1;
                }
                Err(_) => {
                    self.media_failures += 1;
                    return None;
                }
            }
        }
    }

    /// Checked counter-line read; same policy as data lines.
    fn checked_counter_read(&mut self, page: PageId) -> Option<LineData> {
        let mut attempt = 0u32;
        loop {
            match self.store.read_counter_checked(page) {
                Ok(d) => return Some(d),
                Err(MediaError::Transient) if attempt < READ_RETRY_LIMIT => {
                    attempt += 1;
                    self.read_retries += 1;
                }
                Err(_) => {
                    self.media_failures += 1;
                    return None;
                }
            }
        }
    }

    fn read_line_plain(&mut self, line: LineAddr) -> LineData {
        let Some(cipher) = self.checked_data_read(line) else {
            return [0; 64];
        };
        if !self.encryption {
            return cipher;
        }
        let page = self.map.page_of_line(line);
        let idx = self.map.line_index_in_page(line);
        let Some(raw) = self.checked_counter_read(page) else {
            return [0; 64];
        };
        let ctr = CounterLine::decode(&raw);
        self.engine
            .decrypt_line(&cipher, line.0, ctr.major(), ctr.minor(idx))
    }

    fn write_line_plain(&mut self, line: LineAddr, plain: LineData) {
        if !self.encryption {
            self.store.write_data(line, plain);
            return;
        }
        let page = self.map.page_of_line(line);
        let idx = self.map.line_index_in_page(line);
        let Some(raw) = self.checked_counter_read(page) else {
            return; // counter unreadable: cannot re-encrypt, skip the write
        };
        let mut ctr = CounterLine::decode(&raw);
        if ctr.increment(idx) == supermem_crypto::IncrementOutcome::Overflow {
            self.reencrypt_page_functional(page, &mut ctr);
            assert!(matches!(
                ctr.increment(idx),
                supermem_crypto::IncrementOutcome::Incremented(_)
            ));
        }
        let cipher = self
            .engine
            .encrypt_line(&plain, line.0, ctr.major(), ctr.minor(idx));
        self.store.write_data(line, cipher);
        self.store.write_counter(page, ctr.encode());
    }

    fn reencrypt_page_functional(&mut self, page: PageId, ctr: &mut CounterLine) {
        let old = ctr.clone();
        ctr.bump_major();
        for idx in 0..self.map.lines_per_page() as usize {
            let line = self.map.line_in_page(page, idx);
            let cipher = self.store.read_data(line);
            let plain = self
                .engine
                .decrypt_line(&cipher, line.0, old.major(), old.minor(idx));
            self.store.write_data(
                line,
                self.engine.encrypt_line(&plain, line.0, ctr.major(), 0),
            );
        }
    }

    /// Consumes the view and returns the (re-encrypted, consistent)
    /// store, e.g. to restart a [`supermem_memctrl::MemoryController`]
    /// on it.
    pub fn into_store(self) -> NvmStore {
        self.store
    }

    /// Borrow of the underlying store (verification).
    pub fn store(&self) -> &NvmStore {
        &self.store
    }
}

impl PMem for RecoveredMemory {
    fn read(&mut self, addr: u64, buf: &mut [u8]) {
        let line_bytes = 64u64;
        let mut i = 0usize;
        while i < buf.len() {
            let a = addr + i as u64;
            let line = LineAddr(a & !(line_bytes - 1));
            let off = (a % line_bytes) as usize;
            let n = ((line_bytes as usize) - off).min(buf.len() - i);
            let data = self.read_line_plain(line);
            buf[i..i + n].copy_from_slice(&data[off..off + n]);
            i += n;
        }
    }

    fn write(&mut self, addr: u64, bytes: &[u8]) {
        let line_bytes = 64u64;
        let mut i = 0usize;
        while i < bytes.len() {
            let a = addr + i as u64;
            let line = LineAddr(a & !(line_bytes - 1));
            let off = (a % line_bytes) as usize;
            let n = ((line_bytes as usize) - off).min(bytes.len() - i);
            let mut data = self.read_line_plain(line);
            data[off..off + n].copy_from_slice(&bytes[i..i + n]);
            self.write_line_plain(line, data);
            i += n;
        }
    }

    fn clwb(&mut self, _addr: u64, _len: u64) {}

    fn sfence(&mut self) {}
}

/// Result of an Osiris-style counter reconstruction pass.
///
/// The interesting cost metric is `trial_decryptions`: real hardware
/// performs one AES + ECC check per trial, and the scan visits every
/// written line — so recovery time grows linearly with the memory
/// footprint, which is precisely the drawback the SuperMem paper's §6
/// cites. SuperMem itself needs none of this (strict counter
/// persistence), so its equivalent report is all zeros.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OsirisReport {
    /// Data lines visited by the scan.
    pub lines_scanned: u64,
    /// Trial decryptions performed.
    pub trial_decryptions: u64,
    /// Minor counters found stale and corrected.
    pub counters_corrected: u64,
    /// Lines whose counter could not be re-derived within the window.
    pub unrecoverable_lines: u64,
}

/// Checked read with the standard retry budget; `None` marks the line
/// as lost to the Osiris scan.
fn scan_read<F>(mut read: F) -> Option<LineData>
where
    F: FnMut() -> Result<LineData, MediaError>,
{
    let mut attempt = 0u32;
    loop {
        match read() {
            Ok(d) => return Some(d),
            Err(MediaError::Transient) if attempt < READ_RETRY_LIMIT => attempt += 1,
            Err(_) => return None,
        }
    }
}

/// Reconstructs stale counters after a crash of an Osiris-style system
/// (`Config::osiris_window` must be set): for every written data line,
/// trial-decrypts under candidate minors `stored..stored + window` and
/// accepts the one matching the line's ECC tag, then rewrites the
/// corrected counter lines into the image.
///
/// All scan reads go through the checked media path: a data line the
/// media cannot produce counts as unrecoverable; an unreadable counter
/// line makes every trial for its page fail, with the same effect.
///
/// Returns the consistent [`RecoveredMemory`] plus the cost report.
///
/// # Errors
///
/// [`RecoveryError::Config`] if the configuration has no Osiris window
/// (nothing to recover — use [`RecoveredMemory::from_image`] directly).
pub fn recover_osiris(
    cfg: &Config,
    image: CrashImage,
) -> Result<(RecoveredMemory, OsirisReport), RecoveryError> {
    let Some(window) = cfg.osiris_window else {
        return Err(RecoveryError::Config(
            "recover_osiris requires Config::osiris_window".into(),
        ));
    };
    let map = AddressMap::new(cfg.nvm_bytes, cfg.line_bytes, cfg.page_bytes, cfg.banks);
    let engine = EncryptionEngine::new(cfg.encryption_key());
    let CrashImage { mut store, rsr, .. } = image;
    let mut report = OsirisReport::default();

    // Group written lines by page so each counter line is decoded and
    // rewritten once.
    let lines: Vec<LineAddr> = store.data_lines();
    let mut current_page: Option<(PageId, CounterLine, bool)> = None;
    for line in lines {
        let page = map.page_of_line(line);
        let needs_load = match &current_page {
            Some((p, _, _)) => *p != page,
            None => true,
        };
        if needs_load {
            if let Some((p, ctr, true)) = current_page.take() {
                store.write_counter(p, ctr.encode());
            }
            // An unreadable counter line decodes as zeroes: every trial
            // for this page misses its tag and counts unrecoverable.
            let raw = scan_read(|| store.read_counter_checked(page)).unwrap_or([0; 64]);
            current_page = Some((page, CounterLine::decode(&raw), false));
        }
        let Some((_, ctr, changed)) = current_page.as_mut() else {
            unreachable!("page context set by the needs_load branch above");
        };
        report.lines_scanned += 1;
        let tag = store.read_tag(line);
        if tag == 0 {
            continue; // never written through the Osiris path
        }
        let idx = map.line_index_in_page(line);
        let Some(cipher) = scan_read(|| store.read_data_checked(line)) else {
            report.unrecoverable_lines += 1;
            continue;
        };
        let stored = ctr.minor(idx);
        let mut found = false;
        for delta in 0..=window {
            let candidate = stored.saturating_add(delta);
            if candidate >= 128 {
                break;
            }
            report.trial_decryptions += 1;
            let plain = engine.decrypt_line(&cipher, line.0, ctr.major(), candidate);
            if supermem_crypto::line_tag(&plain) == tag {
                if candidate != stored {
                    ctr.set_minor(idx, candidate);
                    *changed = true;
                    report.counters_corrected += 1;
                }
                found = true;
                break;
            }
        }
        if !found {
            report.unrecoverable_lines += 1;
        }
    }
    if let Some((p, ctr, true)) = current_page {
        store.write_counter(p, ctr.encode());
    }
    let rec = RecoveredMemory::from_image(
        cfg,
        CrashImage {
            store,
            rsr,
            bmt_root: None,
        },
    );
    Ok((rec, report))
}

/// Cost and outcome report of one crash-image tree rebuild — the typed
/// result both the checked constructors and [`verify_image_integrity`]
/// share (see [`rebuild_image_tree`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TreeRebuild {
    /// Counter lines read back to reconstruct leaf digests (0 when the
    /// leaf-digest level itself was persisted).
    pub counter_lines_checked: u64,
    /// Persisted tree-node lines read back from the tree region.
    pub persisted_lines_installed: u64,
    /// Node hashes performed: leaf digests, per-level audits, and the
    /// volatile-level recompute.
    pub nodes_recomputed: u64,
    /// Transient-read retries spent on the rebuild's media reads.
    pub read_retries: u64,
    /// Modeled rebuild cost: lines read at
    /// [`RECOVERY_LINE_READ_CYCLES`], hashes at
    /// [`RECOVERY_NODE_HASH_CYCLES`].
    pub recovery_cycles: u64,
    /// Whether the recomputed root equals the trusted root register.
    pub root_matches: bool,
    /// A persisted level whose stored digests do not hash from the
    /// level below (streaming frontier audit), if any.
    pub level_mismatch: Option<usize>,
}

/// Checked media read with the standard retry budget; counts retries
/// and maps an uncorrectable error into [`RecoveryError::DetectedCorrupt`]
/// with `what` naming the victim.
fn rebuild_read<F>(
    mut read: F,
    retries: &mut u64,
    what: impl Fn() -> String,
) -> Result<LineData, RecoveryError>
where
    F: FnMut() -> Result<LineData, MediaError>,
{
    let mut attempt = 0u32;
    loop {
        match read() {
            Ok(d) => return Ok(d),
            Err(MediaError::Transient) if attempt < READ_RETRY_LIMIT => {
                attempt += 1;
                *retries += 1;
            }
            Err(e) => {
                return Err(RecoveryError::DetectedCorrupt(format!(
                    "{} unreadable during integrity verification: {e}",
                    what()
                )))
            }
        }
    }
}

/// The shared rebuild-and-compare core: reconstructs the integrity tree
/// over one crash image through the checked media path and compares the
/// result against the trusted root register.
///
/// In eager mode (and at `persisted_levels = 0`) every leaf digest is
/// rebuilt from its persisted counter line and the whole tree is
/// recomputed bottom-up — the Phoenix-style full rebuild. With a
/// streaming frontier the persisted node levels are *read back* from
/// the tree region instead, audited level-against-level, and only the
/// volatile levels above the frontier are recomputed — the Triad-NVM
/// recovery-time saving the `treesweep` figure quantifies.
///
/// # Errors
///
/// [`RecoveryError::DetectedCorrupt`] when a counter or tree-node line
/// is unreadable (uncorrectable ECC damage, lost line, retry
/// exhaustion); [`RecoveryError::Config`] when the configuration cannot
/// host a tree at all.
fn rebuild_image_tree(
    cfg: &Config,
    image: &mut CrashImage,
    root: u64,
) -> Result<TreeRebuild, RecoveryError> {
    let mut rep = TreeRebuild::default();
    let mut bmt = match supermem_integrity::Bmt::new(cfg.encryption_key(), cfg.integrity_pages) {
        Ok(b) => b,
        Err(e) => return Err(RecoveryError::Config(format!("integrity tree: {e}"))),
    };
    let frontier = if cfg.streaming_tree() {
        cfg.persisted_levels.unwrap_or(0) as usize
    } else {
        0
    };
    if frontier == 0 {
        // Leaves from the (always-persisted) counter lines themselves.
        let pages: Vec<PageId> = image
            .store
            .counter_lines()
            .into_iter()
            .filter(|p| p.0 < cfg.integrity_pages)
            .collect();
        for page in pages {
            let raw = rebuild_read(
                || image.store.read_counter_checked(page),
                &mut rep.read_retries,
                || format!("counter line of page {}", page.0),
            )?;
            bmt.set_leaf(page.0, &raw);
            rep.counter_lines_checked += 1;
            rep.nodes_recomputed += 1; // the leaf digest hash
        }
    } else {
        // Persisted levels come back from the tree region.
        for id in image.store.tree_lines() {
            let level = supermem_integrity::tree_line_level(id) as usize;
            if level >= frontier {
                continue; // stale line from a deeper former frontier
            }
            let raw = rebuild_read(
                || image.store.read_tree_checked(id),
                &mut rep.read_retries,
                || format!("tree node line {id:#x}"),
            )?;
            bmt.install_node_line(level, supermem_integrity::tree_line_group(id), &raw);
            rep.persisted_lines_installed += 1;
        }
        // Audit the persisted region level-against-level: a recomputed
        // root only reads the frontier's top array, so damage below it
        // must be caught here.
        for level in 1..frontier {
            let (hashes, clean) = bmt.audit_level(level);
            rep.nodes_recomputed += hashes;
            if !clean && rep.level_mismatch.is_none() {
                rep.level_mismatch = Some(level);
            }
        }
    }
    rep.nodes_recomputed += bmt.recompute_from_level(frontier.max(1));
    rep.root_matches = rep.level_mismatch.is_none() && bmt.root() == root;
    rep.recovery_cycles = (rep.counter_lines_checked + rep.persisted_lines_installed)
        * RECOVERY_LINE_READ_CYCLES
        + rep.nodes_recomputed * RECOVERY_NODE_HASH_CYCLES;
    Ok(rep)
}

/// Active-tampering verdict for a crash image (see
/// [`verify_image_integrity`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IntegrityVerdict {
    /// The image's counter region matches the trusted root register.
    Clean {
        /// The rebuild's cost report.
        rebuild: TreeRebuild,
    },
    /// The recomputed root diverges: the DIMM was modified behind the
    /// controller's back (or rolled back to stale contents).
    Tampered,
}

/// Rebuilds the integrity tree over a crash image through the checked
/// media path ([`rebuild_image_tree`]) and compares it with the trusted
/// root register that survived the crash.
///
/// # Errors
///
/// Returns `Err` if the image carries no root (the system ran without
/// `Config::integrity_tree`) or a rebuild read hit uncorrectable media
/// damage.
pub fn verify_image_integrity(
    cfg: &Config,
    image: &mut CrashImage,
) -> Result<IntegrityVerdict, String> {
    let Some(root) = image.bmt_root else {
        return Err("image has no integrity root: enable Config::integrity_tree".into());
    };
    let rebuild = rebuild_image_tree(cfg, image, root).map_err(|e| e.to_string())?;
    if rebuild.root_matches {
        Ok(IntegrityVerdict::Clean { rebuild })
    } else {
        Ok(IntegrityVerdict::Tampered)
    }
}

/// Scans the log region at `log_base` and rolls back an uncommitted
/// transaction. Returns what was found; on [`RecoveryOutcome::RolledBack`]
/// the undo records have been applied to `mem`.
///
/// # Errors
///
/// [`RecoveryError::DetectedCorrupt`] when reading the header or payload
/// hit an uncorrectable media error; [`RecoveryError::TornLog`] when the
/// log is internally inconsistent (bad checksum, undecodable records, or
/// a state word no protocol stage writes).
pub fn recover_transactions(
    mem: &mut RecoveredMemory,
    log_base: u64,
) -> Result<RecoveryOutcome, RecoveryError> {
    let failures_before = mem.media_failures();
    let h = read_header(mem, log_base);
    if mem.media_failures() > failures_before {
        return Err(RecoveryError::DetectedCorrupt(
            "log header read hit an uncorrectable media error".into(),
        ));
    }
    if h.magic != LOG_MAGIC {
        return Ok(RecoveryOutcome::NoLog);
    }
    match h.state {
        STATE_COMMITTED => Ok(RecoveryOutcome::CleanCommitted { seq: h.seq }),
        STATE_EMPTY => Ok(RecoveryOutcome::NoLog),
        STATE_VALID => {
            let mut payload = vec![0u8; h.len as usize];
            mem.read(log_base + crate::log::LOG_HEADER_BYTES, &mut payload);
            if mem.media_failures() > failures_before {
                return Err(RecoveryError::DetectedCorrupt(
                    "log payload read hit an uncorrectable media error".into(),
                ));
            }
            if log_checksum(h.seq, &payload) != h.checksum {
                return Err(RecoveryError::TornLog(format!(
                    "log seq {} fails its checksum",
                    h.seq
                )));
            }
            match decode_records(&payload) {
                Some(records) => {
                    for r in &records {
                        mem.write(r.addr, &r.data);
                    }
                    // Retire the log so a second recovery is a no-op.
                    mem.write_u64(log_base + 16, STATE_COMMITTED);
                    Ok(RecoveryOutcome::RolledBack {
                        seq: h.seq,
                        records: records.len(),
                    })
                }
                None => Err(RecoveryError::TornLog(format!(
                    "log seq {} payload does not decode",
                    h.seq
                ))),
            }
        }
        other => Err(RecoveryError::TornLog(format!(
            "log state word {other} matches no protocol stage"
        ))),
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // unwrap/expect are fine in tests
mod tests {
    use super::*;
    use supermem_memctrl::MemoryController;

    fn cfg() -> Config {
        Config::default()
    }

    #[test]
    fn reads_decrypt_flushed_data() {
        let mut mc = MemoryController::new(&cfg());
        let t = mc.flush_line(LineAddr(0x40), [0xAB; 64], 0);
        mc.flush_line(LineAddr(0x80), [0xCD; 64], t);
        let mut rec = RecoveredMemory::from_image(&cfg(), mc.crash_now());
        let mut buf = [0u8; 128];
        rec.read(0x40, &mut buf);
        assert_eq!(&buf[..64], &[0xAB; 64]);
        assert_eq!(&buf[64..], &[0xCD; 64]);
    }

    #[test]
    fn writes_reencrypt_consistently() {
        let mut mc = MemoryController::new(&cfg());
        mc.flush_line(LineAddr(0x100), [1; 64], 0);
        let mut rec = RecoveredMemory::from_image(&cfg(), mc.crash_now());
        rec.write(0x110, &[9, 9, 9]);
        let mut buf = [0u8; 64];
        rec.read(0x100, &mut buf);
        assert_eq!(buf[0x10..0x13], [9, 9, 9]);
        assert_eq!(buf[0], 1);
        // The store still holds ciphertext.
        assert_ne!(rec.store().read_data(LineAddr(0x100))[0], buf[0]);
    }

    #[test]
    fn functional_write_handles_minor_overflow() {
        let cfg = cfg();
        let mut rec = RecoveredMemory::from_image(&cfg, MemoryController::new(&cfg).crash_now());
        // Initialize the neighbor so we can check it survives re-keying.
        rec.write(64, &[5u8; 8]);
        for i in 0..200u32 {
            rec.write(0, &i.to_le_bytes());
        }
        let mut buf = [0u8; 4];
        rec.read(0, &mut buf);
        assert_eq!(u32::from_le_bytes(buf), 199);
        let mut buf = [0u8; 8];
        rec.read(64, &mut buf);
        assert_eq!(buf, [5u8; 8]);
    }

    #[test]
    fn unencrypted_mode_passthrough() {
        let mut c = cfg();
        c.encryption = false;
        let mut mc = MemoryController::new(&c);
        mc.flush_line(LineAddr(0), [3; 64], 0);
        let mut rec = RecoveredMemory::from_image(&c, mc.crash_now());
        let mut buf = [0u8; 8];
        rec.read(0, &mut buf);
        assert_eq!(buf, [3; 8]);
        rec.write(0, &[4; 8]);
        assert_eq!(rec.store().read_data(LineAddr(0))[0], 4, "plaintext store");
    }

    #[test]
    fn completes_interrupted_reencryption_via_rsr() {
        let cfg = cfg();
        let mut mc = MemoryController::new(&cfg);
        // Seed two lines, then overflow line 0's minor counter with an
        // armed crash in the middle of the page rewrite.
        let mut t = mc.flush_line(LineAddr(64), [0x77; 64], 0);
        for i in 0..127u64 {
            t = mc.flush_line(LineAddr(0), [i as u8; 64], t);
        }
        // Next flush overflows and starts re-encryption; crash after a
        // handful of the 64 rewrites.
        mc.arm_crash_after_appends(10);
        mc.flush_line(LineAddr(0), [0xFF; 64], t);
        let image = mc.take_crash_image().expect("crash fired mid-reencryption");
        assert!(image.rsr.is_some(), "RSR must be live in the image");
        let mut rec = RecoveredMemory::from_image(&cfg, image);
        let mut buf = [0u8; 64];
        rec.read(64, &mut buf);
        assert_eq!(buf, [0x77; 64], "bystander line survives the crash");
        rec.read(0, &mut buf);
        // Line 0 is either the pre-overflow value (126) or the new one.
        assert!(
            buf == [126; 64] || buf == [0xFF; 64],
            "hot line must be one of its two consistent versions"
        );
    }

    fn osiris_cfg() -> Config {
        Config {
            counter_cache_mode: supermem_sim::CounterCacheMode::WriteBack,
            counter_cache_backing: supermem_sim::CounterCacheBacking::None,
            osiris_window: Some(4),
            ..Config::default()
        }
    }

    #[test]
    fn osiris_recovers_stale_counters_by_trial_decryption() {
        let cfg = osiris_cfg();
        let mut mc = MemoryController::new(&cfg);
        // Write the same line three times: minors advance to 3 but in
        // write-back mode only the increment hitting `minor % 4 == 0`
        // (none here) persists the counter line — the NVM counter is
        // stale at the crash.
        let mut t = 0;
        for i in 1..=3u8 {
            t = mc.flush_line(LineAddr(0x40), [i; 64], t);
        }
        let image = mc.crash_now();
        // Without reconstruction the line is garbage...
        let mut naive = RecoveredMemory::from_image(&cfg, image.clone());
        let mut buf = [0u8; 64];
        naive.read(0x40, &mut buf);
        assert_ne!(buf, [3u8; 64], "stale counter must not decrypt");
        // ...with Osiris reconstruction it comes back.
        let (mut rec, report) = super::recover_osiris(&cfg, image).expect("window is set");
        rec.read(0x40, &mut buf);
        assert_eq!(buf, [3u8; 64]);
        assert_eq!(report.counters_corrected, 1);
        assert_eq!(report.unrecoverable_lines, 0);
        assert!(report.trial_decryptions >= 4, "search cost must show up");
        let _ = t;
    }

    #[test]
    fn osiris_scan_cost_scales_with_footprint() {
        let cfg = osiris_cfg();
        let lines_written = |n: u64| {
            let mut mc = MemoryController::new(&cfg);
            let mut t = 0;
            for i in 0..n {
                t = mc.flush_line(LineAddr(i * 64), [i as u8; 64], t);
            }
            let (_, report) = super::recover_osiris(&cfg, mc.crash_now()).expect("window is set");
            report.lines_scanned
        };
        assert_eq!(lines_written(16), 16);
        assert_eq!(lines_written(64), 64);
    }

    #[test]
    fn osiris_report_is_clean_when_counters_are_fresh() {
        // A checkpointed (fully drained) Osiris system has current
        // counters: recovery corrects nothing.
        let cfg = osiris_cfg();
        let mut mc = MemoryController::new(&cfg);
        let t = mc.flush_line(LineAddr(0x80), [9; 64], 0);
        mc.finish(t);
        let (mut rec, report) = super::recover_osiris(&cfg, mc.crash_now()).expect("window is set");
        assert_eq!(report.counters_corrected, 0);
        assert_eq!(report.unrecoverable_lines, 0);
        let mut buf = [0u8; 64];
        rec.read(0x80, &mut buf);
        assert_eq!(buf, [9; 64]);
    }

    #[test]
    fn osiris_recovery_without_window_is_a_config_error() {
        let cfg = Config::default();
        let mc = MemoryController::new(&cfg);
        let err = super::recover_osiris(&cfg, mc.crash_now()).unwrap_err();
        assert!(matches!(err, RecoveryError::Config(_)), "got {err:?}");
        assert!(err.to_string().contains("osiris_window"));
    }

    #[test]
    fn recovery_of_fresh_memory_reports_nolog() {
        let cfg = cfg();
        let mut rec = RecoveredMemory::from_image(&cfg, MemoryController::new(&cfg).crash_now());
        assert_eq!(
            recover_transactions(&mut rec, 0x10000),
            Ok(RecoveryOutcome::NoLog)
        );
    }

    #[test]
    fn rollback_restores_old_data_and_is_idempotent() {
        use crate::log::{
            encode_records, log_checksum as ck, UndoRecord, LOG_HEADER_BYTES, LOG_MAGIC,
            STATE_VALID,
        };
        let cfg = cfg();
        let mut rec = RecoveredMemory::from_image(&cfg, MemoryController::new(&cfg).crash_now());
        let log = 0x20000u64;
        // Data was "mutated" to 9s; the log says it used to be 1s.
        rec.write(0x100, &[9; 16]);
        let payload = encode_records(&[UndoRecord {
            addr: 0x100,
            data: vec![1; 16],
        }]);
        rec.write(log + LOG_HEADER_BYTES, &payload);
        rec.write_u64(log, LOG_MAGIC);
        rec.write_u64(log + 8, 5);
        rec.write_u64(log + 16, STATE_VALID);
        rec.write_u64(log + 24, payload.len() as u64);
        rec.write_u64(log + 32, ck(5, &payload));

        let out = recover_transactions(&mut rec, log).expect("clean media");
        assert_eq!(out, RecoveryOutcome::RolledBack { seq: 5, records: 1 });
        let mut buf = [0u8; 16];
        rec.read(0x100, &mut buf);
        assert_eq!(buf, [1; 16]);
        // Second scan finds a committed (retired) log: recovering twice
        // is a no-op and the rolled-back data is untouched.
        assert_eq!(
            recover_transactions(&mut rec, log),
            Ok(RecoveryOutcome::CleanCommitted { seq: 5 })
        );
        rec.read(0x100, &mut buf);
        assert_eq!(buf, [1; 16], "second recovery must not reapply records");
    }

    #[test]
    fn bad_checksum_is_a_torn_log() {
        use crate::log::{LOG_MAGIC, STATE_VALID};
        let cfg = cfg();
        let mut rec = RecoveredMemory::from_image(&cfg, MemoryController::new(&cfg).crash_now());
        let log = 0x30000u64;
        rec.write_u64(log, LOG_MAGIC);
        rec.write_u64(log + 8, 1);
        rec.write_u64(log + 16, STATE_VALID);
        rec.write_u64(log + 24, 8);
        rec.write_u64(log + 32, 0xBAD);
        let err = recover_transactions(&mut rec, log).unwrap_err();
        assert!(matches!(err, RecoveryError::TornLog(_)), "got {err:?}");
        assert!(err.to_string().contains("checksum"));
    }

    #[test]
    fn insane_state_is_a_torn_log() {
        use crate::log::LOG_MAGIC;
        let cfg = cfg();
        let mut rec = RecoveredMemory::from_image(&cfg, MemoryController::new(&cfg).crash_now());
        let log = 0x40000u64;
        rec.write_u64(log, LOG_MAGIC);
        rec.write_u64(log + 16, 77);
        let err = recover_transactions(&mut rec, log).unwrap_err();
        assert!(matches!(err, RecoveryError::TornLog(_)), "got {err:?}");
    }

    #[test]
    fn recovery_error_displays_its_taxonomy() {
        let cases = [
            (RecoveryError::Config("c".into()), "configuration error"),
            (
                RecoveryError::DetectedCorrupt("d".into()),
                "detected media corruption",
            ),
            (RecoveryError::TornLog("t".into()), "torn log"),
            (RecoveryError::Unrecoverable("u".into()), "unrecoverable"),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    fn integrity_cfg() -> Config {
        Config {
            integrity_tree: true,
            ..Config::default()
        }
    }

    #[test]
    fn checked_build_accepts_a_clean_image() {
        let cfg = integrity_cfg();
        let mut mc = MemoryController::new(&cfg);
        let t = mc.flush_line(LineAddr(0x40), [0xAA; 64], 0);
        mc.finish(t);
        let image = mc.crash_now();
        let mut rec = RecoveredMemory::from_image_checked(&cfg, image).expect("clean image");
        let mut buf = [0u8; 8];
        rec.read(0x40, &mut buf);
        assert_eq!(buf, [0xAA; 8]);
        assert_eq!(rec.media_failures(), 0);
    }

    #[test]
    fn checked_build_detects_counter_tampering() {
        let cfg = integrity_cfg();
        let mut mc = MemoryController::new(&cfg);
        let t = mc.flush_line(LineAddr(0x40), [0xAA; 64], 0);
        mc.finish(t);
        let mut image = mc.crash_now();
        // Flip stored counter bytes behind the controller's back.
        let page = image
            .store
            .counter_lines()
            .into_iter()
            .next()
            .expect("a counter line");
        let mut raw = image.store.read_counter(page);
        raw[0] ^= 0xFF;
        image.store.write_counter(page, raw);
        let err = RecoveredMemory::from_image_checked(&cfg, image).unwrap_err();
        assert!(
            matches!(err, RecoveryError::DetectedCorrupt(_)),
            "got {err:?}"
        );
        assert!(err.to_string().contains("integrity root mismatch"));
    }

    #[test]
    fn checked_build_detects_uncorrectable_counter_flips() {
        use supermem_nvm::{FaultClass, FaultPlan, FaultSpec};
        let cfg = integrity_cfg();
        let mut mc = MemoryController::new(&cfg);
        let t = mc.flush_line(LineAddr(0x40), [0xAA; 64], 0);
        mc.finish(t);
        let mut image = mc.crash_now();
        // Force a double-bit flip onto the image's only counter line.
        let page = image
            .store
            .counter_lines()
            .into_iter()
            .next()
            .expect("a counter line");
        let mut plan = FaultPlan::new(FaultSpec {
            class: FaultClass::DoubleFlip,
            seed: 1,
        });
        plan.flip_counter_bit(page, 3);
        plan.flip_counter_bit(page, 200);
        image.store.attach_faults(plan);
        let err = RecoveredMemory::from_image_checked(&cfg, image).unwrap_err();
        assert!(
            matches!(err, RecoveryError::DetectedCorrupt(_)),
            "got {err:?}"
        );
        assert!(err.to_string().contains("unreadable"));
    }

    #[test]
    fn recovery_retries_transient_reads_and_succeeds() {
        use supermem_nvm::{FaultClass, FaultPlan, FaultSpec};
        let cfg = cfg();
        let mut mc = MemoryController::new(&cfg);
        let t = mc.flush_line(LineAddr(0x40), [0x5A; 64], 0);
        mc.finish(t);
        let mut image = mc.crash_now();
        let mut plan = FaultPlan::new(FaultSpec {
            class: FaultClass::TransientRead,
            seed: 1,
        });
        plan.fail_data_reads(LineAddr(0x40), 2);
        image.store.attach_faults(plan);
        let mut rec = RecoveredMemory::from_image(&cfg, image);
        let mut buf = [0u8; 8];
        rec.read(0x40, &mut buf);
        assert_eq!(buf, [0x5A; 8], "retries must recover the line");
        assert!(rec.read_retries() >= 2);
        assert_eq!(rec.media_failures(), 0);
    }

    #[test]
    fn recovery_poisons_lost_lines_and_counts_the_failure() {
        use supermem_nvm::{FaultClass, FaultPlan, FaultSpec};
        let cfg = cfg();
        let mut mc = MemoryController::new(&cfg);
        let t = mc.flush_line(LineAddr(0x40), [0x5A; 64], 0);
        mc.finish(t);
        let mut image = mc.crash_now();
        let mut plan = FaultPlan::new(FaultSpec {
            class: FaultClass::BankFail,
            seed: 1,
        });
        plan.note_lost_data(LineAddr(0x40));
        image.store.attach_faults(plan);
        let mut rec = RecoveredMemory::from_image(&cfg, image);
        let mut buf = [0u8; 8];
        rec.read(0x40, &mut buf);
        assert_eq!(buf, [0; 8], "lost lines read as poison");
        assert!(rec.media_failures() > 0, "the failure must be counted");
    }

    fn streaming_cfg(levels: u32) -> Config {
        Config {
            integrity_tree: true,
            persisted_levels: Some(levels),
            ..Config::default()
        }
    }

    fn streaming_image(levels: u32) -> (Config, supermem_memctrl::CrashImage) {
        let cfg = streaming_cfg(levels);
        let mut mc = MemoryController::new(&cfg);
        let mut t = 0;
        for i in 0..12u64 {
            t = mc.flush_line(LineAddr(i * 4096), [i as u8 + 1; 64], t);
        }
        mc.finish(t);
        (cfg, mc.crash_now())
    }

    #[test]
    fn streaming_recovery_rebuilds_from_the_persisted_frontier() {
        let (cfg, image) = streaming_image(2);
        let mut rec =
            RecoveredMemory::from_image_checked(&cfg, image).expect("clean streaming image");
        assert!(rec.recovery_cycles() > 0, "rebuild cost must be accounted");
        let mut buf = [0u8; 8];
        rec.read(5 * 4096, &mut buf);
        assert_eq!(buf, [6; 8]);
    }

    #[test]
    fn streaming_verdict_reads_node_lines_not_counter_lines() {
        let (cfg, mut image) = streaming_image(2);
        let v = verify_image_integrity(&cfg, &mut image).expect("image has a root");
        let IntegrityVerdict::Clean { rebuild } = v else {
            panic!("clean image must verify, got {v:?}");
        };
        assert!(rebuild.persisted_lines_installed > 0);
        assert_eq!(
            rebuild.counter_lines_checked, 0,
            "a persisted leaf-digest level replaces the counter scan"
        );
        assert!(rebuild.root_matches);
    }

    #[test]
    fn deeper_frontier_cuts_recovery_cycles() {
        // The Triad-NVM trade: persisting the leaf-digest level skips
        // hashing every counter line at rebuild time.
        let (cfg0, mut i0) = streaming_image(0);
        let (cfg2, mut i2) = streaming_image(2);
        let cost =
            |cfg: &Config, image: &mut supermem_memctrl::CrashImage| match verify_image_integrity(
                cfg, image,
            )
            .expect("root present")
            {
                IntegrityVerdict::Clean { rebuild } => rebuild.recovery_cycles,
                IntegrityVerdict::Tampered => panic!("clean image"),
            };
        assert!(cost(&cfg2, &mut i2) < cost(&cfg0, &mut i0));
    }

    #[test]
    fn tampered_tree_node_line_is_detected() {
        let (cfg, mut image) = streaming_image(2);
        let id = image.store.tree_lines()[0];
        let mut raw = image.store.read_tree(id);
        raw[3] ^= 0x40;
        image.store.write_tree(id, raw);
        let err = RecoveredMemory::from_image_checked(&cfg, image).unwrap_err();
        assert!(
            matches!(err, RecoveryError::DetectedCorrupt(_)),
            "got {err:?}"
        );
    }

    #[test]
    fn uncorrectable_tree_line_damage_is_detected() {
        use supermem_nvm::{FaultClass, FaultSpec};
        let (cfg, mut image) = streaming_image(1);
        let struck = image.store.strike_tree_fault(FaultSpec {
            class: FaultClass::DoubleFlip,
            seed: 7,
        });
        assert!(struck.is_some(), "image must hold tree lines to strike");
        let err = RecoveredMemory::from_image_checked(&cfg, image).unwrap_err();
        assert!(
            matches!(err, RecoveryError::DetectedCorrupt(_)),
            "got {err:?}"
        );
        assert!(err.to_string().contains("unreadable"));
    }

    #[test]
    fn machine_image_recovers_lines_from_every_channel() {
        use supermem_memctrl::ChannelSet;
        let cfg = cfg().with_channels(4);
        let mut set = ChannelSet::new(&cfg);
        let mut t = 0;
        // One line per channel: pages 0..4 interleave round-robin.
        for ch in 0..4u64 {
            let addr = ch * cfg.page_bytes + 0x40;
            t = set.flush_line(LineAddr(addr), [ch as u8 + 1; 64], t);
        }
        set.finish(t);
        let mut rec = RecoveredMemory::from_machine_image(&cfg, set.machine_crash_now());
        for ch in 0..4u64 {
            let mut buf = [0u8; 8];
            rec.read(ch * cfg.page_bytes + 0x40, &mut buf);
            assert_eq!(buf, [ch as u8 + 1; 8], "channel {ch} line lost");
        }
    }

    #[test]
    fn machine_image_completes_each_channels_rsr() {
        use supermem_memctrl::ChannelSet;
        let cfg = cfg().with_channels(2);
        let mut set = ChannelSet::new(&cfg);
        // Overflow the minor counter of page 0 (channel 0) while page 1
        // (channel 1) holds steady data, then crash mid-re-encryption.
        let mut t = set.flush_line(LineAddr(cfg.page_bytes + 0x40), [0x77; 64], 0);
        for i in 0..127u64 {
            t = set.flush_line(LineAddr(0x40), [i as u8; 64], t);
        }
        set.arm_crash_after_appends(10);
        set.flush_line(LineAddr(0x40), [0xEE; 64], t);
        let machine = set
            .take_machine_crash_image()
            .expect("crash fired mid-reencryption");
        assert!(
            machine.channels.iter().any(|c| c.rsr.is_some()),
            "the overflow must leave an RSR in some channel"
        );
        let mut rec = RecoveredMemory::from_machine_image(&cfg, machine);
        let mut buf = [0u8; 8];
        rec.read(cfg.page_bytes + 0x40, &mut buf);
        assert_eq!(buf, [0x77; 8], "the other channel's data must survive");
        rec.read(0x40, &mut buf);
        assert!(
            buf == [126; 8] || buf == [0xEE; 8],
            "re-encrypted line must decrypt to old or new value, got {buf:?}"
        );
    }

    #[test]
    fn machine_image_checked_verifies_each_channel_root() {
        use supermem_memctrl::ChannelSet;
        let mut cfg = cfg().with_channels(2);
        cfg.integrity_tree = true;
        let mut set = ChannelSet::new(&cfg);
        let mut t = 0;
        for ch in 0..2u64 {
            t = set.flush_line(LineAddr(ch * cfg.page_bytes + 0x40), [9; 64], t);
        }
        set.finish(t);

        // Clean machine image verifies and recovers.
        let mut rec = RecoveredMemory::from_machine_image_checked(&cfg, set.machine_crash_now())
            .expect("clean image must verify");
        let mut buf = [0u8; 8];
        rec.read(cfg.page_bytes + 0x40, &mut buf);
        assert_eq!(buf, [9; 8]);

        // Tamper with one channel's counter line: that channel's root
        // check must reject the whole recovery.
        let mut machine = set.machine_crash_now();
        let victim = machine
            .channels
            .iter_mut()
            .find(|c| !c.store.counter_lines().is_empty())
            .expect("some channel holds counters");
        let page = victim.store.counter_lines()[0];
        let mut raw = victim.store.read_counter(page);
        raw[0] ^= 0xFF;
        victim.store.write_counter(page, raw);
        assert!(matches!(
            RecoveredMemory::from_machine_image_checked(&cfg, machine),
            Err(RecoveryError::DetectedCorrupt(_))
        ));
    }
}
