//! The on-NVM undo-log format.
//!
//! One log region holds one transaction's undo records at a time (the
//! region is recycled per transaction, exactly like the contiguous log
//! the paper describes in §3.4.2 — which is what gives log writes their
//! spatial locality). Layout:
//!
//! ```text
//! +0   magic     u64   LOG_MAGIC
//! +8   seq       u64   transaction sequence number
//! +16  state     u64   EMPTY -> VALID -> COMMITTED (8-byte atomic)
//! +24  len       u64   payload bytes
//! +32  checksum  u64   FNV-1a over (seq, len, payload)
//! +40  ...reserved to +64
//! +64  payload: repeated records { addr u64, len u64, old bytes }
//! ```
//!
//! The `state` word is the only field mutated after the header is
//! persisted, and it is updated with a single 8-byte (hence atomic)
//! write. Recovery trusts a record set only if `magic` matches, `state`
//! is `VALID`, and the checksum verifies — a mis-decrypted log (the
//! Figure 4 counter-loss scenario) fails the magic/checksum test and is
//! reported as corrupt.

use crate::pmem::PMem;

/// Magic tag identifying a log header ("SUPRLOG" in spirit).
pub const LOG_MAGIC: u64 = 0x5355_5045_524C_4F47;

/// Header size in bytes; payload records start here.
pub const LOG_HEADER_BYTES: u64 = 64;

/// `state`: no transaction logged.
pub const STATE_EMPTY: u64 = 0;
/// `state`: undo records are complete and must be applied on recovery.
pub const STATE_VALID: u64 = 1;
/// `state`: the transaction committed; records are obsolete.
pub const STATE_COMMITTED: u64 = 2;

/// One undo record: the old contents of `[addr, addr + data.len())`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UndoRecord {
    /// Target address.
    pub addr: u64,
    /// The pre-transaction bytes.
    pub data: Vec<u8>,
}

/// FNV-1a 64-bit, the log checksum.
pub fn fnv1a(parts: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for &b in *part {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// Serializes undo records into a payload byte vector.
pub fn encode_records(records: &[UndoRecord]) -> Vec<u8> {
    let total: usize = records.iter().map(|r| 16 + r.data.len()).sum();
    let mut out = Vec::with_capacity(total);
    for r in records {
        out.extend_from_slice(&r.addr.to_le_bytes());
        out.extend_from_slice(&(r.data.len() as u64).to_le_bytes());
        out.extend_from_slice(&r.data);
    }
    out
}

/// Parses a payload produced by [`encode_records`].
///
/// Returns `None` on any structural inconsistency (truncated record,
/// absurd length) — which is how garbage from a mis-decrypted log
/// surfaces.
pub fn decode_records(payload: &[u8]) -> Option<Vec<UndoRecord>> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < payload.len() {
        if payload.len() - pos < 16 {
            return None;
        }
        let (Ok(addr_bytes), Ok(len_bytes)) = (
            payload[pos..pos + 8].try_into(),
            payload[pos + 8..pos + 16].try_into(),
        ) else {
            return None; // length checked above; kept fallible for the policy
        };
        let addr = u64::from_le_bytes(addr_bytes);
        let len = u64::from_le_bytes(len_bytes) as usize;
        pos += 16;
        if payload.len() - pos < len {
            return None;
        }
        out.push(UndoRecord {
            addr,
            data: payload[pos..pos + len].to_vec(),
        });
        pos += len;
    }
    Some(out)
}

/// The checksum committed into the header for (`seq`, payload).
pub fn log_checksum(seq: u64, payload: &[u8]) -> u64 {
    fnv1a(&[
        &seq.to_le_bytes(),
        &(payload.len() as u64).to_le_bytes(),
        payload,
    ])
}

/// A decoded log header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogHeader {
    /// Magic tag (must equal [`LOG_MAGIC`]).
    pub magic: u64,
    /// Transaction sequence number.
    pub seq: u64,
    /// Lifecycle state word.
    pub state: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// FNV-1a checksum of (seq, len, payload).
    pub checksum: u64,
}

/// Reads the header at `log_base`.
pub fn read_header<M: PMem>(mem: &mut M, log_base: u64) -> LogHeader {
    LogHeader {
        magic: mem.read_u64(log_base),
        seq: mem.read_u64(log_base + 8),
        state: mem.read_u64(log_base + 16),
        len: mem.read_u64(log_base + 24),
        checksum: mem.read_u64(log_base + 32),
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // unwrap/expect are fine in tests
mod tests {
    use super::*;
    use crate::pmem::VecMem;

    #[test]
    fn record_roundtrip() {
        let records = vec![
            UndoRecord {
                addr: 0x1000,
                data: vec![1, 2, 3],
            },
            UndoRecord {
                addr: 0x2000,
                data: vec![],
            },
            UndoRecord {
                addr: 0x3000,
                data: (0..255).collect(),
            },
        ];
        let payload = encode_records(&records);
        assert_eq!(decode_records(&payload), Some(records));
    }

    #[test]
    fn decode_rejects_truncation() {
        let payload = encode_records(&[UndoRecord {
            addr: 1,
            data: vec![9; 32],
        }]);
        assert!(decode_records(&payload[..payload.len() - 1]).is_none());
        assert!(decode_records(&payload[..8]).is_none());
    }

    #[test]
    fn decode_rejects_absurd_length() {
        let mut payload = vec![0u8; 16];
        payload[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode_records(&payload).is_none());
    }

    #[test]
    fn empty_payload_decodes_empty() {
        assert_eq!(decode_records(&[]), Some(vec![]));
    }

    #[test]
    fn checksum_distinguishes_payloads() {
        let a = log_checksum(1, b"hello");
        let b = log_checksum(1, b"hellp");
        let c = log_checksum(2, b"hello");
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn fnv_known_value() {
        // FNV-1a("") = offset basis; FNV-1a("a") is the canonical test.
        assert_eq!(fnv1a(&[b""]), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(&[b"a"]), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn header_read_matches_written_fields() {
        let mut m = VecMem::new();
        m.write_u64(4096, LOG_MAGIC);
        m.write_u64(4096 + 8, 7);
        m.write_u64(4096 + 16, STATE_VALID);
        m.write_u64(4096 + 24, 99);
        m.write_u64(4096 + 32, 0xABCD);
        let h = read_header(&mut m, 4096);
        assert_eq!(h.magic, LOG_MAGIC);
        assert_eq!(h.seq, 7);
        assert_eq!(h.state, STATE_VALID);
        assert_eq!(h.len, 99);
        assert_eq!(h.checksum, 0xABCD);
    }
}
