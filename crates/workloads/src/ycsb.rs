//! A YCSB-style mixed read/insert key-value workload (extension beyond
//! the paper's five write-dominated micro-benchmarks).
//!
//! The paper's §2.2.3 argument for counter-mode encryption is that
//! *reads* hide the OTP generation behind the NVM array access, so an
//! encrypted NVM's read path costs almost nothing extra — the overhead
//! is all on the write path. A read-heavy mix makes that asymmetry
//! visible: the more reads, the smaller every scheme's gap to Unsec.
//!
//! Operations run over the [`BTreeWorkload`] KV store: lookups of
//! previously inserted keys (plain traversals) and transactional
//! inserts, mixed by a configurable read percentage (YCSB A ≈ 50,
//! B ≈ 95, C = 100).

use supermem_persist::{PMem, TxnError};
use supermem_sim::SplitMix64;

use crate::btree::BTreeWorkload;
use crate::spec::{SpecError, WorkloadKind};

/// Mixed read/insert KV workload.
#[derive(Debug, Clone)]
pub struct YcsbWorkload {
    tree: BTreeWorkload,
    inserted: Vec<u64>,
    read_pct: u8,
    value_bytes: usize,
    rng: SplitMix64,
    reads: u64,
    inserts: u64,
}

impl YcsbWorkload {
    /// Creates the store in `[base, base + len)`. `read_pct` of the
    /// operations are lookups (0..=100); inserts carry values sized so
    /// a transaction writes `req_bytes`. A handful of seed records are
    /// inserted so early reads have something to find.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::ReadPct`] if `read_pct > 100`,
    /// [`SpecError::ReqBytes`] if `req_bytes < 16`, and
    /// [`SpecError::RegionTooSmall`] if seeding the store does not fit
    /// in the region — the typed path, mirroring `RunConfig::validate`.
    pub fn try_new<M: PMem>(
        mem: &mut M,
        base: u64,
        len: u64,
        req_bytes: u64,
        read_pct: u8,
        seed: u64,
    ) -> Result<Self, SpecError> {
        if read_pct > 100 {
            return Err(SpecError::ReadPct(read_pct));
        }
        if req_bytes < 16 {
            return Err(SpecError::ReqBytes {
                kind: WorkloadKind::Ycsb,
                req_bytes,
                min: 16,
            });
        }
        // The underlying tree panics on arena exhaustion, so bound the
        // region up front: undo log (4·req + 8 KiB), header, root node,
        // the 8 seed records (≈ req each), a few split nodes, and
        // alignment slack.
        let min_len = 4 * req_bytes + 8192 + 8 * (req_bytes + 8) + 4 * 384 + 16 * 64;
        if len < min_len {
            return Err(SpecError::RegionTooSmall {
                kind: WorkloadKind::Ycsb,
                detail: format!("{len} B region, seeding needs at least {min_len} B"),
            });
        }
        let mut rng = SplitMix64::new(seed);
        let mut tree = BTreeWorkload::new(mem, base, len, req_bytes, rng.next_u64());
        let value_bytes = (req_bytes - 8) as usize;
        let mut inserted = Vec::new();
        for _ in 0..8 {
            let key = rng.next_u64() >> 1;
            let mut value = vec![0u8; value_bytes];
            rng.fill_bytes(&mut value);
            tree.insert(mem, key, value)
                .map_err(|e| SpecError::RegionTooSmall {
                    kind: WorkloadKind::Ycsb,
                    detail: format!("seed insert failed: {e}"),
                })?;
            inserted.push(key);
        }
        Ok(Self {
            tree,
            inserted,
            read_pct,
            value_bytes,
            rng,
            reads: 0,
            inserts: 0,
        })
    }

    /// Panicking construction, kept for source compatibility.
    ///
    /// # Panics
    ///
    /// Panics if `read_pct > 100`, the region is too small, or
    /// `req_bytes < 16`.
    #[deprecated(
        since = "0.1.0",
        note = "use `YcsbWorkload::try_new`, which reports a typed SpecError"
    )]
    pub fn new<M: PMem>(
        mem: &mut M,
        base: u64,
        len: u64,
        req_bytes: u64,
        read_pct: u8,
        seed: u64,
    ) -> Self {
        match Self::try_new(mem, base, len, req_bytes, read_pct, seed) {
            Ok(w) => w,
            Err(SpecError::ReadPct(_)) => panic!("read percentage out of range"),
            Err(e) => panic!("{e}"),
        }
    }

    /// (lookups, inserts) performed so far.
    pub fn op_counts(&self) -> (u64, u64) {
        (self.reads, self.inserts)
    }

    /// Committed insert transactions.
    pub fn committed(&self) -> u64 {
        self.tree.committed()
    }

    /// Runs one operation of the mix.
    ///
    /// # Errors
    ///
    /// Propagates [`TxnError`] from an insert's commit.
    pub fn step<M: PMem>(&mut self, mem: &mut M) -> Result<(), TxnError> {
        if self.rng.next_below(100) < self.read_pct as u64 {
            let key = self.inserted[self.rng.next_below(self.inserted.len() as u64) as usize];
            let value = self.tree.get(mem, key);
            assert!(value.is_some(), "inserted key {key} must be found");
            self.reads += 1;
        } else {
            let key = self.rng.next_u64() >> 1;
            let mut value = vec![0u8; self.value_bytes];
            self.rng.fill_bytes(&mut value);
            self.tree.insert(mem, key, value)?;
            self.inserted.push(key);
            self.inserts += 1;
        }
        Ok(())
    }

    /// Verifies the underlying tree against its shadow.
    ///
    /// # Errors
    ///
    /// Returns a description of the first divergence.
    pub fn verify<M: PMem>(&mut self, mem: &mut M) -> Result<(), String> {
        self.tree.verify(mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supermem_persist::VecMem;

    #[test]
    fn pure_read_mix_never_inserts_after_seeding() {
        let mut mem = VecMem::new();
        let mut w = YcsbWorkload::try_new(&mut mem, 0, 1 << 24, 128, 100, 7).unwrap();
        for _ in 0..50 {
            w.step(&mut mem).unwrap();
        }
        let (reads, inserts) = w.op_counts();
        assert_eq!(reads, 50);
        assert_eq!(inserts, 0);
        w.verify(&mut mem).unwrap();
    }

    #[test]
    fn pure_insert_mix_never_reads() {
        let mut mem = VecMem::new();
        let mut w = YcsbWorkload::try_new(&mut mem, 0, 1 << 24, 128, 0, 7).unwrap();
        for _ in 0..50 {
            w.step(&mut mem).unwrap();
        }
        let (reads, inserts) = w.op_counts();
        assert_eq!(reads, 0);
        assert_eq!(inserts, 50);
        w.verify(&mut mem).unwrap();
    }

    #[test]
    fn mixed_ratio_is_roughly_respected() {
        let mut mem = VecMem::new();
        let mut w = YcsbWorkload::try_new(&mut mem, 0, 1 << 24, 128, 80, 9).unwrap();
        for _ in 0..500 {
            w.step(&mut mem).unwrap();
        }
        let (reads, inserts) = w.op_counts();
        let read_share = reads as f64 / (reads + inserts) as f64;
        assert!(
            (0.7..0.9).contains(&read_share),
            "read share {read_share:.2}"
        );
        w.verify(&mut mem).unwrap();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    #[allow(deprecated)]
    fn rejects_bad_percentage() {
        let mut mem = VecMem::new();
        YcsbWorkload::new(&mut mem, 0, 1 << 24, 128, 101, 0);
    }

    #[test]
    fn try_new_reports_typed_errors_instead_of_panicking() {
        // The regression the deprecated constructor used to panic on.
        let mut mem = VecMem::new();
        assert_eq!(
            YcsbWorkload::try_new(&mut mem, 0, 1 << 24, 128, 101, 0).unwrap_err(),
            SpecError::ReadPct(101)
        );
        assert_eq!(
            YcsbWorkload::try_new(&mut mem, 0, 1 << 24, 8, 50, 0).unwrap_err(),
            SpecError::ReqBytes {
                kind: WorkloadKind::Ycsb,
                req_bytes: 8,
                min: 16,
            }
        );
        // An undersized region surfaces as a typed error too, not a
        // seed-insert panic.
        let err = YcsbWorkload::try_new(&mut mem, 0, 4096, 128, 50, 0).unwrap_err();
        assert!(
            matches!(err, SpecError::RegionTooSmall { .. }),
            "got {err:?}"
        );
    }
}
