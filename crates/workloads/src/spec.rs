//! Workload selection and construction.
//!
//! [`WorkloadSpec`] captures the evaluation parameters the paper sweeps —
//! workload kind, transaction count, and transaction request size (256 B
//! / 1 KB / 4 KB in Figures 13 and 15) — plus the memory region the
//! instance lives in (each simulated core gets a private region).
//! [`AnyWorkload`] is the enum-dispatched instance.
//!
//! Construction is unified: [`WorkloadSpec::validate`] rejects malformed
//! parameters with a typed [`SpecError`], and [`WorkloadSpec::build`] is
//! the one fallible entry point producing an [`AnyWorkload`]. Every
//! benchmark — including external crates' structures, such as the serve
//! engine's shared lock-free services — speaks the object-safe
//! [`Workload`] trait, so drivers never match on concrete types.

use supermem_persist::{PMem, TxnError};

use crate::array::ArrayWorkload;
use crate::btree::BTreeWorkload;
use crate::hashtable::HashTableWorkload;
use crate::queue::QueueWorkload;
use crate::rbtree::RbTreeWorkload;
use crate::ycsb::YcsbWorkload;

/// The five micro-benchmarks of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// Random element swaps in a flat array.
    Array,
    /// Enqueue/dequeue on a ring buffer.
    Queue,
    /// Key-value inserts into a B-tree.
    BTree,
    /// Key-value inserts into a hash table.
    HashTable,
    /// Key-value inserts into a red-black tree.
    RbTree,
    /// Mixed read/insert KV operations over the B-tree (extension; not
    /// part of the paper's five, so excluded from [`ALL_KINDS`]).
    Ycsb,
}

/// All five kinds in the paper's plotting order.
pub const ALL_KINDS: [WorkloadKind; 5] = [
    WorkloadKind::Array,
    WorkloadKind::Queue,
    WorkloadKind::BTree,
    WorkloadKind::HashTable,
    WorkloadKind::RbTree,
];

impl WorkloadKind {
    /// The short name used in figures ("array", "queue", ...).
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Array => "array",
            WorkloadKind::Queue => "queue",
            WorkloadKind::BTree => "btree",
            WorkloadKind::HashTable => "hash",
            WorkloadKind::RbTree => "rbtree",
            WorkloadKind::Ycsb => "ycsb",
        }
    }

    /// Parses a figure name back into a kind.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "array" => Some(WorkloadKind::Array),
            "queue" => Some(WorkloadKind::Queue),
            "btree" => Some(WorkloadKind::BTree),
            "hash" | "hashtable" => Some(WorkloadKind::HashTable),
            "rbtree" => Some(WorkloadKind::RbTree),
            "ycsb" => Some(WorkloadKind::Ycsb),
            _ => None,
        }
    }
}

impl std::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A malformed [`WorkloadSpec`], reported instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SpecError {
    /// YCSB read percentage above 100.
    ReadPct(u8),
    /// Hash bucket count is zero or not a power of two.
    HashBuckets(u64),
    /// Request size below the structure's minimum record size.
    ReqBytes {
        /// The workload the size is too small for.
        kind: WorkloadKind,
        /// The offending request size.
        req_bytes: u64,
        /// The smallest size the structure accepts.
        min: u64,
    },
    /// The memory region cannot hold the structure's initial state.
    RegionTooSmall {
        /// The workload that did not fit.
        kind: WorkloadKind,
        /// What failed while seeding the structure.
        detail: String,
    },
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::ReadPct(p) => write!(f, "ycsb read percentage {p} exceeds 100"),
            SpecError::HashBuckets(b) => {
                write!(f, "hash bucket count {b} must be a nonzero power of two")
            }
            SpecError::ReqBytes {
                kind,
                req_bytes,
                min,
            } => write!(
                f,
                "request size {req_bytes} B below {kind}'s minimum of {min} B"
            ),
            SpecError::RegionTooSmall { kind, detail } => {
                write!(f, "region too small for {kind}: {detail}")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// The behavior every benchmark exposes to a driver: run transactions,
/// verify against the shadow model, report progress.
///
/// The core `Experiment`, the CLI, and the bench binaries drive
/// workloads exclusively through this trait (via [`AnyWorkload`]'s
/// impl), so adding a structure — in this crate or another, like the
/// serve engine's shared lock-free services — never edits their match
/// arms.
pub trait Workload<M: PMem> {
    /// The workload's figure name.
    fn name(&self) -> &'static str;

    /// Executes one durable transaction.
    ///
    /// # Errors
    ///
    /// Propagates [`TxnError`] from the commit.
    fn step(&mut self, mem: &mut M) -> Result<(), TxnError>;

    /// Verifies the persistent state against the shadow model.
    ///
    /// # Errors
    ///
    /// Returns a description of the first divergence.
    fn verify(&mut self, mem: &mut M) -> Result<(), String>;

    /// Committed transactions so far.
    fn committed(&self) -> u64;

    /// Re-attaches to the structure's persistent state after a crash,
    /// replacing this instance's volatile view with whatever recovery
    /// reconstructs from `mem`.
    ///
    /// The default refuses: the paper's micro-benchmarks are recovered
    /// by the memory-level machinery (`RecoveredMemory`, Osiris), not
    /// by the workload itself. Storage workloads with their own
    /// recovery protocol — such as the KV store's checksummed
    /// WAL-plus-snapshot recovery — override this.
    ///
    /// # Errors
    ///
    /// Returns a description of why recovery failed (or is
    /// unsupported).
    fn recover(&mut self, mem: &mut M) -> Result<(), String> {
        let _ = mem;
        Err(format!(
            "workload '{}' has no application-level recovery protocol",
            self.name()
        ))
    }
}

/// Parameters of one workload instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Which benchmark to run.
    pub kind: WorkloadKind,
    /// Number of transactions to execute in the measured phase.
    pub txns: u64,
    /// Transaction request size in bytes (paper: 256 / 1024 / 4096).
    pub req_bytes: u64,
    /// RNG seed.
    pub seed: u64,
    /// Base address of the instance's private memory region.
    pub region_base: u64,
    /// Length of the region.
    pub region_len: u64,
    /// Array workload: total initialized footprint in bytes.
    pub array_footprint: u64,
    /// Queue workload: ring capacity in items.
    pub queue_capacity: u64,
    /// Hash workload: bucket count (power of two).
    pub hash_buckets: u64,
    /// YCSB workload: percentage of operations that are lookups.
    pub ycsb_read_pct: u8,
}

impl WorkloadSpec {
    /// A spec with the paper's defaults: 1 KB requests, 1000
    /// transactions, an 8 MiB array footprint, 1024-slot queue, and 4096
    /// hash buckets.
    pub fn new(kind: WorkloadKind) -> Self {
        Self {
            kind,
            txns: 1000,
            req_bytes: 1024,
            seed: 1,
            region_base: 0,
            region_len: 1 << 28,
            array_footprint: 8 << 20,
            queue_capacity: 1024,
            hash_buckets: 4096,
            ycsb_read_pct: 50,
        }
    }

    /// Sets the transaction count.
    pub fn with_txns(mut self, txns: u64) -> Self {
        self.txns = txns;
        self
    }

    /// Sets the transaction request size.
    pub fn with_req_bytes(mut self, req_bytes: u64) -> Self {
        self.req_bytes = req_bytes;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Places the instance at a different region (multi-core runs give
    /// each core a private slice of the address space).
    pub fn with_region(mut self, base: u64, len: u64) -> Self {
        self.region_base = base;
        self.region_len = len;
        self
    }

    /// Sets the array footprint in bytes.
    pub fn with_array_footprint(mut self, bytes: u64) -> Self {
        self.array_footprint = bytes;
        self
    }

    /// Sets the hash-table bucket count (power of two).
    pub fn with_hash_buckets(mut self, buckets: u64) -> Self {
        self.hash_buckets = buckets;
        self
    }

    /// Sets the YCSB read percentage (0..=100).
    pub fn with_ycsb_read_pct(mut self, pct: u8) -> Self {
        self.ycsb_read_pct = pct;
        self
    }

    /// The smallest request size `kind` accepts (the structures' record
    /// headers put a floor under the per-transaction payload).
    fn min_req_bytes(kind: WorkloadKind) -> u64 {
        match kind {
            WorkloadKind::Queue => 8,
            WorkloadKind::Array | WorkloadKind::BTree | WorkloadKind::Ycsb => 16,
            WorkloadKind::HashTable => 17, // must exceed the 16 B bucket header
            WorkloadKind::RbTree => 41,    // must exceed the 40 B node header
        }
    }

    /// Checks the spec's parameters without building anything.
    ///
    /// # Errors
    ///
    /// Returns the first [`SpecError`] found. The checks mirror the
    /// construction-time assertions of the individual structures, so a
    /// spec that validates does not panic in [`WorkloadSpec::build`].
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.ycsb_read_pct > 100 {
            return Err(SpecError::ReadPct(self.ycsb_read_pct));
        }
        if self.hash_buckets == 0 || !self.hash_buckets.is_power_of_two() {
            return Err(SpecError::HashBuckets(self.hash_buckets));
        }
        let min = Self::min_req_bytes(self.kind);
        if self.req_bytes < min {
            return Err(SpecError::ReqBytes {
                kind: self.kind,
                req_bytes: self.req_bytes,
                min,
            });
        }
        Ok(())
    }

    /// Builds and initializes the workload described by this spec
    /// inside `mem` — the unified, fallible construction path.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] for malformed parameters (see
    /// [`WorkloadSpec::validate`]) or a region too small to seed the
    /// structure.
    pub fn build<M: PMem>(&self, mem: &mut M) -> Result<AnyWorkload, SpecError> {
        self.validate()?;
        let (base, len, req, seed) = (self.region_base, self.region_len, self.req_bytes, self.seed);
        Ok(match self.kind {
            WorkloadKind::Array => {
                let item = (req / 2).max(8);
                let count = (self.array_footprint / item).max(2);
                AnyWorkload::Array(ArrayWorkload::new(mem, base, len, req, count, seed))
            }
            WorkloadKind::Queue => AnyWorkload::Queue(QueueWorkload::new(
                mem,
                base,
                len,
                req,
                self.queue_capacity,
                seed,
            )),
            WorkloadKind::BTree => {
                AnyWorkload::BTree(BTreeWorkload::new(mem, base, len, req, seed))
            }
            WorkloadKind::HashTable => AnyWorkload::HashTable(HashTableWorkload::new(
                mem,
                base,
                len,
                req,
                self.hash_buckets,
                seed,
            )),
            WorkloadKind::RbTree => {
                AnyWorkload::RbTree(RbTreeWorkload::new(mem, base, len, req, seed))
            }
            WorkloadKind::Ycsb => AnyWorkload::Ycsb(YcsbWorkload::try_new(
                mem,
                base,
                len,
                req,
                self.ycsb_read_pct,
                seed,
            )?),
        })
    }
}

/// A constructed workload instance (enum dispatch over the five kinds).
#[derive(Debug, Clone)]
pub enum AnyWorkload {
    /// Flat-array swaps.
    Array(ArrayWorkload),
    /// Ring-buffer queue.
    Queue(QueueWorkload),
    /// B-tree inserts.
    BTree(BTreeWorkload),
    /// Hash-table inserts.
    HashTable(HashTableWorkload),
    /// Red-black-tree inserts.
    RbTree(RbTreeWorkload),
    /// Mixed read/insert KV operations.
    Ycsb(YcsbWorkload),
}

impl AnyWorkload {
    /// Builds and initializes the workload described by `spec` inside
    /// `mem`.
    ///
    /// # Panics
    ///
    /// Panics on any malformed spec or undersized region.
    #[deprecated(
        since = "0.1.0",
        note = "use the fallible `WorkloadSpec::build`, which reports a typed SpecError"
    )]
    pub fn build<M: PMem>(spec: &WorkloadSpec, mem: &mut M) -> Self {
        spec.build(mem)
            .unwrap_or_else(|e| panic!("workload spec invalid: {e}"))
    }

    /// The workload's figure name.
    pub fn name(&self) -> &'static str {
        match self {
            AnyWorkload::Array(_) => "array",
            AnyWorkload::Queue(_) => "queue",
            AnyWorkload::BTree(_) => "btree",
            AnyWorkload::HashTable(_) => "hash",
            AnyWorkload::RbTree(_) => "rbtree",
            AnyWorkload::Ycsb(_) => "ycsb",
        }
    }

    /// Executes one durable transaction.
    ///
    /// # Errors
    ///
    /// Propagates [`TxnError`] from the commit.
    pub fn step<M: PMem>(&mut self, mem: &mut M) -> Result<(), TxnError> {
        match self {
            AnyWorkload::Array(w) => w.step(mem),
            AnyWorkload::Queue(w) => w.step(mem),
            AnyWorkload::BTree(w) => w.step(mem),
            AnyWorkload::HashTable(w) => w.step(mem),
            AnyWorkload::RbTree(w) => w.step(mem),
            AnyWorkload::Ycsb(w) => w.step(mem),
        }
    }

    /// Verifies the persistent state against the shadow model.
    ///
    /// # Errors
    ///
    /// Returns a description of the first divergence.
    pub fn verify<M: PMem>(&mut self, mem: &mut M) -> Result<(), String> {
        match self {
            AnyWorkload::Array(w) => w.verify(mem),
            AnyWorkload::Queue(w) => w.verify(mem),
            AnyWorkload::BTree(w) => w.verify(mem),
            AnyWorkload::HashTable(w) => w.verify(mem),
            AnyWorkload::RbTree(w) => w.verify(mem),
            AnyWorkload::Ycsb(w) => w.verify(mem),
        }
    }

    /// Committed transactions so far.
    pub fn committed(&self) -> u64 {
        match self {
            AnyWorkload::Array(w) => w.committed(),
            AnyWorkload::Queue(w) => w.committed(),
            AnyWorkload::BTree(w) => w.committed(),
            AnyWorkload::HashTable(w) => w.committed(),
            AnyWorkload::RbTree(w) => w.committed(),
            AnyWorkload::Ycsb(w) => w.committed(),
        }
    }
}

impl<M: PMem> Workload<M> for AnyWorkload {
    fn name(&self) -> &'static str {
        AnyWorkload::name(self)
    }

    fn step(&mut self, mem: &mut M) -> Result<(), TxnError> {
        AnyWorkload::step(self, mem)
    }

    fn verify(&mut self, mem: &mut M) -> Result<(), String> {
        AnyWorkload::verify(self, mem)
    }

    fn committed(&self) -> u64 {
        AnyWorkload::committed(self)
    }
}

/// Implements [`Workload`] for a concrete structure by delegating to
/// its inherent methods of the same shape.
macro_rules! impl_workload {
    ($ty:ty, $name:literal) => {
        impl<M: PMem> Workload<M> for $ty {
            fn name(&self) -> &'static str {
                $name
            }

            fn step(&mut self, mem: &mut M) -> Result<(), TxnError> {
                <$ty>::step(self, mem)
            }

            fn verify(&mut self, mem: &mut M) -> Result<(), String> {
                <$ty>::verify(self, mem)
            }

            fn committed(&self) -> u64 {
                <$ty>::committed(self)
            }
        }
    };
}

impl_workload!(ArrayWorkload, "array");
impl_workload!(QueueWorkload, "queue");
impl_workload!(BTreeWorkload, "btree");
impl_workload!(HashTableWorkload, "hash");
impl_workload!(RbTreeWorkload, "rbtree");
impl_workload!(YcsbWorkload, "ycsb");

#[cfg(test)]
mod tests {
    use super::*;
    use supermem_persist::VecMem;

    #[test]
    fn all_kinds_build_step_verify() {
        for kind in ALL_KINDS {
            let spec = WorkloadSpec::new(kind)
                .with_txns(30)
                .with_req_bytes(256)
                .with_array_footprint(64 << 10);
            let mut mem = VecMem::new();
            let mut w = spec.build(&mut mem).unwrap();
            assert_eq!(w.name(), kind.name());
            for _ in 0..spec.txns {
                w.step(&mut mem).unwrap_or_else(|e| panic!("{kind}: {e}"));
            }
            w.verify(&mut mem).unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert_eq!(w.committed(), 30);
        }
    }

    #[test]
    fn names_roundtrip() {
        for kind in ALL_KINDS {
            assert_eq!(WorkloadKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(WorkloadKind::from_name("nope"), None);
        assert_eq!(
            WorkloadKind::from_name("hashtable"),
            Some(WorkloadKind::HashTable)
        );
        assert_eq!(WorkloadKind::from_name("ycsb"), Some(WorkloadKind::Ycsb));
    }

    #[test]
    fn spec_builders() {
        let s = WorkloadSpec::new(WorkloadKind::Array)
            .with_txns(5)
            .with_req_bytes(4096)
            .with_seed(9)
            .with_region(0x1000, 0x100000)
            .with_array_footprint(1 << 20);
        assert_eq!(s.txns, 5);
        assert_eq!(s.req_bytes, 4096);
        assert_eq!(s.seed, 9);
        assert_eq!(s.region_base, 0x1000);
        assert_eq!(s.array_footprint, 1 << 20);
    }

    #[test]
    fn different_regions_do_not_collide() {
        // Two instances in disjoint regions of the same memory, stepped
        // alternately, must both verify — the multi-core setup.
        let mut mem = VecMem::new();
        let s1 = WorkloadSpec::new(WorkloadKind::Queue).with_region(0, 1 << 24);
        let s2 = WorkloadSpec::new(WorkloadKind::BTree)
            .with_region(1 << 24, 1 << 24)
            .with_seed(5);
        let mut w1 = s1.build(&mut mem).unwrap();
        let mut w2 = s2.build(&mut mem).unwrap();
        for _ in 0..50 {
            w1.step(&mut mem).unwrap();
            w2.step(&mut mem).unwrap();
        }
        w1.verify(&mut mem).unwrap();
        w2.verify(&mut mem).unwrap();
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(WorkloadKind::RbTree.to_string(), "rbtree");
    }

    #[test]
    fn validate_rejects_malformed_specs() {
        let bad_pct = WorkloadSpec::new(WorkloadKind::Ycsb).with_ycsb_read_pct(101);
        assert_eq!(bad_pct.validate(), Err(SpecError::ReadPct(101)));

        let bad_buckets = WorkloadSpec::new(WorkloadKind::HashTable).with_hash_buckets(3);
        assert_eq!(bad_buckets.validate(), Err(SpecError::HashBuckets(3)));

        let tiny_req = WorkloadSpec::new(WorkloadKind::RbTree).with_req_bytes(16);
        assert_eq!(
            tiny_req.validate(),
            Err(SpecError::ReqBytes {
                kind: WorkloadKind::RbTree,
                req_bytes: 16,
                min: 41,
            })
        );
    }

    #[test]
    fn build_reports_spec_errors_without_panicking() {
        let mut mem = VecMem::new();
        let bad = WorkloadSpec::new(WorkloadKind::Ycsb).with_ycsb_read_pct(200);
        assert_eq!(bad.build(&mut mem).unwrap_err(), SpecError::ReadPct(200));
    }

    #[test]
    fn validate_accepts_every_default_spec() {
        for kind in ALL_KINDS.into_iter().chain([WorkloadKind::Ycsb]) {
            WorkloadSpec::new(kind).validate().unwrap();
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_build_wrapper_still_constructs() {
        let mut mem = VecMem::new();
        let spec = WorkloadSpec::new(WorkloadKind::Queue).with_txns(3);
        let mut w = AnyWorkload::build(&spec, &mut mem);
        w.step(&mut mem).unwrap();
        assert_eq!(AnyWorkload::committed(&w), 1);
    }

    #[test]
    fn workloads_drive_through_the_trait_object() {
        // The unified API: a driver holding only `dyn Workload` can run
        // any structure, including ones added outside this enum.
        let mut mem = VecMem::new();
        let spec = WorkloadSpec::new(WorkloadKind::BTree)
            .with_txns(10)
            .with_req_bytes(256);
        let built = spec.build(&mut mem).unwrap();
        let mut w: Box<dyn Workload<VecMem>> = Box::new(built);
        for _ in 0..10 {
            w.step(&mut mem).unwrap();
        }
        assert_eq!(w.name(), "btree");
        assert_eq!(w.committed(), 10);
        w.verify(&mut mem).unwrap();
    }
}
