//! The paper's five micro-benchmark workloads (§4, Table 2 context).
//!
//! Each workload is a *real* persistent data structure living entirely in
//! simulated NVM behind the [`supermem_persist::PMem`] interface, mutated
//! through durable undo-log transactions:
//!
//! | Workload | Structure | Access pattern (spatial locality) |
//! |----------|-----------|-----------------------------------|
//! | `array`  | flat array | random element swaps (poor) |
//! | `queue`  | ring buffer | enqueue/dequeue at ends (good) |
//! | `btree`  | B-tree, out-of-line values | contiguous value writes (good) |
//! | `hash`   | bucketed hash table | random buckets (poor) |
//! | `rbtree` | red-black tree, one item per node | random nodes (poor) |
//!
//! Every workload keeps a volatile *shadow model* (a plain Rust
//! collection) and can [`verify`](AnyWorkload::verify) the persistent
//! state against it — which is also how the crash experiments decide
//! whether a recovered image is consistent.
//!
//! Construction is unified behind [`WorkloadSpec::build`] (fallible,
//! typed [`SpecError`]s), and all drivers speak the [`Workload`] trait,
//! so structures defined in other crates plug in without new match arms.
//!
//! # Examples
//!
//! ```
//! use supermem_persist::VecMem;
//! use supermem_workloads::{WorkloadKind, WorkloadSpec};
//!
//! let spec = WorkloadSpec::new(WorkloadKind::Queue).with_txns(10);
//! let mut mem = VecMem::new();
//! let mut w = spec.build(&mut mem).unwrap();
//! for _ in 0..spec.txns {
//!     w.step(&mut mem).unwrap();
//! }
//! w.verify(&mut mem).unwrap();
//! ```
#![warn(missing_docs)]

pub mod array;
pub mod btree;
pub mod hashtable;
pub mod queue;
pub mod rbtree;
pub mod spec;
pub mod ycsb;

pub use array::ArrayWorkload;
pub use btree::BTreeWorkload;
pub use hashtable::HashTableWorkload;
pub use queue::QueueWorkload;
pub use rbtree::RbTreeWorkload;
pub use spec::{AnyWorkload, SpecError, Workload, WorkloadKind, WorkloadSpec};
pub use ycsb::YcsbWorkload;
