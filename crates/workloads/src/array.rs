//! The `array` workload: random element swaps in a flat persistent
//! array.
//!
//! The paper characterizes this workload as having *poor* spatial
//! locality (random entry swaps, §5.4): each transaction touches two
//! random positions far apart, so counter-cache hit rates and CWC
//! merging depend mostly on the log writes.

use supermem_persist::{Arena, PMem, TxnError, TxnManager};
use supermem_sim::SplitMix64;

/// Persistent array with transactional random swaps.
///
/// Each [`ArrayWorkload::step`] swaps two random elements inside one
/// durable transaction, writing `2 * item_bytes` bytes of data (plus the
/// undo log), which matches the paper's "transaction request size".
#[derive(Debug, Clone)]
pub struct ArrayWorkload {
    txm: TxnManager,
    items_base: u64,
    item_bytes: u64,
    count: u64,
    rng: SplitMix64,
    shadow: Vec<Vec<u8>>,
}

impl ArrayWorkload {
    /// Creates and initializes the array inside `[base, base + len)`.
    ///
    /// `req_bytes` is the transaction request size: each item is
    /// `req_bytes / 2` so one swap writes `req_bytes` of data. `count`
    /// items are materialized and persisted.
    ///
    /// # Panics
    ///
    /// Panics if the region cannot hold the log and the items, or if
    /// `count < 2` or `req_bytes < 16`.
    pub fn new<M: PMem>(
        mem: &mut M,
        base: u64,
        len: u64,
        req_bytes: u64,
        count: u64,
        seed: u64,
    ) -> Self {
        assert!(count >= 2, "need at least two items to swap");
        assert!(req_bytes >= 16, "request size too small");
        let item_bytes = (req_bytes / 2).max(8);
        let mut arena = Arena::new(base, len);
        let log_base = arena
            .alloc(2 * req_bytes + 4096, 64)
            .expect("region too small for log");
        let items_base = arena
            .alloc(count * item_bytes, 64)
            .expect("region too small for items");
        let mut rng = SplitMix64::new(seed);
        let mut shadow = Vec::with_capacity(count as usize);
        for i in 0..count {
            let mut item = vec![0u8; item_bytes as usize];
            rng.fill_bytes(&mut item);
            mem.write(items_base + i * item_bytes, &item);
            shadow.push(item);
        }
        // Make the initial state durable in one sweep.
        mem.clwb(items_base, count * item_bytes);
        mem.sfence();
        Self {
            txm: TxnManager::new(log_base, 2 * req_bytes + 4096),
            items_base,
            item_bytes,
            count,
            rng,
            shadow,
        }
    }

    fn addr_of(&self, idx: u64) -> u64 {
        self.items_base + idx * self.item_bytes
    }

    /// Number of committed swaps.
    pub fn committed(&self) -> u64 {
        self.txm.committed()
    }

    /// Executes one transactional swap of two random elements.
    ///
    /// # Errors
    ///
    /// Propagates [`TxnError`] from the commit (log overflow).
    pub fn step<M: PMem>(&mut self, mem: &mut M) -> Result<(), TxnError> {
        let i = self.rng.next_below(self.count);
        let mut j = self.rng.next_below(self.count);
        if i == j {
            j = (j + 1) % self.count;
        }
        let (addr_i, addr_j) = (self.addr_of(i), self.addr_of(j));
        let (item_i, item_j) = (
            self.shadow[i as usize].clone(),
            self.shadow[j as usize].clone(),
        );
        let mut txn = self.txm.begin();
        txn.write(addr_i, item_j);
        txn.write(addr_j, item_i);
        txn.commit(mem)?;
        self.shadow.swap(i as usize, j as usize);
        Ok(())
    }

    /// Verifies the persistent array against the shadow model.
    ///
    /// # Errors
    ///
    /// Returns a description of the first mismatching element.
    pub fn verify<M: PMem>(&mut self, mem: &mut M) -> Result<(), String> {
        let mut buf = vec![0u8; self.item_bytes as usize];
        for i in 0..self.count {
            mem.read(self.addr_of(i), &mut buf);
            if buf != self.shadow[i as usize] {
                return Err(format!("array item {i} diverges from shadow"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supermem_persist::VecMem;

    fn build(mem: &mut VecMem) -> ArrayWorkload {
        ArrayWorkload::new(mem, 0, 1 << 20, 256, 64, 42)
    }

    #[test]
    fn initial_state_verifies() {
        let mut mem = VecMem::new();
        let mut w = build(&mut mem);
        w.verify(&mut mem).unwrap();
    }

    #[test]
    fn swaps_preserve_multiset_and_match_shadow() {
        let mut mem = VecMem::new();
        let mut w = build(&mut mem);
        for _ in 0..100 {
            w.step(&mut mem).unwrap();
        }
        assert_eq!(w.committed(), 100);
        w.verify(&mut mem).unwrap();
    }

    #[test]
    fn item_size_is_half_request() {
        let mut mem = VecMem::new();
        let w = ArrayWorkload::new(&mut mem, 0, 1 << 20, 1024, 16, 1);
        assert_eq!(w.item_bytes, 512);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut m1 = VecMem::new();
        let mut m2 = VecMem::new();
        let mut w1 = ArrayWorkload::new(&mut m1, 0, 1 << 20, 256, 32, 7);
        let mut w2 = ArrayWorkload::new(&mut m2, 0, 1 << 20, 256, 32, 7);
        for _ in 0..20 {
            w1.step(&mut m1).unwrap();
            w2.step(&mut m2).unwrap();
        }
        assert_eq!(w1.shadow, w2.shadow);
    }

    #[test]
    fn detects_corruption() {
        let mut mem = VecMem::new();
        let mut w = build(&mut mem);
        w.step(&mut mem).unwrap();
        mem.write(w.addr_of(3), &[0xEE; 8]);
        assert!(w.verify(&mut mem).is_err());
    }

    #[test]
    #[should_panic(expected = "two items")]
    fn rejects_tiny_array() {
        let mut mem = VecMem::new();
        ArrayWorkload::new(&mut mem, 0, 1 << 20, 256, 1, 0);
    }
}
