//! The `B-tree` workload: transactional key-value inserts.
//!
//! A CLRS-style B-tree (minimum degree 8: up to 15 keys / 16 children
//! per node) with values stored out of line as contiguous blobs — the
//! paper's "a transaction inserts a 1 KB key-value item" scenario
//! (§3.4.2): value writes flush a run of contiguous cache lines, giving
//! this workload *good* spatial locality.

use std::collections::BTreeMap;

use supermem_persist::{Arena, PMem, Txn, TxnError, TxnManager};
use supermem_sim::SplitMix64;

/// Maximum keys per node (2t - 1 with t = 8).
const MAX_KEYS: usize = 15;
/// Minimum degree.
const T: usize = 8;
/// On-NVM node footprint: meta(8) + keys(120) + vals(120) + children(128),
/// padded to whole lines.
const NODE_BYTES: u64 = 384;

/// A decoded B-tree node.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Node {
    addr: u64,
    leaf: bool,
    keys: Vec<u64>,
    vals: Vec<u64>,
    children: Vec<u64>,
}

impl Node {
    fn new_leaf(addr: u64) -> Self {
        Self {
            addr,
            leaf: true,
            keys: Vec::new(),
            vals: Vec::new(),
            children: Vec::new(),
        }
    }

    fn full(&self) -> bool {
        self.keys.len() == MAX_KEYS
    }

    fn encode(&self) -> Vec<u8> {
        debug_assert!(self.keys.len() <= MAX_KEYS);
        debug_assert_eq!(self.keys.len(), self.vals.len());
        debug_assert!(self.leaf || self.children.len() == self.keys.len() + 1);
        let mut out = vec![0u8; NODE_BYTES as usize];
        let meta = self.keys.len() as u64 | if self.leaf { 1 << 63 } else { 0 };
        out[..8].copy_from_slice(&meta.to_le_bytes());
        for (i, k) in self.keys.iter().enumerate() {
            out[8 + i * 8..16 + i * 8].copy_from_slice(&k.to_le_bytes());
        }
        for (i, v) in self.vals.iter().enumerate() {
            out[128 + i * 8..136 + i * 8].copy_from_slice(&v.to_le_bytes());
        }
        for (i, c) in self.children.iter().enumerate() {
            out[248 + i * 8..256 + i * 8].copy_from_slice(&c.to_le_bytes());
        }
        out
    }

    fn decode(addr: u64, bytes: &[u8]) -> Self {
        let meta = u64::from_le_bytes(bytes[..8].try_into().unwrap());
        let leaf = meta >> 63 == 1;
        let count = (meta & 0xFFFF_FFFF) as usize;
        let rd = |off: usize| u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
        Self {
            addr,
            leaf,
            keys: (0..count).map(|i| rd(8 + i * 8)).collect(),
            vals: (0..count).map(|i| rd(128 + i * 8)).collect(),
            children: if leaf {
                Vec::new()
            } else {
                (0..=count).map(|i| rd(248 + i * 8)).collect()
            },
        }
    }
}

/// Persistent B-tree with transactional inserts and out-of-line values.
#[derive(Debug, Clone)]
pub struct BTreeWorkload {
    txm: TxnManager,
    arena: Arena,
    header_base: u64,
    value_bytes: u64,
    root: u64,
    rng: SplitMix64,
    shadow: BTreeMap<u64, Vec<u8>>,
    key_space: u64,
}

impl BTreeWorkload {
    /// Creates an empty tree in `[base, base + len)` with `req_bytes`
    /// transaction request size (value blobs of `req_bytes - 8`).
    ///
    /// # Panics
    ///
    /// Panics if the region is too small or `req_bytes < 16`.
    pub fn new<M: PMem>(mem: &mut M, base: u64, len: u64, req_bytes: u64, seed: u64) -> Self {
        assert!(req_bytes >= 16, "request size too small");
        let mut arena = Arena::new(base, len);
        let log_bytes = 4 * req_bytes + 8192;
        let log_base = arena
            .alloc(log_bytes, 64)
            .expect("region too small for log");
        let header_base = arena.alloc(64, 64).expect("region too small for header");
        let root = arena
            .alloc(NODE_BYTES, 64)
            .expect("region too small for root");
        let empty = Node::new_leaf(root);
        mem.write(root, &empty.encode());
        mem.write_u64(header_base, root);
        mem.clwb(root, NODE_BYTES);
        mem.clwb(header_base, 8);
        mem.sfence();
        Self {
            txm: TxnManager::new(log_base, log_bytes),
            arena,
            header_base,
            value_bytes: req_bytes - 8,
            root,
            rng: SplitMix64::new(seed),
            shadow: BTreeMap::new(),
            key_space: u64::MAX,
        }
    }

    /// Restricts keys to `[0, key_space)` (test hook to force duplicate
    /// keys and deep trees on small key ranges).
    pub fn with_key_space(mut self, key_space: u64) -> Self {
        assert!(key_space > 0);
        self.key_space = key_space;
        self
    }

    /// Committed transactions so far.
    pub fn committed(&self) -> u64 {
        self.txm.committed()
    }

    /// Keys currently stored (shadow view).
    pub fn len(&self) -> usize {
        self.shadow.len()
    }

    /// True if no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.shadow.is_empty()
    }

    fn read_node<M: PMem>(txn: &Txn<'_>, mem: &mut M, addr: u64) -> Node {
        let mut buf = vec![0u8; NODE_BYTES as usize];
        txn.read(mem, addr, &mut buf);
        Node::decode(addr, &buf)
    }

    fn stage_node(txn: &mut Txn<'_>, node: &Node) {
        txn.write(node.addr, node.encode());
    }

    /// Splits full child `i` of `parent`, staging all three nodes.
    fn split_child<M: PMem>(
        arena: &mut Arena,
        txn: &mut Txn<'_>,
        mem: &mut M,
        parent: &mut Node,
        i: usize,
    ) {
        let mut child = Self::read_node(txn, mem, parent.children[i]);
        debug_assert!(child.full());
        let right_addr = arena.alloc(NODE_BYTES, 64).expect("node space exhausted");
        let right = Node {
            addr: right_addr,
            leaf: child.leaf,
            keys: child.keys.split_off(T),
            vals: child.vals.split_off(T),
            children: if child.leaf {
                Vec::new()
            } else {
                child.children.split_off(T)
            },
        };
        let median_key = child.keys.pop().expect("median key");
        let median_val = child.vals.pop().expect("median val");
        parent.keys.insert(i, median_key);
        parent.vals.insert(i, median_val);
        parent.children.insert(i + 1, right_addr);
        Self::stage_node(txn, &child);
        Self::stage_node(txn, &right);
        Self::stage_node(txn, parent);
    }

    /// Inserts one random key/value pair in a durable transaction.
    ///
    /// # Errors
    ///
    /// Propagates [`TxnError`] from the commit.
    pub fn step<M: PMem>(&mut self, mem: &mut M) -> Result<(), TxnError> {
        let key = self.rng.next_below(self.key_space);
        let mut value = vec![0u8; self.value_bytes as usize];
        self.rng.fill_bytes(&mut value);
        self.insert(mem, key, value)
    }

    /// Inserts a specific key/value pair (tests drive this directly).
    ///
    /// # Errors
    ///
    /// Propagates [`TxnError`] from the commit.
    pub fn insert<M: PMem>(
        &mut self,
        mem: &mut M,
        key: u64,
        value: Vec<u8>,
    ) -> Result<(), TxnError> {
        let saved_root = self.root;
        let header_base = self.header_base;
        let arena = &mut self.arena;
        let mut txn = self.txm.begin();

        // Value blob: [len u64][bytes], contiguous.
        let vaddr = arena
            .alloc(8 + value.len() as u64, 8)
            .expect("value space exhausted");
        let mut blob = Vec::with_capacity(8 + value.len());
        blob.extend_from_slice(&(value.len() as u64).to_le_bytes());
        blob.extend_from_slice(&value);
        txn.write(vaddr, blob);

        let root_node = Self::read_node(&txn, mem, saved_root);
        let mut new_root_ptr = saved_root;
        let mut cur = if root_node.full() {
            let new_root_addr = arena.alloc(NODE_BYTES, 64).expect("node space exhausted");
            let mut new_root = Node {
                addr: new_root_addr,
                leaf: false,
                keys: Vec::new(),
                vals: Vec::new(),
                children: vec![saved_root],
            };
            Self::split_child(arena, &mut txn, mem, &mut new_root, 0);
            new_root_ptr = new_root_addr;
            txn.write(header_base, new_root_addr.to_le_bytes().to_vec());
            new_root_addr
        } else {
            saved_root
        };

        loop {
            let mut node = Self::read_node(&txn, mem, cur);
            match node.keys.binary_search(&key) {
                Ok(pos) => {
                    // Update in place: point the slot at the new blob.
                    node.vals[pos] = vaddr;
                    Self::stage_node(&mut txn, &node);
                    break;
                }
                Err(pos) => {
                    if node.leaf {
                        node.keys.insert(pos, key);
                        node.vals.insert(pos, vaddr);
                        Self::stage_node(&mut txn, &node);
                        break;
                    }
                    let child = Self::read_node(&txn, mem, node.children[pos]);
                    let mut i = pos;
                    if child.full() {
                        Self::split_child(arena, &mut txn, mem, &mut node, i);
                        match key.cmp(&node.keys[i]) {
                            std::cmp::Ordering::Equal => {
                                node.vals[i] = vaddr;
                                Self::stage_node(&mut txn, &node);
                                break;
                            }
                            std::cmp::Ordering::Greater => i += 1,
                            std::cmp::Ordering::Less => {}
                        }
                    }
                    cur = node.children[i];
                }
            }
        }

        match txn.commit(mem) {
            Ok(()) => {
                self.root = new_root_ptr;
                self.shadow.insert(key, value);
                Ok(())
            }
            Err(e) => Err(e), // txn abandoned; volatile root unchanged
        }
    }

    /// Looks up `key` by walking the tree through plain memory reads
    /// (no transaction). Returns the value bytes if present.
    ///
    /// This is the read path of the KV-store scenario: tree traversal
    /// plus a contiguous value-blob read, all decrypting through the
    /// counter-mode engine with OTP generation overlapped (paper
    /// Figure 2b).
    pub fn get<M: PMem>(&self, mem: &mut M, key: u64) -> Option<Vec<u8>> {
        let mut cur = self.root;
        for _ in 0..64 {
            let mut buf = vec![0u8; NODE_BYTES as usize];
            mem.read(cur, &mut buf);
            let node = Node::decode(cur, &buf);
            match node.keys.binary_search(&key) {
                Ok(pos) => {
                    let vaddr = node.vals[pos];
                    let len = mem.read_u64(vaddr) as usize;
                    let mut value = vec![0u8; len];
                    mem.read(vaddr + 8, &mut value);
                    return Some(value);
                }
                Err(pos) => {
                    if node.leaf {
                        return None;
                    }
                    cur = node.children[pos];
                }
            }
        }
        None
    }

    /// Verifies B-tree invariants and full content against the shadow.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant or content
    /// divergence.
    pub fn verify<M: PMem>(&mut self, mem: &mut M) -> Result<(), String> {
        let root = mem.read_u64(self.header_base);
        if root != self.root {
            return Err("persistent root pointer diverges from volatile".into());
        }
        let mut collected = BTreeMap::new();
        let mut leaf_depths = Vec::new();
        Self::walk(
            mem,
            WalkFrame {
                addr: root,
                lo: u64::MIN,
                hi: u64::MAX,
                depth: 0,
            },
            &mut collected,
            &mut leaf_depths,
        )?;
        leaf_depths.dedup();
        if leaf_depths.len() > 1 {
            return Err(format!("uneven leaf depths: {leaf_depths:?}"));
        }
        if collected.len() != self.shadow.len() {
            return Err(format!(
                "key count diverges: tree {} vs shadow {}",
                collected.len(),
                self.shadow.len()
            ));
        }
        for (k, vaddr) in &collected {
            let expected = &self.shadow[k];
            let len = mem.read_u64(*vaddr) as usize;
            if len != expected.len() {
                return Err(format!("value length diverges for key {k}"));
            }
            let mut buf = vec![0u8; len];
            mem.read(vaddr + 8, &mut buf);
            if &buf != expected {
                return Err(format!("value bytes diverge for key {k}"));
            }
        }
        Ok(())
    }

    fn walk<M: PMem>(
        mem: &mut M,
        frame: WalkFrame,
        out: &mut BTreeMap<u64, u64>,
        leaf_depths: &mut Vec<usize>,
    ) -> Result<(), String> {
        let WalkFrame {
            addr,
            lo,
            hi,
            depth,
        } = frame;
        if depth > 64 {
            return Err("tree too deep: cycle suspected".into());
        }
        let mut buf = vec![0u8; NODE_BYTES as usize];
        mem.read(addr, &mut buf);
        let node = Node::decode(addr, &buf);
        if node.keys.len() > MAX_KEYS {
            return Err(format!("node {addr:#x} overfull"));
        }
        // (A non-root node should hold >= T-1 keys; underflow cannot
        // happen on an insert-only tree, so it is not checked here.)
        let mut prev = None;
        for &k in &node.keys {
            if k < lo || k >= hi {
                return Err(format!("key {k} violates separator bounds at {addr:#x}"));
            }
            if prev.is_some_and(|p| p >= k) {
                return Err(format!("unsorted keys in node {addr:#x}"));
            }
            prev = Some(k);
        }
        if node.leaf {
            leaf_depths.push(depth);
            for (i, &k) in node.keys.iter().enumerate() {
                out.insert(k, node.vals[i]);
            }
        } else {
            if node.children.len() != node.keys.len() + 1 {
                return Err(format!("child count mismatch in node {addr:#x}"));
            }
            for (i, &child) in node.children.iter().enumerate() {
                let clo = if i == 0 { lo } else { node.keys[i - 1] + 1 };
                let chi = if i == node.keys.len() {
                    hi
                } else {
                    node.keys[i]
                };
                Self::walk(
                    mem,
                    WalkFrame {
                        addr: child,
                        lo: clo,
                        hi: chi,
                        depth: depth + 1,
                    },
                    out,
                    leaf_depths,
                )?;
            }
            for (i, &k) in node.keys.iter().enumerate() {
                out.insert(k, node.vals[i]);
            }
        }
        Ok(())
    }
}

/// Validates a B-tree's persistent image without a shadow model (used on
/// post-crash recovered memory): recomputes the layout from the
/// construction parameters, walks the tree from the durable root
/// pointer, and checks every structural invariant (key bounds, sorted
/// order, uniform leaf depth, sane child counts, readable value blobs).
///
/// Returns the number of keys reachable on success.
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn check_recovered<M: PMem>(mem: &mut M, base: u64, req_bytes: u64) -> Result<usize, String> {
    // Mirror of `BTreeWorkload::new`'s arena layout.
    let log_bytes = 4 * req_bytes + 8192;
    let header_base = base + log_bytes;
    let root = mem.read_u64(header_base);
    if root == 0 {
        return Err("null root pointer".into());
    }
    let mut keys = 0usize;
    let mut leaf_depths = Vec::new();
    walk_recovered(
        mem,
        WalkFrame {
            addr: root,
            lo: u64::MIN,
            hi: u64::MAX,
            depth: 0,
        },
        &mut keys,
        &mut leaf_depths,
    )?;
    leaf_depths.dedup();
    if leaf_depths.len() > 1 {
        return Err(format!("uneven leaf depths: {leaf_depths:?}"));
    }
    Ok(keys)
}

/// One frame of a recursive descent: the node to inspect plus the
/// separator bounds and depth it inherits from its parent.
struct WalkFrame {
    /// Node address.
    addr: u64,
    /// Inclusive lower separator bound for keys in this subtree.
    lo: u64,
    /// Exclusive upper separator bound.
    hi: u64,
    /// Distance from the root.
    depth: usize,
}

fn walk_recovered<M: PMem>(
    mem: &mut M,
    frame: WalkFrame,
    keys: &mut usize,
    leaf_depths: &mut Vec<usize>,
) -> Result<(), String> {
    let WalkFrame {
        addr,
        lo,
        hi,
        depth,
    } = frame;
    if depth > 64 {
        return Err("tree too deep: cycle or garbage pointer".into());
    }
    let mut buf = vec![0u8; NODE_BYTES as usize];
    mem.read(addr, &mut buf);
    let node = Node::decode(addr, &buf);
    if node.keys.len() > MAX_KEYS {
        return Err(format!(
            "node {addr:#x} overfull ({} keys)",
            node.keys.len()
        ));
    }
    let mut prev = None;
    for &k in &node.keys {
        if k < lo || k >= hi {
            return Err(format!("key {k} out of separator bounds at {addr:#x}"));
        }
        if prev.is_some_and(|p| p >= k) {
            return Err(format!("unsorted keys in node {addr:#x}"));
        }
        prev = Some(k);
    }
    // Value blobs must carry plausible lengths.
    for &vaddr in &node.vals {
        let len = mem.read_u64(vaddr);
        if len > 1 << 20 {
            return Err(format!("implausible value length {len} at blob {vaddr:#x}"));
        }
    }
    *keys += node.keys.len();
    if node.leaf {
        leaf_depths.push(depth);
    } else {
        if node.children.len() != node.keys.len() + 1 {
            return Err(format!("child count mismatch in node {addr:#x}"));
        }
        for (i, &child) in node.children.iter().enumerate() {
            let clo = if i == 0 { lo } else { node.keys[i - 1] + 1 };
            let chi = if i == node.keys.len() {
                hi
            } else {
                node.keys[i]
            };
            walk_recovered(
                mem,
                WalkFrame {
                    addr: child,
                    lo: clo,
                    hi: chi,
                    depth: depth + 1,
                },
                keys,
                leaf_depths,
            )?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use supermem_persist::VecMem;

    fn build(mem: &mut VecMem) -> BTreeWorkload {
        BTreeWorkload::new(mem, 0, 1 << 24, 128, 77)
    }

    #[test]
    fn empty_tree_verifies() {
        let mut mem = VecMem::new();
        let mut t = build(&mut mem);
        t.verify(&mut mem).unwrap();
        assert!(t.is_empty());
    }

    #[test]
    fn sequential_inserts() {
        let mut mem = VecMem::new();
        let mut t = build(&mut mem);
        for k in 0..200u64 {
            t.insert(&mut mem, k, vec![k as u8; 32]).unwrap();
        }
        t.verify(&mut mem).unwrap();
        assert_eq!(t.len(), 200);
    }

    #[test]
    fn reverse_inserts() {
        let mut mem = VecMem::new();
        let mut t = build(&mut mem);
        for k in (0..200u64).rev() {
            t.insert(&mut mem, k, vec![k as u8; 16]).unwrap();
        }
        t.verify(&mut mem).unwrap();
    }

    #[test]
    fn random_steps_match_shadow() {
        let mut mem = VecMem::new();
        let mut t = build(&mut mem);
        for _ in 0..300 {
            t.step(&mut mem).unwrap();
        }
        t.verify(&mut mem).unwrap();
        assert_eq!(t.committed(), 300);
    }

    #[test]
    fn get_walks_the_tree() {
        let mut mem = VecMem::new();
        let mut t = build(&mut mem);
        for k in 0..300u64 {
            t.insert(&mut mem, k * 3, vec![k as u8; 24]).unwrap();
        }
        assert_eq!(t.get(&mut mem, 150), Some(vec![50u8; 24]));
        assert_eq!(t.get(&mut mem, 151), None);
        assert_eq!(t.get(&mut mem, 0), Some(vec![0u8; 24]));
        assert_eq!(t.get(&mut mem, 897), Some(vec![43u8; 24]));
    }

    #[test]
    fn duplicate_keys_update_value() {
        let mut mem = VecMem::new();
        let mut t = build(&mut mem);
        t.insert(&mut mem, 42, vec![1; 16]).unwrap();
        t.insert(&mut mem, 42, vec![2; 24]).unwrap();
        t.verify(&mut mem).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.shadow[&42], vec![2; 24]);
    }

    #[test]
    fn small_key_space_forces_updates_and_splits() {
        let mut mem = VecMem::new();
        let mut t = build(&mut mem).with_key_space(64);
        for _ in 0..500 {
            t.step(&mut mem).unwrap();
        }
        t.verify(&mut mem).unwrap();
        assert!(t.len() <= 64);
    }

    #[test]
    fn check_recovered_counts_keys() {
        let mut mem = VecMem::new();
        let mut t = build(&mut mem);
        for k in 0..150u64 {
            t.insert(&mut mem, k, vec![k as u8; 16]).unwrap();
        }
        assert_eq!(check_recovered(&mut mem, 0, 128).unwrap(), 150);
    }

    #[test]
    fn check_recovered_rejects_corrupted_root() {
        let mut mem = VecMem::new();
        let mut t = build(&mut mem);
        for k in 0..50u64 {
            t.insert(&mut mem, k, vec![1; 8]).unwrap();
        }
        // Smash the root's key area.
        let root = mem.read_u64(t.header_base);
        mem.write(root + 8, &[0xFF; 32]);
        assert!(check_recovered(&mut mem, 0, 128).is_err());
    }

    #[test]
    fn node_encode_decode_roundtrip() {
        let node = Node {
            addr: 0x1000,
            leaf: false,
            keys: vec![5, 10, 20],
            vals: vec![100, 200, 300],
            children: vec![1, 2, 3, 4],
        };
        assert_eq!(Node::decode(0x1000, &node.encode()), node);
        let leaf = Node {
            addr: 0x2000,
            leaf: true,
            keys: vec![7],
            vals: vec![70],
            children: vec![],
        };
        assert_eq!(Node::decode(0x2000, &leaf.encode()), leaf);
    }

    #[test]
    fn grows_multiple_levels() {
        let mut mem = VecMem::new();
        let mut t = build(&mut mem);
        // 15 keys/node: ~1000 inserts forces >= 3 levels.
        for k in 0..1000u64 {
            t.insert(&mut mem, k * 2, vec![0xAB; 8]).unwrap();
        }
        t.verify(&mut mem).unwrap();
        // Root must be internal by now.
        let root = mem.read_u64(t.header_base);
        let mut buf = vec![0u8; NODE_BYTES as usize];
        mem.read(root, &mut buf);
        assert!(!Node::decode(root, &buf).leaf);
    }
}

#[cfg(test)]
mod randomized {
    //! Deterministic randomized tests (seeded SplitMix64 stands in for
    //! proptest, which is unavailable in offline builds).
    use super::*;
    use supermem_persist::VecMem;
    use supermem_sim::SplitMix64;

    #[test]
    fn arbitrary_insert_sequences_keep_invariants() {
        let mut rng = SplitMix64::new(0xB73E);
        for _ in 0..32 {
            let mut mem = VecMem::new();
            let mut t = BTreeWorkload::new(&mut mem, 0, 1 << 24, 64, 0);
            for i in 0..rng.next_range(1, 150) {
                t.insert(&mut mem, rng.next_below(512), vec![i as u8; 8])
                    .unwrap();
            }
            assert!(t.verify(&mut mem).is_ok());
        }
    }
}
