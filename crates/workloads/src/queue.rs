//! The `queue` workload: a persistent ring buffer.
//!
//! Enqueues and dequeues touch contiguous memory at the tail/head, so
//! this workload has *good* spatial locality (§5.4) — its counter-cache
//! hit rate is high regardless of cache size, and its data writes
//! coalesce well.

use std::collections::VecDeque;

use supermem_persist::{Arena, PMem, TxnError, TxnManager};
use supermem_sim::SplitMix64;

/// Persistent FIFO queue of fixed-size items in a ring buffer.
///
/// Header layout: `head: u64` at +0 and `tail: u64` at +8 (monotonic
/// indices; slot = index % capacity). Items follow in a contiguous
/// region.
#[derive(Debug, Clone)]
pub struct QueueWorkload {
    txm: TxnManager,
    header_base: u64,
    items_base: u64,
    item_bytes: u64,
    capacity: u64,
    rng: SplitMix64,
    shadow: VecDeque<Vec<u8>>,
    head: u64,
    tail: u64,
}

impl QueueWorkload {
    /// Creates an empty queue in `[base, base + len)` with items of
    /// `req_bytes` bytes and room for `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if the region is too small, `capacity < 2`, or
    /// `req_bytes < 8`.
    pub fn new<M: PMem>(
        mem: &mut M,
        base: u64,
        len: u64,
        req_bytes: u64,
        capacity: u64,
        seed: u64,
    ) -> Self {
        assert!(capacity >= 2, "capacity too small");
        assert!(req_bytes >= 8, "item size too small");
        let mut arena = Arena::new(base, len);
        let log_bytes = 2 * req_bytes + 4096;
        let log_base = arena
            .alloc(log_bytes, 64)
            .expect("region too small for log");
        let header_base = arena.alloc(64, 64).expect("region too small for header");
        let items_base = arena
            .alloc(capacity * req_bytes, 64)
            .expect("region too small for items");
        mem.write_u64(header_base, 0);
        mem.write_u64(header_base + 8, 0);
        mem.clwb(header_base, 16);
        mem.sfence();
        Self {
            txm: TxnManager::new(log_base, log_bytes),
            header_base,
            items_base,
            item_bytes: req_bytes,
            capacity,
            rng: SplitMix64::new(seed),
            shadow: VecDeque::new(),
            head: 0,
            tail: 0,
        }
    }

    fn slot_addr(&self, index: u64) -> u64 {
        self.items_base + (index % self.capacity) * self.item_bytes
    }

    /// Current number of items.
    pub fn len(&self) -> u64 {
        self.tail - self.head
    }

    /// True when the queue holds nothing.
    pub fn is_empty(&self) -> bool {
        self.head == self.tail
    }

    /// Committed transactions so far.
    pub fn committed(&self) -> u64 {
        self.txm.committed()
    }

    /// Runs one transaction: an enqueue when the queue is short, a
    /// dequeue when it is near capacity, otherwise a coin flip.
    ///
    /// # Errors
    ///
    /// Propagates [`TxnError`] from the commit.
    pub fn step<M: PMem>(&mut self, mem: &mut M) -> Result<(), TxnError> {
        let enqueue = if self.len() < 2 {
            true
        } else if self.len() >= self.capacity - 1 {
            false
        } else {
            self.rng.next_bool_ratio(1, 2)
        };
        if enqueue {
            let mut item = vec![0u8; self.item_bytes as usize];
            self.rng.fill_bytes(&mut item);
            let slot = self.slot_addr(self.tail);
            let tail_addr = self.header_base + 8;
            let new_tail = self.tail + 1;
            let mut txn = self.txm.begin();
            txn.write(slot, item.clone());
            txn.write(tail_addr, new_tail.to_le_bytes().to_vec());
            txn.commit(mem)?;
            self.shadow.push_back(item);
            self.tail += 1;
        } else {
            // Dequeue: read the head item (a real demand read through the
            // hierarchy), then advance the head pointer durably.
            let mut item = vec![0u8; self.item_bytes as usize];
            mem.read(self.slot_addr(self.head), &mut item);
            let head_addr = self.header_base;
            let new_head = self.head + 1;
            let mut txn = self.txm.begin();
            txn.write(head_addr, new_head.to_le_bytes().to_vec());
            txn.commit(mem)?;
            let expected = self.shadow.pop_front().expect("shadow out of sync");
            debug_assert_eq!(item, expected, "dequeued item mismatch");
            self.head += 1;
        }
        Ok(())
    }

    /// Verifies header indices and all resident items against the shadow.
    ///
    /// # Errors
    ///
    /// Returns a description of the first divergence.
    pub fn verify<M: PMem>(&mut self, mem: &mut M) -> Result<(), String> {
        let head = mem.read_u64(self.header_base);
        let tail = mem.read_u64(self.header_base + 8);
        if head != self.head || tail != self.tail {
            return Err(format!(
                "queue indices diverge: persistent ({head},{tail}) vs shadow ({},{})",
                self.head, self.tail
            ));
        }
        let mut buf = vec![0u8; self.item_bytes as usize];
        for (k, expected) in self.shadow.iter().enumerate() {
            mem.read(self.slot_addr(self.head + k as u64), &mut buf);
            if &buf != expected {
                return Err(format!("queue item {k} diverges from shadow"));
            }
        }
        Ok(())
    }
}

/// Validates a queue's persistent image without a shadow model (used on
/// post-crash recovered memory): recomputes the layout from the
/// construction parameters and checks the header invariants.
///
/// Returns the recovered `(head, tail)` on success.
///
/// # Errors
///
/// Returns a description of the violated invariant.
pub fn check_recovered<M: PMem>(
    mem: &mut M,
    base: u64,
    req_bytes: u64,
    capacity: u64,
) -> Result<(u64, u64), String> {
    // Mirror of `QueueWorkload::new`'s arena layout.
    let log_bytes = 2 * req_bytes + 4096;
    let header_base = base + log_bytes; // 64-aligned because inputs are
    let head = mem.read_u64(header_base);
    let tail = mem.read_u64(header_base + 8);
    if tail < head {
        return Err(format!("queue indices inverted: head {head} > tail {tail}"));
    }
    if tail - head > capacity {
        return Err(format!(
            "queue over capacity: {} items in a {capacity}-slot ring",
            tail - head
        ));
    }
    Ok((head, tail))
}

#[cfg(test)]
mod tests {
    use super::*;
    use supermem_persist::VecMem;

    fn build(mem: &mut VecMem) -> QueueWorkload {
        QueueWorkload::new(mem, 0, 1 << 20, 128, 64, 9)
    }

    #[test]
    fn starts_empty_and_verifies() {
        let mut mem = VecMem::new();
        let mut q = build(&mut mem);
        assert!(q.is_empty());
        q.verify(&mut mem).unwrap();
    }

    #[test]
    fn mixed_operations_track_shadow() {
        let mut mem = VecMem::new();
        let mut q = build(&mut mem);
        for _ in 0..500 {
            q.step(&mut mem).unwrap();
        }
        q.verify(&mut mem).unwrap();
        assert_eq!(q.committed(), 500);
        assert_eq!(q.len(), q.shadow.len() as u64);
    }

    #[test]
    fn ring_wraps_around() {
        let mut mem = VecMem::new();
        let mut q = QueueWorkload::new(&mut mem, 0, 1 << 20, 64, 4, 3);
        for _ in 0..100 {
            q.step(&mut mem).unwrap();
        }
        assert!(q.tail > q.capacity, "indices must wrap the ring");
        q.verify(&mut mem).unwrap();
    }

    #[test]
    fn never_exceeds_capacity_or_underflows() {
        let mut mem = VecMem::new();
        let mut q = QueueWorkload::new(&mut mem, 0, 1 << 20, 64, 8, 5);
        for _ in 0..1000 {
            q.step(&mut mem).unwrap();
            assert!(q.len() < q.capacity);
        }
    }

    #[test]
    fn check_recovered_matches_layout() {
        let mut mem = VecMem::new();
        let mut q = QueueWorkload::new(&mut mem, 0, 1 << 20, 128, 64, 9);
        for _ in 0..100 {
            q.step(&mut mem).unwrap();
        }
        let (head, tail) = check_recovered(&mut mem, 0, 128, 64).unwrap();
        assert_eq!((head, tail), (q.head, q.tail));
    }

    #[test]
    fn check_recovered_rejects_inverted_indices() {
        let mut mem = VecMem::new();
        let q = QueueWorkload::new(&mut mem, 0, 1 << 20, 128, 64, 9);
        mem.write_u64(q.header_base, 5);
        mem.write_u64(q.header_base + 8, 3);
        assert!(check_recovered(&mut mem, 0, 128, 64).is_err());
    }

    #[test]
    fn detects_header_corruption() {
        let mut mem = VecMem::new();
        let mut q = build(&mut mem);
        q.step(&mut mem).unwrap();
        mem.write_u64(q.header_base + 8, 999);
        assert!(q.verify(&mut mem).is_err());
    }
}
