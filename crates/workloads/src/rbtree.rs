//! The `RB-tree` workload: transactional inserts into a red-black tree.
//!
//! One key-value item per node (the paper's "structure of one item per
//! node", §5.4): every insert touches a handful of scattered nodes
//! (path + rotations), giving this workload *poor* spatial locality.

use std::collections::BTreeMap;

use supermem_sim::FxHashMap;

use supermem_persist::{Arena, PMem, TxnError, TxnManager};
use supermem_sim::SplitMix64;

/// Null node address (the NIL sentinel).
const NIL: u64 = 0;

/// Bytes of node metadata preceding the inline value:
/// key(8) left(8) right(8) parent(8) color(8).
const NODE_HEADER: u64 = 40;

/// A decoded node header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RbNode {
    key: u64,
    left: u64,
    right: u64,
    parent: u64,
    red: bool,
}

impl RbNode {
    fn encode(&self) -> [u8; NODE_HEADER as usize] {
        let mut out = [0u8; NODE_HEADER as usize];
        out[..8].copy_from_slice(&self.key.to_le_bytes());
        out[8..16].copy_from_slice(&self.left.to_le_bytes());
        out[16..24].copy_from_slice(&self.right.to_le_bytes());
        out[24..32].copy_from_slice(&self.parent.to_le_bytes());
        out[32..40].copy_from_slice(&(self.red as u64).to_le_bytes());
        out
    }

    fn decode(bytes: &[u8]) -> Self {
        let rd = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().unwrap());
        Self {
            key: rd(0),
            left: rd(8),
            right: rd(16),
            parent: rd(24),
            red: rd(32) != 0,
        }
    }
}

/// Volatile working set of one insert: node headers read and mutated
/// before being staged into the transaction exactly once each.
struct Ctx<'m, M: PMem> {
    mem: &'m mut M,
    cache: FxHashMap<u64, RbNode>,
    dirty: Vec<u64>,
    root: u64,
}

impl<M: PMem> Ctx<'_, M> {
    fn node(&mut self, addr: u64) -> RbNode {
        debug_assert_ne!(addr, NIL, "NIL dereference");
        if let Some(n) = self.cache.get(&addr) {
            return *n;
        }
        let mut buf = [0u8; NODE_HEADER as usize];
        self.mem.read(addr, &mut buf);
        let n = RbNode::decode(&buf);
        self.cache.insert(addr, n);
        n
    }

    fn update(&mut self, addr: u64, f: impl FnOnce(&mut RbNode)) {
        let mut n = self.node(addr);
        f(&mut n);
        self.cache.insert(addr, n);
        if !self.dirty.contains(&addr) {
            self.dirty.push(addr);
        }
    }

    fn is_red(&mut self, addr: u64) -> bool {
        addr != NIL && self.node(addr).red
    }

    fn rotate_left(&mut self, x: u64) {
        let y = self.node(x).right;
        debug_assert_ne!(y, NIL, "rotate_left needs a right child");
        let y_left = self.node(y).left;
        self.update(x, |n| n.right = y_left);
        if y_left != NIL {
            self.update(y_left, |n| n.parent = x);
        }
        let x_parent = self.node(x).parent;
        self.update(y, |n| n.parent = x_parent);
        if x_parent == NIL {
            self.root = y;
        } else if self.node(x_parent).left == x {
            self.update(x_parent, |n| n.left = y);
        } else {
            self.update(x_parent, |n| n.right = y);
        }
        self.update(y, |n| n.left = x);
        self.update(x, |n| n.parent = y);
    }

    fn rotate_right(&mut self, x: u64) {
        let y = self.node(x).left;
        debug_assert_ne!(y, NIL, "rotate_right needs a left child");
        let y_right = self.node(y).right;
        self.update(x, |n| n.left = y_right);
        if y_right != NIL {
            self.update(y_right, |n| n.parent = x);
        }
        let x_parent = self.node(x).parent;
        self.update(y, |n| n.parent = x_parent);
        if x_parent == NIL {
            self.root = y;
        } else if self.node(x_parent).right == x {
            self.update(x_parent, |n| n.right = y);
        } else {
            self.update(x_parent, |n| n.left = y);
        }
        self.update(y, |n| n.right = x);
        self.update(x, |n| n.parent = y);
    }

    /// CLRS RB-INSERT-FIXUP from the freshly inserted red node `z`.
    fn fixup(&mut self, mut z: u64) {
        loop {
            let p = self.node(z).parent;
            if p == NIL || !self.is_red(p) {
                break;
            }
            let g = self.node(p).parent;
            debug_assert_ne!(g, NIL, "red parent must have a grandparent");
            if self.node(g).left == p {
                let uncle = self.node(g).right;
                if self.is_red(uncle) {
                    self.update(p, |n| n.red = false);
                    self.update(uncle, |n| n.red = false);
                    self.update(g, |n| n.red = true);
                    z = g;
                } else {
                    if self.node(p).right == z {
                        z = p;
                        self.rotate_left(z);
                    }
                    let p = self.node(z).parent;
                    let g = self.node(p).parent;
                    self.update(p, |n| n.red = false);
                    self.update(g, |n| n.red = true);
                    self.rotate_right(g);
                }
            } else {
                let uncle = self.node(g).left;
                if self.is_red(uncle) {
                    self.update(p, |n| n.red = false);
                    self.update(uncle, |n| n.red = false);
                    self.update(g, |n| n.red = true);
                    z = g;
                } else {
                    if self.node(p).left == z {
                        z = p;
                        self.rotate_right(z);
                    }
                    let p = self.node(z).parent;
                    let g = self.node(p).parent;
                    self.update(p, |n| n.red = false);
                    self.update(g, |n| n.red = true);
                    self.rotate_left(g);
                }
            }
        }
        let root = self.root;
        if self.is_red(root) {
            self.update(root, |n| n.red = false);
        }
    }
}

/// Persistent red-black tree with transactional inserts.
#[derive(Debug, Clone)]
pub struct RbTreeWorkload {
    txm: TxnManager,
    arena: Arena,
    header_base: u64,
    node_bytes: u64,
    value_bytes: u64,
    root: u64,
    rng: SplitMix64,
    shadow: BTreeMap<u64, Vec<u8>>,
    addr_of: FxHashMap<u64, u64>,
    key_space: u64,
}

impl RbTreeWorkload {
    /// Creates an empty tree in `[base, base + len)` with `req_bytes`
    /// transaction request size (inline values of `req_bytes - 40`).
    ///
    /// # Panics
    ///
    /// Panics if the region is too small or `req_bytes <= 40`.
    pub fn new<M: PMem>(mem: &mut M, base: u64, len: u64, req_bytes: u64, seed: u64) -> Self {
        assert!(req_bytes > NODE_HEADER, "request must exceed node header");
        let value_bytes = req_bytes - NODE_HEADER;
        let node_bytes = (NODE_HEADER + value_bytes + 63) & !63;
        let mut arena = Arena::new(base, len);
        let log_bytes = 4 * req_bytes + 8192;
        let log_base = arena
            .alloc(log_bytes, 64)
            .expect("region too small for log");
        let header_base = arena.alloc(64, 64).expect("region too small for header");
        mem.write_u64(header_base, NIL);
        mem.clwb(header_base, 8);
        mem.sfence();
        Self {
            txm: TxnManager::new(log_base, log_bytes),
            arena,
            header_base,
            node_bytes,
            value_bytes,
            root: NIL,
            rng: SplitMix64::new(seed),
            shadow: BTreeMap::new(),
            addr_of: FxHashMap::default(),
            key_space: u64::MAX / 2,
        }
    }

    /// Restricts keys to `[0, key_space)` (test hook).
    pub fn with_key_space(mut self, key_space: u64) -> Self {
        assert!(key_space > 0);
        self.key_space = key_space;
        self
    }

    /// Committed transactions so far.
    pub fn committed(&self) -> u64 {
        self.txm.committed()
    }

    /// Keys currently stored.
    pub fn len(&self) -> usize {
        self.shadow.len()
    }

    /// True if the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.shadow.is_empty()
    }

    /// Inserts one random key/value pair in a durable transaction.
    ///
    /// # Errors
    ///
    /// Propagates [`TxnError`] from the commit.
    pub fn step<M: PMem>(&mut self, mem: &mut M) -> Result<(), TxnError> {
        let key = self.rng.next_below(self.key_space);
        let mut value = vec![0u8; self.value_bytes as usize];
        self.rng.fill_bytes(&mut value);
        self.insert(mem, key, value)
    }

    /// Inserts a specific key/value pair.
    ///
    /// # Errors
    ///
    /// Propagates [`TxnError`] from the commit.
    pub fn insert<M: PMem>(
        &mut self,
        mem: &mut M,
        key: u64,
        value: Vec<u8>,
    ) -> Result<(), TxnError> {
        assert!(
            value.len() as u64 <= self.value_bytes,
            "value exceeds the node's inline capacity"
        );
        // Duplicate key: update the value in place, no structural change.
        if let Some(&addr) = self.addr_of.get(&key) {
            let mut txn = self.txm.begin();
            txn.write(addr + NODE_HEADER, value.clone());
            txn.commit(mem)?;
            self.shadow.insert(key, value);
            return Ok(());
        }

        let new_addr = self
            .arena
            .alloc(self.node_bytes, 64)
            .expect("node space exhausted");
        let mut ctx = Ctx {
            mem,
            cache: FxHashMap::default(),
            dirty: Vec::new(),
            root: self.root,
        };
        // BST descent.
        let mut parent = NIL;
        let mut cur = ctx.root;
        while cur != NIL {
            parent = cur;
            let n = ctx.node(cur);
            cur = if key < n.key { n.left } else { n.right };
        }
        ctx.cache.insert(
            new_addr,
            RbNode {
                key,
                left: NIL,
                right: NIL,
                parent,
                red: true,
            },
        );
        ctx.dirty.push(new_addr);
        if parent == NIL {
            ctx.root = new_addr;
        } else if key < ctx.node(parent).key {
            ctx.update(parent, |n| n.left = new_addr);
        } else {
            ctx.update(parent, |n| n.right = new_addr);
        }
        ctx.fixup(new_addr);

        // Stage every touched node header once, the new value, and the
        // root pointer; then commit durably.
        let Ctx {
            cache,
            dirty,
            root: new_root,
            ..
        } = ctx;
        let mut txn = self.txm.begin();
        for addr in dirty {
            txn.write(addr, cache[&addr].encode().to_vec());
        }
        txn.write(new_addr + NODE_HEADER, value.clone());
        if new_root != self.root {
            txn.write(self.header_base, new_root.to_le_bytes().to_vec());
        }
        let saved_root = self.root;
        self.root = new_root;
        match txn.commit(mem) {
            Ok(()) => {
                self.shadow.insert(key, value);
                self.addr_of.insert(key, new_addr);
                Ok(())
            }
            Err(e) => {
                self.root = saved_root;
                Err(e)
            }
        }
    }

    /// Verifies red-black invariants (BST order, no red-red edge,
    /// uniform black height, parent-pointer integrity) and content
    /// against the shadow.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation.
    pub fn verify<M: PMem>(&mut self, mem: &mut M) -> Result<(), String> {
        let root = mem.read_u64(self.header_base);
        if root != self.root {
            return Err("persistent root diverges from volatile".into());
        }
        let mut collected = BTreeMap::new();
        if root != NIL {
            let mut buf = [0u8; NODE_HEADER as usize];
            mem.read(root, &mut buf);
            if RbNode::decode(&buf).red {
                return Err("root is red".into());
            }
            Self::check(
                mem,
                CheckFrame {
                    addr: root,
                    expect_parent: NIL,
                    lo: None,
                    hi: None,
                    depth: 0,
                },
                &mut collected,
            )?;
        }
        if collected.len() != self.shadow.len() {
            return Err(format!(
                "key count diverges: tree {} vs shadow {}",
                collected.len(),
                self.shadow.len()
            ));
        }
        for (k, addr) in &collected {
            let expected = &self.shadow[k];
            let mut buf = vec![0u8; expected.len()];
            mem.read(addr + NODE_HEADER, &mut buf);
            if &buf != expected {
                return Err(format!("value diverges for key {k}"));
            }
        }
        Ok(())
    }

    fn check<M: PMem>(
        mem: &mut M,
        frame: CheckFrame,
        out: &mut BTreeMap<u64, u64>,
    ) -> Result<usize, String> {
        let CheckFrame {
            addr,
            expect_parent,
            lo,
            hi,
            depth,
        } = frame;
        if addr == NIL {
            return Ok(1); // NIL counts one black
        }
        if depth > 128 {
            return Err("tree too deep: cycle suspected".into());
        }
        let mut buf = [0u8; NODE_HEADER as usize];
        mem.read(addr, &mut buf);
        let n = RbNode::decode(&buf);
        if n.parent != expect_parent {
            return Err(format!("parent pointer wrong at node {addr:#x}"));
        }
        if lo.is_some_and(|l| n.key < l) || hi.is_some_and(|h| n.key >= h) {
            return Err(format!("BST order violated at key {}", n.key));
        }
        if n.red {
            for child in [n.left, n.right] {
                if child != NIL {
                    let mut cb = [0u8; NODE_HEADER as usize];
                    mem.read(child, &mut cb);
                    if RbNode::decode(&cb).red {
                        return Err(format!("red-red edge at key {}", n.key));
                    }
                }
            }
        }
        out.insert(n.key, addr);
        let lb = Self::check(
            mem,
            CheckFrame {
                addr: n.left,
                expect_parent: addr,
                lo,
                hi: Some(n.key),
                depth: depth + 1,
            },
            out,
        )?;
        let rb = Self::check(
            mem,
            CheckFrame {
                addr: n.right,
                expect_parent: addr,
                lo: Some(n.key + 1),
                hi,
                depth: depth + 1,
            },
            out,
        )?;
        if lb != rb {
            return Err(format!("black height mismatch under key {}", n.key));
        }
        Ok(lb + usize::from(!n.red))
    }
}

/// Validates a red-black tree's persistent image without a shadow model
/// (used on post-crash recovered memory): recomputes the layout, walks
/// from the durable root, and checks BST order, the no-red-red rule,
/// uniform black height, and parent-pointer integrity.
///
/// Returns the number of reachable keys on success.
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn check_recovered<M: PMem>(mem: &mut M, base: u64, req_bytes: u64) -> Result<usize, String> {
    // Mirror of `RbTreeWorkload::new`'s arena layout.
    let log_bytes = 4 * req_bytes + 8192;
    let header_base = base + log_bytes;
    let root = mem.read_u64(header_base);
    if root == NIL {
        return Ok(0);
    }
    let mut buf = [0u8; NODE_HEADER as usize];
    mem.read(root, &mut buf);
    if RbNode::decode(&buf).red {
        return Err("root is red".into());
    }
    let mut count = 0usize;
    check_recovered_node(
        mem,
        CheckFrame {
            addr: root,
            expect_parent: NIL,
            lo: None,
            hi: None,
            depth: 0,
        },
        &mut count,
    )?;
    Ok(count)
}

/// One frame of a recursive check: the node to inspect plus the parent
/// pointer, BST bounds, and depth it inherits.
struct CheckFrame {
    /// Node address (`NIL` for an absent child).
    addr: u64,
    /// The parent this node's back-pointer must name.
    expect_parent: u64,
    /// Inclusive lower BST bound, if any.
    lo: Option<u64>,
    /// Exclusive upper BST bound, if any.
    hi: Option<u64>,
    /// Distance from the root.
    depth: usize,
}

fn check_recovered_node<M: PMem>(
    mem: &mut M,
    frame: CheckFrame,
    count: &mut usize,
) -> Result<usize, String> {
    let CheckFrame {
        addr,
        expect_parent,
        lo,
        hi,
        depth,
    } = frame;
    if addr == NIL {
        return Ok(1);
    }
    if depth > 128 {
        return Err("tree too deep: cycle or garbage pointer".into());
    }
    let mut buf = [0u8; NODE_HEADER as usize];
    mem.read(addr, &mut buf);
    let n = RbNode::decode(&buf);
    if n.parent != expect_parent {
        return Err(format!("parent pointer wrong at node {addr:#x}"));
    }
    if lo.is_some_and(|l| n.key < l) || hi.is_some_and(|h| n.key >= h) {
        return Err(format!("BST order violated at key {}", n.key));
    }
    if n.red {
        for child in [n.left, n.right] {
            if child != NIL {
                let mut cb = [0u8; NODE_HEADER as usize];
                mem.read(child, &mut cb);
                if RbNode::decode(&cb).red {
                    return Err(format!("red-red edge at key {}", n.key));
                }
            }
        }
    }
    *count += 1;
    let lb = check_recovered_node(
        mem,
        CheckFrame {
            addr: n.left,
            expect_parent: addr,
            lo,
            hi: Some(n.key),
            depth: depth + 1,
        },
        count,
    )?;
    let rb = check_recovered_node(
        mem,
        CheckFrame {
            addr: n.right,
            expect_parent: addr,
            lo: Some(n.key + 1),
            hi,
            depth: depth + 1,
        },
        count,
    )?;
    if lb != rb {
        return Err(format!("black height mismatch under key {}", n.key));
    }
    Ok(lb + usize::from(!n.red))
}

#[cfg(test)]
mod tests {
    use super::*;
    use supermem_persist::VecMem;

    fn build(mem: &mut VecMem) -> RbTreeWorkload {
        RbTreeWorkload::new(mem, 0, 1 << 24, 128, 21)
    }

    #[test]
    fn empty_tree_verifies() {
        let mut mem = VecMem::new();
        let mut t = build(&mut mem);
        t.verify(&mut mem).unwrap();
    }

    #[test]
    fn sequential_inserts_stay_balanced() {
        let mut mem = VecMem::new();
        let mut t = build(&mut mem);
        for k in 0..256u64 {
            t.insert(&mut mem, k, vec![k as u8; 16]).unwrap();
            t.verify(&mut mem).unwrap();
        }
    }

    #[test]
    fn reverse_inserts_stay_balanced() {
        let mut mem = VecMem::new();
        let mut t = build(&mut mem);
        for k in (0..256u64).rev() {
            t.insert(&mut mem, k, vec![k as u8; 16]).unwrap();
        }
        t.verify(&mut mem).unwrap();
    }

    #[test]
    fn random_steps_match_shadow() {
        let mut mem = VecMem::new();
        let mut t = build(&mut mem);
        for _ in 0..400 {
            t.step(&mut mem).unwrap();
        }
        t.verify(&mut mem).unwrap();
        assert_eq!(t.committed(), 400);
    }

    #[test]
    fn duplicates_update_in_place() {
        let mut mem = VecMem::new();
        let mut t = build(&mut mem);
        t.insert(&mut mem, 9, vec![1; 88]).unwrap();
        t.insert(&mut mem, 9, vec![2; 88]).unwrap();
        t.verify(&mut mem).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn small_key_space_mixes_inserts_and_updates() {
        let mut mem = VecMem::new();
        let mut t = build(&mut mem).with_key_space(32);
        for _ in 0..300 {
            t.step(&mut mem).unwrap();
        }
        t.verify(&mut mem).unwrap();
        assert!(t.len() <= 32);
    }

    #[test]
    fn check_recovered_counts_nodes() {
        let mut mem = VecMem::new();
        let mut t = build(&mut mem);
        for k in 0..100u64 {
            t.insert(&mut mem, k, vec![k as u8; 16]).unwrap();
        }
        assert_eq!(check_recovered(&mut mem, 0, 128).unwrap(), 100);
    }

    #[test]
    fn check_recovered_detects_color_corruption() {
        let mut mem = VecMem::new();
        let mut t = build(&mut mem);
        for k in 0..100u64 {
            t.insert(&mut mem, k, vec![1; 8]).unwrap();
        }
        // Paint the root red.
        let header = 4 * 128 + 8192;
        let root = mem.read_u64(header);
        mem.write_u64(root + 32, 1);
        assert!(check_recovered(&mut mem, 0, 128).is_err());
    }

    #[test]
    fn node_header_roundtrip() {
        let n = RbNode {
            key: 1,
            left: 2,
            right: 3,
            parent: 4,
            red: true,
        };
        assert_eq!(RbNode::decode(&n.encode()), n);
    }
}

#[cfg(test)]
mod randomized {
    //! Deterministic randomized tests (seeded SplitMix64 stands in for
    //! proptest, which is unavailable in offline builds).
    use super::*;
    use supermem_persist::VecMem;
    use supermem_sim::SplitMix64;

    #[test]
    fn arbitrary_insert_sequences_keep_rb_invariants() {
        let mut rng = SplitMix64::new(0x4B73);
        for _ in 0..24 {
            let mut mem = VecMem::new();
            let mut t = RbTreeWorkload::new(&mut mem, 0, 1 << 24, 64, 0);
            for i in 0..rng.next_range(1, 120) {
                t.insert(&mut mem, rng.next_below(256), vec![i as u8; 24])
                    .unwrap();
            }
            assert!(t.verify(&mut mem).is_ok());
        }
    }
}
