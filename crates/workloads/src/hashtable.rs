//! The `hash table` workload: transactional inserts into random buckets.
//!
//! Keys hash to uniformly random buckets, so consecutive transactions
//! touch unrelated pages — the *poor* spatial locality case of §5.4
//! where counter-cache capacity matters most.

use supermem_sim::FxHashMap;

use supermem_persist::{Arena, PMem, TxnError, TxnManager};
use supermem_sim::SplitMix64;

/// Bucket header bytes preceding the value: `key: u64`, `state: u64`.
const BUCKET_HEADER: u64 = 16;

/// `state` value marking an occupied bucket.
const OCCUPIED: u64 = 0x0CC0_0CC0_0CC0_0CC0;

/// A persistent direct-mapped hash table (one slot per bucket; an insert
/// to an occupied bucket overwrites it, mirrored by the shadow).
#[derive(Debug, Clone)]
pub struct HashTableWorkload {
    txm: TxnManager,
    buckets_base: u64,
    bucket_bytes: u64,
    value_bytes: u64,
    nbuckets: u64,
    rng: SplitMix64,
    shadow: FxHashMap<u64, (u64, Vec<u8>)>,
}

impl HashTableWorkload {
    /// Creates the table in `[base, base + len)` with `nbuckets` buckets
    /// and `req_bytes`-sized insert transactions (value =
    /// `req_bytes - 16` header bytes).
    ///
    /// # Panics
    ///
    /// Panics if the region is too small, `nbuckets` is not a power of
    /// two, or `req_bytes <= 16`.
    pub fn new<M: PMem>(
        mem: &mut M,
        base: u64,
        len: u64,
        req_bytes: u64,
        nbuckets: u64,
        seed: u64,
    ) -> Self {
        assert!(nbuckets.is_power_of_two(), "bucket count must be 2^k");
        assert!(req_bytes > BUCKET_HEADER, "request must exceed the header");
        let value_bytes = req_bytes - BUCKET_HEADER;
        // Round bucket stride to whole lines so buckets never share lines.
        let bucket_bytes = (BUCKET_HEADER + value_bytes + 63) & !63;
        let mut arena = Arena::new(base, len);
        let log_bytes = 2 * req_bytes + 4096;
        let log_base = arena
            .alloc(log_bytes, 64)
            .expect("region too small for log");
        let buckets_base = arena
            .alloc(nbuckets * bucket_bytes, 64)
            .expect("region too small for buckets");
        // Buckets start logically empty; state words are written lazily
        // on first insert, so no bulk initialization is needed (absent
        // buckets simply never match OCCUPIED in the shadow).
        let _ = mem;
        Self {
            txm: TxnManager::new(log_base, log_bytes),
            buckets_base,
            bucket_bytes,
            value_bytes,
            nbuckets,
            rng: SplitMix64::new(seed),
            shadow: FxHashMap::default(),
        }
    }

    fn bucket_addr(&self, b: u64) -> u64 {
        self.buckets_base + b * self.bucket_bytes
    }

    fn hash(&self, key: u64) -> u64 {
        // Fibonacci hashing; keys are already random but this keeps the
        // mapping principled for adversarial key patterns in tests.
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> (64 - self.nbuckets.trailing_zeros() as u64)
            & (self.nbuckets - 1)
    }

    /// Number of distinct occupied buckets.
    pub fn occupied(&self) -> usize {
        self.shadow.len()
    }

    /// Committed transactions so far.
    pub fn committed(&self) -> u64 {
        self.txm.committed()
    }

    /// Inserts a random key/value pair in one durable transaction.
    ///
    /// # Errors
    ///
    /// Propagates [`TxnError`] from the commit.
    pub fn step<M: PMem>(&mut self, mem: &mut M) -> Result<(), TxnError> {
        let key = self.rng.next_u64() | 1; // never zero
        let b = self.hash(key);
        let mut value = vec![0u8; self.value_bytes as usize];
        self.rng.fill_bytes(&mut value);
        let addr = self.bucket_addr(b);
        let mut txn = self.txm.begin();
        let mut header = Vec::with_capacity(16);
        header.extend_from_slice(&key.to_le_bytes());
        header.extend_from_slice(&OCCUPIED.to_le_bytes());
        txn.write(addr, header);
        txn.write(addr + BUCKET_HEADER, value.clone());
        txn.commit(mem)?;
        self.shadow.insert(b, (key, value));
        Ok(())
    }

    /// Verifies every occupied bucket against the shadow.
    ///
    /// # Errors
    ///
    /// Returns a description of the first divergence.
    pub fn verify<M: PMem>(&mut self, mem: &mut M) -> Result<(), String> {
        for (&b, (key, value)) in &self.shadow {
            let addr = self.bucket_addr(b);
            let k = mem.read_u64(addr);
            let state = mem.read_u64(addr + 8);
            if state != OCCUPIED {
                return Err(format!("bucket {b} not marked occupied"));
            }
            if k != *key {
                return Err(format!("bucket {b} key diverges"));
            }
            let mut buf = vec![0u8; self.value_bytes as usize];
            mem.read(addr + BUCKET_HEADER, &mut buf);
            if &buf != value {
                return Err(format!("bucket {b} value diverges"));
            }
        }
        Ok(())
    }
}

/// Validates a hash table's persistent image without a shadow model
/// (used on post-crash recovered memory): every bucket whose state word
/// reads OCCUPIED must hold a key that actually hashes to that bucket.
/// A torn or mis-decrypted bucket fails this with overwhelming
/// probability.
///
/// Returns the number of occupied buckets on success.
///
/// # Errors
///
/// Returns a description of the first inconsistent bucket.
pub fn check_recovered<M: PMem>(
    mem: &mut M,
    base: u64,
    req_bytes: u64,
    nbuckets: u64,
) -> Result<u64, String> {
    // Mirror of `HashTableWorkload::new`'s layout.
    let value_bytes = req_bytes - BUCKET_HEADER;
    let bucket_bytes = (BUCKET_HEADER + value_bytes + 63) & !63;
    let log_bytes = 2 * req_bytes + 4096;
    let buckets_base = base + log_bytes;
    let shift = 64 - nbuckets.trailing_zeros() as u64;
    let mut occupied = 0;
    for b in 0..nbuckets {
        let addr = buckets_base + b * bucket_bytes;
        let state = mem.read_u64(addr + 8);
        if state != OCCUPIED {
            continue; // empty or garbage-but-unclaimed: fine either way
        }
        let key = mem.read_u64(addr);
        let expect = (key.wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> shift & (nbuckets - 1);
        if expect != b {
            return Err(format!("bucket {b} holds key {key:#x} hashing to {expect}"));
        }
        occupied += 1;
    }
    Ok(occupied)
}

#[cfg(test)]
mod tests {
    use super::*;
    use supermem_persist::VecMem;

    fn build(mem: &mut VecMem) -> HashTableWorkload {
        HashTableWorkload::new(mem, 0, 1 << 22, 256, 1024, 11)
    }

    #[test]
    fn inserts_verify_against_shadow() {
        let mut mem = VecMem::new();
        let mut h = build(&mut mem);
        for _ in 0..300 {
            h.step(&mut mem).unwrap();
        }
        h.verify(&mut mem).unwrap();
        assert!(h.occupied() > 200, "most buckets distinct for random keys");
    }

    #[test]
    fn overwrite_semantics_on_collision() {
        let mut mem = VecMem::new();
        let mut h = HashTableWorkload::new(&mut mem, 0, 1 << 20, 64, 2, 13);
        for _ in 0..50 {
            h.step(&mut mem).unwrap();
        }
        // Only 2 buckets: heavy collisions, last write wins everywhere.
        assert!(h.occupied() <= 2);
        h.verify(&mut mem).unwrap();
    }

    #[test]
    fn hash_stays_in_range() {
        let mut mem = VecMem::new();
        let h = build(&mut mem);
        let mut rng = SplitMix64::new(0);
        for _ in 0..1000 {
            assert!(h.hash(rng.next_u64()) < h.nbuckets);
        }
    }

    #[test]
    fn buckets_are_line_aligned_and_disjoint() {
        let mut mem = VecMem::new();
        let h = build(&mut mem);
        assert_eq!(h.bucket_bytes % 64, 0);
        assert!(h.bucket_addr(1) - h.bucket_addr(0) >= BUCKET_HEADER + h.value_bytes);
    }

    #[test]
    fn check_recovered_counts_occupied_buckets() {
        let mut mem = VecMem::new();
        let mut h = build(&mut mem);
        for _ in 0..50 {
            h.step(&mut mem).unwrap();
        }
        let n = check_recovered(&mut mem, 0, 256, 1024).unwrap();
        assert_eq!(n as usize, h.occupied());
    }

    #[test]
    fn check_recovered_rejects_misplaced_key() {
        let mut mem = VecMem::new();
        let mut h = build(&mut mem);
        h.step(&mut mem).unwrap();
        let (&b, _) = h.shadow.iter().next().unwrap();
        // Replace the key with one that hashes elsewhere (keep OCCUPIED).
        mem.write_u64(h.bucket_addr(b), 0xDEAD_BEEF_DEAD_BEEF);
        assert!(check_recovered(&mut mem, 0, 256, 1024).is_err());
    }

    #[test]
    fn detects_value_corruption() {
        let mut mem = VecMem::new();
        let mut h = build(&mut mem);
        h.step(&mut mem).unwrap();
        let (&b, _) = h.shadow.iter().next().unwrap();
        let addr = h.bucket_addr(b) + BUCKET_HEADER;
        mem.write(addr, &[0xDD; 4]);
        assert!(h.verify(&mut mem).is_err());
    }

    #[test]
    #[should_panic(expected = "2^k")]
    fn rejects_non_pow2_buckets() {
        let mut mem = VecMem::new();
        HashTableWorkload::new(&mut mem, 0, 1 << 20, 64, 3, 0);
    }
}
