//! Counter-mode encryption of 64-byte memory lines (paper §2.2.4, Figure 3).
//!
//! A one-time pad (OTP) is derived from the secret key, the line address,
//! and the line's counter (major ‖ minor). Encryption and decryption are
//! both "XOR with the OTP", which is what lets decryption overlap the NVM
//! read (Figure 2b). The 24-cycle pipeline *latency* of the AES engine is
//! not modeled here — values are exact, timing lives in the memory
//! controller — keeping this crate purely functional.

use crate::aes::Aes128;

/// A counter-mode encryption engine for 64-byte memory lines.
///
/// # Examples
///
/// ```
/// use supermem_crypto::EncryptionEngine;
///
/// let e = EncryptionEngine::new([1u8; 16]);
/// let line = [9u8; 64];
/// let ct = e.encrypt_line(&line, 0x40, 0, 1);
/// assert_eq!(e.decrypt_line(&ct, 0x40, 0, 1), line);
/// ```
#[derive(Debug, Clone)]
pub struct EncryptionEngine {
    aes: Aes128,
}

impl EncryptionEngine {
    /// Creates an engine from a 128-bit secret key.
    pub fn new(key: [u8; 16]) -> Self {
        Self {
            aes: Aes128::new(key),
        }
    }

    /// Derives the 64-byte one-time pad for (`line_addr`, `major`,
    /// `minor`).
    ///
    /// Four AES blocks are generated, one per 16-byte chunk of the line,
    /// each seeded with the line address, the counter, and the chunk
    /// index, so no pad block is ever reused — the security premise of
    /// counter-mode encryption (§2.2.4).
    ///
    /// Only the low 48 bits of `major` participate in the seed; a major
    /// counter above 2^48 is unreachable within NVM endurance (the same
    /// argument the paper makes for 64 bits).
    pub fn otp(&self, line_addr: u64, major: u64, minor: u8) -> [u8; 64] {
        // The four chunk seeds share bytes 0..15 (address ‖ major ‖
        // minor); only the chunk-index byte varies, so the prefix is
        // assembled once. The AES key schedule was expanded once at
        // engine construction and is reused across all four blocks.
        let mut seed = [0u8; 16];
        seed[..8].copy_from_slice(&line_addr.to_le_bytes());
        seed[8..14].copy_from_slice(&major.to_le_bytes()[..6]);
        seed[14] = minor;
        let mut seeds = [seed; 4];
        for (idx, s) in seeds.iter_mut().enumerate() {
            s[15] = idx as u8;
        }
        // One four-block batch instead of four single-block calls: on
        // AES-NI hosts the blocks pipeline through the hardware AES unit
        // together (Aes128::encrypt4 dispatches, T-table fallback
        // elsewhere), which is the dominant host-side cost of a flush.
        let blocks = self.aes.encrypt4(seeds);
        let mut pad = [0u8; 64];
        for (idx, block) in blocks.iter().enumerate() {
            pad[idx * 16..idx * 16 + 16].copy_from_slice(block);
        }
        pad
    }

    /// Encrypts a 64-byte line: `cipher = plain XOR OTP`.
    pub fn encrypt_line(
        &self,
        plain: &[u8; 64],
        line_addr: u64,
        major: u64,
        minor: u8,
    ) -> [u8; 64] {
        let pad = self.otp(line_addr, major, minor);
        let mut out = [0u8; 64];
        for i in 0..64 {
            out[i] = plain[i] ^ pad[i];
        }
        out
    }

    /// Decrypts a 64-byte line: `plain = cipher XOR OTP`.
    ///
    /// Identical to [`EncryptionEngine::encrypt_line`] because XOR is an
    /// involution; the separate name keeps call sites legible.
    pub fn decrypt_line(
        &self,
        cipher: &[u8; 64],
        line_addr: u64,
        major: u64,
        minor: u8,
    ) -> [u8; 64] {
        self.encrypt_line(cipher, line_addr, major, minor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> EncryptionEngine {
        EncryptionEngine::new(*b"supermem-testkey")
    }

    #[test]
    fn roundtrip() {
        let e = engine();
        let mut plain = [0u8; 64];
        for (i, b) in plain.iter_mut().enumerate() {
            *b = i as u8;
        }
        let ct = e.encrypt_line(&plain, 0xABC0, 17, 99);
        assert_ne!(ct, plain);
        assert_eq!(e.decrypt_line(&ct, 0xABC0, 17, 99), plain);
    }

    #[test]
    fn wrong_minor_fails_to_decrypt() {
        let e = engine();
        let plain = [0x5Au8; 64];
        let ct = e.encrypt_line(&plain, 0x1000, 2, 3);
        assert_ne!(e.decrypt_line(&ct, 0x1000, 2, 4), plain);
    }

    #[test]
    fn wrong_major_fails_to_decrypt() {
        let e = engine();
        let plain = [0x5Au8; 64];
        let ct = e.encrypt_line(&plain, 0x1000, 2, 3);
        assert_ne!(e.decrypt_line(&ct, 0x1000, 3, 3), plain);
    }

    #[test]
    fn wrong_address_fails_to_decrypt() {
        let e = engine();
        let plain = [0x5Au8; 64];
        let ct = e.encrypt_line(&plain, 0x1000, 2, 3);
        assert_ne!(e.decrypt_line(&ct, 0x1040, 2, 3), plain);
    }

    #[test]
    fn same_plaintext_different_counters_different_ciphertexts() {
        // The dictionary/replay-attack resistance property of Figure 1c.
        let e = engine();
        let plain = [0u8; 64];
        let c1 = e.encrypt_line(&plain, 0x2000, 0, 1);
        let c2 = e.encrypt_line(&plain, 0x2000, 0, 2);
        let c3 = e.encrypt_line(&plain, 0x2000, 1, 1);
        assert_ne!(c1, c2);
        assert_ne!(c1, c3);
        assert_ne!(c2, c3);
    }

    #[test]
    fn same_plaintext_different_lines_different_ciphertexts() {
        let e = engine();
        let plain = [0u8; 64];
        assert_ne!(
            e.encrypt_line(&plain, 0x0, 0, 0),
            e.encrypt_line(&plain, 0x40, 0, 0)
        );
    }

    #[test]
    fn pad_blocks_within_line_differ() {
        // The four 16-byte OTP chunks must be distinct or patterns leak.
        let e = engine();
        let pad = e.otp(0x3000, 5, 6);
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_ne!(pad[i * 16..i * 16 + 16], pad[j * 16..j * 16 + 16]);
            }
        }
    }

    #[test]
    fn different_keys_produce_different_pads() {
        let a = EncryptionEngine::new([3; 16]);
        let b = EncryptionEngine::new([4; 16]);
        assert_ne!(a.otp(0x80, 1, 1), b.otp(0x80, 1, 1));
    }
}

#[cfg(test)]
mod randomized {
    //! Deterministic randomized tests (seeded SplitMix64 stands in for
    //! proptest, which is unavailable in offline builds).
    use super::*;
    use supermem_sim::SplitMix64;

    #[test]
    fn roundtrip_any_line() {
        let e = EncryptionEngine::new([0xA5; 16]);
        let mut rng = SplitMix64::new(0xE1C0DE);
        for _ in 0..512 {
            let mut line = [0u8; 64];
            rng.fill_bytes(&mut line);
            let addr = rng.next_u64();
            let major = rng.next_u64();
            let minor = rng.next_below(128) as u8;
            let ct = e.encrypt_line(&line, addr, major, minor);
            assert_eq!(
                e.decrypt_line(&ct, addr, major, minor),
                line,
                "addr={addr:#x} major={major} minor={minor}"
            );
        }
    }

    #[test]
    fn xor_depth_one() {
        // encrypt(encrypt(x)) == x: the pad application is an involution.
        let e = EncryptionEngine::new([0x77; 16]);
        let line = [0x3Cu8; 64];
        let mut rng = SplitMix64::new(0xDE97);
        for _ in 0..512 {
            let addr = rng.next_u64();
            let major = rng.next_below(1 << 48);
            let minor = rng.next_below(128) as u8;
            let twice = e.encrypt_line(
                &e.encrypt_line(&line, addr, major, minor),
                addr,
                major,
                minor,
            );
            assert_eq!(twice, line, "addr={addr:#x} major={major} minor={minor}");
        }
    }
}
