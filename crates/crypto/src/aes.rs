//! Software AES-128 block cipher (FIPS-197).
//!
//! A word-oriented, table-driven implementation: each round folds
//! SubBytes, ShiftRows, and MixColumns into four lookups in a
//! compile-time T-table (one rotated view per state row) plus the
//! round-key XOR, processing the state as four little-endian column
//! words. Decryption uses the equivalent inverse cipher (FIPS-197
//! §5.3.5) with InvMixColumns folded into the decryption round keys.
//! It stands in for the *hardware* AES pipeline the paper assumes,
//! whose timing is modeled separately in
//! [`crate::engine::EncryptionEngine`] — host speed matters because
//! every simulated flush performs four real AES blocks, and it is not
//! written for side-channel resistance.
//!
//! Correctness is pinned by the FIPS-197 Appendix B/C and SP 800-38A
//! test vectors, plus a randomized cross-check against the
//! straightforward byte-wise implementation kept in the test module.
//!
//! With the `simd-aes` feature (on by default) the cipher additionally
//! carries a hardware path: on x86-64 hosts whose CPU reports AES-NI,
//! [`Aes128::encrypt_block`], [`Aes128::decrypt_block`], and the
//! four-block [`Aes128::encrypt4`] dispatch at runtime to the `AESENC`/
//! `AESDEC` pipeline in the private `simd` module, falling back to the
//! T-table path
//! everywhere else (non-x86 targets, older CPUs, and miri, which does
//! not model vendor intrinsics). Both paths produce byte-identical
//! output — the `hardware_path_matches_ttable_path` test cross-checks
//! them exhaustively over random keys and blocks.

/// The AES S-box (FIPS-197 Figure 7).
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// The inverse S-box (FIPS-197 Figure 14).
const INV_SBOX: [u8; 256] = {
    let mut inv = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        inv[SBOX[i] as usize] = i as u8;
        i += 1;
    }
    inv
};

/// Round constants for the AES-128 key schedule.
const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// Multiplication by `x` in GF(2^8) modulo the AES polynomial.
#[inline]
const fn xtime(b: u8) -> u8 {
    (b << 1) ^ (0x1b & (((b >> 7) & 1).wrapping_neg()))
}

/// General multiplication in GF(2^8) (key-setup and table building).
const fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    let mut i = 0;
    while i < 8 {
        if b & 1 != 0 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
        i += 1;
    }
    p
}

/// Packs four row bytes of one state column into a little-endian word
/// (row 0 in the low byte, as the whole cipher below assumes).
const fn pack(b0: u8, b1: u8, b2: u8, b3: u8) -> u32 {
    (b0 as u32) | (b1 as u32) << 8 | (b2 as u32) << 16 | (b3 as u32) << 24
}

/// Encryption T-table: `TE0[x]` is column `(2·S(x), S(x), S(x), 3·S(x))`
/// — the MixColumns matrix applied to `S(x)` in row 0. The tables for
/// rows 1–3 are byte rotations of this one (`rotate_left(8·row)`).
const TE0: [u32; 256] = {
    let mut t = [0u32; 256];
    let mut x = 0;
    while x < 256 {
        let s = SBOX[x];
        t[x] = pack(gmul(s, 2), s, s, gmul(s, 3));
        x += 1;
    }
    t
};

/// Decryption T-table: `TD0[x]` is the InvMixColumns matrix applied to
/// `InvS(x)` in row 0: `(14·IS(x), 9·IS(x), 13·IS(x), 11·IS(x))`.
const TD0: [u32; 256] = {
    let mut t = [0u32; 256];
    let mut x = 0;
    while x < 256 {
        let s = INV_SBOX[x];
        t[x] = pack(gmul(s, 0x0e), gmul(s, 0x09), gmul(s, 0x0d), gmul(s, 0x0b));
        x += 1;
    }
    t
};

/// InvMixColumns on one little-endian column word (key-setup only; the
/// equivalent inverse cipher pushes this into the decryption keys).
fn inv_mix_word(w: u32) -> u32 {
    let [a0, a1, a2, a3] = w.to_le_bytes();
    pack(
        gmul(a0, 0x0e) ^ gmul(a1, 0x0b) ^ gmul(a2, 0x0d) ^ gmul(a3, 0x09),
        gmul(a0, 0x09) ^ gmul(a1, 0x0e) ^ gmul(a2, 0x0b) ^ gmul(a3, 0x0d),
        gmul(a0, 0x0d) ^ gmul(a1, 0x09) ^ gmul(a2, 0x0e) ^ gmul(a3, 0x0b),
        gmul(a0, 0x0b) ^ gmul(a1, 0x0d) ^ gmul(a2, 0x09) ^ gmul(a3, 0x0e),
    )
}

#[inline]
fn byte(w: u32, row: usize) -> usize {
    ((w >> (8 * row)) & 0xff) as usize
}

/// An expanded AES-128 key: encryption and (equivalent-inverse-cipher)
/// decryption round keys, one little-endian column word each.
///
/// # Examples
///
/// ```
/// use supermem_crypto::aes::Aes128;
///
/// let aes = Aes128::new([0u8; 16]);
/// let block = [0u8; 16];
/// let ct = aes.encrypt_block(block);
/// assert_eq!(aes.decrypt_block(ct), block);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Aes128 {
    /// Encryption round keys: word `4r + c` keys round `r`, column `c`.
    ek: [u32; 44],
    /// Decryption round keys, round order reversed and InvMixColumns
    /// applied to rounds 1..=9 (FIPS-197 §5.3.5).
    dk: [u32; 44],
}

impl Aes128 {
    /// Expands a 128-bit key into the full round-key schedule.
    pub fn new(key: [u8; 16]) -> Self {
        let mut w = [[0u8; 4]; 44];
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            w[i].copy_from_slice(chunk);
        }
        for i in 4..44 {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for t in &mut temp {
                    *t = SBOX[*t as usize];
                }
                temp[0] ^= RCON[i / 4 - 1];
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut ek = [0u32; 44];
        for (i, word) in w.iter().enumerate() {
            ek[i] = u32::from_le_bytes(*word);
        }
        let mut dk = [0u32; 44];
        for r in 0..=10 {
            for c in 0..4 {
                let word = ek[(10 - r) * 4 + c];
                dk[r * 4 + c] = if r == 0 || r == 10 {
                    word
                } else {
                    inv_mix_word(word)
                };
            }
        }
        Self { ek, dk }
    }

    /// Encrypts one 16-byte block.
    pub fn encrypt_block(&self, block: [u8; 16]) -> [u8; 16] {
        #[cfg(all(feature = "simd-aes", target_arch = "x86_64", not(miri)))]
        if aesni_available() {
            let mut b = block;
            // SAFETY: AES-NI support was verified at runtime just above.
            unsafe { simd::encrypt1(&self.ek, &mut b) };
            return b;
        }
        self.encrypt_block_ttable(block)
    }

    /// Encrypts four 16-byte blocks with the same key schedule.
    ///
    /// This is the shape of the counter-mode pad derivation (four pad
    /// blocks per 64-byte line): on AES-NI hosts all four blocks travel
    /// the hardware pipeline together, hiding the `AESENC` latency, and
    /// the round keys are loaded once instead of four times. The output
    /// is byte-for-byte what four [`Aes128::encrypt_block`] calls give.
    pub fn encrypt4(&self, blocks: [[u8; 16]; 4]) -> [[u8; 16]; 4] {
        let mut out = blocks;
        #[cfg(all(feature = "simd-aes", target_arch = "x86_64", not(miri)))]
        if aesni_available() {
            // SAFETY: AES-NI support was verified at runtime just above.
            unsafe { simd::encrypt4(&self.ek, &mut out) };
            return out;
        }
        for b in &mut out {
            *b = self.encrypt_block_ttable(*b);
        }
        out
    }

    /// Decrypts one 16-byte block.
    pub fn decrypt_block(&self, block: [u8; 16]) -> [u8; 16] {
        #[cfg(all(feature = "simd-aes", target_arch = "x86_64", not(miri)))]
        if aesni_available() {
            let mut b = block;
            // SAFETY: AES-NI support was verified at runtime just above.
            unsafe { simd::decrypt1(&self.dk, &mut b) };
            return b;
        }
        self.decrypt_block_ttable(block)
    }

    /// The table-driven encryption path (used when AES-NI is compiled
    /// out, not present on the host CPU, or under miri).
    fn encrypt_block_ttable(&self, block: [u8; 16]) -> [u8; 16] {
        let mut w = [0u32; 4];
        for c in 0..4 {
            let col: [u8; 4] = block[c * 4..c * 4 + 4].try_into().expect("4-byte column");
            w[c] = u32::from_le_bytes(col) ^ self.ek[c];
        }
        for round in 1..10 {
            let mut t = [0u32; 4];
            for c in 0..4 {
                // ShiftRows: row r of column c comes from column c + r.
                t[c] = TE0[byte(w[c], 0)]
                    ^ TE0[byte(w[(c + 1) & 3], 1)].rotate_left(8)
                    ^ TE0[byte(w[(c + 2) & 3], 2)].rotate_left(16)
                    ^ TE0[byte(w[(c + 3) & 3], 3)].rotate_left(24)
                    ^ self.ek[round * 4 + c];
            }
            w = t;
        }
        // Final round: SubBytes + ShiftRows only, no MixColumns.
        let mut out = [0u8; 16];
        for c in 0..4 {
            let word = pack(
                SBOX[byte(w[c], 0)],
                SBOX[byte(w[(c + 1) & 3], 1)],
                SBOX[byte(w[(c + 2) & 3], 2)],
                SBOX[byte(w[(c + 3) & 3], 3)],
            ) ^ self.ek[40 + c];
            out[c * 4..c * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// The table-driven decryption path (used when AES-NI is compiled
    /// out, not present on the host CPU, or under miri).
    fn decrypt_block_ttable(&self, block: [u8; 16]) -> [u8; 16] {
        let mut w = [0u32; 4];
        for c in 0..4 {
            let col: [u8; 4] = block[c * 4..c * 4 + 4].try_into().expect("4-byte column");
            w[c] = u32::from_le_bytes(col) ^ self.dk[c];
        }
        for round in 1..10 {
            let mut t = [0u32; 4];
            for c in 0..4 {
                // InvShiftRows: row r of column c comes from column c - r.
                t[c] = TD0[byte(w[c], 0)]
                    ^ TD0[byte(w[(c + 3) & 3], 1)].rotate_left(8)
                    ^ TD0[byte(w[(c + 2) & 3], 2)].rotate_left(16)
                    ^ TD0[byte(w[(c + 1) & 3], 3)].rotate_left(24)
                    ^ self.dk[round * 4 + c];
            }
            w = t;
        }
        let mut out = [0u8; 16];
        for c in 0..4 {
            let word = pack(
                INV_SBOX[byte(w[c], 0)],
                INV_SBOX[byte(w[(c + 3) & 3], 1)],
                INV_SBOX[byte(w[(c + 2) & 3], 2)],
                INV_SBOX[byte(w[(c + 1) & 3], 3)],
            ) ^ self.dk[40 + c];
            out[c * 4..c * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }
}

/// Whether the hardware AES path may be taken on this host.
///
/// `is_x86_feature_detected!` caches its CPUID probe internally, so the
/// per-block dispatch cost is one relaxed atomic load.
#[cfg(all(feature = "simd-aes", target_arch = "x86_64", not(miri)))]
#[inline]
fn aesni_available() -> bool {
    std::arch::is_x86_feature_detected!("aes")
}

/// Hardware AES-128 via the x86-64 AES-NI instructions.
///
/// The round keys need no conversion: `ek`/`dk` hold little-endian
/// column words, so on a little-endian x86-64 host the in-memory bytes
/// of each `[u32; 4]` round group are exactly the 16-byte round key the
/// `AESENC` family consumes. The decryption schedule `dk` already has
/// InvMixColumns folded into rounds 1..=9 in reversed order (the
/// equivalent inverse cipher), which is precisely the key layout
/// `AESDEC` expects.
#[cfg(all(feature = "simd-aes", target_arch = "x86_64", not(miri)))]
mod simd {
    use core::arch::x86_64::{
        __m128i, _mm_aesdec_si128, _mm_aesdeclast_si128, _mm_aesenc_si128, _mm_aesenclast_si128,
        _mm_loadu_si128, _mm_storeu_si128, _mm_xor_si128,
    };

    /// Loads round key `r` from a word-form schedule.
    ///
    /// # Safety
    ///
    /// `r` must be in `0..=10`; SSE2 is part of the x86-64 baseline.
    #[inline]
    #[allow(clippy::cast_ptr_alignment)] // _mm_loadu_si128 is an unaligned load
    unsafe fn round_key(keys: &[u32; 44], r: usize) -> __m128i {
        debug_assert!(r <= 10);
        _mm_loadu_si128(keys.as_ptr().add(4 * r).cast::<__m128i>())
    }

    /// Encrypts one block in place.
    ///
    /// # Safety
    ///
    /// The CPU must support AES-NI (`is_x86_feature_detected!("aes")`).
    #[target_feature(enable = "aes")]
    #[allow(clippy::cast_ptr_alignment)]
    pub(super) unsafe fn encrypt1(ek: &[u32; 44], block: &mut [u8; 16]) {
        let mut s = _mm_loadu_si128(block.as_ptr().cast::<__m128i>());
        s = _mm_xor_si128(s, round_key(ek, 0));
        for r in 1..10 {
            s = _mm_aesenc_si128(s, round_key(ek, r));
        }
        s = _mm_aesenclast_si128(s, round_key(ek, 10));
        _mm_storeu_si128(block.as_mut_ptr().cast::<__m128i>(), s);
    }

    /// Encrypts four blocks in place, interleaved so the four `AESENC`
    /// chains pipeline through the AES unit instead of serializing.
    ///
    /// # Safety
    ///
    /// The CPU must support AES-NI (`is_x86_feature_detected!("aes")`).
    #[target_feature(enable = "aes")]
    #[allow(clippy::cast_ptr_alignment)]
    pub(super) unsafe fn encrypt4(ek: &[u32; 44], blocks: &mut [[u8; 16]; 4]) {
        let mut s0 = _mm_loadu_si128(blocks[0].as_ptr().cast::<__m128i>());
        let mut s1 = _mm_loadu_si128(blocks[1].as_ptr().cast::<__m128i>());
        let mut s2 = _mm_loadu_si128(blocks[2].as_ptr().cast::<__m128i>());
        let mut s3 = _mm_loadu_si128(blocks[3].as_ptr().cast::<__m128i>());
        let k = round_key(ek, 0);
        s0 = _mm_xor_si128(s0, k);
        s1 = _mm_xor_si128(s1, k);
        s2 = _mm_xor_si128(s2, k);
        s3 = _mm_xor_si128(s3, k);
        for r in 1..10 {
            let k = round_key(ek, r);
            s0 = _mm_aesenc_si128(s0, k);
            s1 = _mm_aesenc_si128(s1, k);
            s2 = _mm_aesenc_si128(s2, k);
            s3 = _mm_aesenc_si128(s3, k);
        }
        let k = round_key(ek, 10);
        s0 = _mm_aesenclast_si128(s0, k);
        s1 = _mm_aesenclast_si128(s1, k);
        s2 = _mm_aesenclast_si128(s2, k);
        s3 = _mm_aesenclast_si128(s3, k);
        _mm_storeu_si128(blocks[0].as_mut_ptr().cast::<__m128i>(), s0);
        _mm_storeu_si128(blocks[1].as_mut_ptr().cast::<__m128i>(), s1);
        _mm_storeu_si128(blocks[2].as_mut_ptr().cast::<__m128i>(), s2);
        _mm_storeu_si128(blocks[3].as_mut_ptr().cast::<__m128i>(), s3);
    }

    /// Decrypts one block in place over the equivalent-inverse-cipher
    /// schedule `dk`.
    ///
    /// # Safety
    ///
    /// The CPU must support AES-NI (`is_x86_feature_detected!("aes")`).
    #[target_feature(enable = "aes")]
    #[allow(clippy::cast_ptr_alignment)]
    pub(super) unsafe fn decrypt1(dk: &[u32; 44], block: &mut [u8; 16]) {
        let mut s = _mm_loadu_si128(block.as_ptr().cast::<__m128i>());
        s = _mm_xor_si128(s, round_key(dk, 0));
        for r in 1..10 {
            s = _mm_aesdec_si128(s, round_key(dk, r));
        }
        s = _mm_aesdeclast_si128(s, round_key(dk, 10));
        _mm_storeu_si128(block.as_mut_ptr().cast::<__m128i>(), s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supermem_sim::SplitMix64;

    /// The pre-T-table byte-wise implementation, kept as the oracle the
    /// optimized cipher is cross-checked against.
    mod reference {
        use super::super::{gmul, xtime, INV_SBOX, SBOX};

        pub fn add_round_key(s: &mut [u8; 16], rk: &[u8; 16]) {
            for i in 0..16 {
                s[i] ^= rk[i];
            }
        }

        pub fn sub_bytes(s: &mut [u8; 16]) {
            for b in s.iter_mut() {
                *b = SBOX[*b as usize];
            }
        }

        pub fn inv_sub_bytes(s: &mut [u8; 16]) {
            for b in s.iter_mut() {
                *b = INV_SBOX[*b as usize];
            }
        }

        pub fn shift_rows(s: &mut [u8; 16]) {
            // Row r (bytes r, r+4, r+8, r+12) rotates left by r.
            for r in 1..4 {
                let row = [s[r], s[r + 4], s[r + 8], s[r + 12]];
                for c in 0..4 {
                    s[r + c * 4] = row[(c + r) % 4];
                }
            }
        }

        pub fn inv_shift_rows(s: &mut [u8; 16]) {
            for r in 1..4 {
                let row = [s[r], s[r + 4], s[r + 8], s[r + 12]];
                for c in 0..4 {
                    s[r + c * 4] = row[(c + 4 - r) % 4];
                }
            }
        }

        pub fn mix_columns(s: &mut [u8; 16]) {
            for c in 0..4 {
                let col = &mut s[c * 4..c * 4 + 4];
                let (a0, a1, a2, a3) = (col[0], col[1], col[2], col[3]);
                col[0] = xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3;
                col[1] = a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3;
                col[2] = a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3);
                col[3] = (xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3);
            }
        }

        pub fn inv_mix_columns(s: &mut [u8; 16]) {
            for c in 0..4 {
                let col = &mut s[c * 4..c * 4 + 4];
                let (a0, a1, a2, a3) = (col[0], col[1], col[2], col[3]);
                col[0] = gmul(a0, 0x0e) ^ gmul(a1, 0x0b) ^ gmul(a2, 0x0d) ^ gmul(a3, 0x09);
                col[1] = gmul(a0, 0x09) ^ gmul(a1, 0x0e) ^ gmul(a2, 0x0b) ^ gmul(a3, 0x0d);
                col[2] = gmul(a0, 0x0d) ^ gmul(a1, 0x09) ^ gmul(a2, 0x0e) ^ gmul(a3, 0x0b);
                col[3] = gmul(a0, 0x0b) ^ gmul(a1, 0x0d) ^ gmul(a2, 0x09) ^ gmul(a3, 0x0e);
            }
        }

        /// Byte-wise encryption over the word-form round keys.
        pub fn encrypt_block(ek: &[u32; 44], block: [u8; 16]) -> [u8; 16] {
            let rk = |round: usize| -> [u8; 16] {
                let mut out = [0u8; 16];
                for c in 0..4 {
                    out[c * 4..c * 4 + 4].copy_from_slice(&ek[round * 4 + c].to_le_bytes());
                }
                out
            };
            let mut s = block;
            add_round_key(&mut s, &rk(0));
            for round in 1..10 {
                sub_bytes(&mut s);
                shift_rows(&mut s);
                mix_columns(&mut s);
                add_round_key(&mut s, &rk(round));
            }
            sub_bytes(&mut s);
            shift_rows(&mut s);
            add_round_key(&mut s, &rk(10));
            s
        }

        /// Byte-wise decryption (plain inverse cipher, un-transformed
        /// round keys).
        pub fn decrypt_block(ek: &[u32; 44], block: [u8; 16]) -> [u8; 16] {
            let rk = |round: usize| -> [u8; 16] {
                let mut out = [0u8; 16];
                for c in 0..4 {
                    out[c * 4..c * 4 + 4].copy_from_slice(&ek[round * 4 + c].to_le_bytes());
                }
                out
            };
            let mut s = block;
            add_round_key(&mut s, &rk(10));
            for round in (1..10).rev() {
                inv_shift_rows(&mut s);
                inv_sub_bytes(&mut s);
                add_round_key(&mut s, &rk(round));
                inv_mix_columns(&mut s);
            }
            inv_shift_rows(&mut s);
            inv_sub_bytes(&mut s);
            add_round_key(&mut s, &rk(0));
            s
        }
    }

    fn hex16(s: &str) -> [u8; 16] {
        let mut out = [0u8; 16];
        for i in 0..16 {
            out[i] = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap();
        }
        out
    }

    #[test]
    fn fips197_appendix_b_vector() {
        // FIPS-197 Appendix B: key 2b7e..., plaintext 3243..., cipher 3925...
        let aes = Aes128::new(hex16("2b7e151628aed2a6abf7158809cf4f3c"));
        let pt = hex16("3243f6a8885a308d313198a2e0370734");
        let ct = aes.encrypt_block(pt);
        assert_eq!(ct, hex16("3925841d02dc09fbdc118597196a0b32"));
        assert_eq!(aes.decrypt_block(ct), pt);
    }

    #[test]
    fn fips197_appendix_c1_vector() {
        // FIPS-197 Appendix C.1: key 000102...0f, plaintext 001122...ff.
        let aes = Aes128::new(hex16("000102030405060708090a0b0c0d0e0f"));
        let pt = hex16("00112233445566778899aabbccddeeff");
        let ct = aes.encrypt_block(pt);
        assert_eq!(ct, hex16("69c4e0d86a7b0430d8cdb78070b4c55a"));
        assert_eq!(aes.decrypt_block(ct), pt);
    }

    #[test]
    fn nist_sp800_38a_ecb_vectors() {
        // SP 800-38A F.1.1 ECB-AES128 first two blocks.
        let aes = Aes128::new(hex16("2b7e151628aed2a6abf7158809cf4f3c"));
        assert_eq!(
            aes.encrypt_block(hex16("6bc1bee22e409f96e93d7e117393172a")),
            hex16("3ad77bb40d7a3660a89ecaf32466ef97")
        );
        assert_eq!(
            aes.encrypt_block(hex16("ae2d8a571e03ac9c9eb76fac45af8e51")),
            hex16("f5d3d58503b9699de785895a96fdbaaf")
        );
    }

    #[test]
    fn ttables_match_bytewise_reference() {
        // The optimized cipher must agree with the byte-wise FIPS-197
        // transcription on random keys and blocks, both directions.
        let mut rng = SplitMix64::new(0xAE5);
        for _ in 0..200 {
            let mut key = [0u8; 16];
            let mut block = [0u8; 16];
            rng.fill_bytes(&mut key);
            rng.fill_bytes(&mut block);
            let aes = Aes128::new(key);
            let ct = aes.encrypt_block(block);
            assert_eq!(ct, reference::encrypt_block(&aes.ek, block));
            assert_eq!(aes.decrypt_block(ct), block);
            assert_eq!(reference::decrypt_block(&aes.ek, ct), block);
        }
    }

    #[test]
    fn ttable_path_matches_fips_vectors() {
        // The fallback path pinned directly, so it stays validated even
        // on hosts where the public API dispatches to AES-NI.
        let aes = Aes128::new(hex16("2b7e151628aed2a6abf7158809cf4f3c"));
        let pt = hex16("3243f6a8885a308d313198a2e0370734");
        let ct = aes.encrypt_block_ttable(pt);
        assert_eq!(ct, hex16("3925841d02dc09fbdc118597196a0b32"));
        assert_eq!(aes.decrypt_block_ttable(ct), pt);
    }

    #[test]
    fn encrypt4_matches_four_single_blocks() {
        let mut rng = SplitMix64::new(0xE4E4);
        for _ in 0..200 {
            let mut key = [0u8; 16];
            rng.fill_bytes(&mut key);
            let aes = Aes128::new(key);
            let mut blocks = [[0u8; 16]; 4];
            for b in &mut blocks {
                rng.fill_bytes(b);
            }
            let quad = aes.encrypt4(blocks);
            for (q, b) in quad.iter().zip(&blocks) {
                assert_eq!(*q, aes.encrypt_block(*b));
                assert_eq!(*q, aes.encrypt_block_ttable(*b));
            }
        }
    }

    /// Exhaustive cross-check of the hardware path against the T-table
    /// path: random keys, random blocks, both directions, plus the
    /// four-block batch API (ISSUE 6 acceptance bar for `simd-aes`).
    #[test]
    #[cfg(all(feature = "simd-aes", target_arch = "x86_64", not(miri)))]
    fn hardware_path_matches_ttable_path() {
        if !aesni_available() {
            eprintln!("skipping: host CPU does not report AES-NI");
            return;
        }
        let mut rng = SplitMix64::new(0x051D_0AE5);
        for _ in 0..4096 {
            let mut key = [0u8; 16];
            let mut block = [0u8; 16];
            rng.fill_bytes(&mut key);
            rng.fill_bytes(&mut block);
            let aes = Aes128::new(key);

            let sw_ct = aes.encrypt_block_ttable(block);
            let mut hw_ct = block;
            // SAFETY: AES-NI presence checked at the top of the test.
            unsafe { simd::encrypt1(&aes.ek, &mut hw_ct) };
            assert_eq!(hw_ct, sw_ct, "encrypt mismatch key={key:02x?}");

            let mut hw_pt = sw_ct;
            // SAFETY: as above.
            unsafe { simd::decrypt1(&aes.dk, &mut hw_pt) };
            assert_eq!(hw_pt, block, "decrypt mismatch key={key:02x?}");
            assert_eq!(aes.decrypt_block_ttable(sw_ct), block);

            let mut quad = [block; 4];
            for (i, b) in quad.iter_mut().enumerate() {
                b[0] ^= i as u8;
            }
            let mut hw_quad = quad;
            // SAFETY: as above.
            unsafe { simd::encrypt4(&aes.ek, &mut hw_quad) };
            for (hw, pt) in hw_quad.iter().zip(&quad) {
                assert_eq!(*hw, aes.encrypt_block_ttable(*pt));
            }
        }
    }

    #[test]
    fn encrypt_decrypt_roundtrip_many() {
        let aes = Aes128::new([0x5A; 16]);
        let mut block = [0u8; 16];
        for i in 0..64u32 {
            for (j, b) in block.iter_mut().enumerate() {
                *b = (i as u8).wrapping_mul(31).wrapping_add(j as u8);
            }
            assert_eq!(aes.decrypt_block(aes.encrypt_block(block)), block);
        }
    }

    #[test]
    fn different_keys_give_different_ciphertexts() {
        let a = Aes128::new([1; 16]);
        let b = Aes128::new([2; 16]);
        let pt = [0x42; 16];
        assert_ne!(a.encrypt_block(pt), b.encrypt_block(pt));
    }

    #[test]
    fn inv_sbox_inverts_sbox() {
        for v in 0..=255u8 {
            assert_eq!(INV_SBOX[SBOX[v as usize] as usize], v);
        }
    }

    #[test]
    fn gmul_against_known_products() {
        // 0x57 * 0x83 = 0xc1 (FIPS-197 §4.2 example).
        assert_eq!(gmul(0x57, 0x83), 0xc1);
        assert_eq!(gmul(0x57, 0x13), 0xfe);
        assert_eq!(gmul(1, 0xab), 0xab);
        assert_eq!(gmul(0, 0xff), 0);
    }

    #[test]
    fn mix_columns_roundtrips() {
        let mut s = *b"0123456789abcdef";
        let orig = s;
        reference::mix_columns(&mut s);
        assert_ne!(s, orig);
        reference::inv_mix_columns(&mut s);
        assert_eq!(s, orig);
    }

    #[test]
    fn shift_rows_roundtrips() {
        let mut s = *b"fedcba9876543210";
        let orig = s;
        reference::shift_rows(&mut s);
        reference::inv_shift_rows(&mut s);
        assert_eq!(s, orig);
    }

    #[test]
    fn inv_mix_word_matches_reference() {
        let mut rng = SplitMix64::new(0x1417);
        for _ in 0..64 {
            let w = rng.next_u64() as u32;
            let mut s = [0u8; 16];
            s[..4].copy_from_slice(&w.to_le_bytes());
            reference::inv_mix_columns(&mut s);
            assert_eq!(inv_mix_word(w).to_le_bytes(), s[..4]);
        }
    }
}
