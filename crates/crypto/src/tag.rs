//! ECC-derived line tags for Osiris-style counter recovery.
//!
//! Osiris (Ye et al., MICRO 2018 — contrasted in the SuperMem paper's
//! §6) repurposes a memory line's spare ECC bits as an integrity check
//! on the *plaintext*: after a crash with stale counters, recovery can
//! trial-decrypt a line under candidate counter values and accept the
//! one whose plaintext matches the stored tag. We model those ECC bits
//! as a 64-bit FNV-1a digest stored beside the line (writing it costs
//! no extra NVM request, exactly like real ECC lanes).

/// Computes the ECC-derived tag of a plaintext line.
///
/// # Examples
///
/// ```
/// use supermem_crypto::tag::line_tag;
///
/// let a = line_tag(&[1u8; 64]);
/// let b = line_tag(&[2u8; 64]);
/// assert_ne!(a, b);
/// assert_eq!(a, line_tag(&[1u8; 64]));
/// ```
pub fn line_tag(plain: &[u8; 64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in plain {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    // Never return the 0 sentinel used for "never tagged".
    if h == 0 {
        1
    } else {
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let line = [0x5Au8; 64];
        assert_eq!(line_tag(&line), line_tag(&line));
    }

    #[test]
    fn sensitive_to_every_byte() {
        let base = [7u8; 64];
        let t0 = line_tag(&base);
        for i in 0..64 {
            let mut m = base;
            m[i] ^= 1;
            assert_ne!(line_tag(&m), t0, "byte {i} did not affect the tag");
        }
    }

    #[test]
    fn never_returns_zero_sentinel() {
        // Not provable exhaustively; check the zero line at least.
        assert_ne!(line_tag(&[0u8; 64]), 0);
    }

    #[test]
    fn distinguishes_candidate_decryptions() {
        // The Osiris use case: the tag of the true plaintext must differ
        // from tags of wrong-counter decryptions (with overwhelming
        // probability).
        use crate::engine::EncryptionEngine;
        let e = EncryptionEngine::new([3u8; 16]);
        let plain = [0xABu8; 64];
        let cipher = e.encrypt_line(&plain, 0x1000, 0, 7);
        let want = line_tag(&plain);
        assert_eq!(line_tag(&e.decrypt_line(&cipher, 0x1000, 0, 7)), want);
        for wrong in [5u8, 6, 8, 9] {
            let candidate = e.decrypt_line(&cipher, 0x1000, 0, wrong);
            assert_ne!(line_tag(&candidate), want, "minor {wrong} must fail");
        }
    }
}
