//! DEUCE-style dual-counter encryption (Young et al., HPCA 2015 —
//! first entry in the SuperMem paper's §6 related work).
//!
//! Counter-mode encryption re-randomizes the *whole* line on every
//! write, so even a one-word store flips ~half of the line's NVM bits.
//! DEUCE splits the line into words and keeps **two** counters derived
//! from one per-line write count: a *leading* counter (the count
//! itself) and a *trailing* counter (the count rounded down to the last
//! epoch). Words modified since the epoch began are encrypted under the
//! leading counter; untouched words keep their trailing-epoch
//! ciphertext — and therefore cost **zero** bit flips on rewrite. Every
//! `EPOCH` writes the line is fully re-encrypted and the modified mask
//! resets.
//!
//! SuperMem targets write *requests*; DEUCE targets written *bits*
//! (energy/endurance). The two are orthogonal, which is why the paper
//! lists DEUCE as related-but-different; the `bitwrites` bench
//! quantifies exactly that difference.

use crate::engine::EncryptionEngine;

/// Writes per full re-encryption epoch (DEUCE uses 32).
pub const EPOCH: u32 = 32;

/// Word granularity in bytes (16 words of 4 bytes per 64-byte line).
pub const WORD_BYTES: usize = 4;

/// Words per line.
pub const WORDS: usize = 64 / WORD_BYTES;

/// Per-line DEUCE metadata: the write count and the modified-word mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeuceMeta {
    /// Per-line write counter (leading counter).
    pub count: u32,
    /// Bit `i` set = word `i` modified since the current epoch began.
    pub mask: u16,
}

impl DeuceMeta {
    /// The trailing counter: the count at the start of the current epoch.
    pub fn trailing(&self) -> u32 {
        self.count & !(EPOCH - 1)
    }
}

/// A dual-counter line encryptor layered over the workspace's AES
/// engine.
///
/// # Examples
///
/// ```
/// use supermem_crypto::deuce::{DeuceEngine, DeuceMeta};
///
/// let engine = DeuceEngine::new([5u8; 16]);
/// let mut meta = DeuceMeta::default();
/// let v1 = [1u8; 64];
/// let c1 = engine.write(&mut meta, 0x1000, None, &v1);
/// assert_eq!(engine.read(&meta, 0x1000, &c1), v1);
/// ```
#[derive(Debug, Clone)]
pub struct DeuceEngine {
    inner: EncryptionEngine,
}

impl DeuceEngine {
    /// Creates an engine from a 128-bit key.
    pub fn new(key: [u8; 16]) -> Self {
        Self {
            inner: EncryptionEngine::new(key),
        }
    }

    fn pad(&self, addr: u64, count: u32) -> [u8; 64] {
        // Reuse the line-pad generator; the counter is injected via the
        // (major, minor) slots.
        self.inner.otp(addr, count as u64, 0)
    }

    /// Encrypts a line write. `old_plain` is the line's previous
    /// plaintext (None for the first write). Updates `meta` and returns
    /// the new ciphertext.
    pub fn write(
        &self,
        meta: &mut DeuceMeta,
        addr: u64,
        old_plain: Option<&[u8; 64]>,
        new_plain: &[u8; 64],
    ) -> [u8; 64] {
        meta.count += 1;
        if meta.count.is_multiple_of(EPOCH) || old_plain.is_none() {
            // Epoch boundary (or first write): full re-encryption.
            meta.mask = if meta.count.is_multiple_of(EPOCH) {
                0
            } else {
                u16::MAX
            };
            if meta.count.is_multiple_of(EPOCH) {
                let pad = self.pad(addr, meta.count);
                return xor(new_plain, &pad);
            }
        }
        // Mark words that differ from the previous plaintext.
        if let Some(old) = old_plain {
            for w in 0..WORDS {
                let range = w * WORD_BYTES..(w + 1) * WORD_BYTES;
                if new_plain[range.clone()] != old[range] {
                    meta.mask |= 1 << w;
                }
            }
        } else {
            meta.mask = u16::MAX;
        }
        let leading = self.pad(addr, meta.count);
        let trailing = self.pad(addr, meta.trailing());
        let mut out = [0u8; 64];
        for w in 0..WORDS {
            let pad = if meta.mask & (1 << w) != 0 {
                &leading
            } else {
                &trailing
            };
            for i in w * WORD_BYTES..(w + 1) * WORD_BYTES {
                out[i] = new_plain[i] ^ pad[i];
            }
        }
        out
    }

    /// Decrypts a line using the stored metadata.
    pub fn read(&self, meta: &DeuceMeta, addr: u64, cipher: &[u8; 64]) -> [u8; 64] {
        if meta.count.is_multiple_of(EPOCH) {
            let pad = self.pad(addr, meta.count);
            return xor(cipher, &pad);
        }
        let leading = self.pad(addr, meta.count);
        let trailing = self.pad(addr, meta.trailing());
        let mut out = [0u8; 64];
        for w in 0..WORDS {
            let pad = if meta.mask & (1 << w) != 0 {
                &leading
            } else {
                &trailing
            };
            for i in w * WORD_BYTES..(w + 1) * WORD_BYTES {
                out[i] = cipher[i] ^ pad[i];
            }
        }
        out
    }
}

fn xor(a: &[u8; 64], b: &[u8; 64]) -> [u8; 64] {
    let mut out = [0u8; 64];
    for i in 0..64 {
        out[i] = a[i] ^ b[i];
    }
    out
}

/// Counts differing bits between two 64-byte lines — the NVM cell
/// writes an update actually costs.
pub fn bit_flips(a: &[u8; 64], b: &[u8; 64]) -> u32 {
    a.iter().zip(b).map(|(x, y)| (x ^ y).count_ones()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> DeuceEngine {
        DeuceEngine::new([9u8; 16])
    }

    #[test]
    fn roundtrip_through_many_writes() {
        let e = engine();
        let mut meta = DeuceMeta::default();
        let mut plain = [0u8; 64];
        let first = e.write(&mut meta, 0x40, None, &plain);
        assert_eq!(e.read(&meta, 0x40, &first), plain);
        for i in 1..100u32 {
            let old = plain;
            plain[(i as usize * 7) % 64] = i as u8;
            let cipher = e.write(&mut meta, 0x40, Some(&old), &plain);
            assert_eq!(e.read(&meta, 0x40, &cipher), plain, "write {i}");
        }
    }

    /// Drives a line to an epoch boundary so the modified mask is clean.
    fn to_boundary(e: &DeuceEngine, meta: &mut DeuceMeta, addr: u64, plain: &[u8; 64]) -> [u8; 64] {
        let mut cipher;
        loop {
            cipher = e.write(
                meta,
                addr,
                if meta.count == 0 { None } else { Some(plain) },
                plain,
            );
            if meta.count.is_multiple_of(EPOCH) {
                return cipher;
            }
        }
    }

    #[test]
    fn single_word_update_flips_few_bits() {
        let e = engine();
        let mut meta = DeuceMeta::default();
        let mut plain = [0xAAu8; 64];
        let c0 = to_boundary(&e, &mut meta, 0x80, &plain);
        // Touch one byte right after the boundary: only that word's
        // ciphertext changes; every other word keeps its trailing-epoch
        // bits.
        let old = plain;
        plain[0] ^= 0xFF;
        let c1 = e.write(&mut meta, 0x80, Some(&old), &plain);
        let flips = bit_flips(&c0, &c1);
        assert!(
            flips <= (WORD_BYTES * 8) as u32,
            "one-word update must flip at most one word's bits, got {flips}"
        );
        assert!(flips > 0, "the modified word must actually change");
        assert_eq!(e.read(&meta, 0x80, &c1), plain);
    }

    #[test]
    fn full_ctr_flips_half_the_line() {
        // Reference point: classic counter mode re-randomizes everything.
        let e = EncryptionEngine::new([9u8; 16]);
        let plain = [0xAAu8; 64];
        let c0 = e.encrypt_line(&plain, 0x80, 0, 1);
        let c1 = e.encrypt_line(&plain, 0x80, 0, 2);
        let flips = bit_flips(&c0, &c1);
        assert!(
            flips > 180,
            "CTR rewrite should flip ~256 bits, got {flips}"
        );
    }

    #[test]
    fn epoch_boundary_reencrypts_fully_and_resets_mask() {
        let e = engine();
        let mut meta = DeuceMeta::default();
        let mut plain = [7u8; 64];
        let mut old;
        e.write(&mut meta, 0x100, None, &plain);
        for i in 2..=EPOCH {
            old = plain;
            plain[0] = i as u8;
            e.write(&mut meta, 0x100, Some(&old), &plain);
        }
        assert_eq!(meta.count, EPOCH);
        assert_eq!(meta.mask, 0, "mask resets at the epoch boundary");
        // And the line still decrypts.
        old = plain;
        plain[63] = 0xEE;
        let c = e.write(&mut meta, 0x100, Some(&old), &plain);
        assert_eq!(e.read(&meta, 0x100, &c), plain);
    }

    #[test]
    fn unmodified_words_produce_identical_ciphertext() {
        let e = engine();
        let mut meta = DeuceMeta::default();
        let plain = [3u8; 64];
        let c0 = to_boundary(&e, &mut meta, 0x140, &plain);
        let c1 = e.write(&mut meta, 0x140, Some(&plain), &plain);
        // All words unmodified right after the boundary: the rewrite
        // costs zero flips.
        assert_eq!(bit_flips(&c0, &c1), 0);
        assert_eq!(e.read(&meta, 0x140, &c1), plain);
    }
}
