//! Split-counter organization (paper §3.4.1, Figure 9).
//!
//! Each 4 KB page has one 64-bit *major* counter shared by the whole page
//! and 64 seven-bit *minor* counters, one per 64 B memory line. All of a
//! page's counters pack into exactly one 64-byte memory line
//! (64 + 64×7 = 512 bits), which is the spatial-locality property the CWC
//! scheme exploits: flushing any number of lines of one page touches a
//! single counter line in NVM.

/// Number of memory lines (and minor counters) per page.
pub const LINES_PER_PAGE: usize = 64;

/// Exclusive upper bound of a 7-bit minor counter.
pub const MINOR_LIMIT: u8 = 128;

/// Result of bumping a minor counter before a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IncrementOutcome {
    /// The minor counter was incremented to the contained value.
    Incremented(u8),
    /// The minor counter is saturated; the page must be re-encrypted
    /// under `major + 1` with all minors reset (paper §3.4.4).
    Overflow,
}

/// The counters of one page: a 64-bit major and 64 seven-bit minors,
/// representable as one 64-byte memory line.
///
/// # Examples
///
/// ```
/// use supermem_crypto::counter::{CounterLine, IncrementOutcome};
///
/// let mut c = CounterLine::new();
/// assert_eq!(c.increment(3), IncrementOutcome::Incremented(1));
/// assert_eq!(c.minor(3), 1);
/// let bytes = c.encode();
/// assert_eq!(CounterLine::decode(&bytes), c);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CounterLine {
    major: u64,
    minors: [u8; LINES_PER_PAGE],
}

impl Default for CounterLine {
    fn default() -> Self {
        Self::new()
    }
}

impl CounterLine {
    /// A fresh page: major 0, all minors 0.
    pub fn new() -> Self {
        Self {
            major: 0,
            minors: [0; LINES_PER_PAGE],
        }
    }

    /// A page that has been re-keyed `major` times: given major counter,
    /// all minors zero (the state right after a page re-encryption).
    pub fn with_major(major: u64) -> Self {
        Self {
            major,
            minors: [0; LINES_PER_PAGE],
        }
    }

    /// The page's shared major counter.
    pub fn major(&self) -> u64 {
        self.major
    }

    /// The minor counter of line `line` within the page.
    ///
    /// # Panics
    ///
    /// Panics if `line >= 64`.
    pub fn minor(&self, line: usize) -> u8 {
        self.minors[line]
    }

    /// Attempts to increment the minor counter of `line` ahead of a write.
    ///
    /// On [`IncrementOutcome::Overflow`] nothing is modified; the caller
    /// must re-encrypt the page (see [`CounterLine::bump_major`]) and then
    /// retry the increment.
    ///
    /// # Panics
    ///
    /// Panics if `line >= 64`.
    pub fn increment(&mut self, line: usize) -> IncrementOutcome {
        if self.minors[line] + 1 >= MINOR_LIMIT {
            return IncrementOutcome::Overflow;
        }
        self.minors[line] += 1;
        IncrementOutcome::Incremented(self.minors[line])
    }

    /// Overwrites one minor counter directly. Recovery paths (Osiris
    /// counter reconstruction) use this after identifying the true value
    /// by trial decryption; normal operation only ever increments.
    ///
    /// # Panics
    ///
    /// Panics if `line >= 64` or `value >= 128`.
    pub fn set_minor(&mut self, line: usize, value: u8) {
        assert!(value < MINOR_LIMIT, "minor {value} out of 7-bit range");
        self.minors[line] = value;
    }

    /// Re-keys the page after a minor overflow: increments the major
    /// counter and zeroes every minor (paper §3.4.4). The caller is
    /// responsible for re-encrypting all 64 data lines under the new
    /// counters.
    ///
    /// # Panics
    ///
    /// Panics if the major counter would overflow. The paper argues this
    /// cannot happen within NVM cell endurance (2^64 ≫ 10^9 writes); we
    /// turn that argument into a hard invariant.
    pub fn bump_major(&mut self) {
        self.major = self
            .major
            .checked_add(1)
            .expect("major counter overflow: impossible within NVM endurance");
        self.minors = [0; LINES_PER_PAGE];
    }

    /// Packs the counters into one 64-byte memory line.
    ///
    /// Layout: bytes 0..8 hold the major counter (little endian); the
    /// remaining 56 bytes hold the 64 minors as a dense 7-bit bitstream.
    pub fn encode(&self) -> [u8; 64] {
        let mut out = [0u8; 64];
        out[..8].copy_from_slice(&self.major.to_le_bytes());
        for (i, &m) in self.minors.iter().enumerate() {
            debug_assert!(m < MINOR_LIMIT);
            let bit = i * 7;
            let byte = 8 + bit / 8;
            let shift = bit % 8;
            out[byte] |= m << shift;
            if shift > 1 {
                out[byte + 1] |= m >> (8 - shift);
            }
        }
        out
    }

    /// Unpacks a 64-byte memory line produced by [`CounterLine::encode`].
    ///
    /// Any 64-byte value decodes *to something* — decoding garbage (e.g.
    /// a torn or mis-decrypted counter line) yields wrong counters, which
    /// is precisely the failure mode of Figure 4.
    pub fn decode(bytes: &[u8; 64]) -> Self {
        let mut major_bytes = [0u8; 8];
        major_bytes.copy_from_slice(&bytes[..8]);
        let major = u64::from_le_bytes(major_bytes);
        let mut minors = [0u8; LINES_PER_PAGE];
        for (i, m) in minors.iter_mut().enumerate() {
            let bit = i * 7;
            let byte = 8 + bit / 8;
            let shift = bit % 8;
            let mut v = (bytes[byte] >> shift) as u16;
            if shift > 1 {
                v |= (bytes[byte + 1] as u16) << (8 - shift);
            }
            *m = (v & 0x7f) as u8;
        }
        Self { major, minors }
    }

    /// True if every counter of `self` is component-wise ≥ the
    /// corresponding counter of `earlier`, i.e. `self` supersedes
    /// `earlier`. This is the monotonicity property that makes CWC's
    /// "drop the older duplicate" transformation lossless (§3.4.3).
    pub fn supersedes(&self, earlier: &CounterLine) -> bool {
        if self.major > earlier.major {
            return true;
        }
        self.major == earlier.major
            && self
                .minors
                .iter()
                .zip(&earlier.minors)
                .all(|(new, old)| new >= old)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_page_is_all_zero() {
        let c = CounterLine::new();
        assert_eq!(c.major(), 0);
        for i in 0..LINES_PER_PAGE {
            assert_eq!(c.minor(i), 0);
        }
        assert_eq!(c.encode(), [0u8; 64]);
    }

    #[test]
    fn increment_advances_one_minor_only() {
        let mut c = CounterLine::new();
        assert_eq!(c.increment(5), IncrementOutcome::Incremented(1));
        assert_eq!(c.increment(5), IncrementOutcome::Incremented(2));
        assert_eq!(c.minor(5), 2);
        assert_eq!(c.minor(4), 0);
        assert_eq!(c.minor(6), 0);
    }

    #[test]
    fn overflow_at_127_leaves_state_unchanged() {
        let mut c = CounterLine::new();
        for expect in 1..=127u8 {
            assert_eq!(c.increment(0), IncrementOutcome::Incremented(expect));
        }
        assert_eq!(c.minor(0), 127);
        // 127 is the saturated 7-bit value; one more write overflows.
        assert_eq!(c.increment(0), IncrementOutcome::Overflow);
        assert_eq!(c.minor(0), 127);
        assert_eq!(c.major(), 0);
    }

    #[test]
    fn bump_major_resets_minors() {
        let mut c = CounterLine::new();
        c.increment(0);
        c.increment(63);
        c.bump_major();
        assert_eq!(c.major(), 1);
        assert_eq!(c.minor(0), 0);
        assert_eq!(c.minor(63), 0);
    }

    #[test]
    fn encode_decode_roundtrip_dense() {
        let mut c = CounterLine::new();
        for i in 0..LINES_PER_PAGE {
            for _ in 0..=(i % 120) {
                if c.increment(i) == IncrementOutcome::Overflow {
                    break;
                }
            }
        }
        c.bump_major();
        c.increment(7);
        c.increment(8);
        let bytes = c.encode();
        assert_eq!(CounterLine::decode(&bytes), c);
    }

    #[test]
    fn encode_is_one_line() {
        // The whole point of split counters: one page's counters fit in
        // exactly one 64-byte memory line.
        let c = CounterLine::new();
        assert_eq!(c.encode().len(), 64);
    }

    #[test]
    fn minor_fields_do_not_alias_in_encoding() {
        // Set each minor in isolation and confirm only that minor decodes
        // as non-zero.
        for i in 0..LINES_PER_PAGE {
            let mut c = CounterLine::new();
            c.increment(i);
            let d = CounterLine::decode(&c.encode());
            for j in 0..LINES_PER_PAGE {
                assert_eq!(d.minor(j), u8::from(i == j), "line {i} vs {j}");
            }
        }
    }

    #[test]
    fn supersedes_is_reflexive_and_monotone() {
        let mut old = CounterLine::new();
        old.increment(1);
        let mut new = old.clone();
        assert!(new.supersedes(&old));
        new.increment(2);
        assert!(new.supersedes(&old));
        assert!(!old.supersedes(&new));
        new.bump_major();
        assert!(new.supersedes(&old)); // larger major supersedes any minors
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn minor_index_out_of_range_panics() {
        let c = CounterLine::new();
        let _ = c.minor(64);
    }
}

#[cfg(test)]
mod randomized {
    //! Deterministic randomized tests (seeded SplitMix64 stands in for
    //! proptest, which is unavailable in offline builds).
    use super::*;
    use supermem_sim::SplitMix64;

    fn random_counterline(rng: &mut SplitMix64) -> CounterLine {
        let mut c = CounterLine::new();
        c.major = rng.next_u64();
        for m in &mut c.minors {
            *m = rng.next_below(MINOR_LIMIT as u64) as u8;
        }
        c
    }

    #[test]
    fn roundtrip_encode_decode() {
        let mut rng = SplitMix64::new(0xC0DE);
        for _ in 0..256 {
            let c = random_counterline(&mut rng);
            assert_eq!(CounterLine::decode(&c.encode()), c);
        }
    }

    #[test]
    fn increments_always_supersede() {
        let mut rng = SplitMix64::new(0x5EED);
        for _ in 0..256 {
            let mut c = random_counterline(&mut rng);
            let line = rng.next_below(LINES_PER_PAGE as u64) as usize;
            let before = c.clone();
            match c.increment(line) {
                IncrementOutcome::Incremented(_) => {
                    assert!(c.supersedes(&before));
                    assert!(!before.supersedes(&c));
                }
                IncrementOutcome::Overflow => {
                    assert_eq!(&c, &before);
                    c.bump_major();
                    assert!(c.supersedes(&before));
                }
            }
        }
    }

    #[test]
    fn decode_never_yields_saturated_minor() {
        // decode masks each minor to 7 bits even for arbitrary input.
        let mut rng = SplitMix64::new(0xDEC0DE);
        for _ in 0..256 {
            let mut full = [0u8; 64];
            rng.fill_bytes(&mut full);
            let c = CounterLine::decode(&full);
            for i in 0..LINES_PER_PAGE {
                assert!(c.minor(i) < MINOR_LIMIT);
            }
        }
    }
}
