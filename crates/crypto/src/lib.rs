//! Cryptographic substrate for the SuperMem reproduction.
//!
//! Secure NVM designs encrypt every memory line with *counter-mode
//! encryption* (paper §2.2): a one-time pad (OTP) is produced by running
//! AES over the line address and a per-line counter, and the line is
//! XORed with the pad. This crate provides:
//!
//! * [`aes`] — a complete software AES-128 block cipher (FIPS-197),
//!   validated against the standard test vectors. The simulated NVM stores
//!   *genuinely encrypted* bytes so crash-recovery experiments really
//!   succeed or fail at decryption time.
//! * [`counter`] — the split-counter organization of §3.4.1: one 64-bit
//!   major counter per 4 KB page plus 64 seven-bit minor counters, all
//!   packed into a single 64-byte memory line.
//! * [`engine`] — the counter-mode encrypt/decrypt pipeline with the
//!   24-cycle latency model used by the paper.
//!
//! # Examples
//!
//! ```
//! use supermem_crypto::engine::EncryptionEngine;
//!
//! let engine = EncryptionEngine::new([7u8; 16]);
//! let plain = [0xABu8; 64];
//! let cipher = engine.encrypt_line(&plain, 0x1000, 3, 5);
//! assert_ne!(cipher, plain);
//! let back = engine.decrypt_line(&cipher, 0x1000, 3, 5);
//! assert_eq!(back, plain);
//! // A wrong counter decrypts to garbage, which is exactly the crash
//! //-inconsistency the paper is about.
//! assert_ne!(engine.decrypt_line(&cipher, 0x1000, 3, 6), plain);
//! ```
#![warn(missing_docs)]

pub mod aes;
pub mod counter;
pub mod deuce;
pub mod engine;
pub mod tag;

pub use counter::{CounterLine, IncrementOutcome, LINES_PER_PAGE};
pub use engine::EncryptionEngine;
pub use tag::line_tag;
