//! Keyed line digests.
//!
//! A 64-bit compression built from the workspace's AES-128 in a
//! Davies–Meyer-like mode: the 64-byte input is folded block by block
//! through the cipher with feed-forward, then truncated. Collision
//! resistance at 64 bits is plenty for a simulator whose "attacker" is
//! a test harness; the structure mirrors how real memory-authentication
//! engines reuse their AES datapath.

use supermem_crypto::aes::Aes128;

/// A keyed digester for 64-byte lines and digest pairs.
#[derive(Debug, Clone)]
pub struct LineDigester {
    aes: Aes128,
}

impl LineDigester {
    /// Creates a digester from a 128-bit key (use a different key than
    /// the encryption engine's; derive both from the processor secret).
    pub fn new(key: [u8; 16]) -> Self {
        Self {
            aes: Aes128::new(key),
        }
    }

    fn compress(&self, state: u128, block: u128) -> u128 {
        let mixed = (state ^ block).to_le_bytes();
        let out = self.aes.encrypt_block(mixed);
        u128::from_le_bytes(out) ^ block
    }

    /// Digest of a 64-byte line, domain-separated by `addr`.
    pub fn line(&self, addr: u64, bytes: &[u8; 64]) -> u64 {
        let mut state = 0x6A09_E667_F3BC_C908_u128 ^ (addr as u128);
        for chunk in bytes.chunks_exact(16) {
            // Justified panic: chunks_exact(16) yields 16-byte slices by
            // contract, so the array conversion cannot fail.
            #[allow(clippy::disallowed_methods)]
            let block = u128::from_le_bytes(chunk.try_into().unwrap());
            state = self.compress(state, block);
        }
        state as u64
    }

    /// Digest of a run of child digests (an inner tree node),
    /// domain-separated by the node's index.
    pub fn node(&self, index: u64, children: &[u64]) -> u64 {
        let mut state = 0xBB67_AE85_84CA_A73B_u128 ^ (index as u128);
        for pair in children.chunks(2) {
            let lo = pair[0] as u128;
            let hi = pair.get(1).copied().unwrap_or(0) as u128;
            state = self.compress(state, lo | (hi << 64));
        }
        state as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d() -> LineDigester {
        LineDigester::new([0x42; 16])
    }

    #[test]
    fn deterministic() {
        let line = [7u8; 64];
        assert_eq!(d().line(0x40, &line), d().line(0x40, &line));
    }

    #[test]
    fn sensitive_to_content_and_address() {
        let a = [1u8; 64];
        let mut b = a;
        b[63] ^= 0x80;
        assert_ne!(d().line(0, &a), d().line(0, &b));
        assert_ne!(d().line(0, &a), d().line(64, &a));
    }

    #[test]
    fn keyed() {
        let a = LineDigester::new([1; 16]);
        let b = LineDigester::new([2; 16]);
        assert_ne!(a.line(0, &[5; 64]), b.line(0, &[5; 64]));
    }

    #[test]
    fn node_digest_covers_all_children_and_index() {
        let children: Vec<u64> = (0..8).collect();
        let base = d().node(3, &children);
        for i in 0..8 {
            let mut c = children.clone();
            c[i] ^= 1;
            assert_ne!(d().node(3, &c), base, "child {i} not covered");
        }
        assert_ne!(d().node(4, &children), base);
    }

    #[test]
    fn odd_child_counts_are_handled() {
        let children: Vec<u64> = (0..7).collect();
        let a = d().node(0, &children);
        let mut c = children.clone();
        c[6] ^= 1;
        assert_ne!(d().node(0, &c), a);
    }
}
