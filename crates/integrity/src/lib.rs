//! Memory-authentication substrate: a Bonsai Merkle Tree over counter
//! storage.
//!
//! The SuperMem paper's threat model (§2.2.1) covers stolen-DIMM and
//! bus-snooping attacks; *bus tampering* — an active attacker rewriting
//! NVM contents — is explicitly deferred to Merkle-tree authentication
//! "orthogonal to our work". This crate supplies that orthogonal piece
//! in the Bonsai style (Rogers et al.): because data lines are already
//! bound to their counters by counter-mode encryption, only the
//! *counter* lines need tree protection; data integrity follows from
//! counter integrity plus per-line MACs.
//!
//! * [`digest`] — a keyed 64-bit line digest built from the workspace's
//!   AES (Davies–Meyer style compression).
//! * [`bmt`] — the tree: 8-ary, leaves are counter-line digests, inner
//!   nodes live in (attacker-writable) NVM, and only the root lives in
//!   an on-chip register the attacker cannot touch. Updates fold either
//!   eagerly ([`Bmt::update`]) or through the streaming pending-update
//!   cache ([`Bmt::enqueue_update`]) with a Triad-NVM-style
//!   persisted-levels frontier.
//!
//! # Examples
//!
//! ```
//! use supermem_integrity::Bmt;
//!
//! let mut bmt = Bmt::new([7u8; 16], 64)?;
//! let counters = [0x11u8; 64];
//! bmt.update(5, &counters);
//! assert!(bmt.verify(5, &counters));
//! // An attacker flips a counter bit on the DIMM:
//! let mut tampered = counters;
//! tampered[0] ^= 1;
//! assert!(!bmt.verify(5, &tampered));
//! # Ok::<(), supermem_integrity::TreeConfigError>(())
//! ```
//!
//! Streaming mode arms updates in a bounded cache and propagates them
//! lazily, reporting which persisted node-group lines changed:
//!
//! ```
//! use supermem_integrity::Bmt;
//!
//! // 64 pages -> height 2; persist digest level 0 only.
//! let mut bmt = Bmt::with_frontier([7u8; 16], 64, 1)?;
//! bmt.enqueue_update(5, &[0x11u8; 64]);
//! bmt.enqueue_update(5, &[0x22u8; 64]); // coalesces in place
//! let prop = bmt.propagate_pending();
//! assert_eq!(prop.pages, vec![5]);
//! assert_eq!(prop.node_writes.len(), 1); // one leaf-digest group line
//! assert!(bmt.verify(5, &[0x22u8; 64]));
//! # Ok::<(), supermem_integrity::TreeConfigError>(())
//! ```
#![warn(missing_docs)]

pub mod bmt;
pub mod digest;

pub use bmt::{
    tree_line_group, tree_line_id, tree_line_level, Bmt, EnqueueOutcome, Propagation,
    TreeConfigError, TreeNodeWrite, ARITY, PENDING_CACHE_SLOTS,
};
pub use digest::LineDigester;
