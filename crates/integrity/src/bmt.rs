//! The Bonsai Merkle Tree, with streaming (lazily propagated) updates.
//!
//! An 8-ary hash tree whose leaves are keyed digests of counter lines
//! (one per 4 KB data page). Inner nodes and leaves live in NVM — an
//! attacker with bus access can rewrite them — but the root stays in an
//! on-chip register. Any modification of a counter line, a leaf, or an
//! inner node makes the recomputed root diverge from the trusted one.
//!
//! # Eager vs streaming updates
//!
//! The original engine recomputed the full root path on every counter
//! write ([`Bmt::update`], still available and byte-identical). The
//! streaming engine (Freij et al., "Streamlining Integrity Tree
//! Updates") instead *arms* dirty leaves in a bounded pending-update
//! cache ([`Bmt::enqueue_update`]): repeated writes to the same page
//! coalesce in place, and the root path is recomputed only when the
//! entry is propagated — on cache eviction, at a fence, or at
//! shutdown ([`Bmt::propagate_pending`]).
//!
//! # The persistence frontier
//!
//! `persisted_levels = L` (Triad-NVM style) splits the tree at level
//! `L`: digest arrays `0..L` are strictly persisted — every propagation
//! reports the touched 64-byte node-group lines as [`TreeNodeWrite`]s
//! that the memory controller pushes through its ADR write queue —
//! while levels `L..=height` stay volatile and are recomputed at
//! recovery ([`Bmt::recompute_from_level`]). At `L = 0` nothing but the
//! counter lines themselves is persisted and recovery re-digests every
//! leaf from them (Phoenix-style recoverable counter tree,
//! [`Bmt::set_leaf`]).

use std::collections::VecDeque;
use std::fmt;

use crate::digest::LineDigester;

/// Tree fan-out (counter lines per first-level node).
pub const ARITY: usize = 8;

/// Capacity of the pending-update cache, in dirty leaves. Sixteen
/// slots mirror a small on-controller SRAM: enough to coalesce bursty
/// rewrites of hot pages, small enough that eviction traffic stays
/// visible in the persisted-levels sweep.
pub const PENDING_CACHE_SLOTS: usize = 16;

/// A structurally invalid tree configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TreeConfigError {
    /// The tree was asked to cover zero counter lines.
    NoLeaves,
    /// `persisted_levels` exceeds the tree height.
    FrontierOutOfRange {
        /// The requested persistence frontier.
        levels: usize,
        /// The tree's height (maximum legal frontier).
        height: usize,
    },
}

impl fmt::Display for TreeConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoLeaves => write!(f, "integrity tree needs at least one leaf"),
            Self::FrontierOutOfRange { levels, height } => {
                write!(f, "persisted_levels {levels} exceeds tree height {height}")
            }
        }
    }
}

impl std::error::Error for TreeConfigError {}

/// A 64-byte NVM line holding one group of eight sibling digests,
/// produced by a propagation for every touched node group at a
/// strictly-persisted level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeNodeWrite {
    /// Digest-array level (0 = leaf digests).
    pub level: u32,
    /// Group index within the level (`node_index / 8`).
    pub group: u64,
    /// The eight digests, packed little-endian.
    pub payload: [u8; 64],
}

impl TreeNodeWrite {
    /// The line's address in the NVM tree region.
    pub fn line_id(&self) -> u64 {
        tree_line_id(self.level, self.group)
    }
}

/// Packs a (level, group) coordinate into a single tree-region line id.
pub fn tree_line_id(level: u32, group: u64) -> u64 {
    (u64::from(level) << 32) | group
}

/// The level encoded in a tree-region line id.
pub fn tree_line_level(id: u64) -> u32 {
    (id >> 32) as u32
}

/// The group index encoded in a tree-region line id.
pub fn tree_line_group(id: u64) -> u64 {
    id & 0xFFFF_FFFF
}

/// The result of propagating pending leaf updates: which pages were
/// folded into the tree, and which persisted node-group lines changed
/// (deduplicated, in first-touch order).
#[derive(Debug, Clone, Default)]
pub struct Propagation {
    /// Pages whose pending updates were applied, in cache (FIFO) order.
    pub pages: Vec<u64>,
    /// Node-group lines at strictly-persisted levels that must now be
    /// pushed through the write queue.
    pub node_writes: Vec<TreeNodeWrite>,
}

impl Propagation {
    /// True when the propagation did nothing.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }
}

/// The outcome of arming a leaf update in the pending cache.
#[derive(Debug, Clone, Default)]
pub struct EnqueueOutcome {
    /// True when an already-pending entry for the page absorbed the
    /// new value in place (no new slot consumed).
    pub coalesced: bool,
    /// When the cache was full, the oldest entry was evicted and
    /// propagated to make room.
    pub eviction: Option<Propagation>,
}

/// A Bonsai Merkle Tree over `pages` counter lines.
///
/// # Examples
///
/// ```
/// use supermem_integrity::Bmt;
///
/// let mut bmt = Bmt::new([1u8; 16], 100)?;
/// bmt.update(42, &[9u8; 64]);
/// assert!(bmt.verify(42, &[9u8; 64]));
/// assert!(!bmt.verify(42, &[8u8; 64]));
/// # Ok::<(), supermem_integrity::TreeConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Bmt {
    digester: LineDigester,
    /// `levels[0]` are the leaf digests; each higher level is 8x
    /// smaller. All of this is "in NVM" (untrusted).
    levels: Vec<Vec<u64>>,
    /// The trusted on-chip root register.
    root: u64,
    /// Digest arrays `0..frontier` are strictly persisted; levels
    /// `frontier..=height` are volatile (rebuilt at recovery).
    frontier: usize,
    /// The pending-update cache: dirty leaves not yet folded into the
    /// tree, oldest first. Bounded by [`PENDING_CACHE_SLOTS`].
    pending: VecDeque<(u64, [u8; 64])>,
}

impl Bmt {
    /// Builds the tree for `pages` fresh (all-zero) counter lines in
    /// eager mode: the persistence frontier sits at the full height, and
    /// callers fold updates with [`Bmt::update`].
    ///
    /// # Errors
    ///
    /// [`TreeConfigError::NoLeaves`] if `pages` is zero.
    pub fn new(key: [u8; 16], pages: u64) -> Result<Self, TreeConfigError> {
        if pages == 0 {
            return Err(TreeConfigError::NoLeaves);
        }
        let digester = LineDigester::new(key);
        let zero = [0u8; 64];
        let leaves: Vec<u64> = (0..pages).map(|p| digester.line(p, &zero)).collect();
        let mut levels = vec![leaves];
        loop {
            let next: Vec<u64> = {
                let below = &levels[levels.len() - 1];
                if below.len() <= 1 {
                    break;
                }
                below
                    .chunks(ARITY)
                    .enumerate()
                    .map(|(i, children)| digester.node(i as u64, children))
                    .collect()
            };
            levels.push(next);
        }
        let root = levels[levels.len() - 1][0];
        let frontier = levels.len() - 1;
        Ok(Self {
            digester,
            levels,
            root,
            frontier,
            pending: VecDeque::new(),
        })
    }

    /// Builds the tree with an explicit persistence frontier
    /// (`persisted_levels`, Triad-NVM style) for the streaming engine.
    ///
    /// # Errors
    ///
    /// [`TreeConfigError::NoLeaves`] if `pages` is zero;
    /// [`TreeConfigError::FrontierOutOfRange`] if `persisted_levels`
    /// exceeds the tree height.
    pub fn with_frontier(
        key: [u8; 16],
        pages: u64,
        persisted_levels: usize,
    ) -> Result<Self, TreeConfigError> {
        let mut bmt = Self::new(key, pages)?;
        if persisted_levels > bmt.height() {
            return Err(TreeConfigError::FrontierOutOfRange {
                levels: persisted_levels,
                height: bmt.height(),
            });
        }
        bmt.frontier = persisted_levels;
        Ok(bmt)
    }

    /// Number of protected counter lines.
    pub fn pages(&self) -> u64 {
        self.levels[0].len() as u64
    }

    /// Tree height (levels above the leaves).
    pub fn height(&self) -> usize {
        self.levels.len() - 1
    }

    /// The persistence frontier: digest arrays `0..frontier()` are
    /// strictly persisted through the write queue.
    pub fn frontier(&self) -> usize {
        self.frontier
    }

    /// The trusted root register.
    pub fn root(&self) -> u64 {
        self.root
    }

    /// Number of digest entries at `level`.
    pub fn level_len(&self, level: usize) -> usize {
        self.levels[level].len()
    }

    /// Number of 64-byte node-group lines at `level`.
    pub fn level_groups(&self, level: usize) -> u64 {
        (self.levels[level].len() as u64).div_ceil(ARITY as u64)
    }

    /// Records a new value for page `page`'s counter line, updating the
    /// path to the root (the eager fold the memory controller performs
    /// on a counter write when streaming is off).
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn update(&mut self, page: u64, counter_line: &[u8; 64]) {
        let mut idx = page as usize;
        self.levels[0][idx] = self.digester.line(page, counter_line);
        for level in 0..self.height() {
            let parent = idx / ARITY;
            let start = parent * ARITY;
            let end = (start + ARITY).min(self.levels[level].len());
            let digest = self
                .digester
                .node(parent as u64, &self.levels[level][start..end]);
            self.levels[level + 1][parent] = digest;
            idx = parent;
        }
        self.root = self.levels[self.height()][0];
    }

    /// Arms a leaf update in the pending cache (the streaming fold). A
    /// pending entry for the same page absorbs the new value in place;
    /// when the cache is full the oldest entry is evicted and
    /// propagated, and its node writes are returned for the caller to
    /// push through the write queue.
    pub fn enqueue_update(&mut self, page: u64, counter_line: &[u8; 64]) -> EnqueueOutcome {
        if let Some(slot) = self.pending.iter_mut().find(|(p, _)| *p == page) {
            slot.1 = *counter_line;
            return EnqueueOutcome {
                coalesced: true,
                eviction: None,
            };
        }
        let eviction = if self.pending.len() >= PENDING_CACHE_SLOTS {
            Some(self.propagate_batch(1))
        } else {
            None
        };
        self.pending.push_back((page, *counter_line));
        EnqueueOutcome {
            coalesced: false,
            eviction,
        }
    }

    /// Pending (armed, not yet propagated) leaf updates.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Pages currently armed in the pending cache, oldest first.
    pub fn pending_pages(&self) -> impl Iterator<Item = u64> + '_ {
        self.pending.iter().map(|&(p, _)| p)
    }

    /// Propagates every pending leaf update (fence / shutdown / crash
    /// flush), returning the pages folded and the persisted node-group
    /// lines touched.
    pub fn propagate_pending(&mut self) -> Propagation {
        self.propagate_batch(self.pending.len())
    }

    /// Propagates only `page`'s pending update, if one is armed — the
    /// memory controller does this before verifying a counter fetched
    /// from NVM, so verification always sees the leaf's newest value.
    pub fn propagate_page(&mut self, page: u64) -> Option<Propagation> {
        let pos = self.pending.iter().position(|&(p, _)| p == page)?;
        let (page, line) = self.pending.remove(pos)?;
        let mut pages = Vec::new();
        let mut touched = Vec::new();
        self.propagate_entry(page, &line, &mut pages, &mut touched);
        Some(self.finish_propagation(pages, touched))
    }

    /// Pops and propagates the oldest `take` pending entries.
    fn propagate_batch(&mut self, take: usize) -> Propagation {
        let mut pages = Vec::new();
        let mut touched: Vec<(usize, u64)> = Vec::new();
        for _ in 0..take {
            let Some((page, line)) = self.pending.pop_front() else {
                break;
            };
            self.propagate_entry(page, &line, &mut pages, &mut touched);
        }
        self.finish_propagation(pages, touched)
    }

    /// Folds one leaf into the tree and records the persisted node
    /// groups its path touched.
    fn propagate_entry(
        &mut self,
        page: u64,
        line: &[u8; 64],
        pages: &mut Vec<u64>,
        touched: &mut Vec<(usize, u64)>,
    ) {
        self.update(page, line);
        pages.push(page);
        let mut idx = page as usize;
        for level in 0..self.frontier {
            let group = (idx / ARITY) as u64;
            if !touched.contains(&(level, group)) {
                touched.push((level, group));
            }
            idx /= ARITY;
        }
    }

    /// Payloads are read once, after every update in the batch has been
    /// applied, so a group touched by several leaves is written once
    /// with its final contents.
    fn finish_propagation(&self, pages: Vec<u64>, touched: Vec<(usize, u64)>) -> Propagation {
        let node_writes = touched
            .into_iter()
            .map(|(level, group)| TreeNodeWrite {
                level: level as u32,
                group,
                payload: self.line_payload(level, group),
            })
            .collect();
        Propagation { pages, node_writes }
    }

    /// The 64-byte node-group line at (`level`, `group`): eight sibling
    /// digests packed little-endian, zero-padded past the level's end.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn line_payload(&self, level: usize, group: u64) -> [u8; 64] {
        let mut out = [0u8; 64];
        let start = group as usize * ARITY;
        for i in 0..ARITY {
            let digest = self.levels[level].get(start + i).copied().unwrap_or(0);
            out[i * 8..(i + 1) * 8].copy_from_slice(&digest.to_le_bytes());
        }
        out
    }

    /// Installs a persisted node-group line read back from NVM at
    /// recovery. Entries past the level's end are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn install_node_line(&mut self, level: usize, group: u64, payload: &[u8; 64]) {
        let start = group as usize * ARITY;
        for i in 0..ARITY {
            let idx = start + i;
            if idx >= self.levels[level].len() {
                break;
            }
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&payload[i * 8..(i + 1) * 8]);
            self.levels[level][idx] = u64::from_le_bytes(bytes);
        }
    }

    /// Sets page `page`'s leaf digest from its counter line *without*
    /// propagating the path — recovery's Phoenix-style leaf
    /// reconstruction at `persisted_levels = 0`, followed by
    /// [`Bmt::recompute_from_level`]`(1)`.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn set_leaf(&mut self, page: u64, counter_line: &[u8; 64]) {
        self.levels[0][page as usize] = self.digester.line(page, counter_line);
    }

    /// Recomputes the volatile digest arrays `level..=height` bottom-up
    /// from the array below, refreshing the root. Returns the number of
    /// node hashes performed (recovery-time accounting). `level = 0` is
    /// clamped to 1 — leaves are rebuilt with [`Bmt::set_leaf`], not
    /// from a level below.
    pub fn recompute_from_level(&mut self, level: usize) -> u64 {
        let mut hashes = 0u64;
        for l in level.max(1)..=self.height() {
            let next: Vec<u64> = self.levels[l - 1]
                .chunks(ARITY)
                .enumerate()
                .map(|(i, children)| self.digester.node(i as u64, children))
                .collect();
            hashes += next.len() as u64;
            self.levels[l] = next;
        }
        self.root = self.levels[self.height()][0];
        hashes
    }

    /// Recovery's per-level audit of the persisted region: rehashes the
    /// stored digests below `level` and compares the results against the
    /// stored digests *at* `level`. Returns the number of node hashes
    /// performed and whether every group matched. Without this, tampering
    /// inside a persisted level below the frontier's top would never
    /// influence the recomputed root (which only reads the topmost
    /// persisted array) and would go unnoticed until demand verification.
    ///
    /// # Panics
    ///
    /// Panics if `level` is 0 (leaves have no level below) or out of
    /// range.
    pub fn audit_level(&self, level: usize) -> (u64, bool) {
        assert!(level >= 1, "leaves are audited against counter lines");
        let mut hashes = 0u64;
        let mut clean = true;
        for (i, children) in self.levels[level - 1].chunks(ARITY).enumerate() {
            hashes += 1;
            if self.digester.node(i as u64, children) != self.levels[level][i] {
                clean = false;
            }
        }
        (hashes, clean)
    }

    /// Verifies page `page`'s counter line against the trusted root,
    /// recomputing the path and using stored *siblings* — which are
    /// themselves untrusted, so any tampering along the way surfaces as
    /// a root mismatch (what the memory controller does on a counter
    /// fetch from NVM). A pending streaming update for the page must be
    /// propagated first ([`Bmt::propagate_page`]).
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn verify(&self, page: u64, counter_line: &[u8; 64]) -> bool {
        let mut idx = page as usize;
        let mut digest = self.digester.line(page, counter_line);
        for level in 0..self.height() {
            let parent = idx / ARITY;
            let start = parent * ARITY;
            let end = (start + ARITY).min(self.levels[level].len());
            let mut children: Vec<u64> = self.levels[level][start..end].to_vec();
            children[idx - start] = digest;
            digest = self.digester.node(parent as u64, &children);
            idx = parent;
        }
        digest == self.root
    }

    /// Test hook: corrupts a stored (NVM-resident) node, modeling an
    /// active bus/DIMM attacker. `level` 0 addresses leaf digests.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn tamper_node(&mut self, level: usize, index: usize, xor: u64) {
        self.levels[level][index] ^= xor;
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // unwrap/expect are fine in tests
mod tests {
    use super::*;

    fn bmt(pages: u64) -> Bmt {
        Bmt::new([0xA5; 16], pages).expect("valid page count")
    }

    #[test]
    fn zero_pages_is_a_typed_error() {
        assert!(matches!(
            Bmt::new([0; 16], 0).map(|b| b.root()),
            Err(TreeConfigError::NoLeaves)
        ));
        assert!(matches!(
            Bmt::with_frontier([0; 16], 0, 0).map(|b| b.root()),
            Err(TreeConfigError::NoLeaves)
        ));
    }

    #[test]
    fn frontier_past_height_is_a_typed_error() {
        // 64 pages -> height 2; frontier 3 is out of range.
        assert!(matches!(
            Bmt::with_frontier([0; 16], 64, 3).map(|b| b.root()),
            Err(TreeConfigError::FrontierOutOfRange {
                levels: 3,
                height: 2
            })
        ));
        assert_eq!(
            Bmt::with_frontier([0; 16], 64, 2)
                .expect("frontier == height is legal")
                .frontier(),
            2
        );
    }

    #[test]
    fn fresh_tree_verifies_zero_lines() {
        let b = bmt(100);
        for p in [0u64, 1, 50, 99] {
            assert!(b.verify(p, &[0u8; 64]));
        }
    }

    #[test]
    fn update_then_verify() {
        let mut b = bmt(1000);
        b.update(123, &[7u8; 64]);
        assert!(b.verify(123, &[7u8; 64]));
        assert!(
            !b.verify(123, &[0u8; 64]),
            "old value must no longer verify"
        );
        // Untouched pages still verify.
        assert!(b.verify(124, &[0u8; 64]));
    }

    #[test]
    fn detects_counter_line_tampering() {
        let mut b = bmt(64);
        b.update(10, &[3u8; 64]);
        let mut forged = [3u8; 64];
        forged[17] ^= 0x40;
        assert!(!b.verify(10, &forged));
    }

    #[test]
    fn detects_leaf_digest_tampering() {
        let mut b = bmt(64);
        b.update(10, &[3u8; 64]);
        // The attacker rewrites a *sibling* leaf digest in NVM: page 10's
        // verification walks past it and must notice.
        b.tamper_node(0, 11, 0xDEAD);
        assert!(!b.verify(10, &[3u8; 64]));
    }

    #[test]
    fn detects_inner_node_tampering() {
        let mut b = bmt(512);
        b.update(100, &[9u8; 64]);
        // Page 100's level-1 parent is node 12 (group 8..16). Corrupt a
        // *sibling* inner node in that group: the level-2 recombination
        // must expose it.
        b.tamper_node(1, 8, 1);
        assert!(!b.verify(100, &[9u8; 64]), "sibling-subtree tampering");
    }

    #[test]
    fn single_page_tree() {
        let mut b = bmt(1);
        assert_eq!(b.height(), 0);
        b.update(0, &[5u8; 64]);
        assert!(b.verify(0, &[5u8; 64]));
        assert!(!b.verify(0, &[6u8; 64]));
    }

    #[test]
    fn non_power_of_arity_page_counts() {
        for pages in [7u64, 9, 63, 65, 100] {
            let mut b = bmt(pages);
            let last = pages - 1;
            b.update(last, &[1u8; 64]);
            assert!(b.verify(last, &[1u8; 64]), "{pages} pages");
            assert!(b.verify(0, &[0u8; 64]), "{pages} pages");
        }
    }

    #[test]
    fn height_grows_logarithmically() {
        assert_eq!(bmt(8).height(), 1);
        assert_eq!(bmt(9).height(), 2);
        assert_eq!(bmt(64).height(), 2);
        assert_eq!(bmt(4096).height(), 4);
    }

    #[test]
    fn root_changes_with_every_update() {
        let mut b = bmt(256);
        let r0 = b.root();
        b.update(0, &[1u8; 64]);
        let r1 = b.root();
        b.update(255, &[1u8; 64]);
        let r2 = b.root();
        assert_ne!(r0, r1);
        assert_ne!(r1, r2);
    }

    #[test]
    fn line_id_round_trips() {
        let id = tree_line_id(3, 0x1234_5678);
        assert_eq!(tree_line_level(id), 3);
        assert_eq!(tree_line_group(id), 0x1234_5678);
    }

    #[test]
    fn streaming_coalesces_same_page_in_place() {
        let mut b = Bmt::with_frontier([1; 16], 64, 1).expect("valid");
        assert!(!b.enqueue_update(5, &[1; 64]).coalesced);
        let again = b.enqueue_update(5, &[2; 64]);
        assert!(again.coalesced);
        assert!(again.eviction.is_none());
        assert_eq!(b.pending_len(), 1);
        // The coalesced (newest) value is what propagation folds in.
        let prop = b.propagate_pending();
        assert_eq!(prop.pages, vec![5]);
        assert!(b.verify(5, &[2; 64]));
        assert!(!b.verify(5, &[1; 64]));
    }

    #[test]
    fn full_cache_evicts_and_propagates_the_oldest() {
        let mut b = Bmt::with_frontier([1; 16], 4096, 2).expect("valid");
        for page in 0..PENDING_CACHE_SLOTS as u64 {
            assert!(b.enqueue_update(page, &[page as u8; 64]).eviction.is_none());
        }
        assert_eq!(b.pending_len(), PENDING_CACHE_SLOTS);
        let out = b.enqueue_update(1000, &[7; 64]);
        let evicted = out.eviction.expect("cache was full");
        assert_eq!(evicted.pages, vec![0], "oldest entry propagates");
        assert_eq!(b.pending_len(), PENDING_CACHE_SLOTS);
        // Page 0's path touches one group per persisted level.
        assert_eq!(evicted.node_writes.len(), 2);
        assert!(b.verify(0, &[0; 64]));
    }

    #[test]
    fn propagation_dedupes_node_groups_across_leaves() {
        // Pages 0..8 share the level-0 group 0 and the level-1 group 0:
        // one flush of all eight must write each group line once.
        let mut b = Bmt::with_frontier([1; 16], 4096, 2).expect("valid");
        for page in 0..8u64 {
            b.enqueue_update(page, &[page as u8 + 1; 64]);
        }
        let prop = b.propagate_pending();
        assert_eq!(prop.pages.len(), 8);
        assert_eq!(prop.node_writes.len(), 2, "level 0 + level 1, deduped");
        for page in 0..8u64 {
            assert!(b.verify(page, &[page as u8 + 1; 64]));
        }
    }

    #[test]
    fn propagate_page_targets_one_entry() {
        let mut b = Bmt::with_frontier([1; 16], 4096, 1).expect("valid");
        b.enqueue_update(9, &[9; 64]);
        b.enqueue_update(700, &[7; 64]);
        let prop = b.propagate_page(700).expect("armed");
        assert_eq!(prop.pages, vec![700]);
        assert_eq!(b.pending_len(), 1);
        assert!(b.propagate_page(700).is_none(), "no longer pending");
        assert!(b.verify(700, &[7; 64]));
    }

    #[test]
    fn node_line_round_trips_through_payload_and_install() {
        let mut b = Bmt::with_frontier([3; 16], 100, 1).expect("valid");
        for page in 90..100u64 {
            b.enqueue_update(page, &[page as u8; 64]);
        }
        let prop = b.propagate_pending();
        // Install every persisted line into a fresh tree and recompute
        // the volatile levels: the roots must agree.
        let mut fresh = Bmt::with_frontier([3; 16], 100, 1).expect("valid");
        for w in &prop.node_writes {
            assert_eq!(w.level, 0, "frontier 1 persists only leaf lines");
            fresh.install_node_line(w.level as usize, w.group, &w.payload);
        }
        fresh.recompute_from_level(1);
        assert_eq!(fresh.root(), b.root());
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // unwrap/expect are fine in tests
mod randomized {
    //! Deterministic randomized tests (seeded SplitMix64 stands in for
    //! proptest, which is unavailable in offline builds).
    use super::*;
    use std::collections::HashMap;
    use supermem_sim::SplitMix64;

    /// After any update sequence, the latest value of every touched
    /// page verifies and a forged value does not.
    #[test]
    fn updates_verify_and_forgeries_fail() {
        let mut rng = SplitMix64::new(0xB317);
        for _ in 0..24 {
            let mut b = Bmt::new([1; 16], 200).expect("valid");
            let mut latest = std::collections::HashMap::new();
            for _ in 0..rng.next_range(1, 60) {
                let page = rng.next_below(200);
                let fill = rng.next_u64() as u8;
                b.update(page, &[fill; 64]);
                latest.insert(page, fill);
            }
            for (page, fill) in &latest {
                assert!(b.verify(*page, &[*fill; 64]));
                assert!(!b.verify(*page, &[fill.wrapping_add(1); 64]));
            }
        }
    }

    /// Tampering any stored node that verification consults as a
    /// *sibling* (not a node it recomputes itself) is detected.
    /// Nodes on the page's own path are recomputed and substituted,
    /// so tampering them is inconsequential — and correctly NOT
    /// reported, because the recomputation supersedes them.
    #[test]
    fn sibling_tampering_is_detected() {
        let mut rng = SplitMix64::new(0x7A3B);
        for _ in 0..64 {
            let page = rng.next_below(64);
            let level = rng.next_below(2) as usize;
            let offset = rng.next_range(1, 8) as usize; // never the page's own node
            let xor = rng.next_range(1, u64::MAX);
            let mut b = Bmt::new([2; 16], 64).expect("valid");
            b.update(page, &[0xCC; 64]);
            let own = if level == 0 {
                page as usize
            } else {
                page as usize / 8
            };
            let group = own / 8 * 8;
            let idx = group + (own % 8 + offset) % 8;
            b.tamper_node(level, idx, xor);
            assert!(!b.verify(page, &[0xCC; 64]));
        }
    }

    /// Conversely: tampering a node the verifier recomputes (its own
    /// path) does not break verification of the true value.
    #[test]
    fn own_path_nodes_are_self_healing() {
        let mut rng = SplitMix64::new(0x4EA1);
        for _ in 0..64 {
            let page = rng.next_below(64);
            let level = rng.next_below(2) as usize;
            let xor = rng.next_range(1, u64::MAX);
            let mut b = Bmt::new([2; 16], 64).expect("valid");
            b.update(page, &[0xCC; 64]);
            let own = if level == 0 {
                page as usize
            } else {
                page as usize / 8
            };
            b.tamper_node(level, own, xor);
            assert!(b.verify(page, &[0xCC; 64]));
        }
    }

    /// The streaming engine against the brute-force eager oracle: the
    /// same update sequence fed through [`Bmt::enqueue_update`] (with
    /// random interleaved partial flushes) and through [`Bmt::update`]
    /// must converge to the same root once all pending entries are
    /// propagated — over non-power-of-8 leaf counts and heavy
    /// duplicate-page coalescing.
    #[test]
    fn streaming_matches_eager_oracle() {
        let mut rng = SplitMix64::new(0x57EE);
        for pages in [7u64, 9, 64, 65, 100, 512, 1000] {
            let height = Bmt::new([9; 16], pages).expect("valid").height();
            for _ in 0..8 {
                let frontier = (rng.next_below(4) as usize).min(height);
                let mut streaming = Bmt::with_frontier([9; 16], pages, frontier).expect("valid");
                let mut eager = Bmt::new([9; 16], pages).expect("valid");
                for _ in 0..rng.next_range(1, 120) {
                    let page = rng.next_below(pages.max(4)) % pages;
                    let fill = rng.next_u64() as u8;
                    streaming.enqueue_update(page, &[fill; 64]);
                    eager.update(page, &[fill; 64]);
                    if rng.next_below(10) == 0 {
                        streaming.propagate_pending();
                    }
                }
                streaming.propagate_pending();
                assert_eq!(streaming.root(), eager.root(), "{pages} pages");
                assert_eq!(streaming.pending_len(), 0);
            }
        }
    }

    /// Crash recovery at every persisted-levels setting: persist the
    /// node lines a streaming run reports (newest write wins, as NVM
    /// would hold them), rebuild a fresh tree from the persisted
    /// frontier plus the counter lines, and the recomputed root must
    /// equal the live root — and every page's latest counter line must
    /// verify against it.
    #[test]
    fn recovery_from_the_frontier_matches_at_every_setting() {
        let mut rng = SplitMix64::new(0xF30A);
        for pages in [9u64, 100, 520] {
            let probe = Bmt::new([4; 16], pages).expect("valid");
            for frontier in 0..=probe.height() {
                let mut live = Bmt::with_frontier([4; 16], pages, frontier).expect("valid");
                let mut nvm_tree: HashMap<u64, [u8; 64]> = HashMap::new();
                let mut counters: HashMap<u64, [u8; 64]> = HashMap::new();
                let persist = |prop: &Propagation, nvm: &mut HashMap<u64, [u8; 64]>| {
                    for w in &prop.node_writes {
                        nvm.insert(w.line_id(), w.payload);
                    }
                };
                for _ in 0..rng.next_range(1, 80) {
                    let page = rng.next_below(pages);
                    let line = [rng.next_u64() as u8; 64];
                    counters.insert(page, line);
                    let out = live.enqueue_update(page, &line);
                    if let Some(ev) = &out.eviction {
                        persist(ev, &mut nvm_tree);
                    }
                    if rng.next_below(12) == 0 {
                        let prop = live.propagate_pending();
                        persist(&prop, &mut nvm_tree);
                    }
                }
                // Crash: the ADR domain flushes the pending cache.
                let flush = live.propagate_pending();
                persist(&flush, &mut nvm_tree);

                // Recover: fresh tree, persisted lines for levels
                // 0..frontier, Phoenix leaves when the frontier is 0,
                // volatile levels recomputed bottom-up.
                let mut rec = Bmt::with_frontier([4; 16], pages, frontier).expect("valid");
                if frontier == 0 {
                    for (&page, line) in &counters {
                        rec.set_leaf(page, line);
                    }
                } else {
                    for (&id, payload) in &nvm_tree {
                        let level = tree_line_level(id) as usize;
                        assert!(level < frontier, "only persisted levels hit NVM");
                        rec.install_node_line(level, tree_line_group(id), payload);
                    }
                }
                rec.recompute_from_level(frontier);
                assert_eq!(
                    rec.root(),
                    live.root(),
                    "{pages} pages, frontier {frontier}"
                );
                for (&page, line) in &counters {
                    assert!(rec.verify(page, line));
                }
            }
        }
    }
}
