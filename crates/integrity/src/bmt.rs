//! The Bonsai Merkle Tree.
//!
//! An 8-ary hash tree whose leaves are keyed digests of counter lines
//! (one per 4 KB data page). Inner nodes and leaves live in NVM — an
//! attacker with bus access can rewrite them — but the root stays in an
//! on-chip register. Any modification of a counter line, a leaf, or an
//! inner node makes the recomputed root diverge from the trusted one.

use crate::digest::LineDigester;

/// Tree fan-out (counter lines per first-level node).
pub const ARITY: usize = 8;

/// A Bonsai Merkle Tree over `pages` counter lines.
///
/// # Examples
///
/// ```
/// use supermem_integrity::Bmt;
///
/// let mut bmt = Bmt::new([1u8; 16], 100);
/// bmt.update(42, &[9u8; 64]);
/// assert!(bmt.verify(42, &[9u8; 64]));
/// assert!(!bmt.verify(42, &[8u8; 64]));
/// ```
#[derive(Debug, Clone)]
pub struct Bmt {
    digester: LineDigester,
    /// `levels[0]` are the leaf digests; each higher level is 8x
    /// smaller. All of this is "in NVM" (untrusted).
    levels: Vec<Vec<u64>>,
    /// The trusted on-chip root register.
    root: u64,
}

impl Bmt {
    /// Builds the tree for `pages` fresh (all-zero) counter lines.
    ///
    /// # Panics
    ///
    /// Panics if `pages` is zero.
    pub fn new(key: [u8; 16], pages: u64) -> Self {
        assert!(pages > 0, "tree needs at least one leaf");
        let digester = LineDigester::new(key);
        let zero = [0u8; 64];
        let leaves: Vec<u64> = (0..pages).map(|p| digester.line(p, &zero)).collect();
        let mut levels = vec![leaves];
        while levels.last().expect("non-empty").len() > 1 {
            let below = levels.last().expect("non-empty");
            let next: Vec<u64> = below
                .chunks(ARITY)
                .enumerate()
                .map(|(i, children)| digester.node(i as u64, children))
                .collect();
            levels.push(next);
        }
        let root = levels.last().expect("non-empty")[0];
        Self {
            digester,
            levels,
            root,
        }
    }

    /// Number of protected counter lines.
    pub fn pages(&self) -> u64 {
        self.levels[0].len() as u64
    }

    /// Tree height (levels above the leaves).
    pub fn height(&self) -> usize {
        self.levels.len() - 1
    }

    /// The trusted root register.
    pub fn root(&self) -> u64 {
        self.root
    }

    /// Records a new value for page `page`'s counter line, updating the
    /// path to the root (what the memory controller does on a counter
    /// write).
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn update(&mut self, page: u64, counter_line: &[u8; 64]) {
        let mut idx = page as usize;
        self.levels[0][idx] = self.digester.line(page, counter_line);
        for level in 0..self.height() {
            let parent = idx / ARITY;
            let start = parent * ARITY;
            let end = (start + ARITY).min(self.levels[level].len());
            let digest = self
                .digester
                .node(parent as u64, &self.levels[level][start..end]);
            self.levels[level + 1][parent] = digest;
            idx = parent;
        }
        self.root = self.levels[self.height()][0];
    }

    /// Verifies page `page`'s counter line against the trusted root,
    /// recomputing the path and using stored *siblings* — which are
    /// themselves untrusted, so any tampering along the way surfaces as
    /// a root mismatch (what the memory controller does on a counter
    /// fetch from NVM).
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn verify(&self, page: u64, counter_line: &[u8; 64]) -> bool {
        let mut idx = page as usize;
        let mut digest = self.digester.line(page, counter_line);
        for level in 0..self.height() {
            let parent = idx / ARITY;
            let start = parent * ARITY;
            let end = (start + ARITY).min(self.levels[level].len());
            let mut children: Vec<u64> = self.levels[level][start..end].to_vec();
            children[idx - start] = digest;
            digest = self.digester.node(parent as u64, &children);
            idx = parent;
        }
        digest == self.root
    }

    /// Test hook: corrupts a stored (NVM-resident) node, modeling an
    /// active bus/DIMM attacker. `level` 0 addresses leaf digests.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn tamper_node(&mut self, level: usize, index: usize, xor: u64) {
        self.levels[level][index] ^= xor;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bmt(pages: u64) -> Bmt {
        Bmt::new([0xA5; 16], pages)
    }

    #[test]
    fn fresh_tree_verifies_zero_lines() {
        let b = bmt(100);
        for p in [0u64, 1, 50, 99] {
            assert!(b.verify(p, &[0u8; 64]));
        }
    }

    #[test]
    fn update_then_verify() {
        let mut b = bmt(1000);
        b.update(123, &[7u8; 64]);
        assert!(b.verify(123, &[7u8; 64]));
        assert!(
            !b.verify(123, &[0u8; 64]),
            "old value must no longer verify"
        );
        // Untouched pages still verify.
        assert!(b.verify(124, &[0u8; 64]));
    }

    #[test]
    fn detects_counter_line_tampering() {
        let mut b = bmt(64);
        b.update(10, &[3u8; 64]);
        let mut forged = [3u8; 64];
        forged[17] ^= 0x40;
        assert!(!b.verify(10, &forged));
    }

    #[test]
    fn detects_leaf_digest_tampering() {
        let mut b = bmt(64);
        b.update(10, &[3u8; 64]);
        // The attacker rewrites a *sibling* leaf digest in NVM: page 10's
        // verification walks past it and must notice.
        b.tamper_node(0, 11, 0xDEAD);
        assert!(!b.verify(10, &[3u8; 64]));
    }

    #[test]
    fn detects_inner_node_tampering() {
        let mut b = bmt(512);
        b.update(100, &[9u8; 64]);
        // Page 100's level-1 parent is node 12 (group 8..16). Corrupt a
        // *sibling* inner node in that group: the level-2 recombination
        // must expose it.
        b.tamper_node(1, 8, 1);
        assert!(!b.verify(100, &[9u8; 64]), "sibling-subtree tampering");
    }

    #[test]
    fn single_page_tree() {
        let mut b = bmt(1);
        assert_eq!(b.height(), 0);
        b.update(0, &[5u8; 64]);
        assert!(b.verify(0, &[5u8; 64]));
        assert!(!b.verify(0, &[6u8; 64]));
    }

    #[test]
    fn non_power_of_arity_page_counts() {
        for pages in [7u64, 9, 63, 65, 100] {
            let mut b = bmt(pages);
            let last = pages - 1;
            b.update(last, &[1u8; 64]);
            assert!(b.verify(last, &[1u8; 64]), "{pages} pages");
            assert!(b.verify(0, &[0u8; 64]), "{pages} pages");
        }
    }

    #[test]
    fn height_grows_logarithmically() {
        assert_eq!(bmt(8).height(), 1);
        assert_eq!(bmt(9).height(), 2);
        assert_eq!(bmt(64).height(), 2);
        assert_eq!(bmt(4096).height(), 4);
    }

    #[test]
    fn root_changes_with_every_update() {
        let mut b = bmt(256);
        let r0 = b.root();
        b.update(0, &[1u8; 64]);
        let r1 = b.root();
        b.update(255, &[1u8; 64]);
        let r2 = b.root();
        assert_ne!(r0, r1);
        assert_ne!(r1, r2);
    }
}

#[cfg(test)]
mod randomized {
    //! Deterministic randomized tests (seeded SplitMix64 stands in for
    //! proptest, which is unavailable in offline builds).
    use super::*;
    use supermem_sim::SplitMix64;

    /// After any update sequence, the latest value of every touched
    /// page verifies and a forged value does not.
    #[test]
    fn updates_verify_and_forgeries_fail() {
        let mut rng = SplitMix64::new(0xB317);
        for _ in 0..24 {
            let mut b = Bmt::new([1; 16], 200);
            let mut latest = std::collections::HashMap::new();
            for _ in 0..rng.next_range(1, 60) {
                let page = rng.next_below(200);
                let fill = rng.next_u64() as u8;
                b.update(page, &[fill; 64]);
                latest.insert(page, fill);
            }
            for (page, fill) in &latest {
                assert!(b.verify(*page, &[*fill; 64]));
                assert!(!b.verify(*page, &[fill.wrapping_add(1); 64]));
            }
        }
    }

    /// Tampering any stored node that verification consults as a
    /// *sibling* (not a node it recomputes itself) is detected.
    /// Nodes on the page's own path are recomputed and substituted,
    /// so tampering them is inconsequential — and correctly NOT
    /// reported, because the recomputation supersedes them.
    #[test]
    fn sibling_tampering_is_detected() {
        let mut rng = SplitMix64::new(0x7A3B);
        for _ in 0..64 {
            let page = rng.next_below(64);
            let level = rng.next_below(2) as usize;
            let offset = rng.next_range(1, 8) as usize; // never the page's own node
            let xor = rng.next_range(1, u64::MAX);
            let mut b = Bmt::new([2; 16], 64);
            b.update(page, &[0xCC; 64]);
            let own = if level == 0 {
                page as usize
            } else {
                page as usize / 8
            };
            let group = own / 8 * 8;
            let idx = group + (own % 8 + offset) % 8;
            b.tamper_node(level, idx, xor);
            assert!(!b.verify(page, &[0xCC; 64]));
        }
    }

    /// Conversely: tampering a node the verifier recomputes (its own
    /// path) does not break verification of the true value.
    #[test]
    fn own_path_nodes_are_self_healing() {
        let mut rng = SplitMix64::new(0x4EA1);
        for _ in 0..64 {
            let page = rng.next_below(64);
            let level = rng.next_below(2) as usize;
            let xor = rng.next_range(1, u64::MAX);
            let mut b = Bmt::new([2; 16], 64);
            b.update(page, &[0xCC; 64]);
            let own = if level == 0 {
                page as usize
            } else {
                page as usize / 8
            };
            b.tamper_node(level, own, xor);
            assert!(b.verify(page, &[0xCC; 64]));
        }
    }
}
