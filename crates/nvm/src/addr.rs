//! Physical address map: lines, pages, and bank interleaving.
//!
//! The map is page-interleaved: page `p` lives entirely in bank
//! `p mod N`. This matches the paper's Figure 8, where a data block (and
//! the whole page around it) resides in one bank, and consecutive pages of
//! an OS-contiguous allocation fall into adjacent banks.
//!
//! Counter lines are addressed by [`PageId`] in a dedicated counter region
//! (one 64 B counter line per 4 KB data page); *which bank* a counter line
//! occupies is a memory-controller policy (SingleBank / SameBank / XBank)
//! and therefore lives in `supermem-memctrl`, not here.

/// A line-aligned physical byte address of a data line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineAddr(pub u64);

/// Index of a 4 KB page (also indexes that page's counter line).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u64);

impl std::fmt::Display for LineAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line@{:#x}", self.0)
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "page#{}", self.0)
    }
}

/// Geometry-aware address arithmetic.
///
/// # Examples
///
/// ```
/// use supermem_nvm::addr::AddressMap;
///
/// let m = AddressMap::new(8 << 30, 64, 4096, 8);
/// let line = m.line_of(0x1234);
/// assert_eq!(line.0, 0x1200); // aligned down to 64 B
/// assert_eq!(m.page_of_line(line).0, 1); // 0x1200 / 4096
/// assert_eq!(m.line_index_in_page(line), 8); // (0x1200 % 4096) / 64
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddressMap {
    capacity: u64,
    line_bytes: u64,
    page_bytes: u64,
    banks: usize,
}

impl AddressMap {
    /// Creates a map for the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if any size is zero, not a power of two, or inconsistent
    /// (`line_bytes > page_bytes`, capacity not page-aligned).
    pub fn new(capacity: u64, line_bytes: u64, page_bytes: u64, banks: usize) -> Self {
        assert!(line_bytes.is_power_of_two(), "line size must be 2^k");
        assert!(page_bytes.is_power_of_two(), "page size must be 2^k");
        assert!((banks as u64).is_power_of_two(), "bank count must be 2^k");
        assert!(line_bytes <= page_bytes, "line larger than page");
        assert!(
            capacity > 0 && capacity.is_multiple_of(page_bytes),
            "capacity must be whole pages"
        );
        Self {
            capacity,
            line_bytes,
            page_bytes,
            banks,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.banks
    }

    /// Lines per page (64 in the default geometry).
    pub fn lines_per_page(&self) -> u64 {
        self.page_bytes / self.line_bytes
    }

    /// Total number of pages.
    pub fn pages(&self) -> u64 {
        self.capacity / self.page_bytes
    }

    /// Aligns a byte address down to its containing line.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the address is beyond capacity.
    pub fn line_of(&self, byte_addr: u64) -> LineAddr {
        debug_assert!(
            byte_addr < self.capacity,
            "address {byte_addr:#x} out of range"
        );
        LineAddr(byte_addr & !(self.line_bytes - 1))
    }

    /// The page containing a line.
    pub fn page_of_line(&self, line: LineAddr) -> PageId {
        PageId(line.0 / self.page_bytes)
    }

    /// The index of `line` within its page, in `0..lines_per_page()`.
    pub fn line_index_in_page(&self, line: LineAddr) -> usize {
        ((line.0 % self.page_bytes) / self.line_bytes) as usize
    }

    /// The `idx`-th line of page `page`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= lines_per_page()`.
    pub fn line_in_page(&self, page: PageId, idx: usize) -> LineAddr {
        assert!(
            (idx as u64) < self.lines_per_page(),
            "line index {idx} out of page"
        );
        LineAddr(page.0 * self.page_bytes + idx as u64 * self.line_bytes)
    }

    /// The bank holding a data line (page-interleaved).
    pub fn data_bank(&self, line: LineAddr) -> usize {
        (self.page_of_line(line).0 % self.banks as u64) as usize
    }

    /// The bank holding a whole page.
    pub fn page_bank(&self, page: PageId) -> usize {
        (page.0 % self.banks as u64) as usize
    }

    /// Iterates over the line addresses covered by `[start, start+len)`.
    ///
    /// Useful for turning a byte-granularity store into line flushes.
    pub fn lines_covering(&self, start: u64, len: u64) -> impl Iterator<Item = LineAddr> + '_ {
        let first = if len == 0 { 1 } else { self.line_of(start).0 };
        let last = if len == 0 {
            0
        } else {
            self.line_of(start + len - 1).0
        };
        (first..=last)
            .step_by(self.line_bytes as usize)
            .map(LineAddr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> AddressMap {
        AddressMap::new(8 << 30, 64, 4096, 8)
    }

    #[test]
    fn line_alignment() {
        let m = map();
        assert_eq!(m.line_of(0).0, 0);
        assert_eq!(m.line_of(63).0, 0);
        assert_eq!(m.line_of(64).0, 64);
        assert_eq!(m.line_of(0xFFF).0, 0xFC0);
    }

    #[test]
    fn page_and_index_arithmetic() {
        let m = map();
        let line = m.line_of(4096 * 5 + 64 * 7 + 3);
        assert_eq!(m.page_of_line(line).0, 5);
        assert_eq!(m.line_index_in_page(line), 7);
        assert_eq!(m.line_in_page(PageId(5), 7), line);
    }

    #[test]
    fn page_interleaved_banks() {
        let m = map();
        for p in 0..32u64 {
            let line = m.line_in_page(PageId(p), 0);
            assert_eq!(m.data_bank(line), (p % 8) as usize);
            // All lines of one page share a bank.
            let last = m.line_in_page(PageId(p), 63);
            assert_eq!(m.data_bank(last), m.data_bank(line));
        }
    }

    #[test]
    fn lines_covering_spans() {
        let m = map();
        let lines: Vec<_> = m.lines_covering(0x100, 256).collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].0, 0x100);
        assert_eq!(lines[3].0, 0x1C0);

        // Unaligned start covering an extra line.
        let lines: Vec<_> = m.lines_covering(0x13F, 2).collect();
        assert_eq!(lines.len(), 2);

        // Empty ranges produce nothing.
        assert_eq!(m.lines_covering(0x100, 0).count(), 0);
    }

    #[test]
    fn geometry_getters() {
        let m = map();
        assert_eq!(m.lines_per_page(), 64);
        assert_eq!(m.pages(), (8u64 << 30) / 4096);
        assert_eq!(m.banks(), 8);
        assert_eq!(m.capacity(), 8 << 30);
    }

    #[test]
    #[should_panic(expected = "2^k")]
    fn rejects_non_pow2_line() {
        AddressMap::new(1 << 20, 48, 4096, 8);
    }

    #[test]
    #[should_panic(expected = "out of page")]
    fn line_in_page_bounds() {
        map().line_in_page(PageId(0), 64);
    }

    #[test]
    fn display_formats() {
        assert_eq!(LineAddr(0x40).to_string(), "line@0x40");
        assert_eq!(PageId(3).to_string(), "page#3");
    }
}
