//! Physical address map: lines, pages, channel and bank interleaving.
//!
//! The map is page-interleaved, channel bits first: page `p` lives in
//! channel `p mod C` and, within that channel, in bank `(p / C) mod N`.
//! With a single channel (`C = 1`) this degenerates to exactly the
//! historical `p mod N` layout of the paper's Figure 8, where a data block
//! (and the whole page around it) resides in one bank, and consecutive
//! pages of an OS-contiguous allocation fall into adjacent banks — or,
//! with multiple channels, round-robin across channels first and then
//! across the banks of each channel, which is how real PM platforms spread
//! OS-contiguous traffic over every controller.
//!
//! Counter lines are addressed by [`PageId`] in a dedicated counter region
//! (one 64 B counter line per 4 KB data page); a page's counter line lives
//! in the *same channel* as the page, but *which bank* of that channel it
//! occupies is a memory-controller policy (SingleBank / SameBank / XBank)
//! and therefore lives in `supermem-memctrl`, not here.

/// A line-aligned physical byte address of a data line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineAddr(pub u64);

/// Index of a 4 KB page (also indexes that page's counter line).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u64);

impl std::fmt::Display for LineAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line@{:#x}", self.0)
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "page#{}", self.0)
    }
}

/// Geometry-aware address arithmetic.
///
/// # Examples
///
/// ```
/// use supermem_nvm::addr::AddressMap;
///
/// let m = AddressMap::new(8 << 30, 64, 4096, 8);
/// let line = m.line_of(0x1234);
/// assert_eq!(line.0, 0x1200); // aligned down to 64 B
/// assert_eq!(m.page_of_line(line).0, 1); // 0x1200 / 4096
/// assert_eq!(m.line_index_in_page(line), 8); // (0x1200 % 4096) / 64
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddressMap {
    capacity: u64,
    line_bytes: u64,
    page_bytes: u64,
    banks: usize,
    channels: usize,
}

impl AddressMap {
    /// Creates a single-channel map for the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if any size is zero, not a power of two, or inconsistent
    /// (`line_bytes > page_bytes`, capacity not page-aligned).
    pub fn new(capacity: u64, line_bytes: u64, page_bytes: u64, banks: usize) -> Self {
        Self::with_channels(capacity, line_bytes, page_bytes, banks, 1)
    }

    /// Creates a map interleaving pages over `channels` channels.
    ///
    /// # Panics
    ///
    /// Panics if any size or count is zero, not a power of two, or
    /// inconsistent (`line_bytes > page_bytes`, capacity not page-aligned,
    /// fewer pages than channels).
    pub fn with_channels(
        capacity: u64,
        line_bytes: u64,
        page_bytes: u64,
        banks: usize,
        channels: usize,
    ) -> Self {
        assert!(line_bytes.is_power_of_two(), "line size must be 2^k");
        assert!(page_bytes.is_power_of_two(), "page size must be 2^k");
        assert!((banks as u64).is_power_of_two(), "bank count must be 2^k");
        assert!(
            (channels as u64).is_power_of_two(),
            "channel count must be 2^k"
        );
        assert!(line_bytes <= page_bytes, "line larger than page");
        assert!(
            capacity > 0 && capacity.is_multiple_of(page_bytes),
            "capacity must be whole pages"
        );
        assert!(
            capacity / page_bytes >= channels as u64,
            "fewer pages than channels"
        );
        Self {
            capacity,
            line_bytes,
            page_bytes,
            banks,
            channels,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of banks per channel.
    pub fn banks(&self) -> usize {
        self.banks
    }

    /// Number of address-interleaved channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Lines per page (64 in the default geometry).
    pub fn lines_per_page(&self) -> u64 {
        self.page_bytes / self.line_bytes
    }

    /// Total number of pages.
    pub fn pages(&self) -> u64 {
        self.capacity / self.page_bytes
    }

    /// Aligns a byte address down to its containing line.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the address is beyond capacity.
    pub fn line_of(&self, byte_addr: u64) -> LineAddr {
        debug_assert!(
            byte_addr < self.capacity,
            "address {byte_addr:#x} out of range"
        );
        LineAddr(byte_addr & !(self.line_bytes - 1))
    }

    /// The page containing a line.
    pub fn page_of_line(&self, line: LineAddr) -> PageId {
        PageId(line.0 / self.page_bytes)
    }

    /// The index of `line` within its page, in `0..lines_per_page()`.
    pub fn line_index_in_page(&self, line: LineAddr) -> usize {
        ((line.0 % self.page_bytes) / self.line_bytes) as usize
    }

    /// The `idx`-th line of page `page`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= lines_per_page()`.
    pub fn line_in_page(&self, page: PageId, idx: usize) -> LineAddr {
        assert!(
            (idx as u64) < self.lines_per_page(),
            "line index {idx} out of page"
        );
        LineAddr(page.0 * self.page_bytes + idx as u64 * self.line_bytes)
    }

    /// The bank holding a data line, within the line's channel
    /// (page-interleaved; channel bits are consumed first).
    pub fn data_bank(&self, line: LineAddr) -> usize {
        self.page_bank(self.page_of_line(line))
    }

    /// The bank holding a whole page, within the page's channel.
    pub fn page_bank(&self, page: PageId) -> usize {
        ((page.0 / self.channels as u64) % self.banks as u64) as usize
    }

    /// The channel holding a whole page (and its counter line).
    pub fn page_channel(&self, page: PageId) -> usize {
        (page.0 % self.channels as u64) as usize
    }

    /// The channel holding a data line.
    pub fn line_channel(&self, line: LineAddr) -> usize {
        self.page_channel(self.page_of_line(line))
    }

    /// Decomposes a line address into `(channel, bank, row)`.
    ///
    /// The row encodes the line's position within its `(channel, bank)`
    /// slice: `row = (page / (channels * banks)) * lines_per_page + idx`.
    /// Together with [`AddressMap::recompose`] this forms a bijection —
    /// every line maps to exactly one `(channel, bank, row)` triple and
    /// round-trips (pinned by the seeded property test in this module).
    pub fn decompose(&self, line: LineAddr) -> (usize, usize, u64) {
        let page = self.page_of_line(line);
        let idx = self.line_index_in_page(line) as u64;
        let row_page = page.0 / (self.channels as u64 * self.banks as u64);
        (
            self.page_channel(page),
            self.page_bank(page),
            row_page * self.lines_per_page() + idx,
        )
    }

    /// Inverse of [`AddressMap::decompose`].
    ///
    /// # Panics
    ///
    /// Panics if `channel` or `bank` is out of range.
    pub fn recompose(&self, channel: usize, bank: usize, row: u64) -> LineAddr {
        assert!(channel < self.channels, "channel {channel} out of range");
        assert!(bank < self.banks, "bank {bank} out of range");
        let row_page = row / self.lines_per_page();
        let idx = row % self.lines_per_page();
        let page =
            (row_page * self.banks as u64 + bank as u64) * self.channels as u64 + channel as u64;
        LineAddr(page * self.page_bytes + idx * self.line_bytes)
    }

    /// Iterates over the line addresses covered by `[start, start+len)`.
    ///
    /// Useful for turning a byte-granularity store into line flushes.
    pub fn lines_covering(&self, start: u64, len: u64) -> impl Iterator<Item = LineAddr> + '_ {
        let first = if len == 0 { 1 } else { self.line_of(start).0 };
        let last = if len == 0 {
            0
        } else {
            self.line_of(start + len - 1).0
        };
        (first..=last)
            .step_by(self.line_bytes as usize)
            .map(LineAddr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> AddressMap {
        AddressMap::new(8 << 30, 64, 4096, 8)
    }

    #[test]
    fn line_alignment() {
        let m = map();
        assert_eq!(m.line_of(0).0, 0);
        assert_eq!(m.line_of(63).0, 0);
        assert_eq!(m.line_of(64).0, 64);
        assert_eq!(m.line_of(0xFFF).0, 0xFC0);
    }

    #[test]
    fn page_and_index_arithmetic() {
        let m = map();
        let line = m.line_of(4096 * 5 + 64 * 7 + 3);
        assert_eq!(m.page_of_line(line).0, 5);
        assert_eq!(m.line_index_in_page(line), 7);
        assert_eq!(m.line_in_page(PageId(5), 7), line);
    }

    #[test]
    fn page_interleaved_banks() {
        let m = map();
        for p in 0..32u64 {
            let line = m.line_in_page(PageId(p), 0);
            assert_eq!(m.data_bank(line), (p % 8) as usize);
            // All lines of one page share a bank.
            let last = m.line_in_page(PageId(p), 63);
            assert_eq!(m.data_bank(last), m.data_bank(line));
        }
    }

    #[test]
    fn lines_covering_spans() {
        let m = map();
        let lines: Vec<_> = m.lines_covering(0x100, 256).collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].0, 0x100);
        assert_eq!(lines[3].0, 0x1C0);

        // Unaligned start covering an extra line.
        let lines: Vec<_> = m.lines_covering(0x13F, 2).collect();
        assert_eq!(lines.len(), 2);

        // Empty ranges produce nothing.
        assert_eq!(m.lines_covering(0x100, 0).count(), 0);
    }

    #[test]
    fn geometry_getters() {
        let m = map();
        assert_eq!(m.lines_per_page(), 64);
        assert_eq!(m.pages(), (8u64 << 30) / 4096);
        assert_eq!(m.banks(), 8);
        assert_eq!(m.channels(), 1);
        assert_eq!(m.capacity(), 8 << 30);
    }

    #[test]
    fn single_channel_matches_historical_layout() {
        // With channels = 1 the channel-aware map must be bit-identical to
        // the original `page % banks` interleave.
        let m = AddressMap::with_channels(8 << 30, 64, 4096, 8, 1);
        for p in 0..64u64 {
            let line = m.line_in_page(PageId(p), 3);
            assert_eq!(m.page_bank(PageId(p)), (p % 8) as usize);
            assert_eq!(m.data_bank(line), (p % 8) as usize);
            assert_eq!(m.page_channel(PageId(p)), 0);
            assert_eq!(m.line_channel(line), 0);
        }
    }

    #[test]
    fn channels_interleave_pages_round_robin() {
        let m = AddressMap::with_channels(8 << 30, 64, 4096, 8, 4);
        for p in 0..64u64 {
            assert_eq!(m.page_channel(PageId(p)), (p % 4) as usize);
            assert_eq!(m.page_bank(PageId(p)), ((p / 4) % 8) as usize);
        }
        // All lines of a page share the page's channel and bank.
        let line0 = m.line_in_page(PageId(13), 0);
        let line63 = m.line_in_page(PageId(13), 63);
        assert_eq!(m.line_channel(line0), m.line_channel(line63));
        assert_eq!(m.data_bank(line0), m.data_bank(line63));
    }

    /// Seeded property test: `decompose`/`recompose` is a bijection for
    /// every power-of-two (channels, banks) combination — each line maps
    /// to exactly one in-range `(channel, bank, row)` and round-trips.
    #[test]
    fn decompose_recompose_bijection_property() {
        use supermem_sim::SplitMix64;

        let mut rng = SplitMix64::new(0x0DD5_EED5);
        for &channels in &[1usize, 2, 4, 8] {
            for &banks in &[1usize, 2, 4, 8, 16] {
                let capacity: u64 = 1 << 24; // 4096 pages
                let m = AddressMap::with_channels(capacity, 64, 4096, banks, channels);
                let lines = capacity / 64;
                let rows_per_slice = lines / (channels as u64 * banks as u64);

                // Random sample of lines round-trips through one triple.
                for _ in 0..256 {
                    let line = LineAddr((rng.next_u64() % lines) * 64);
                    let (c, b, row) = m.decompose(line);
                    assert!(c < channels && b < banks && row < rows_per_slice);
                    assert_eq!(m.recompose(c, b, row), line);
                }

                // Exhaustive inverse direction: every triple yields a
                // distinct in-range line that decomposes back to itself.
                let mut seen = std::collections::HashSet::new();
                for c in 0..channels {
                    for b in 0..banks {
                        for row in (0..rows_per_slice).step_by(17) {
                            let line = m.recompose(c, b, row);
                            assert!(line.0 < capacity);
                            assert!(seen.insert(line.0), "duplicate line {line}");
                            assert_eq!(m.decompose(line), (c, b, row));
                        }
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "2^k")]
    fn rejects_non_pow2_line() {
        AddressMap::new(1 << 20, 48, 4096, 8);
    }

    #[test]
    #[should_panic(expected = "out of page")]
    fn line_in_page_bounds() {
        map().line_in_page(PageId(0), 64);
    }

    #[test]
    fn display_formats() {
        assert_eq!(LineAddr(0x40).to_string(), "line@0x40");
        assert_eq!(PageId(3).to_string(), "page#3");
    }
}
