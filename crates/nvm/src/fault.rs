//! Deterministic media-fault injection (the imperfect-DIMM model).
//!
//! The rest of this crate models a *perfect* DIMM: every drained write
//! lands whole and every read returns exactly what was written. Real
//! NVM does neither — power can die mid-drain leaving an 8-byte-torn
//! line, cells flip or stick, reads fail transiently, and whole banks
//! can die. This module provides a seeded [`FaultPlan`] that layers
//! those failure modes over an [`NvmStore`](crate::NvmStore) without disturbing the
//! stored ground truth:
//!
//! * the store always keeps the *true* bytes; the plan records which
//!   bits the media would return **wrong** (XOR masks), which lines are
//!   **lost** (failed bank), and which reads fail **transiently**;
//! * a SECDED-style ECC model resolves every checked read: zero wrong
//!   bits pass through, exactly one is corrected (and counted), two or
//!   more are detected and surface as [`MediaError::Corrupt`];
//! * torn drains are produced by [`FaultPlan::drain_tear`] and applied
//!   by the write-queue's faulted flush: the line at the cut mixes old
//!   and new 8-byte words per a seeded mask, later queue entries are
//!   dropped entirely. A torn line carries *valid per-word ECC* — only
//!   a higher layer (log checksum, trial decryption, integrity tree)
//!   can notice, which is exactly the property the torture campaign
//!   stresses.
//!
//! Every choice a plan makes derives from a [`FaultSpec`]'s seed via
//! [`SplitMix64`], so a failing torture case replays bit-for-bit from
//! its `--scheme/--fault/--point/--seed` tuple.

use supermem_sim::{FxHashMap, FxHashSet, SplitMix64};

use crate::addr::{LineAddr, PageId};
use crate::{LineData, LINE_BYTES};

/// Bits per 64-byte line (bit-index space for flips and stuck cells).
pub const LINE_BITS: usize = LINE_BYTES * 8;

/// The failure modes the torture campaign injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// Power dies mid-drain: one queued line lands with a seeded mix of
    /// old and new 8-byte words; later queued lines are dropped.
    Torn,
    /// A single cell reads wrong — SECDED corrects it silently.
    BitFlip,
    /// Two cells of one line read wrong — SECDED detects but cannot
    /// correct ([`MediaError::Corrupt`]).
    DoubleFlip,
    /// A cell is stuck at a fixed value; rewrites cannot clear it.
    StuckAt,
    /// A line fails to read a bounded number of times, then succeeds
    /// (the retry-with-backoff path).
    TransientRead,
    /// A whole bank fail-stops at the power event: its lines (and any
    /// queued writes headed there) are lost.
    BankFail,
}

impl FaultClass {
    /// Every fault class, in the order the torture campaign sweeps them.
    pub const ALL: [FaultClass; 6] = [
        FaultClass::Torn,
        FaultClass::BitFlip,
        FaultClass::DoubleFlip,
        FaultClass::StuckAt,
        FaultClass::TransientRead,
        FaultClass::BankFail,
    ];

    /// Stable CLI spelling of the class.
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::Torn => "torn",
            FaultClass::BitFlip => "bit-flip",
            FaultClass::DoubleFlip => "double-flip",
            FaultClass::StuckAt => "stuck-at",
            FaultClass::TransientRead => "transient-read",
            FaultClass::BankFail => "bank-fail",
        }
    }

    /// Parses a CLI spelling ([`Self::name`], case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        let s = s.to_ascii_lowercase();
        Self::ALL.into_iter().find(|c| c.name() == s)
    }

    /// True for classes applied while draining the write queue at the
    /// power event (the controller's snapshot), as opposed to striking
    /// the settled crash image afterwards.
    pub fn is_power_event(self) -> bool {
        matches!(self, FaultClass::Torn | FaultClass::BankFail)
    }
}

impl std::fmt::Display for FaultClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One reproducible injection: a class plus the seed that fixes every
/// choice it makes (victim line, bit, tear cut/mask, failed bank, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultSpec {
    /// What kind of fault to inject.
    pub class: FaultClass,
    /// Seed for all of the injection's random choices.
    pub seed: u64,
}

/// How a checked media read fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MediaError {
    /// The read failed this time; a retry may succeed.
    Transient,
    /// ECC detected an uncorrectable (multi-bit) error.
    Corrupt,
    /// The line resides on a failed bank; its contents are gone.
    Lost,
}

impl std::fmt::Display for MediaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MediaError::Transient => f.write_str("transient read failure"),
            MediaError::Corrupt => f.write_str("uncorrectable ECC error"),
            MediaError::Lost => f.write_str("line lost with its failed bank"),
        }
    }
}

/// The drain-time tear an interrupted flush applies (from
/// [`FaultPlan::drain_tear`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainTear {
    /// Index (in drain order) of the queue entry that tears; entries
    /// after it are dropped entirely.
    pub cut: usize,
    /// 8-bit word mask for the torn entry: bit `w` set means 8-byte
    /// word `w` of the new payload landed; clear means the old word
    /// survived. Always mixes both (never 0x00 or 0xFF).
    pub mask: u8,
}

/// Tallies of what the media did to checked reads (diagnostics and the
/// torture campaign's detection evidence).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Single-bit errors ECC corrected transparently.
    pub ecc_corrections: u64,
    /// Multi-bit errors ECC detected ([`MediaError::Corrupt`] returns).
    pub ecc_detections: u64,
    /// Reads that failed transiently.
    pub transient_failures: u64,
    /// Reads of lines lost with a failed bank.
    pub lost_reads: u64,
    /// Writes dropped because their line sits on a failed bank.
    pub dropped_writes: u64,
    /// Queue entries torn or dropped by an interrupted drain.
    pub torn_entries: u64,
}

impl FaultCounters {
    /// True if any read came back wrong or failed in a *detectable* way
    /// (everything except silently-corrected single-bit flips).
    pub fn any_detected(&self) -> bool {
        self.ecc_detections > 0 || self.lost_reads > 0 || self.transient_failures > 0
    }
}

/// XORs a wrong-bit mask into its line-sized representation.
fn set_mask_bit(mask: &mut LineData, bit: usize) {
    mask[bit / 8] ^= 1 << (bit % 8);
}

/// Mixes `old` and `new` 8-byte words per a [`DrainTear`] mask.
pub fn tear_line(old: &LineData, new: &LineData, mask: u8) -> LineData {
    let mut out = *old;
    for w in 0..8 {
        if mask & (1 << w) != 0 {
            out[w * 8..(w + 1) * 8].copy_from_slice(&new[w * 8..(w + 1) * 8]);
        }
    }
    out
}

/// The seeded fault state attached to an [`NvmStore`](crate::NvmStore).
///
/// The store keeps true bytes; the plan keeps the media's *disagreement*
/// with them. [`NvmStore::read_data_checked`](crate::NvmStore::read_data_checked) and
/// [`NvmStore::read_counter_checked`](crate::NvmStore::read_counter_checked) consult the plan; the plain
/// `read_*` accessors bypass it (they model a tool inspecting the
/// simulation, not a device read).
///
/// # Examples
///
/// ```
/// use supermem_nvm::fault::{FaultClass, FaultPlan, FaultSpec, MediaError};
/// use supermem_nvm::{addr::LineAddr, NvmStore};
///
/// let mut store = NvmStore::new();
/// store.write_data(LineAddr(0x40), [7; 64]);
/// let mut plan = FaultPlan::new(FaultSpec { class: FaultClass::DoubleFlip, seed: 1 });
/// plan.flip_data_bit(LineAddr(0x40), 0);
/// plan.flip_data_bit(LineAddr(0x40), 9);
/// store.attach_faults(plan);
/// assert_eq!(store.read_data_checked(LineAddr(0x40)), Err(MediaError::Corrupt));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    spec: Option<FaultSpec>,
    /// Wrong-bit XOR masks per data line (what the media returns wrong).
    flip_data: FxHashMap<u64, LineData>,
    /// Wrong-bit XOR masks per counter line.
    flip_counters: FxHashMap<u64, LineData>,
    /// Stuck cells in data lines: line → (bit index, forced value).
    /// Stuck cells survive rewrites — the wrongness is recomputed from
    /// the currently stored bit on every read.
    stuck_data: FxHashMap<u64, (usize, bool)>,
    /// Remaining transient failures per data line.
    transient_data: FxHashMap<u64, u32>,
    /// Remaining transient failures per counter line.
    transient_counters: FxHashMap<u64, u32>,
    /// Data lines lost with a failed bank.
    lost_data: FxHashSet<u64>,
    /// Counter lines lost with a failed bank.
    lost_counters: FxHashSet<u64>,
    /// Wrong-bit XOR masks per integrity-tree node line.
    flip_tree: FxHashMap<u64, LineData>,
    /// Remaining transient failures per tree node line.
    transient_tree: FxHashMap<u64, u32>,
    /// Tree node lines lost with a failed bank.
    lost_tree: FxHashSet<u64>,
    counters: FaultCounters,
}

impl FaultPlan {
    /// An empty plan carrying the spec that will drive its choices.
    pub fn new(spec: FaultSpec) -> Self {
        Self {
            spec: Some(spec),
            ..Self::default()
        }
    }

    /// The spec this plan was built from, if any.
    pub fn spec(&self) -> Option<FaultSpec> {
        self.spec
    }

    /// Read-side tallies so far.
    pub fn counters(&self) -> FaultCounters {
        self.counters
    }

    /// Seeded drain tear for a queue of `entries` writes, or `None`
    /// unless this plan's class is [`FaultClass::Torn`].
    pub fn drain_tear(&self, entries: usize) -> Option<DrainTear> {
        let spec = self.spec?;
        if spec.class != FaultClass::Torn || entries == 0 {
            return None;
        }
        let mut rng = SplitMix64::new(spec.seed ^ 0x7EA2_11FE);
        let cut = rng.next_below(entries as u64) as usize;
        // 1..=254 guarantees the torn line mixes old and new words.
        let mask = rng.next_range(1, 255) as u8;
        Some(DrainTear { cut, mask })
    }

    /// Seeded failed-bank choice among `banks`, or `None` unless this
    /// plan's class is [`FaultClass::BankFail`].
    pub fn failed_bank(&self, banks: usize) -> Option<usize> {
        let spec = self.spec?;
        if spec.class != FaultClass::BankFail || banks == 0 {
            return None;
        }
        let mut rng = SplitMix64::new(spec.seed ^ 0xBA17_F41E);
        Some(rng.next_below(banks as u64) as usize)
    }

    /// Marks a data line as lost with its failed bank.
    pub fn note_lost_data(&mut self, line: LineAddr) {
        self.lost_data.insert(line.0);
    }

    /// Marks a counter line as lost with its failed bank.
    pub fn note_lost_counter(&mut self, page: PageId) {
        self.lost_counters.insert(page.0);
    }

    /// Records one queue entry torn or dropped by an interrupted drain.
    pub fn note_torn_entry(&mut self) {
        self.counters.torn_entries += 1;
    }

    /// Flips one media bit of a data line (read-side XOR).
    pub fn flip_data_bit(&mut self, line: LineAddr, bit: usize) {
        assert!(bit < LINE_BITS, "bit index out of line");
        set_mask_bit(self.flip_data.entry(line.0).or_insert([0; LINE_BYTES]), bit);
    }

    /// Flips one media bit of a counter line (read-side XOR).
    pub fn flip_counter_bit(&mut self, page: PageId, bit: usize) {
        assert!(bit < LINE_BITS, "bit index out of line");
        set_mask_bit(
            self.flip_counters.entry(page.0).or_insert([0; LINE_BYTES]),
            bit,
        );
    }

    /// Sticks one cell of a data line at `forced`. Unlike a flip, the
    /// stuck cell persists across rewrites.
    pub fn stick_data_cell(&mut self, line: LineAddr, bit: usize, forced: bool) {
        assert!(bit < LINE_BITS, "bit index out of line");
        self.stuck_data.insert(line.0, (bit, forced));
    }

    /// Makes the next `times` checked reads of a data line fail
    /// transiently.
    pub fn fail_data_reads(&mut self, line: LineAddr, times: u32) {
        self.transient_data.insert(line.0, times);
    }

    /// Makes the next `times` checked reads of a counter line fail
    /// transiently.
    pub fn fail_counter_reads(&mut self, page: PageId, times: u32) {
        self.transient_counters.insert(page.0, times);
    }

    /// Whether the line is gone with its bank.
    pub fn data_lost(&self, line: LineAddr) -> bool {
        self.lost_data.contains(&line.0)
    }

    /// Whether the counter line is gone with its bank.
    pub fn counter_lost(&self, page: PageId) -> bool {
        self.lost_counters.contains(&page.0)
    }

    /// Number of lines (data + counter) lost with a failed bank.
    pub fn lost_lines(&self) -> usize {
        self.lost_data.len() + self.lost_counters.len()
    }

    /// Resolves a checked read of a data line whose stored (true) bytes
    /// are `stored`, applying loss, transient failure, and the SECDED
    /// correct-vs-detect model, in that order.
    pub fn filter_data_read(
        &mut self,
        line: LineAddr,
        stored: LineData,
    ) -> Result<LineData, MediaError> {
        if self.lost_data.contains(&line.0) {
            self.counters.lost_reads += 1;
            return Err(MediaError::Lost);
        }
        if let Some(left) = self.transient_data.get_mut(&line.0) {
            if *left > 0 {
                *left -= 1;
                self.counters.transient_failures += 1;
                return Err(MediaError::Transient);
            }
        }
        let mut mask = self
            .flip_data
            .get(&line.0)
            .copied()
            .unwrap_or([0; LINE_BYTES]);
        if let Some(&(bit, forced)) = self.stuck_data.get(&line.0) {
            let stored_bit = stored[bit / 8] >> (bit % 8) & 1 == 1;
            if stored_bit != forced {
                set_mask_bit(&mut mask, bit);
            }
        }
        self.resolve_ecc(stored, &mask)
    }

    /// [`Self::filter_data_read`] for a counter line.
    pub fn filter_counter_read(
        &mut self,
        page: PageId,
        stored: LineData,
    ) -> Result<LineData, MediaError> {
        if self.lost_counters.contains(&page.0) {
            self.counters.lost_reads += 1;
            return Err(MediaError::Lost);
        }
        if let Some(left) = self.transient_counters.get_mut(&page.0) {
            if *left > 0 {
                *left -= 1;
                self.counters.transient_failures += 1;
                return Err(MediaError::Transient);
            }
        }
        let mask = self
            .flip_counters
            .get(&page.0)
            .copied()
            .unwrap_or([0; LINE_BYTES]);
        self.resolve_ecc(stored, &mask)
    }

    /// SECDED: 0 wrong bits pass, 1 is corrected back to the stored
    /// truth, ≥2 are detected.
    fn resolve_ecc(&mut self, stored: LineData, mask: &LineData) -> Result<LineData, MediaError> {
        let wrong: u32 = mask.iter().map(|b| b.count_ones()).sum();
        match wrong {
            0 => Ok(stored),
            1 => {
                self.counters.ecc_corrections += 1;
                Ok(stored)
            }
            _ => {
                self.counters.ecc_detections += 1;
                Err(MediaError::Corrupt)
            }
        }
    }

    /// Called when a data line is rewritten: a full-line write replaces
    /// every cell, clearing pending flips. Stuck cells persist, and a
    /// write to a lost line is dropped (returns `false`).
    pub fn admit_data_write(&mut self, line: LineAddr) -> bool {
        if self.lost_data.contains(&line.0) {
            self.counters.dropped_writes += 1;
            return false;
        }
        self.flip_data.remove(&line.0);
        true
    }

    /// [`Self::admit_data_write`] for a counter line.
    pub fn admit_counter_write(&mut self, page: PageId) -> bool {
        if self.lost_counters.contains(&page.0) {
            self.counters.dropped_writes += 1;
            return false;
        }
        self.flip_counters.remove(&page.0);
        true
    }

    /// Flips one media bit of an integrity-tree node line (read-side
    /// XOR).
    pub fn flip_tree_bit(&mut self, line: u64, bit: usize) {
        assert!(bit < LINE_BITS, "bit index out of line");
        set_mask_bit(self.flip_tree.entry(line).or_insert([0; LINE_BYTES]), bit);
    }

    /// Makes the next `times` checked reads of a tree node line fail
    /// transiently.
    pub fn fail_tree_reads(&mut self, line: u64, times: u32) {
        self.transient_tree.insert(line, times);
    }

    /// Marks a tree node line as lost with its failed bank.
    pub fn note_lost_tree(&mut self, line: u64) {
        self.lost_tree.insert(line);
    }

    /// Whether the tree node line is gone with its bank.
    pub fn tree_lost(&self, line: u64) -> bool {
        self.lost_tree.contains(&line)
    }

    /// [`Self::filter_data_read`] for an integrity-tree node line.
    pub fn filter_tree_read(
        &mut self,
        line: u64,
        stored: LineData,
    ) -> Result<LineData, MediaError> {
        if self.lost_tree.contains(&line) {
            self.counters.lost_reads += 1;
            return Err(MediaError::Lost);
        }
        if let Some(left) = self.transient_tree.get_mut(&line) {
            if *left > 0 {
                *left -= 1;
                self.counters.transient_failures += 1;
                return Err(MediaError::Transient);
            }
        }
        let mask = self
            .flip_tree
            .get(&line)
            .copied()
            .unwrap_or([0; LINE_BYTES]);
        self.resolve_ecc(stored, &mask)
    }

    /// [`Self::admit_data_write`] for an integrity-tree node line.
    pub fn admit_tree_write(&mut self, line: u64) -> bool {
        if self.lost_tree.contains(&line) {
            self.counters.dropped_writes += 1;
            return false;
        }
        self.flip_tree.remove(&line);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINE: LineAddr = LineAddr(0x40);
    const PAGE: PageId = PageId(3);

    fn plan(class: FaultClass, seed: u64) -> FaultPlan {
        FaultPlan::new(FaultSpec { class, seed })
    }

    #[test]
    fn class_names_round_trip() {
        for c in FaultClass::ALL {
            assert_eq!(FaultClass::parse(c.name()), Some(c));
            assert_eq!(FaultClass::parse(&c.name().to_uppercase()), Some(c));
        }
        assert_eq!(FaultClass::parse("nonsense"), None);
    }

    #[test]
    fn single_flip_is_corrected_to_the_truth() {
        let mut p = plan(FaultClass::BitFlip, 7);
        p.flip_data_bit(LINE, 13);
        let got = p.filter_data_read(LINE, [0xAB; 64]).unwrap();
        assert_eq!(got, [0xAB; 64], "SECDED must correct a single flip");
        assert_eq!(p.counters().ecc_corrections, 1);
        assert_eq!(p.counters().ecc_detections, 0);
    }

    #[test]
    fn double_flip_is_detected_not_corrected() {
        let mut p = plan(FaultClass::DoubleFlip, 7);
        p.flip_data_bit(LINE, 13);
        p.flip_data_bit(LINE, 200);
        assert_eq!(
            p.filter_data_read(LINE, [0xAB; 64]),
            Err(MediaError::Corrupt)
        );
        assert_eq!(p.counters().ecc_detections, 1);
    }

    #[test]
    fn rewrite_clears_flips_but_not_stuck_cells() {
        let mut p = plan(FaultClass::StuckAt, 7);
        p.flip_data_bit(LINE, 0);
        p.flip_data_bit(LINE, 1);
        assert!(p.admit_data_write(LINE));
        assert_eq!(p.filter_data_read(LINE, [0; 64]).unwrap(), [0; 64]);

        // A cell stuck at 1 re-corrupts any rewrite that stores a 0 there.
        p.stick_data_cell(LINE, 8, true);
        assert!(p.admit_data_write(LINE));
        p.filter_data_read(LINE, [0; 64]).unwrap();
        assert_eq!(p.counters().ecc_corrections, 1);
        // Storing a 1 in the stuck cell reads clean.
        let mut agreeing = [0u8; 64];
        agreeing[1] = 1;
        p.filter_data_read(LINE, agreeing).unwrap();
        assert_eq!(p.counters().ecc_corrections, 1);
    }

    #[test]
    fn transient_reads_fail_then_recover() {
        let mut p = plan(FaultClass::TransientRead, 7);
        p.fail_data_reads(LINE, 2);
        assert_eq!(
            p.filter_data_read(LINE, [5; 64]),
            Err(MediaError::Transient)
        );
        assert_eq!(
            p.filter_data_read(LINE, [5; 64]),
            Err(MediaError::Transient)
        );
        assert_eq!(p.filter_data_read(LINE, [5; 64]), Ok([5; 64]));
        assert_eq!(p.counters().transient_failures, 2);
    }

    #[test]
    fn lost_lines_stay_lost_and_drop_writes() {
        let mut p = plan(FaultClass::BankFail, 7);
        p.note_lost_data(LINE);
        p.note_lost_counter(PAGE);
        assert_eq!(p.filter_data_read(LINE, [5; 64]), Err(MediaError::Lost));
        assert_eq!(p.filter_counter_read(PAGE, [5; 64]), Err(MediaError::Lost));
        assert!(!p.admit_data_write(LINE));
        assert!(!p.admit_counter_write(PAGE));
        // Still lost after the dropped write.
        assert_eq!(p.filter_data_read(LINE, [5; 64]), Err(MediaError::Lost));
        assert_eq!(p.counters().dropped_writes, 2);
        assert_eq!(p.lost_lines(), 2);
    }

    #[test]
    fn drain_tear_is_seeded_and_always_mixes() {
        let p = plan(FaultClass::Torn, 42);
        let t = p.drain_tear(10).unwrap();
        assert_eq!(p.drain_tear(10).unwrap(), t, "same seed, same tear");
        for seed in 0..64 {
            let t = plan(FaultClass::Torn, seed).drain_tear(10).unwrap();
            assert!(t.cut < 10);
            assert!(t.mask != 0 && t.mask != 0xFF, "mask must mix old and new");
        }
        assert!(plan(FaultClass::BitFlip, 42).drain_tear(10).is_none());
        assert!(p.drain_tear(0).is_none());
    }

    #[test]
    fn failed_bank_is_seeded_and_class_gated() {
        let p = plan(FaultClass::BankFail, 42);
        let b = p.failed_bank(8).unwrap();
        assert!(b < 8);
        assert_eq!(p.failed_bank(8).unwrap(), b);
        assert!(plan(FaultClass::Torn, 42).failed_bank(8).is_none());
    }

    #[test]
    fn tear_line_mixes_words_per_mask() {
        let old = [0x11u8; 64];
        let new = [0x22u8; 64];
        let torn = tear_line(&old, &new, 0b0000_0101);
        assert_eq!(&torn[0..8], &[0x22; 8]);
        assert_eq!(&torn[8..16], &[0x11; 8]);
        assert_eq!(&torn[16..24], &[0x22; 8]);
        assert_eq!(&torn[24..64], &[0x11; 40]);
        assert_eq!(tear_line(&old, &new, 0xFF), new);
        assert_eq!(tear_line(&old, &new, 0x00), old);
    }

    #[test]
    fn counter_flips_mirror_data_flips() {
        let mut p = plan(FaultClass::DoubleFlip, 7);
        p.flip_counter_bit(PAGE, 0);
        assert_eq!(p.filter_counter_read(PAGE, [9; 64]), Ok([9; 64]));
        p.flip_counter_bit(PAGE, 100);
        assert_eq!(
            p.filter_counter_read(PAGE, [9; 64]),
            Err(MediaError::Corrupt)
        );
        assert!(p.admit_counter_write(PAGE));
        assert_eq!(p.filter_counter_read(PAGE, [9; 64]), Ok([9; 64]));
    }
}
