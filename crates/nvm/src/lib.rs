//! Cycle-level NVM device model for the SuperMem reproduction.
//!
//! This crate replaces NVMain, the cycle-accurate NVM simulator the paper
//! couples to gem5. It models:
//!
//! * [`addr`] — the physical address map: 64 B lines, 4 KB pages, and
//!   page-interleaved banks (consecutive pages land in consecutive banks,
//!   matching the paper's observation that OS-contiguous allocations span
//!   adjacent banks, §3.3).
//! * [`bank`] — per-bank service timing with the PCM latencies of Table 2
//!   (reads tRCD+tCL, writes tCWD+tWR, write→read turnaround tWTR).
//! * [`store`] — the persistent byte contents: a sparse map of 64 B lines
//!   holding *ciphertext* plus the counter-line region. This is what
//!   survives a simulated crash.
//! * [`fault`] — the imperfect-DIMM model: seeded torn drains, bit
//!   flips / stuck-at cells under a SECDED ECC, transient read failures,
//!   and fail-stopped banks, all layered over the store without
//!   disturbing its ground truth.
//!
//! # Examples
//!
//! ```
//! use supermem_nvm::addr::AddressMap;
//!
//! let map = AddressMap::new(8 << 30, 64, 4096, 8);
//! // Consecutive pages interleave across banks.
//! assert_eq!(map.data_bank(map.line_of(0)), 0);
//! assert_eq!(map.data_bank(map.line_of(4096)), 1);
//! ```
#![warn(missing_docs)]

pub mod addr;
pub mod bank;
pub mod fault;
pub mod store;
pub mod wearlevel;

pub use addr::{AddressMap, LineAddr, PageId};
pub use bank::{BankTimer, OpKind};
pub use fault::{DrainTear, FaultClass, FaultCounters, FaultPlan, FaultSpec, MediaError};
pub use store::{NvmStore, WearReport};
pub use wearlevel::StartGap;

/// Size of a memory line in bytes throughout the workspace.
pub const LINE_BYTES: usize = 64;

/// One 64-byte memory line's worth of data.
pub type LineData = [u8; LINE_BYTES];
