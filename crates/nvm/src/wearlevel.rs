//! Start-Gap wear leveling (Qureshi et al., MICRO 2009) — the classic
//! PCM endurance mechanism the paper's §3.4.1 endurance discussion sits
//! on top of.
//!
//! One spare slot (the *gap*) circulates through a region of `lines`
//! slots: every `psi` writes the line next to the gap moves into it,
//! sliding the gap by one; when the gap has traversed the whole region
//! the *start* pointer advances, so over time every logical line visits
//! every physical slot and hot lines stop burning a single row of
//! cells.
//!
//! Interaction with encryption: counter-mode binds ciphertext to the
//! *logical* line address (the OTP seed), so remapping below the
//! encryption layer is transparent — no re-encryption on relocation.
//! This is why the mapping lives inside the NVM store, under the
//! controller.

/// A gap relocation: the content of `from` physically moves to `to`
/// (costing one extra cell write, which callers must account).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GapMove {
    /// Physical slot whose content moves.
    pub from: u64,
    /// Physical slot receiving it (the previous gap).
    pub to: u64,
}

/// Start-Gap remapping state over `lines` logical lines (using
/// `lines + 1` physical slots).
///
/// # Examples
///
/// ```
/// use supermem_nvm::wearlevel::StartGap;
///
/// let mut sg = StartGap::new(8, 4);
/// let before = sg.map(3);
/// for _ in 0..64 {
///     sg.note_write();
/// }
/// // After enough writes, line 3 lives somewhere else.
/// assert_ne!(sg.map(3), before);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StartGap {
    lines: u64,
    start: u64,
    gap: u64,
    writes_since_move: u64,
    psi: u64,
    moves: u64,
}

impl StartGap {
    /// Creates the mapper for `lines` logical lines, moving the gap
    /// every `psi` writes (Qureshi et al. use ψ = 100).
    ///
    /// # Panics
    ///
    /// Panics if `lines` or `psi` is zero.
    pub fn new(lines: u64, psi: u64) -> Self {
        assert!(lines > 0, "region must have lines");
        assert!(psi > 0, "gap movement interval must be positive");
        Self {
            lines,
            start: 0,
            gap: lines, // the spare slot starts at the end
            writes_since_move: 0,
            psi,
            moves: 0,
        }
    }

    /// Gap relocations performed so far (each cost one extra write).
    pub fn moves(&self) -> u64 {
        self.moves
    }

    /// Maps a logical line index to its current physical slot in
    /// `0..=lines`.
    ///
    /// # Panics
    ///
    /// Panics if `logical >= lines`.
    pub fn map(&self, logical: u64) -> u64 {
        assert!(logical < self.lines, "logical line out of region");
        let rotated = (logical + self.start) % self.lines;
        if rotated >= self.gap {
            rotated + 1
        } else {
            rotated
        }
    }

    /// Accounts one write; every `psi`-th write slides the gap and
    /// returns the relocation the hardware performs.
    pub fn note_write(&mut self) -> Option<GapMove> {
        self.writes_since_move += 1;
        if self.writes_since_move < self.psi {
            return None;
        }
        self.writes_since_move = 0;
        self.moves += 1;
        let mv = if self.gap == 0 {
            // The gap wraps to the top and the whole mapping rotates.
            self.gap = self.lines;
            self.start = (self.start + 1) % self.lines;
            GapMove {
                from: 0,
                to: self.lines,
            }
        } else {
            let mv = GapMove {
                from: self.gap - 1,
                to: self.gap,
            };
            self.gap -= 1;
            mv
        };
        Some(mv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn mapping_is_always_a_bijection() {
        let mut sg = StartGap::new(16, 3);
        for step in 0..500 {
            let mapped: HashSet<u64> = (0..16).map(|l| sg.map(l)).collect();
            assert_eq!(mapped.len(), 16, "collision at step {step}");
            assert!(mapped.iter().all(|&p| p <= 16));
            assert!(!mapped.contains(&sg.gap), "gap slot must stay empty");
            sg.note_write();
        }
    }

    #[test]
    fn gap_moves_every_psi_writes() {
        let mut sg = StartGap::new(8, 5);
        let mut moves = 0;
        for i in 1..=50 {
            if sg.note_write().is_some() {
                moves += 1;
                assert_eq!(i % 5, 0, "move off schedule at write {i}");
            }
        }
        assert_eq!(moves, 10);
        assert_eq!(sg.moves(), 10);
    }

    #[test]
    fn full_rotation_shifts_every_line() {
        let mut sg = StartGap::new(4, 1);
        let before: Vec<u64> = (0..4).map(|l| sg.map(l)).collect();
        // 5 moves = the gap traverses all slots once and start advances.
        for _ in 0..5 {
            sg.note_write();
        }
        let after: Vec<u64> = (0..4).map(|l| sg.map(l)).collect();
        assert_ne!(before, after, "rotation must change the mapping");
    }

    #[test]
    fn hammered_line_spreads_across_slots() {
        // The endurance property itself: writing one logical line
        // forever touches many physical slots.
        let mut sg = StartGap::new(16, 4);
        let mut slots = HashSet::new();
        for _ in 0..16 * 4 * 20 {
            slots.insert(sg.map(0));
            sg.note_write();
        }
        assert!(
            slots.len() >= 8,
            "hot line must visit many slots, got {}",
            slots.len()
        );
    }

    #[test]
    fn relocation_endpoints_are_adjacent() {
        let mut sg = StartGap::new(8, 1);
        for _ in 0..40 {
            if let Some(mv) = sg.note_write() {
                assert!(
                    mv.to == mv.from + 1 || (mv.from == 0 && mv.to == 8),
                    "unexpected move {mv:?}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of region")]
    fn rejects_out_of_range_line() {
        StartGap::new(4, 1).map(4);
    }
}
