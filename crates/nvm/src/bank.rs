//! Per-bank service timing.
//!
//! Each NVM bank services one request at a time. A read occupies the bank
//! for tRCD + tCL; a write for tCWD + tWR (PCM write recovery dominates at
//! 300 ns). Switching from a write to a read additionally pays the tWTR
//! turnaround. Requests to *different* banks proceed in parallel — the
//! property the XBank scheme exploits (paper §3.3).

use supermem_sim::Cycle;

/// The kind of operation a bank services.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// An array read (tRCD + tCL).
    Read,
    /// An array write (tCWD + tWR).
    Write,
}

/// Timing state of one bank.
///
/// # Examples
///
/// ```
/// use supermem_nvm::bank::{BankTimer, OpKind};
///
/// let mut bank = BankTimer::new(126, 626, 15);
/// let done = bank.issue(OpKind::Write, 0);
/// assert_eq!(done, 626);
/// // The next request waits for the bank.
/// assert_eq!(bank.earliest_start(OpKind::Write, 100), 626);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BankTimer {
    read_service: Cycle,
    write_service: Cycle,
    wtr: Cycle,
    busy_until: Cycle,
    last_op: Option<OpKind>,
    failed: bool,
}

impl BankTimer {
    /// Creates an idle bank with the given service times (cycles).
    pub fn new(read_service: Cycle, write_service: Cycle, wtr: Cycle) -> Self {
        Self {
            read_service,
            write_service,
            wtr,
            busy_until: 0,
            last_op: None,
            failed: false,
        }
    }

    /// The cycle at which the bank next becomes free.
    pub fn busy_until(&self) -> Cycle {
        self.busy_until
    }

    /// Earliest cycle at which an operation of `kind`, ready at `ready`,
    /// could begin service, including the write→read turnaround.
    pub fn earliest_start(&self, kind: OpKind, ready: Cycle) -> Cycle {
        let mut start = ready.max(self.busy_until);
        if kind == OpKind::Read && self.last_op == Some(OpKind::Write) {
            start = start.max(self.busy_until + self.wtr);
        }
        start
    }

    /// Issues an operation at its earliest start and returns the cycle at
    /// which it completes. The bank is busy until then.
    pub fn issue(&mut self, kind: OpKind, ready: Cycle) -> Cycle {
        let start = self.earliest_start(kind, ready);
        let service = match kind {
            OpKind::Read => self.read_service,
            OpKind::Write => self.write_service,
        };
        self.busy_until = start + service;
        self.last_op = Some(kind);
        self.busy_until
    }

    /// Resets the bank to idle (used when constructing a post-crash
    /// system image). A failed bank stays failed — the hardware is
    /// gone, not merely idle.
    pub fn reset(&mut self) {
        self.busy_until = 0;
        self.last_op = None;
    }

    /// Marks the bank as failed: the controller's degraded mode drops
    /// writes headed here and poisons reads instead of issuing them.
    pub fn mark_failed(&mut self) {
        self.failed = true;
    }

    /// Whether the bank has fail-stopped.
    pub fn is_failed(&self) -> bool {
        self.failed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank() -> BankTimer {
        BankTimer::new(126, 626, 15)
    }

    #[test]
    fn idle_bank_starts_immediately() {
        let b = bank();
        assert_eq!(b.earliest_start(OpKind::Read, 500), 500);
        assert_eq!(b.earliest_start(OpKind::Write, 0), 0);
    }

    #[test]
    fn writes_serialize_within_a_bank() {
        let mut b = bank();
        assert_eq!(b.issue(OpKind::Write, 0), 626);
        assert_eq!(b.issue(OpKind::Write, 0), 1252);
        assert_eq!(b.issue(OpKind::Write, 2000), 2626);
    }

    #[test]
    fn read_after_write_pays_turnaround() {
        let mut b = bank();
        b.issue(OpKind::Write, 0); // busy until 626
                                   // Read ready at 0 must wait 626 + tWTR.
        assert_eq!(b.earliest_start(OpKind::Read, 0), 641);
        assert_eq!(b.issue(OpKind::Read, 0), 641 + 126);
    }

    #[test]
    fn read_after_read_has_no_turnaround() {
        let mut b = bank();
        b.issue(OpKind::Read, 0); // busy until 126
        assert_eq!(b.earliest_start(OpKind::Read, 0), 126);
    }

    #[test]
    fn write_after_read_has_no_turnaround() {
        let mut b = bank();
        b.issue(OpKind::Read, 0);
        assert_eq!(b.earliest_start(OpKind::Write, 0), 126);
    }

    #[test]
    fn late_ready_time_dominates() {
        let mut b = bank();
        b.issue(OpKind::Write, 0);
        assert_eq!(b.earliest_start(OpKind::Write, 10_000), 10_000);
    }

    #[test]
    fn reset_clears_state() {
        let mut b = bank();
        b.issue(OpKind::Write, 0);
        b.reset();
        assert_eq!(b.busy_until(), 0);
        assert_eq!(b.earliest_start(OpKind::Read, 0), 0);
    }
}
