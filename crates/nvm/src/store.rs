//! The persistent byte contents of the NVM DIMM.
//!
//! [`NvmStore`] is the ground truth that survives a simulated power
//! failure: a sparse map of 64-byte data lines (holding *ciphertext* when
//! encryption is on) plus the counter-line region (one 64-byte line per
//! data page). Untouched lines read as zero, like a fresh DIMM.
//!
//! The store is purely functional with respect to time — all timing lives
//! in [`crate::bank`] and the memory controller.

use supermem_sim::{FxHashMap, SplitMix64};

use crate::addr::{LineAddr, PageId};
use crate::fault::{FaultClass, FaultCounters, FaultPlan, FaultSpec, MediaError, LINE_BITS};
use crate::wearlevel::StartGap;
use crate::{LineData, LINE_BYTES};

/// Sparse persistent storage for data lines and counter lines.
///
/// # Examples
///
/// ```
/// use supermem_nvm::{NvmStore, addr::LineAddr};
///
/// let mut store = NvmStore::new();
/// assert_eq!(store.read_data(LineAddr(0x40)), [0u8; 64]); // fresh DIMM
/// store.write_data(LineAddr(0x40), [7u8; 64]);
/// assert_eq!(store.read_data(LineAddr(0x40)), [7u8; 64]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NvmStore {
    data: FxHashMap<u64, LineData>,
    counters: FxHashMap<u64, LineData>,
    tree: FxHashMap<u64, LineData>,
    tags: FxHashMap<u64, u64>,
    data_wear: FxHashMap<u64, u64>,
    counter_wear: FxHashMap<u64, u64>,
    wear_leveling: Option<StartGap>,
    faults: Option<FaultPlan>,
}

/// Per-cell-endurance summary of an [`NvmStore`] (paper §3.4.1 motivates
/// split counters and CWC partly through NVM endurance limits: PCM cells
/// survive 10^7–10^9 writes, so the hottest line bounds DIMM lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WearReport {
    /// Writes absorbed by the most-written data line.
    pub max_data_wear: u64,
    /// Writes absorbed by the most-written counter line.
    pub max_counter_wear: u64,
    /// Total data-line writes.
    pub total_data_writes: u64,
    /// Total counter-line writes.
    pub total_counter_writes: u64,
}

impl NvmStore {
    /// An empty (all-zero) DIMM.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads a data line; absent lines are zero.
    pub fn read_data(&self, line: LineAddr) -> LineData {
        debug_assert_eq!(line.0 % LINE_BYTES as u64, 0, "unaligned line address");
        self.data.get(&line.0).copied().unwrap_or([0; LINE_BYTES])
    }

    /// Enables Start-Gap wear leveling beneath the data region: wear is
    /// then accounted against rotating *physical* slots instead of fixed
    /// logical lines (contents stay keyed logically — counter-mode
    /// encryption binds ciphertext to the logical address, so the remap
    /// is invisible above this layer).
    pub fn enable_wear_leveling(&mut self, lines: u64, psi: u64) {
        self.wear_leveling = Some(StartGap::new(lines, psi));
    }

    /// Writes a data line. With a [`FaultPlan`] attached, a full-line
    /// rewrite clears pending bit flips, and writes to lines lost with a
    /// failed bank are dropped.
    pub fn write_data(&mut self, line: LineAddr, bytes: LineData) {
        debug_assert_eq!(line.0 % LINE_BYTES as u64, 0, "unaligned line address");
        if let Some(plan) = &mut self.faults {
            if !plan.admit_data_write(line) {
                return;
            }
        }
        match &mut self.wear_leveling {
            Some(sg) => {
                let slot = sg.map(line.0 / LINE_BYTES as u64);
                *self.data_wear.entry(slot).or_insert(0) += 1;
                if let Some(mv) = sg.note_write() {
                    // The relocation itself writes one more physical slot.
                    *self.data_wear.entry(mv.to).or_insert(0) += 1;
                }
            }
            None => {
                *self.data_wear.entry(line.0).or_insert(0) += 1;
            }
        }
        self.data.insert(line.0, bytes);
    }

    /// Reads the counter line of a page; absent lines are zero (fresh
    /// counters).
    pub fn read_counter(&self, page: PageId) -> LineData {
        self.counters
            .get(&page.0)
            .copied()
            .unwrap_or([0; LINE_BYTES])
    }

    /// Writes the counter line of a page (same fault semantics as
    /// [`Self::write_data`]).
    pub fn write_counter(&mut self, page: PageId, bytes: LineData) {
        if let Some(plan) = &mut self.faults {
            if !plan.admit_counter_write(page) {
                return;
            }
        }
        *self.counter_wear.entry(page.0).or_insert(0) += 1;
        self.counters.insert(page.0, bytes);
    }

    /// Reads an integrity-tree node-group line (keyed by the packed
    /// `(level, group)` id the integrity crate assigns); absent lines
    /// read as zero, matching a fresh tree built over zero counters.
    pub fn read_tree(&self, line: u64) -> LineData {
        self.tree.get(&line).copied().unwrap_or([0; LINE_BYTES])
    }

    /// Writes an integrity-tree node-group line (same fault semantics as
    /// [`Self::write_data`]). Tree lines carry no wear accounting: they
    /// live in the metadata region the endurance figures deliberately
    /// exclude, keeping [`Self::wear_report`] comparable across schemes.
    pub fn write_tree(&mut self, line: u64, bytes: LineData) {
        if let Some(plan) = &mut self.faults {
            if !plan.admit_tree_write(line) {
                return;
            }
        }
        self.tree.insert(line, bytes);
    }

    /// Stores the ECC-derived integrity tag of a data line (the spare
    /// ECC bits Osiris-style schemes repurpose; written alongside the
    /// line, costing no extra write request).
    pub fn write_tag(&mut self, line: LineAddr, tag: u64) {
        self.tags.insert(line.0, tag);
    }

    /// Reads a line's ECC-derived tag (0 for never-tagged lines).
    pub fn read_tag(&self, line: LineAddr) -> u64 {
        self.tags.get(&line.0).copied().unwrap_or(0)
    }

    /// Iterates over every data line ever written, in address order
    /// (recovery scans use this; the order keeps reports deterministic).
    pub fn data_lines(&self) -> Vec<LineAddr> {
        let mut v: Vec<LineAddr> = self.data.keys().map(|&a| LineAddr(a)).collect();
        v.sort_unstable();
        v
    }

    /// Iterates over every counter line ever written, in page order.
    pub fn counter_lines(&self) -> Vec<PageId> {
        let mut v: Vec<PageId> = self.counters.keys().map(|&p| PageId(p)).collect();
        v.sort_unstable();
        v
    }

    /// Iterates over every tree node line ever written, in id order.
    pub fn tree_lines(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.tree.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Number of distinct data lines ever written (diagnostics).
    pub fn data_lines_touched(&self) -> usize {
        self.data.len()
    }

    /// Number of distinct tree node lines ever written (diagnostics).
    pub fn tree_lines_touched(&self) -> usize {
        self.tree.len()
    }

    /// Number of distinct counter lines ever written (diagnostics).
    pub fn counter_lines_touched(&self) -> usize {
        self.counters.len()
    }

    /// Summarizes per-line write wear — the DIMM-lifetime metric the
    /// paper's endurance discussion (§3.4.1) is about.
    pub fn wear_report(&self) -> WearReport {
        WearReport {
            max_data_wear: self.data_wear.values().copied().max().unwrap_or(0),
            max_counter_wear: self.counter_wear.values().copied().max().unwrap_or(0),
            total_data_writes: self.data_wear.values().sum(),
            total_counter_writes: self.counter_wear.values().sum(),
        }
    }

    /// Per-line write count of a data line (0 if never written).
    pub fn data_wear(&self, line: LineAddr) -> u64 {
        self.data_wear.get(&line.0).copied().unwrap_or(0)
    }

    /// Per-line write count of a counter line (0 if never written).
    pub fn counter_wear(&self, page: PageId) -> u64 {
        self.counter_wear.get(&page.0).copied().unwrap_or(0)
    }

    /// Merges another store into this one (multi-channel crash-image
    /// assembly).
    ///
    /// Channel interleaving makes the two stores' address sets disjoint,
    /// so contents simply union; on an overlapping key (which interleaved
    /// channels never produce) `other` wins. Wear counts are summed per
    /// key so the merged wear report equals the sum of the per-channel
    /// reports. A fault plan attached to `other` replaces `self`'s (the
    /// merged view keeps at most one plan; recovery attaches per-channel
    /// plans before merging when it needs faulted reads).
    pub fn absorb(&mut self, other: NvmStore) {
        self.data.extend(other.data);
        self.counters.extend(other.counters);
        self.tree.extend(other.tree);
        self.tags.extend(other.tags);
        for (k, v) in other.data_wear {
            *self.data_wear.entry(k).or_insert(0) += v;
        }
        for (k, v) in other.counter_wear {
            *self.counter_wear.entry(k).or_insert(0) += v;
        }
        if other.faults.is_some() {
            self.faults = other.faults;
        }
    }

    /// Attaches (or replaces) the fault plan governing checked reads
    /// and faulted writes.
    pub fn attach_faults(&mut self, plan: FaultPlan) {
        self.faults = Some(plan);
    }

    /// The attached fault plan, if any.
    pub fn faults(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Read-side fault tallies (zero when no plan is attached).
    pub fn fault_counters(&self) -> FaultCounters {
        self.faults
            .as_ref()
            .map(FaultPlan::counters)
            .unwrap_or_default()
    }

    /// Reads a data line *through the media model*: loss, transient
    /// failure, and the SECDED correct-vs-detect resolution all apply.
    /// Without an attached plan this is [`Self::read_data`].
    ///
    /// # Errors
    ///
    /// [`MediaError`] per the attached [`FaultPlan`].
    pub fn read_data_checked(&mut self, line: LineAddr) -> Result<LineData, MediaError> {
        let stored = self.data.get(&line.0).copied().unwrap_or([0; LINE_BYTES]);
        match &mut self.faults {
            None => Ok(stored),
            Some(plan) => plan.filter_data_read(line, stored),
        }
    }

    /// [`Self::read_data_checked`] for a counter line.
    ///
    /// # Errors
    ///
    /// [`MediaError`] per the attached [`FaultPlan`].
    pub fn read_counter_checked(&mut self, page: PageId) -> Result<LineData, MediaError> {
        let stored = self
            .counters
            .get(&page.0)
            .copied()
            .unwrap_or([0; LINE_BYTES]);
        match &mut self.faults {
            None => Ok(stored),
            Some(plan) => plan.filter_counter_read(page, stored),
        }
    }

    /// [`Self::read_data_checked`] for an integrity-tree node line.
    ///
    /// # Errors
    ///
    /// [`MediaError`] per the attached [`FaultPlan`].
    pub fn read_tree_checked(&mut self, line: u64) -> Result<LineData, MediaError> {
        let stored = self.tree.get(&line).copied().unwrap_or([0; LINE_BYTES]);
        match &mut self.faults {
            None => Ok(stored),
            Some(plan) => plan.filter_tree_read(line, stored),
        }
    }

    /// [`Self::strike_faults`] scoped to the integrity-tree metadata
    /// region: picks a seeded victim among the persisted tree node lines
    /// and registers the class's corruption. Uses its own RNG stream, so
    /// combining it with `strike_faults` never perturbs the legacy
    /// data/counter victim selection. Returns the struck line id, or
    /// `None` for power-event classes and empty tree regions.
    pub fn strike_tree_fault(&mut self, spec: FaultSpec) -> Option<u64> {
        if spec.class.is_power_event() {
            return None;
        }
        let lines = self.tree_lines();
        if lines.is_empty() {
            return None;
        }
        let mut rng = SplitMix64::new(spec.seed ^ 0x3EE5_7A1D);
        let mut plan = self.faults.take().unwrap_or_else(|| FaultPlan::new(spec));
        let line = lines[rng.next_below(lines.len() as u64) as usize];
        match spec.class {
            FaultClass::BitFlip | FaultClass::StuckAt => {
                // Stuck cells degenerate to a single wrong bit on the
                // read path for metadata lines: both are correctable.
                let bit = rng.next_below(LINE_BITS as u64) as usize;
                plan.flip_tree_bit(line, bit);
            }
            FaultClass::DoubleFlip => {
                let bit1 = rng.next_below(LINE_BITS as u64) as usize;
                let mut bit2 = rng.next_below(LINE_BITS as u64 - 1) as usize;
                if bit2 >= bit1 {
                    bit2 += 1;
                }
                plan.flip_tree_bit(line, bit1);
                plan.flip_tree_bit(line, bit2);
            }
            FaultClass::TransientRead => {
                let times = 1 + rng.next_below(4) as u32;
                plan.fail_tree_reads(line, times);
            }
            FaultClass::Torn | FaultClass::BankFail => unreachable!("power-event class"),
        }
        self.faults = Some(plan);
        Some(line)
    }

    /// Rewrites a seeded victim tree node line with attacker-chosen
    /// bytes, bypassing the write-admission path (an *active tamper*:
    /// ECC sees a consistent line, so only a root comparison during
    /// recovery can catch it). Returns the tampered line id, or `None`
    /// when no tree lines were ever persisted.
    pub fn tamper_tree_line(&mut self, seed: u64) -> Option<u64> {
        let lines = self.tree_lines();
        if lines.is_empty() {
            return None;
        }
        let mut rng = SplitMix64::new(seed ^ 0x7A3B_9D11);
        let line = lines[rng.next_below(lines.len() as u64) as usize];
        let mut bytes = self.read_tree(line);
        // Flip one whole byte so the forged digest differs but the line
        // still looks like ordinary ECC-clean media.
        let byte = rng.next_below(LINE_BYTES as u64) as usize;
        bytes[byte] ^= 0xA5;
        self.tree.insert(line, bytes);
        Some(line)
    }

    /// Strikes a settled (crash-image) store with an image-level fault:
    /// picks a seeded victim among the written lines and registers the
    /// class's corruption in the attached [`FaultPlan`] (creating one if
    /// absent). Power-event classes ([`FaultClass::is_power_event`]) are
    /// applied during the drain instead and are a no-op here.
    pub fn strike_faults(&mut self, spec: FaultSpec) {
        if spec.class.is_power_event() {
            return;
        }
        let data = self.data_lines();
        let ctrs = self.counter_lines();
        let mut rng = SplitMix64::new(spec.seed ^ 0x57A1_4EBF);
        let mut plan = self.faults.take().unwrap_or_else(|| FaultPlan::new(spec));
        let total = data.len() + ctrs.len();
        if total > 0 {
            match spec.class {
                FaultClass::StuckAt => {
                    // Stuck cells are modeled for data lines only.
                    if !data.is_empty() {
                        let line = data[rng.next_below(data.len() as u64) as usize];
                        let bit = rng.next_below(LINE_BITS as u64) as usize;
                        let stored = self.read_data(line);
                        let forced = stored[bit / 8] >> (bit % 8) & 1 == 0;
                        plan.stick_data_cell(line, bit, forced);
                    }
                }
                FaultClass::BitFlip | FaultClass::DoubleFlip => {
                    let bit1 = rng.next_below(LINE_BITS as u64) as usize;
                    // Second bit distinct from the first.
                    let mut bit2 = rng.next_below(LINE_BITS as u64 - 1) as usize;
                    if bit2 >= bit1 {
                        bit2 += 1;
                    }
                    let double = spec.class == FaultClass::DoubleFlip;
                    let idx = rng.next_below(total as u64) as usize;
                    if idx < data.len() {
                        plan.flip_data_bit(data[idx], bit1);
                        if double {
                            plan.flip_data_bit(data[idx], bit2);
                        }
                    } else {
                        let page = ctrs[idx - data.len()];
                        plan.flip_counter_bit(page, bit1);
                        if double {
                            plan.flip_counter_bit(page, bit2);
                        }
                    }
                }
                FaultClass::TransientRead => {
                    // 1..=4 failures: seeds above the retry budget (3)
                    // exercise the poison/detect path too.
                    let times = 1 + rng.next_below(4) as u32;
                    let idx = rng.next_below(total as u64) as usize;
                    if idx < data.len() {
                        plan.fail_data_reads(data[idx], times);
                    } else {
                        plan.fail_counter_reads(ctrs[idx - data.len()], times);
                    }
                }
                FaultClass::Torn | FaultClass::BankFail => unreachable!("power-event class"),
            }
        }
        self.faults = Some(plan);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_store_reads_zero() {
        let s = NvmStore::new();
        assert_eq!(s.read_data(LineAddr(0)), [0; 64]);
        assert_eq!(s.read_counter(PageId(99)), [0; 64]);
        assert_eq!(s.data_lines_touched(), 0);
    }

    #[test]
    fn data_and_counters_are_disjoint_namespaces() {
        let mut s = NvmStore::new();
        s.write_data(LineAddr(0), [1; 64]);
        s.write_counter(PageId(0), [2; 64]);
        assert_eq!(s.read_data(LineAddr(0)), [1; 64]);
        assert_eq!(s.read_counter(PageId(0)), [2; 64]);
    }

    #[test]
    fn overwrite_replaces_contents() {
        let mut s = NvmStore::new();
        s.write_data(LineAddr(0x80), [1; 64]);
        s.write_data(LineAddr(0x80), [9; 64]);
        assert_eq!(s.read_data(LineAddr(0x80)), [9; 64]);
        assert_eq!(s.data_lines_touched(), 1);
    }

    #[test]
    fn clone_snapshots_contents() {
        // Crash simulation relies on cheap store snapshots.
        let mut s = NvmStore::new();
        s.write_data(LineAddr(0x40), [3; 64]);
        let snap = s.clone();
        s.write_data(LineAddr(0x40), [4; 64]);
        assert_eq!(snap.read_data(LineAddr(0x40)), [3; 64]);
        assert_eq!(s.read_data(LineAddr(0x40)), [4; 64]);
    }

    #[test]
    fn wear_tracks_every_write() {
        let mut s = NvmStore::new();
        for _ in 0..5 {
            s.write_data(LineAddr(0x40), [1; 64]);
        }
        s.write_data(LineAddr(0x80), [2; 64]);
        s.write_counter(PageId(0), [3; 64]);
        s.write_counter(PageId(0), [4; 64]);
        let r = s.wear_report();
        assert_eq!(r.max_data_wear, 5);
        assert_eq!(r.total_data_writes, 6);
        assert_eq!(r.max_counter_wear, 2);
        assert_eq!(r.total_counter_writes, 2);
        assert_eq!(s.data_wear(LineAddr(0x40)), 5);
        assert_eq!(s.counter_wear(PageId(0)), 2);
        assert_eq!(s.data_wear(LineAddr(0xFC0)), 0);
    }

    #[test]
    fn fresh_store_has_zero_wear() {
        assert_eq!(NvmStore::new().wear_report(), WearReport::default());
    }

    #[test]
    fn wear_leveling_spreads_a_hot_line() {
        let mut plain = NvmStore::new();
        let mut leveled = NvmStore::new();
        // Small region and frequent gap moves so the test sees many full
        // rotations (real configs rotate over hours, not 400 writes).
        leveled.enable_wear_leveling(16, 2);
        for i in 0..400u64 {
            plain.write_data(LineAddr(0), [i as u8; 64]);
            leveled.write_data(LineAddr(0), [i as u8; 64]);
        }
        let p = plain.wear_report();
        let l = leveled.wear_report();
        assert_eq!(p.max_data_wear, 400);
        assert!(
            l.max_data_wear < p.max_data_wear / 3,
            "start-gap must spread wear: {} vs {}",
            l.max_data_wear,
            p.max_data_wear
        );
        // Contents are unaffected by the remap.
        assert_eq!(leveled.read_data(LineAddr(0)), plain.read_data(LineAddr(0)));
    }

    #[test]
    fn absorb_unions_contents_and_sums_wear() {
        let mut a = NvmStore::new();
        let mut b = NvmStore::new();
        a.write_data(LineAddr(0x40), [1; 64]);
        a.write_data(LineAddr(0x40), [2; 64]);
        a.write_counter(PageId(0), [3; 64]);
        b.write_data(LineAddr(0x80), [4; 64]);
        b.write_counter(PageId(1), [5; 64]);
        b.write_tag(LineAddr(0x80), 77);
        a.absorb(b);
        assert_eq!(a.read_data(LineAddr(0x40)), [2; 64]);
        assert_eq!(a.read_data(LineAddr(0x80)), [4; 64]);
        assert_eq!(a.read_counter(PageId(1)), [5; 64]);
        assert_eq!(a.read_tag(LineAddr(0x80)), 77);
        let r = a.wear_report();
        assert_eq!(r.total_data_writes, 3);
        assert_eq!(r.total_counter_writes, 2);
        assert_eq!(r.max_data_wear, 2);
    }

    #[test]
    fn tree_region_is_its_own_namespace() {
        let mut s = NvmStore::new();
        assert_eq!(s.read_tree(0), [0; 64]);
        s.write_data(LineAddr(0), [1; 64]);
        s.write_counter(PageId(0), [2; 64]);
        s.write_tree(0, [3; 64]);
        assert_eq!(s.read_data(LineAddr(0)), [1; 64]);
        assert_eq!(s.read_counter(PageId(0)), [2; 64]);
        assert_eq!(s.read_tree(0), [3; 64]);
        assert_eq!(s.tree_lines_touched(), 1);
        // Tree writes carry no wear accounting.
        assert_eq!(s.wear_report().total_data_writes, 1);
        assert_eq!(s.wear_report().total_counter_writes, 1);
    }

    #[test]
    fn tree_lines_sorted() {
        let mut s = NvmStore::new();
        s.write_tree(5, [1; 64]);
        s.write_tree(2, [1; 64]);
        s.write_tree(9, [1; 64]);
        assert_eq!(s.tree_lines(), vec![2, 5, 9]);
    }

    #[test]
    fn absorb_unions_tree_lines() {
        let mut a = NvmStore::new();
        let mut b = NvmStore::new();
        a.write_tree(1, [1; 64]);
        b.write_tree(2, [2; 64]);
        a.absorb(b);
        assert_eq!(a.read_tree(1), [1; 64]);
        assert_eq!(a.read_tree(2), [2; 64]);
    }

    #[test]
    fn tree_double_flip_is_detected_on_checked_read() {
        let mut s = NvmStore::new();
        s.write_tree(7, [0x11; 64]);
        let struck = s.strike_faults_tree_test(FaultClass::DoubleFlip, 42);
        assert_eq!(struck, Some(7));
        assert!(matches!(s.read_tree_checked(7), Err(MediaError::Corrupt)));
        assert!(s.fault_counters().ecc_detections >= 1);
        // Legacy data/counter reads are untouched.
        assert!(s.read_data_checked(LineAddr(0)).is_ok());
    }

    #[test]
    fn tree_single_flip_is_corrected() {
        let mut s = NvmStore::new();
        s.write_tree(3, [0xAB; 64]);
        s.strike_faults_tree_test(FaultClass::BitFlip, 7);
        assert_eq!(s.read_tree_checked(3), Ok([0xAB; 64]));
        assert_eq!(s.fault_counters().ecc_corrections, 1);
    }

    #[test]
    fn tree_transient_read_heals() {
        let mut s = NvmStore::new();
        s.write_tree(1, [5; 64]);
        let mut plan = FaultPlan::new(FaultSpec {
            class: FaultClass::TransientRead,
            seed: 0,
        });
        plan.fail_tree_reads(1, 2);
        s.attach_faults(plan);
        assert!(matches!(s.read_tree_checked(1), Err(MediaError::Transient)));
        assert!(matches!(s.read_tree_checked(1), Err(MediaError::Transient)));
        assert_eq!(s.read_tree_checked(1), Ok([5; 64]));
    }

    #[test]
    fn tree_lost_line_drops_writes_and_fails_reads() {
        let mut s = NvmStore::new();
        s.write_tree(4, [9; 64]);
        let mut plan = FaultPlan::new(FaultSpec {
            class: FaultClass::BankFail,
            seed: 0,
        });
        plan.note_lost_tree(4);
        s.attach_faults(plan);
        s.write_tree(4, [1; 64]); // dropped
        assert!(matches!(s.read_tree_checked(4), Err(MediaError::Lost)));
        assert_eq!(s.fault_counters().dropped_writes, 1);
    }

    #[test]
    fn tree_rewrite_clears_pending_flip() {
        let mut s = NvmStore::new();
        s.write_tree(2, [1; 64]);
        let mut plan = FaultPlan::new(FaultSpec {
            class: FaultClass::DoubleFlip,
            seed: 0,
        });
        plan.flip_tree_bit(2, 0);
        plan.flip_tree_bit(2, 9);
        s.attach_faults(plan);
        s.write_tree(2, [8; 64]);
        assert_eq!(s.read_tree_checked(2), Ok([8; 64]));
    }

    #[test]
    fn tamper_tree_line_changes_bytes_but_reads_clean() {
        let mut s = NvmStore::new();
        s.write_tree(6, [0x44; 64]);
        let line = s.tamper_tree_line(123);
        assert_eq!(line, Some(6));
        let bytes = s.read_tree(6);
        assert_ne!(bytes, [0x44; 64]);
        // Clean tamper: the checked read sees no media error.
        assert_eq!(s.read_tree_checked(6), Ok(bytes));
        assert!(s.tamper_tree_line(1).is_some());
        assert_eq!(NvmStore::new().tamper_tree_line(1), None);
    }

    #[test]
    fn tree_strike_on_empty_region_is_noop() {
        let mut s = NvmStore::new();
        assert_eq!(s.strike_faults_tree_test(FaultClass::DoubleFlip, 1), None);
        assert!(s.faults().is_none());
    }

    impl NvmStore {
        /// Test shorthand for `strike_tree_fault`.
        fn strike_faults_tree_test(&mut self, class: FaultClass, seed: u64) -> Option<u64> {
            self.strike_tree_fault(FaultSpec { class, seed })
        }
    }

    #[test]
    fn touched_counts() {
        let mut s = NvmStore::new();
        for i in 0..10u64 {
            s.write_data(LineAddr(i * 64), [i as u8; 64]);
        }
        s.write_counter(PageId(0), [0xFF; 64]);
        assert_eq!(s.data_lines_touched(), 10);
        assert_eq!(s.counter_lines_touched(), 1);
    }
}
