//! The named invariant catalog the checker enforces.
//!
//! Each rule encodes one ordering guarantee the paper's design relies on
//! for crash consistency. `P` rules cover the steady-state persist path;
//! `R` rules cover the page re-encryption protocol. See DESIGN.md §11 for
//! the full catalog with the crash scenarios each rule closes.

use std::fmt;

/// One invariant of the persistency-ordering catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rule {
    /// Every persisted data line has its counter line co-enqueued before
    /// the next sfence retires (write-through counters, §3.2).
    P1,
    /// The 2-line staging register appends data+counter adjacently —
    /// never interleaved, never one without the other (Figure 7).
    P2,
    /// CWC coalescing removes only the *older* pending counter entry;
    /// the superseding (newest) counter must still enqueue (§3.4).
    P3,
    /// No read is served data older than its persisted counter epoch —
    /// pending newer writes must forward from the queue (§2.2).
    P4,
    /// At most one page re-encryption is in flight: a new one may not
    /// start while another page's RSR is live (§3.4.4).
    R1,
    /// A re-encryption rewrites every line of its page before declaring
    /// completion (§3.4.4).
    R2,
    /// Every rewritten line sets its RSR done-bit; a missing bit leaves a
    /// crash point with an ambiguous encryption epoch (§3.4.4).
    R3,
    /// The RSR retires only after a completed re-encryption with all
    /// done-bits confirmed (§3.4.4).
    R4,
    /// No RSR is left live at the end of a run: every started
    /// re-encryption must retire (§3.4.4).
    R5,
    /// In write-through mode, RSR retirement requires the new major
    /// counter to have been enqueued for persistence (§3.4.4).
    R6,
    /// A leaf update armed in the streaming tree cache must reach every
    /// strictly-persisted ancestor (propagate) before the epoch's fence
    /// retires (DESIGN.md §18).
    T1,
    /// Every counter write on a tree-covered page arms a tree update:
    /// none may drain without its leaf digest entering the pending
    /// cache or propagating (DESIGN.md §18).
    T2,
    /// The trusted root register updates exactly once per propagated
    /// leaf — a second update forges an epoch (DESIGN.md §18).
    T3,
}

impl Rule {
    /// All rules, in catalog order.
    pub const ALL: [Rule; 13] = [
        Rule::P1,
        Rule::P2,
        Rule::P3,
        Rule::P4,
        Rule::R1,
        Rule::R2,
        Rule::R3,
        Rule::R4,
        Rule::R5,
        Rule::R6,
        Rule::T1,
        Rule::T2,
        Rule::T3,
    ];

    /// The catalog name of the rule.
    pub fn name(self) -> &'static str {
        match self {
            Rule::P1 => "P1",
            Rule::P2 => "P2",
            Rule::P3 => "P3",
            Rule::P4 => "P4",
            Rule::R1 => "R1",
            Rule::R2 => "R2",
            Rule::R3 => "R3",
            Rule::R4 => "R4",
            Rule::R5 => "R5",
            Rule::R6 => "R6",
            Rule::T1 => "T1",
            Rule::T2 => "T2",
            Rule::T3 => "T3",
        }
    }

    /// One-line statement of the invariant.
    pub fn summary(self) -> &'static str {
        match self {
            Rule::P1 => "counter co-enqueued with its data line before the next sfence",
            Rule::P2 => "staging register appends data+counter adjacently and atomically",
            Rule::P3 => "CWC removes only the older pending counter; newest still enqueues",
            Rule::P4 => "reads never bypass a newer pending write (epoch consistency)",
            Rule::R1 => "at most one page re-encryption in flight",
            Rule::R2 => "re-encryption rewrites every line of the page",
            Rule::R3 => "every rewritten line sets its RSR done-bit",
            Rule::R4 => "RSR retires only after completion with all done-bits",
            Rule::R5 => "no RSR left live at end of run",
            Rule::R6 => "write-through RSR retirement persists the new major counter",
            Rule::T1 => "armed tree updates propagate before the epoch's fence retires",
            Rule::T2 => "every tree-covered counter write arms a tree update",
            Rule::T3 => "root register updates exactly once per propagated leaf",
        }
    }

    /// Paper section the rule encodes.
    pub fn paper_ref(self) -> &'static str {
        match self {
            Rule::P1 => "§3.2",
            Rule::P2 => "§3.2, Fig. 7",
            Rule::P3 => "§3.4",
            Rule::P4 => "§2.2",
            Rule::R1 | Rule::R2 | Rule::R3 | Rule::R4 | Rule::R5 | Rule::R6 => "§3.4.4",
            Rule::T1 | Rule::T2 | Rule::T3 => "§18 (DESIGN.md)",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_complete_and_named() {
        assert_eq!(Rule::ALL.len(), 13);
        for r in Rule::ALL {
            assert!(!r.summary().is_empty());
            assert!(r.paper_ref().starts_with('§'));
            assert_eq!(format!("{r}"), r.name());
        }
    }
}
