//! The persistency-ordering checker: an [`Observer`] that replays the probe
//! stream through a shadow happens-before model of the write queue, staging
//! register, counter-write coalescer, and re-encryption status register,
//! and reports every invariant violation it finds.

use crate::rules::Rule;
use std::any::Any;
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::fmt;

use supermem_sim::{Config, CounterCacheMode, Cycle, Event, Observer};

/// How many trailing events the checker retains as the context window
/// attached to each violation.
const WINDOW_CAP: usize = 16;

/// Which invariants are live for a given machine configuration.
///
/// The checker is configuration-aware: a write-back design legitimately
/// persists data without co-enqueued counters, and an unencrypted machine
/// has no counters at all, so P1/P2/P3 and the R rules only arm when the
/// configuration actually promises those orderings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckerMode {
    /// Counters are persisted write-through (arms P1 and P3).
    pub write_through: bool,
    /// The 2-line staging register is in use (arms P2).
    pub atomic_pair: bool,
    /// Encryption is on at all (arms the R rules).
    pub encryption: bool,
    /// Cache-line size in bytes (data address → page mapping).
    pub line_bytes: u64,
    /// Page size in bytes (data address → page mapping).
    pub page_bytes: u64,
    /// Interleaved memory channels; the staging register, coalescer,
    /// and RSR are per-channel hardware, so their shadows shard too.
    pub channels: usize,
    /// The streaming integrity tree is live (arms the T rules).
    pub streaming_tree: bool,
    /// Pages covered by the integrity tree (T2 scope).
    pub integrity_pages: u64,
}

impl CheckerMode {
    /// Derive the live rule set from a simulator [`Config`].
    pub fn from_config(cfg: &Config) -> Self {
        CheckerMode {
            write_through: cfg.encryption
                && cfg.counter_cache_mode == CounterCacheMode::WriteThrough,
            atomic_pair: cfg.atomic_pair_append,
            encryption: cfg.encryption,
            line_bytes: cfg.line_bytes,
            page_bytes: cfg.page_bytes,
            channels: cfg.channels,
            streaming_tree: cfg.streaming_tree(),
            integrity_pages: cfg.integrity_pages,
        }
    }

    /// A mode with every base-catalog rule armed, for unit-testing the
    /// checker itself. The T rules stay off (they require the streaming
    /// tree's event vocabulary); tree tests arm them explicitly.
    pub fn strict() -> Self {
        CheckerMode {
            write_through: true,
            atomic_pair: true,
            encryption: true,
            line_bytes: 64,
            page_bytes: 4096,
            channels: 1,
            streaming_tree: false,
            integrity_pages: 0,
        }
    }

    fn page_of(&self, line_addr: u64) -> u64 {
        line_addr / self.page_bytes
    }

    fn line_index_in_page(&self, line_addr: u64) -> u32 {
        ((line_addr % self.page_bytes) / self.line_bytes) as u32
    }

    /// The channel owning a (counter) page: pages interleave round-robin.
    fn channel_of_page(&self, page: u64) -> usize {
        (page % self.channels.max(1) as u64) as usize
    }

    /// The channel owning a data line address.
    fn channel_of_line(&self, line_addr: u64) -> usize {
        self.channel_of_page(self.page_of(line_addr))
    }
}

/// One detected invariant violation, with the event window that led to it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The rule that was broken.
    pub rule: Rule,
    /// Cycle at which the violation was detected.
    pub at: Cycle,
    /// Human-readable description of what went wrong.
    pub message: String,
    /// The last few events before detection, as `(ordinal, event)` pairs
    /// (ordinal = position in the full stream, starting at 1).
    pub window: Vec<(u64, String)>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}) at cycle {}: {}",
            self.rule,
            self.rule.paper_ref(),
            self.at,
            self.message
        )
    }
}

/// The outcome of one checked run.
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    /// Every violation, in detection order.
    pub violations: Vec<Violation>,
    /// Total events consumed.
    pub events_seen: u64,
}

impl CheckReport {
    /// `true` when no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Distinct rules that fired, in catalog order.
    pub fn rules_fired(&self) -> Vec<Rule> {
        let set: BTreeSet<Rule> = self.violations.iter().map(|v| v.rule).collect();
        set.into_iter().collect()
    }

    /// Render the report as a JSON object (no external dependencies).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!(
            "\"events_seen\":{},\"clean\":{},\"violations\":[",
            self.events_seen,
            self.is_clean()
        ));
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"rule\":\"{}\",\"paper_ref\":\"{}\",\"at\":{},\"message\":\"{}\",\"window\":[",
                v.rule,
                v.rule.paper_ref(),
                v.at,
                json_escape(&v.message)
            ));
            for (j, (ord, ev)) in v.window.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&format!(
                    "{{\"ordinal\":{ord},\"event\":\"{}\"}}",
                    json_escape(ev)
                ));
            }
            s.push_str("]}");
        }
        s.push_str("]}");
        s
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "clean ({} events)", self.events_seen);
        }
        writeln!(
            f,
            "{} violation(s) in {} events:",
            self.violations.len(),
            self.events_seen
        )?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
            for (ord, ev) in &v.window {
                writeln!(f, "    #{ord} {ev}")?;
            }
        }
        Ok(())
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// In-flight state of the 2-line staging register (P2).
#[derive(Debug, Clone)]
struct StageState {
    line: u64,
    page: u64,
    at: Cycle,
    got_counter: bool,
}

/// Shadow of one live re-encryption (R rules).
#[derive(Debug, Clone)]
struct RsrTrack {
    page: u64,
    started_at: Cycle,
    marked: BTreeSet<u32>,
    rewrites: BTreeSet<u32>,
    done: bool,
    done_lines: u32,
    counter_since_done: bool,
    /// R3 already reported the missing done-bits; don't cascade into R4.
    marks_reported: bool,
}

/// The checker itself: attach to a run's probe hub, then call
/// [`Checker::take_report`] when the run ends.
#[derive(Debug, Clone)]
pub struct Checker {
    mode: CheckerMode,
    window: VecDeque<(u64, String)>,
    events_seen: u64,
    violations: Vec<Violation>,
    /// P1: counter lines enqueued but not yet "spent" by a data line of the
    /// same page (atomic pairs balance exactly; surpluses carry over).
    credits: HashMap<u64, u64>,
    /// P1: data pages persisted since the last counter enqueue/sfence, still
    /// owed a counter before the next sfence retires. Armed globally: the
    /// write queues are shared hardware, so a data line one core persisted
    /// without its counter is exposed by *any* core's retiring fence, not
    /// just the enqueuer's — which is exactly how shared lock-free
    /// structures order their publications.
    awaiting: BTreeMap<u64, Cycle>,
    /// Shadow write queue: pending counter entry seqs per counter page.
    pending_counter: HashMap<u64, Vec<u64>>,
    /// Shadow write queue: pending data entry seqs per line address.
    pending_data: HashMap<u64, Vec<u64>>,
    /// Per-channel staging registers (the 2-line register is per-channel
    /// hardware; appends from different channels legally interleave).
    stage: Vec<Option<StageState>>,
    /// P3, per channel: a coalesce happened; the superseding counter
    /// enqueue must follow on the same channel.
    coalesce_open: Vec<Option<(u64, Cycle)>>,
    /// Per-channel re-encryption status registers.
    rsr: Vec<Option<RsrTrack>>,
    /// T1: leaf pages with an armed (not yet propagated) streaming-tree
    /// update, keyed to the first arming cycle.
    tree_armed: BTreeMap<u64, Cycle>,
    /// T2: outstanding TreeArm credits per counter page (one per
    /// counter write; the page's counter enqueue consumes one).
    tree_credit: HashMap<u64, u64>,
    /// T3: propagated leaves not yet matched by a root-register update.
    root_due: u64,
}

impl Checker {
    /// Create a checker armed for the given machine mode.
    pub fn new(mode: CheckerMode) -> Self {
        let channels = mode.channels.max(1);
        Checker {
            mode,
            window: VecDeque::with_capacity(WINDOW_CAP),
            events_seen: 0,
            violations: Vec::new(),
            credits: HashMap::new(),
            awaiting: BTreeMap::new(),
            pending_counter: HashMap::new(),
            pending_data: HashMap::new(),
            stage: vec![None; channels],
            coalesce_open: vec![None; channels],
            rsr: vec![None; channels],
            tree_armed: BTreeMap::new(),
            tree_credit: HashMap::new(),
            root_due: 0,
        }
    }

    /// Create a checker for a simulator [`Config`].
    pub fn for_config(cfg: &Config) -> Self {
        Checker::new(CheckerMode::from_config(cfg))
    }

    fn violate(&mut self, rule: Rule, at: Cycle, message: String) {
        self.violations.push(Violation {
            rule,
            at,
            message,
            window: self.window.iter().cloned().collect(),
        });
    }

    fn handle_enqueue(&mut self, counter: bool, addr: u64, seq: u64, at: Cycle) {
        let ch = if counter {
            self.mode.channel_of_page(addr)
        } else {
            self.mode.channel_of_line(addr)
        };

        // P3b: a coalesce must be immediately superseded by the newer
        // counter entry for the same page; any other enqueue on the same
        // channel first means the newest counter was the one dropped.
        if let Some((page, copen_at)) = self.coalesce_open[ch].take() {
            if !(counter && addr == page) {
                self.violate(
                    Rule::P3,
                    at,
                    format!(
                        "coalesce on counter page {page} at cycle {copen_at} was not \
                         followed by the superseding counter enqueue (next append: \
                         {} {addr:#x})",
                        if counter { "counter" } else { "data" }
                    ),
                );
            }
        }

        // P2: while a channel's staged pair is latched, that channel's
        // next two enqueues must be exactly counter(page)@at then
        // data(line)@at.
        if self.mode.atomic_pair {
            if let Some(stage) = self.stage[ch].clone() {
                if !stage.got_counter {
                    if counter && addr == stage.page && at == stage.at {
                        self.stage[ch].as_mut().expect("stage present").got_counter = true;
                    } else {
                        self.violate(
                            Rule::P2,
                            at,
                            format!(
                                "staging register latched line {:#x}+counter page {} at \
                                 cycle {}, but the next append was {} {addr:#x} at cycle \
                                 {at} instead of the staged counter",
                                stage.line,
                                stage.page,
                                stage.at,
                                if counter { "counter" } else { "data" }
                            ),
                        );
                        self.stage[ch] = None;
                    }
                } else if !counter && addr == stage.line && at == stage.at {
                    self.stage[ch] = None; // pair completed atomically
                } else {
                    self.violate(
                        Rule::P2,
                        at,
                        format!(
                            "staged pair for line {:#x} was split: counter appended at \
                             cycle {} but the following append was {} {addr:#x} at cycle \
                             {at} (expected the data line at the same cycle)",
                            stage.line,
                            stage.at,
                            if counter { "counter" } else { "data" }
                        ),
                    );
                    self.stage[ch] = None;
                }
            }
        }

        // Shadow queue bookkeeping.
        if counter {
            self.pending_counter.entry(addr).or_default().push(seq);
        } else {
            self.pending_data.entry(addr).or_default().push(seq);
        }

        // T2: a counter write on a tree-covered page must have armed its
        // leaf update first (the controller emits TreeArm before the
        // counter enters the queue).
        if counter && self.mode.streaming_tree && addr < self.mode.integrity_pages {
            match self.tree_credit.get_mut(&addr) {
                Some(c) if *c > 0 => *c -= 1,
                _ => self.violate(
                    Rule::T2,
                    at,
                    format!(
                        "counter page {addr} enqueued without arming its integrity-tree \
                         leaf update — a crash here leaves the persisted tree blind to \
                         the new counter epoch"
                    ),
                ),
            }
        }

        // P1 credit accounting (write-through counters only).
        if self.mode.write_through {
            if counter {
                self.awaiting.remove(&addr);
                *self.credits.entry(addr).or_insert(0) += 1;
            } else {
                let page = self.mode.page_of(addr);
                match self.credits.get_mut(&page) {
                    Some(c) if *c > 0 => *c -= 1,
                    _ => {
                        self.awaiting.entry(page).or_insert(at);
                    }
                }
            }
        }

        // R bookkeeping: rewrites landing in the page under re-encryption,
        // and the new major counter persisting after completion — on the
        // owning channel's RSR.
        if let Some(r) = self.rsr[ch].as_mut() {
            if counter && addr == r.page && r.done {
                r.counter_since_done = true;
            }
            if !counter && !r.done && self.mode.page_of(addr) == r.page {
                r.rewrites.insert(self.mode.line_index_in_page(addr));
            }
        }
    }

    fn handle_issue(&mut self, counter: bool, addr: u64, seq: u64, start: Cycle) {
        let pending = if counter {
            self.pending_counter.get_mut(&addr)
        } else {
            self.pending_data.get_mut(&addr)
        };
        if let Some(list) = pending {
            if let Some(pos) = list.iter().position(|&s| s == seq) {
                list.remove(pos);
            }
            if list.is_empty() {
                if counter {
                    self.pending_counter.remove(&addr);
                } else {
                    self.pending_data.remove(&addr);
                }
            }
        }

        // P2: a staged counter that issues before its data line even entered
        // the queue means the register pair never made it in atomically.
        if counter {
            let ch = self.mode.channel_of_page(addr);
            if let Some(stage) = &self.stage[ch] {
                if stage.got_counter && addr == stage.page {
                    let line = stage.line;
                    self.violate(
                        Rule::P2,
                        start,
                        format!(
                            "staged counter for page {addr} issued to its bank before the \
                             paired data line {line:#x} entered the write queue"
                        ),
                    );
                    self.stage[ch] = None;
                }
            }
        }
    }

    fn handle_coalesce(&mut self, page: u64, victim_seq: u64, at: Cycle) {
        // P3a: the victim must be a pending counter entry for this page, and
        // specifically the *oldest* one.
        let ok = match self.pending_counter.get_mut(&page) {
            Some(list) if !list.is_empty() => {
                let oldest = *list.iter().min().expect("non-empty");
                if victim_seq == oldest {
                    let pos = list
                        .iter()
                        .position(|&s| s == victim_seq)
                        .expect("oldest is present");
                    list.remove(pos);
                    true
                } else {
                    self.violate(
                        Rule::P3,
                        at,
                        format!(
                            "coalesce on counter page {page} removed entry seq \
                             {victim_seq}, but the oldest pending entry was seq {oldest} \
                             — CWC must drop the older write"
                        ),
                    );
                    false
                }
            }
            _ => {
                self.violate(
                    Rule::P3,
                    at,
                    format!(
                        "coalesce on counter page {page} (victim seq {victim_seq}) with \
                         no pending counter entry for that page in the queue"
                    ),
                );
                false
            }
        };
        if ok {
            self.coalesce_open[self.mode.channel_of_page(page)] = Some((page, at));
        }
    }

    fn handle_sfence(&mut self, core: usize, at: Cycle) {
        if self.mode.write_through && !self.awaiting.is_empty() {
            let pages: Vec<String> = self
                .awaiting
                .keys()
                .map(std::string::ToString::to_string)
                .collect();
            let first_at = *self.awaiting.values().min().expect("non-empty");
            self.violate(
                Rule::P1,
                at,
                format!(
                    "sfence on core {core} retired with data persisted for page(s) \
                     [{}] but no co-enqueued counter write (earliest uncovered data \
                     enqueue at cycle {first_at})",
                    pages.join(", ")
                ),
            );
            self.awaiting.clear();
        }
        // T1: every armed tree update must have propagated to its
        // strictly-persisted ancestors before the fence retires.
        if self.mode.streaming_tree && !self.tree_armed.is_empty() {
            let pages: Vec<String> = self
                .tree_armed
                .keys()
                .map(std::string::ToString::to_string)
                .collect();
            let first_at = *self.tree_armed.values().min().expect("non-empty");
            self.violate(
                Rule::T1,
                at,
                format!(
                    "sfence on core {core} retired with integrity-tree update(s) for \
                     leaf page(s) [{}] still armed in the pending cache (earliest armed \
                     at cycle {first_at})",
                    pages.join(", ")
                ),
            );
            self.tree_armed.clear();
        }
    }

    fn handle_tree_arm(&mut self, page: u64, at: Cycle) {
        if !self.mode.streaming_tree {
            return;
        }
        self.tree_armed.entry(page).or_insert(at);
        *self.tree_credit.entry(page).or_insert(0) += 1;
    }

    fn handle_tree_propagate(&mut self, page: u64) {
        if !self.mode.streaming_tree {
            return;
        }
        self.tree_armed.remove(&page);
        self.root_due += 1;
    }

    fn handle_root_update(&mut self, at: Cycle) {
        if !self.mode.streaming_tree {
            return;
        }
        if self.root_due == 0 {
            self.violate(
                Rule::T3,
                at,
                "root register updated with no freshly propagated leaf — a duplicated \
                 or forged epoch"
                    .to_string(),
            );
        } else {
            self.root_due -= 1;
        }
    }

    fn handle_read(&mut self, line: u64, done: Cycle, forwarded: bool) {
        if forwarded {
            return;
        }
        if self
            .pending_data
            .get(&line)
            .is_some_and(|list| !list.is_empty())
        {
            self.violate(
                Rule::P4,
                done,
                format!(
                    "read of line {line:#x} served from NVM while a newer write to the \
                     same line is still pending in the write queue (stale data under a \
                     newer counter epoch)"
                ),
            );
        }
    }

    fn handle_reencrypt_start(&mut self, page: u64, at: Cycle) {
        if !self.mode.encryption {
            return;
        }
        let ch = self.mode.channel_of_page(page);
        if let Some(prev) = &self.rsr[ch] {
            let prev_page = prev.page;
            let prev_at = prev.started_at;
            self.violate(
                Rule::R1,
                at,
                format!(
                    "re-encryption of page {page} started while page {prev_page}'s RSR \
                     (opened at cycle {prev_at}) is still live"
                ),
            );
        }
        self.rsr[ch] = Some(RsrTrack {
            page,
            started_at: at,
            marked: BTreeSet::new(),
            rewrites: BTreeSet::new(),
            done: false,
            done_lines: 0,
            counter_since_done: false,
            marks_reported: false,
        });
    }

    fn handle_mark_done(&mut self, page: u64, idx: u32, at: Cycle) {
        if !self.mode.encryption {
            return;
        }
        match self.rsr[self.mode.channel_of_page(page)].as_mut() {
            Some(r) if r.page == page && !r.done => {
                r.marked.insert(idx);
            }
            Some(r) => {
                let rp = r.page;
                self.violate(
                    Rule::R3,
                    at,
                    format!(
                        "done-bit {idx} set for page {page} but the live RSR tracks \
                         page {rp} (or is already complete)"
                    ),
                );
            }
            None => {
                self.violate(
                    Rule::R3,
                    at,
                    format!("done-bit {idx} set for page {page} with no live RSR"),
                );
            }
        }
    }

    fn handle_reencrypt_done(&mut self, page: u64, lines: u32, at: Cycle) {
        if !self.mode.encryption {
            return;
        }
        match self.rsr[self.mode.channel_of_page(page)].as_mut() {
            Some(r) if r.page == page => {
                let rewrites_seen = r.rewrites.len();
                let missing: Vec<String> = (0..lines)
                    .filter(|i| !r.marked.contains(i))
                    .map(|i| i.to_string())
                    .collect();
                r.done = true;
                r.done_lines = lines;
                r.marks_reported = !missing.is_empty();
                if rewrites_seen != lines as usize {
                    self.violate(
                        Rule::R2,
                        at,
                        format!(
                            "re-encryption of page {page} declared done after rewriting \
                             {rewrites_seen} of {lines} lines"
                        ),
                    );
                }
                if !missing.is_empty() {
                    self.violate(
                        Rule::R3,
                        at,
                        format!(
                            "re-encryption of page {page} completed with done-bit(s) \
                             [{}] never set — a crash in this window cannot tell which \
                             epoch those lines are in",
                            missing.join(", ")
                        ),
                    );
                }
            }
            _ => {
                self.violate(
                    Rule::R4,
                    at,
                    format!("re-encryption of page {page} declared done with no live RSR"),
                );
            }
        }
    }

    fn handle_rsr_retired(&mut self, page: u64, at: Cycle) {
        if !self.mode.encryption {
            return;
        }
        match self.rsr[self.mode.channel_of_page(page)].take() {
            Some(r) if r.page == page => {
                if !r.done {
                    self.violate(
                        Rule::R4,
                        at,
                        format!(
                            "RSR for page {page} retired before its re-encryption \
                             completed"
                        ),
                    );
                } else if !r.marks_reported && r.marked.len() != r.done_lines as usize {
                    let seen = r.marked.len();
                    let want = r.done_lines;
                    self.violate(
                        Rule::R4,
                        at,
                        format!(
                            "RSR for page {page} retired with only {seen} of {want} \
                             done-bits set"
                        ),
                    );
                }
                if self.mode.write_through && !r.counter_since_done {
                    self.violate(
                        Rule::R6,
                        at,
                        format!(
                            "RSR for page {page} retired without the new major counter \
                             being enqueued for persistence"
                        ),
                    );
                }
            }
            Some(r) => {
                let rp = r.page;
                self.violate(
                    Rule::R4,
                    at,
                    format!("RSR retired for page {page} but the live RSR tracks page {rp}"),
                );
            }
            None => {
                self.violate(
                    Rule::R4,
                    at,
                    format!("RSR retired for page {page} with no live RSR"),
                );
            }
        }
    }

    /// End-of-stream checks: nothing may be left half-done on any channel.
    pub fn finalize(&mut self) {
        for ch in 0..self.stage.len() {
            if let Some(stage) = self.stage[ch].take() {
                let line = stage.line;
                let at = stage.at;
                self.violate(
                    Rule::P2,
                    at,
                    format!(
                        "run ended with the staging register still holding line {line:#x} \
                         (pair never fully appended)"
                    ),
                );
            }
            if let Some((page, at)) = self.coalesce_open[ch].take() {
                self.violate(
                    Rule::P3,
                    at,
                    format!(
                        "run ended with a coalesce on counter page {page} never superseded \
                         by the newer counter enqueue"
                    ),
                );
            }
            if let Some(r) = self.rsr[ch].take() {
                let page = r.page;
                let at = r.started_at;
                self.violate(
                    Rule::R5,
                    at,
                    format!(
                        "run ended with page {page}'s RSR still live (re-encryption started \
                         at cycle {at} never retired)"
                    ),
                );
            }
        }
        if self.mode.streaming_tree {
            if let Some((&page, &at)) = self.tree_armed.iter().next() {
                let n = self.tree_armed.len();
                self.violate(
                    Rule::T1,
                    at,
                    format!(
                        "run ended with {n} integrity-tree update(s) still armed \
                         (first: leaf page {page}, armed at cycle {at})"
                    ),
                );
                self.tree_armed.clear();
            }
            if self.root_due > 0 {
                let n = self.root_due;
                self.root_due = 0;
                self.violate(
                    Rule::T3,
                    0,
                    format!(
                        "run ended with {n} propagated leaf update(s) never latched \
                         into the root register"
                    ),
                );
            }
        }
    }

    /// Run [`Checker::finalize`] and drain the report.
    pub fn take_report(&mut self) -> CheckReport {
        self.finalize();
        CheckReport {
            violations: std::mem::take(&mut self.violations),
            events_seen: self.events_seen,
        }
    }
}

impl Observer for Checker {
    fn on_event(&mut self, ev: &Event) {
        self.events_seen += 1;
        if self.window.len() == WINDOW_CAP {
            self.window.pop_front();
        }
        self.window.push_back((self.events_seen, format!("{ev:?}")));

        match *ev {
            Event::WqEnqueue {
                counter,
                addr,
                seq,
                at,
                ..
            } => self.handle_enqueue(counter, addr, seq, at),
            Event::WqIssue {
                counter,
                addr,
                seq,
                start,
                ..
            } => self.handle_issue(counter, addr, seq, start),
            Event::WqCoalesce {
                page,
                victim_seq,
                at,
            } => self.handle_coalesce(page, victim_seq, at),
            Event::RegisterStage { line, page, at } if self.mode.atomic_pair => {
                let ch = self.mode.channel_of_page(page);
                if let Some(prev) = self.stage[ch].replace(StageState {
                    line,
                    page,
                    at,
                    got_counter: false,
                }) {
                    let prev_line = prev.line;
                    self.violate(
                        Rule::P2,
                        at,
                        format!(
                            "staging register re-latched (line {line:#x}) while the \
                                 previous pair (line {prev_line:#x}) was still incomplete"
                        ),
                    );
                }
            }
            Event::SfenceRetire { core, at, .. } => self.handle_sfence(core, at),
            Event::ReadServed {
                line,
                done,
                forwarded,
                ..
            } => self.handle_read(line, done, forwarded),
            Event::ReencryptStart { page, at } => self.handle_reencrypt_start(page, at),
            Event::RsrMarkDone { page, idx, at } => self.handle_mark_done(page, idx, at),
            Event::ReencryptDone { page, lines, at } => {
                self.handle_reencrypt_done(page, lines, at);
            }
            Event::RsrRetired { page, at } => self.handle_rsr_retired(page, at),
            Event::TreeArm { page, at } => self.handle_tree_arm(page, at),
            Event::TreePropagate { page, .. } => self.handle_tree_propagate(page),
            Event::TreeRootUpdate { at } => self.handle_root_update(at),
            _ => {}
        }
    }

    fn box_clone(&self) -> Box<dyn Observer> {
        Box::new(self.clone())
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enq(counter: bool, addr: u64, seq: u64, at: Cycle) -> Event {
        Event::WqEnqueue {
            counter,
            addr,
            seq,
            bank: 0,
            at,
            occupancy: 1,
        }
    }

    fn issue(counter: bool, addr: u64, seq: u64, start: Cycle) -> Event {
        Event::WqIssue {
            counter,
            addr,
            seq,
            bank: 0,
            ready: start,
            start,
            occupancy: 0,
        }
    }

    fn sfence(at: Cycle) -> Event {
        sfence_on(0, at)
    }

    fn sfence_on(core: usize, at: Cycle) -> Event {
        Event::SfenceRetire { core, at, stall: 0 }
    }

    fn run(events: &[Event]) -> CheckReport {
        let mut c = Checker::new(CheckerMode::strict());
        for ev in events {
            c.on_event(ev);
        }
        c.take_report()
    }

    #[test]
    fn clean_atomic_pair_stream_passes() {
        let report = run(&[
            Event::RegisterStage {
                line: 0x40,
                page: 0,
                at: 10,
            },
            enq(true, 0, 1, 10),
            enq(false, 0x40, 2, 10),
            sfence(20),
            issue(true, 0, 1, 30),
            issue(false, 0x40, 2, 31),
        ]);
        assert!(report.is_clean(), "unexpected: {report}");
        assert_eq!(report.events_seen, 6);
    }

    #[test]
    fn p1_fires_on_uncovered_data_at_sfence() {
        let report = run(&[enq(false, 0x40, 1, 10), sfence(20)]);
        assert_eq!(report.rules_fired(), vec![Rule::P1]);
        assert_eq!(report.violations[0].at, 20);
    }

    #[test]
    fn p1_arming_is_cross_core() {
        // Interleaved streams from two cores sharing a structure: core 0
        // and core 1 each persist an atomic pair, their fences interleave,
        // and the run is clean — counters enqueued by one core discharge
        // the shared write queue regardless of who fences.
        let clean = run(&[
            enq(true, 0, 1, 10),
            enq(false, 0x40, 2, 10),
            enq(true, 1, 3, 12),
            enq(false, 4096 + 0x80, 4, 12),
            sfence_on(1, 14),
            sfence_on(0, 15),
        ]);
        assert!(clean.is_clean(), "unexpected: {clean}");

        // Core 0 persists data with no counter; core 1's fence is the
        // first to retire and must still trip P1 — a shared structure's
        // readers order on any core's fence, not just the writer's.
        let dirty = run(&[enq(false, 0x40, 1, 10), sfence_on(1, 20)]);
        assert_eq!(dirty.rules_fired(), vec![Rule::P1]);
        assert!(
            dirty.violations[0].message.contains("core 1"),
            "fencing core not attributed: {}",
            dirty.violations[0].message
        );
    }

    #[test]
    fn p1_credit_carries_across_pages_independently() {
        // Counter for page 0 does not cover data in page 1.
        let report = run(&[
            enq(true, 0, 1, 10),
            enq(false, 4096 + 0x40, 2, 11),
            sfence(20),
        ]);
        assert_eq!(report.rules_fired(), vec![Rule::P1]);
    }

    #[test]
    fn p2_fires_on_split_pair() {
        let report = run(&[
            Event::RegisterStage {
                line: 0x40,
                page: 0,
                at: 10,
            },
            enq(true, 0, 1, 10),
            // Data arrives a cycle late — the pair was split.
            enq(false, 0x40, 2, 11),
        ]);
        assert!(report.rules_fired().contains(&Rule::P2));
    }

    #[test]
    fn p2_fires_on_counter_issuing_before_data_enqueued() {
        let report = run(&[
            Event::RegisterStage {
                line: 0x40,
                page: 0,
                at: 10,
            },
            enq(true, 0, 1, 10),
            issue(true, 0, 1, 12),
        ]);
        assert!(report.rules_fired().contains(&Rule::P2));
    }

    #[test]
    fn p3_fires_on_wrong_victim() {
        let report = run(&[
            enq(true, 0, 1, 10),
            enq(true, 0, 2, 11),
            // Victim is the newer entry (seq 2), not the oldest (seq 1).
            Event::WqCoalesce {
                page: 0,
                victim_seq: 2,
                at: 12,
            },
            enq(true, 0, 3, 12),
        ]);
        assert_eq!(report.rules_fired(), vec![Rule::P3]);
    }

    #[test]
    fn p3_fires_when_superseding_counter_never_enqueues() {
        let report = run(&[
            enq(true, 0, 1, 10),
            Event::WqCoalesce {
                page: 0,
                victim_seq: 1,
                at: 12,
            },
            // A data append follows instead of the superseding counter.
            enq(false, 0x80, 2, 12),
            sfence(20),
        ]);
        assert!(report.rules_fired().contains(&Rule::P3));
    }

    #[test]
    fn p3_clean_coalesce_passes() {
        let report = run(&[
            enq(true, 0, 1, 10),
            enq(false, 0x40, 2, 10),
            Event::WqCoalesce {
                page: 0,
                victim_seq: 1,
                at: 12,
            },
            enq(true, 0, 3, 12),
            enq(false, 0x80, 4, 12),
            sfence(20),
        ]);
        assert!(report.is_clean(), "unexpected: {report}");
    }

    #[test]
    fn p4_fires_on_stale_read_past_pending_write() {
        let report = run(&[
            enq(true, 0, 1, 10),
            enq(false, 0x40, 2, 10),
            Event::ReadServed {
                line: 0x40,
                issued: 15,
                done: 25,
                forwarded: false,
            },
        ]);
        assert!(report.rules_fired().contains(&Rule::P4));
    }

    #[test]
    fn p4_forwarded_read_is_fine() {
        let report = run(&[
            enq(true, 0, 1, 10),
            enq(false, 0x40, 2, 10),
            Event::ReadServed {
                line: 0x40,
                issued: 15,
                done: 25,
                forwarded: true,
            },
        ]);
        assert!(report.is_clean(), "unexpected: {report}");
    }

    fn reencrypt_events(skip_idx: Option<u32>) -> Vec<Event> {
        let lines = 4u32;
        let mut evs = vec![Event::ReencryptStart { page: 7, at: 100 }];
        for i in 0..lines {
            // Rewrites land in page 7 (page_bytes 4096): line i of page 7.
            let addr = 7 * 4096 + u64::from(i) * 64;
            evs.push(enq(false, addr, 10 + u64::from(i), 101 + Cycle::from(i)));
            if Some(i) != skip_idx {
                evs.push(Event::RsrMarkDone {
                    page: 7,
                    idx: i,
                    at: 101 + Cycle::from(i),
                });
            }
        }
        evs.push(Event::ReencryptDone {
            page: 7,
            lines,
            at: 110,
        });
        // New major counter persists, then the RSR retires.
        evs.push(enq(true, 7, 20, 111));
        evs.push(Event::RsrRetired { page: 7, at: 112 });
        // Cover the rewrites + counter so the trailing sfence is clean.
        evs.push(enq(true, 7, 21, 113));
        evs
    }

    #[test]
    fn clean_reencryption_passes() {
        // The four rewrites awaiting counters are covered by the retire-time
        // counter enqueues; no sfence intervenes.
        let report = run(&reencrypt_events(None));
        assert!(report.is_clean(), "unexpected: {report}");
    }

    #[test]
    fn r3_fires_on_skipped_done_bit() {
        let report = run(&reencrypt_events(Some(0)));
        assert_eq!(report.rules_fired(), vec![Rule::R3]);
        assert!(report.violations[0].message.contains("[0]"));
    }

    #[test]
    fn r1_fires_on_nested_reencryption() {
        let report = run(&[
            Event::ReencryptStart { page: 7, at: 100 },
            Event::ReencryptStart { page: 9, at: 101 },
        ]);
        assert!(report.rules_fired().contains(&Rule::R1));
    }

    #[test]
    fn r4_fires_on_premature_retire() {
        let report = run(&[
            Event::ReencryptStart { page: 7, at: 100 },
            Event::RsrRetired { page: 7, at: 101 },
        ]);
        assert!(report.rules_fired().contains(&Rule::R4));
    }

    #[test]
    fn r5_fires_on_live_rsr_at_end() {
        let report = run(&[Event::ReencryptStart { page: 7, at: 100 }]);
        assert_eq!(report.rules_fired(), vec![Rule::R5]);
    }

    #[test]
    fn r6_fires_when_major_counter_never_persists() {
        let mut evs = reencrypt_events(None);
        // Drop the post-done counter enqueues: retire without persistence.
        evs.retain(|e| !matches!(e, Event::WqEnqueue { counter: true, .. }));
        let report = run(&evs);
        assert!(report.rules_fired().contains(&Rule::R6), "got {report}");
    }

    #[test]
    fn window_is_bounded_and_attached() {
        let mut evs: Vec<Event> = (0..40)
            .map(|i| enq(true, 0, i + 1, Cycle::from(i)))
            .collect();
        evs.push(enq(false, 0x40_0000, 100, 50));
        evs.push(sfence(60));
        let report = run(&evs);
        assert_eq!(report.rules_fired(), vec![Rule::P1]);
        let v = &report.violations[0];
        assert!(v.window.len() <= WINDOW_CAP);
        assert!(v.window.last().expect("non-empty").1.contains("Sfence"));
    }

    #[test]
    fn mode_disarms_rules_for_write_back() {
        let mode = CheckerMode {
            write_through: false,
            atomic_pair: false,
            encryption: true,
            line_bytes: 64,
            page_bytes: 4096,
            channels: 1,
            streaming_tree: false,
            integrity_pages: 0,
        };
        let mut c = Checker::new(mode);
        c.on_event(&enq(false, 0x40, 1, 10));
        c.on_event(&sfence(20));
        let report = c.take_report();
        assert!(report.is_clean(), "unexpected: {report}");
    }

    #[test]
    fn multi_channel_concurrent_rsrs_are_legal() {
        // Each channel has its own RSR: pages 7 and 8 live on different
        // channels at channels=2, so overlapping re-encryptions are fine.
        let mut mode = CheckerMode::strict();
        mode.channels = 2;
        let mut c = Checker::new(mode);
        c.on_event(&Event::ReencryptStart { page: 7, at: 100 });
        c.on_event(&Event::ReencryptStart { page: 8, at: 101 });
        let report = c.take_report();
        assert!(
            !report.rules_fired().contains(&Rule::R1),
            "independent channels must not trip R1: {report}"
        );
        // Same-channel nesting still fires: pages 7 and 9 share channel 1.
        let mut mode = CheckerMode::strict();
        mode.channels = 2;
        let mut c = Checker::new(mode);
        c.on_event(&Event::ReencryptStart { page: 7, at: 100 });
        c.on_event(&Event::ReencryptStart { page: 9, at: 101 });
        assert!(c.take_report().rules_fired().contains(&Rule::R1));
    }

    #[test]
    fn multi_channel_interleaved_pairs_pass() {
        // The 2-line staging register is per-channel hardware: channel 1
        // latching while channel 0's pair is still in flight is legal.
        let mut mode = CheckerMode::strict();
        mode.channels = 2;
        let mut c = Checker::new(mode);
        for ev in [
            Event::RegisterStage {
                line: 0x40,
                page: 0,
                at: 10,
            },
            Event::RegisterStage {
                line: 4096 + 0x40,
                page: 1,
                at: 10,
            },
            enq(true, 0, 1, 10),
            enq(false, 0x40, 2, 10),
            enq(true, 1, 3, 10),
            enq(false, 4096 + 0x40, 4, 10),
            sfence(20),
        ] {
            c.on_event(&ev);
        }
        let report = c.take_report();
        assert!(report.is_clean(), "unexpected: {report}");
    }

    fn tree_mode() -> CheckerMode {
        let mut mode = CheckerMode::strict();
        mode.streaming_tree = true;
        mode.integrity_pages = 4096;
        mode
    }

    fn run_tree(events: &[Event]) -> CheckReport {
        let mut c = Checker::new(tree_mode());
        for ev in events {
            c.on_event(ev);
        }
        c.take_report()
    }

    fn arm(page: u64, at: Cycle) -> Event {
        Event::TreeArm { page, at }
    }

    fn propagate(page: u64, at: Cycle) -> [Event; 2] {
        [
            Event::TreePropagate { page, at },
            Event::TreeRootUpdate { at },
        ]
    }

    #[test]
    fn clean_streaming_tree_stream_passes() {
        let [p0, r0] = propagate(0, 15);
        let report = run_tree(&[
            Event::RegisterStage {
                line: 0x40,
                page: 0,
                at: 10,
            },
            arm(0, 10),
            enq(true, 0, 1, 10),
            enq(false, 0x40, 2, 10),
            p0,
            r0,
            sfence(20),
        ]);
        assert!(report.is_clean(), "unexpected: {report}");
    }

    #[test]
    fn t1_fires_when_armed_update_survives_the_fence() {
        let report = run_tree(&[
            Event::RegisterStage {
                line: 0x40,
                page: 0,
                at: 10,
            },
            arm(0, 10),
            enq(true, 0, 1, 10),
            enq(false, 0x40, 2, 10),
            // No propagation before the fence retires.
            sfence(20),
        ]);
        assert_eq!(report.rules_fired(), vec![Rule::T1]);
        assert!(report.violations[0].message.contains("[0]"));
    }

    #[test]
    fn t2_fires_on_unarmed_counter_enqueue() {
        let report = run_tree(&[
            Event::RegisterStage {
                line: 0x40,
                page: 0,
                at: 10,
            },
            // Counter enqueues with no TreeArm preceding it.
            enq(true, 0, 1, 10),
            enq(false, 0x40, 2, 10),
        ]);
        assert!(report.rules_fired().contains(&Rule::T2), "got {report}");
    }

    #[test]
    fn t2_ignores_pages_outside_the_tree() {
        let mut mode = tree_mode();
        mode.integrity_pages = 4; // page 9 is uncovered
        mode.write_through = false;
        mode.atomic_pair = false;
        let mut c = Checker::new(mode);
        c.on_event(&enq(true, 9, 1, 10));
        let report = c.take_report();
        assert!(report.is_clean(), "unexpected: {report}");
    }

    #[test]
    fn t3_fires_on_double_root_update() {
        let [p0, r0] = propagate(0, 15);
        let report = run_tree(&[
            Event::RegisterStage {
                line: 0x40,
                page: 0,
                at: 10,
            },
            arm(0, 10),
            enq(true, 0, 1, 10),
            enq(false, 0x40, 2, 10),
            p0,
            r0,
            Event::TreeRootUpdate { at: 15 }, // the forged second update
            sfence(20),
        ]);
        assert_eq!(report.rules_fired(), vec![Rule::T3]);
    }

    #[test]
    fn t3_fires_when_a_propagation_never_reaches_the_root() {
        let report = run_tree(&[
            arm(0, 10),
            Event::TreePropagate { page: 0, at: 15 },
            // Missing TreeRootUpdate; caught at end of run.
        ]);
        assert!(report.rules_fired().contains(&Rule::T3), "got {report}");
    }

    #[test]
    fn t1_fires_on_armed_update_at_end_of_run() {
        let mut mode = tree_mode();
        mode.write_through = false;
        mode.atomic_pair = false;
        let mut c = Checker::new(mode);
        c.on_event(&arm(3, 10));
        let report = c.take_report();
        assert!(report.rules_fired().contains(&Rule::T1), "got {report}");
    }

    #[test]
    fn coalesced_arms_balance_their_counter_enqueues() {
        // Three counter writes to one page: three arms, three counter
        // enqueues, one propagation (the cache coalesced them).
        let mut evs = Vec::new();
        for seq in 1..=3u64 {
            evs.push(arm(0, 10 + seq));
            evs.push(enq(true, 0, seq * 2, 10 + seq));
            evs.push(enq(false, 0x40, seq * 2 + 1, 10 + seq));
        }
        let [p0, r0] = propagate(0, 18);
        evs.push(p0);
        evs.push(r0);
        evs.push(sfence(20));
        let mut mode = tree_mode();
        mode.atomic_pair = false; // no RegisterStage events in this stream
        let mut c = Checker::new(mode);
        for ev in &evs {
            c.on_event(ev);
        }
        let report = c.take_report();
        assert!(report.is_clean(), "unexpected: {report}");
    }

    #[test]
    fn json_report_is_well_formed() {
        let report = run(&[enq(false, 0x40, 1, 10), sfence(20)]);
        let json = report.to_json();
        assert!(json.contains("\"rule\":\"P1\""));
        assert!(json.contains("\"clean\":false"));
    }
}
