//! Persistency-ordering checker for the SuperMem reproduction.
//!
//! This crate consumes the simulator's probe stream ([`supermem_sim::Event`])
//! through a shadow happens-before model of the secure-memory persist path —
//! write queue, 2-line staging register, counter-write coalescer, and
//! re-encryption status register — and reports violations of the paper's
//! crash-consistency invariants (catalog in [`Rule`]; prose in DESIGN.md §11).
//!
//! The checker is a pure [`supermem_sim::Observer`]: it never feeds back into
//! simulated timing, so a checked run produces bit-identical results to an
//! unchecked one.
//!
//! # Examples
//!
//! ```
//! use supermem_check::{Checker, CheckerMode};
//! use supermem_sim::Event;
//!
//! let mut checker = Checker::new(CheckerMode::strict());
//! // A data line persists and the fence retires with no counter co-enqueued:
//! use supermem_sim::Observer;
//! checker.on_event(&Event::WqEnqueue {
//!     counter: false,
//!     addr: 0x40,
//!     seq: 1,
//!     bank: 0,
//!     at: 10,
//!     occupancy: 1,
//! });
//! checker.on_event(&Event::SfenceRetire { core: 0, at: 20, stall: 0 });
//! let report = checker.take_report();
//! assert_eq!(report.violations.len(), 1);
//! assert_eq!(report.violations[0].rule, supermem_check::Rule::P1);
//! ```
#![deny(missing_docs)]

mod checker;
mod rules;

pub use checker::{CheckReport, Checker, CheckerMode, Violation};
pub use rules::Rule;
