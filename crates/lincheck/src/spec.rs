//! Sequential specifications and the WGL-style durable-linearizability
//! search.
//!
//! A crash image is **durably linearizable** when its recovered entries
//! (plus the responses clients already received) are explained by some
//! legal sequential history over the abstract structure containing
//!
//! * every operation that *must* be there — it returned to its client
//!   before the crash, its completion record is durably `DONE`, or
//!   recovery promised to apply it — and
//! * any subset of the remaining in-flight operations (they may or may
//!   not have linearized before the crash),
//!
//! respecting real-time order: if `a` returned before `b` was invoked,
//! `a` linearizes before `b`. The search is the classic Wing–Gong/Lowe
//! scheme: depth-first over candidate linearizations, only ever
//! choosing a *minimal* operation (no unchosen must-op returned before
//! its invocation), pruning on response mismatches. Configurations are
//! a handful of operations, so the state space is tiny by construction.

use std::collections::VecDeque;

use supermem_serve::service::StructureKind;

/// One abstract client operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinOp {
    /// push / enqueue / hash insert of `(key, value)`.
    Update {
        /// Key (hash bucket selector; payload elsewhere).
        key: u64,
        /// Value.
        value: u64,
    },
    /// pop / dequeue (returns the removed value, `None` when empty).
    Remove,
    /// peek / front / hash lookup (returns the found value).
    Read {
        /// Key (hash only; stack/queue peek ignores it).
        key: u64,
    },
}

impl LinOp {
    /// Compact display for schedules and reproducers, e.g. `u7=99`,
    /// `r`, `g7`.
    pub fn label(self) -> String {
        match self {
            LinOp::Update { key, value } => format!("u{key}={value}"),
            LinOp::Remove => "r".to_owned(),
            LinOp::Read { key } => format!("g{key}"),
        }
    }
}

/// The sequential specification: the abstract structure the persistent
/// one must be explainable as.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqSpec {
    kind: StructureKind,
    nbuckets: u64,
    stack: Vec<(u64, u64)>,
    queue: VecDeque<(u64, u64)>,
    hash: Vec<Vec<(u64, u64)>>,
}

impl SeqSpec {
    /// An empty structure of `kind` (`nbuckets` for hashes).
    pub fn new(kind: StructureKind, nbuckets: u64) -> Self {
        assert!(
            kind != StructureKind::Hash || nbuckets > 0,
            "a hash spec needs buckets"
        );
        Self {
            kind,
            nbuckets,
            stack: Vec::new(),
            queue: VecDeque::new(),
            hash: vec![
                Vec::new();
                if kind == StructureKind::Hash {
                    nbuckets as usize
                } else {
                    0
                }
            ],
        }
    }

    /// Applies one operation, returning its response (what the client
    /// would see): removed/found value, `None` for updates, misses, and
    /// empty removes.
    pub fn apply(&mut self, op: LinOp) -> Option<u64> {
        match (self.kind, op) {
            (StructureKind::Stack, LinOp::Update { key, value }) => {
                self.stack.push((key, value));
                None
            }
            (StructureKind::Stack, LinOp::Remove) => self.stack.pop().map(|(_, v)| v),
            (StructureKind::Stack, LinOp::Read { .. }) => self.stack.last().map(|&(_, v)| v),
            (StructureKind::Queue, LinOp::Update { key, value }) => {
                self.queue.push_back((key, value));
                None
            }
            (StructureKind::Queue, LinOp::Remove) => self.queue.pop_front().map(|(_, v)| v),
            (StructureKind::Queue, LinOp::Read { .. }) => self.queue.front().map(|&(_, v)| v),
            (StructureKind::Hash, LinOp::Update { key, value }) => {
                self.hash[(key % self.nbuckets) as usize].insert(0, (key, value));
                None
            }
            // The service maps hash removes onto updates at admission;
            // checker configs never generate them.
            (StructureKind::Hash, LinOp::Remove) => None,
            (StructureKind::Hash, LinOp::Read { key }) => self.hash[(key % self.nbuckets) as usize]
                .iter()
                .find(|&&(k, _)| k == key)
                .map(|&(_, v)| v),
        }
    }

    /// Entries in the structure's canonical walk order (stack
    /// top-first, queue front-first, hash buckets in order with
    /// newest-first chains) — directly comparable to a recovered walk.
    pub fn entries(&self) -> Vec<(u64, u64)> {
        match self.kind {
            StructureKind::Stack => self.stack.iter().rev().copied().collect(),
            StructureKind::Queue => self.queue.iter().copied().collect(),
            StructureKind::Hash => self.hash.iter().flatten().copied().collect(),
        }
    }
}

/// One operation of the crash-cut history offered to the linearization
/// search.
#[derive(Debug, Clone, Copy)]
pub struct Candidate {
    /// The abstract operation.
    pub op: LinOp,
    /// `true` when the linearization must contain it (returned, durably
    /// `DONE`, or promised by recovery); `false` for in-flight ops that
    /// may or may not have linearized.
    pub must: bool,
    /// `Some(response)` when the client saw a response the spec must
    /// reproduce at the op's position; `None` leaves it unconstrained.
    pub response: Option<Option<u64>>,
    /// Invocation action index (real-time order).
    pub inv: u64,
    /// Return action index, when the op returned before the cut.
    pub ret: Option<u64>,
}

/// `true` when `a` returned before `b` was invoked, so `a` must
/// linearize first.
fn precedes(a: &Candidate, b: &Candidate) -> bool {
    a.ret.is_some_and(|r| r < b.inv)
}

/// Searches for a linearization of `cands` (all `must` ops, any subset
/// of the rest) whose final state matches `target` and whose responses
/// match every constrained candidate. Returns the witness order as
/// indices into `cands`, or `None` when no explanation exists.
pub fn explain(
    kind: StructureKind,
    nbuckets: u64,
    cands: &[Candidate],
    target: &[(u64, u64)],
) -> Option<Vec<usize>> {
    assert!(cands.len() <= 63, "candidate history too large");
    let optional: Vec<usize> = (0..cands.len()).filter(|&i| !cands[i].must).collect();
    // Subsets of the optional ops, smallest first: in-flight ops that
    // did not linearize are the common case, so try excluding first.
    for subset in 0u64..(1 << optional.len()) {
        let mut included: Vec<usize> = (0..cands.len()).filter(|&i| cands[i].must).collect();
        for (bit, &i) in optional.iter().enumerate() {
            if subset & (1 << bit) != 0 {
                included.push(i);
            }
        }
        let spec = SeqSpec::new(kind, nbuckets.max(1));
        let mut order = Vec::with_capacity(included.len());
        if search(cands, &mut included, &spec, target, &mut order) {
            return Some(order);
        }
    }
    None
}

/// WGL depth-first search over orders of `remaining`: choose a minimal
/// op, apply it, prune on response mismatch, recurse.
fn search(
    cands: &[Candidate],
    remaining: &mut Vec<usize>,
    spec: &SeqSpec,
    target: &[(u64, u64)],
    order: &mut Vec<usize>,
) -> bool {
    if remaining.is_empty() {
        return spec.entries() == target;
    }
    for pos in 0..remaining.len() {
        let o = remaining[pos];
        // Minimality: nothing still unchosen may precede `o` in real
        // time (everything in `remaining` will be linearized).
        if remaining
            .iter()
            .any(|&p| p != o && precedes(&cands[p], &cands[o]))
        {
            continue;
        }
        let mut next = spec.clone();
        let response = next.apply(cands[o].op);
        if let Some(expected) = cands[o].response {
            if response != expected {
                continue;
            }
        }
        remaining.swap_remove(pos);
        order.push(o);
        if search(cands, remaining, &next, target, order) {
            return true;
        }
        order.pop();
        remaining.push(o);
        let last = remaining.len() - 1;
        remaining.swap(pos, last);
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upd(key: u64, value: u64) -> LinOp {
        LinOp::Update { key, value }
    }

    fn cand(op: LinOp, must: bool, inv: u64, ret: Option<u64>) -> Candidate {
        Candidate {
            op,
            must,
            response: None,
            inv,
            ret,
        }
    }

    #[test]
    fn spec_orders_match_the_walk_orders() {
        let mut s = SeqSpec::new(StructureKind::Stack, 0);
        s.apply(upd(1, 10));
        s.apply(upd(2, 20));
        assert_eq!(s.entries(), vec![(2, 20), (1, 10)], "stack is top-first");
        assert_eq!(s.apply(LinOp::Read { key: 0 }), Some(20));
        assert_eq!(s.apply(LinOp::Remove), Some(20));

        let mut q = SeqSpec::new(StructureKind::Queue, 0);
        q.apply(upd(1, 10));
        q.apply(upd(2, 20));
        assert_eq!(q.entries(), vec![(1, 10), (2, 20)], "queue is front-first");
        assert_eq!(q.apply(LinOp::Remove), Some(10));

        let mut h = SeqSpec::new(StructureKind::Hash, 2);
        h.apply(upd(1, 10));
        h.apply(upd(3, 30)); // same bucket, newer
        h.apply(upd(2, 20));
        assert_eq!(h.entries(), vec![(2, 20), (3, 30), (1, 10)]);
        assert_eq!(h.apply(LinOp::Read { key: 3 }), Some(30));
        assert_eq!(h.apply(LinOp::Read { key: 5 }), None);
    }

    #[test]
    fn explain_finds_the_concurrent_order() {
        // Two concurrent pushes; the image shows B on top of A.
        let cands = [
            cand(upd(1, 10), true, 0, Some(4)),
            cand(upd(2, 20), true, 1, Some(5)),
        ];
        let target = [(2, 20), (1, 10)];
        let order = explain(StructureKind::Stack, 0, &cands, &target).unwrap();
        assert_eq!(order, vec![0, 1], "A then B explains B-on-top");
        // And the impossible image: both pushes landed but only B shows.
        assert!(explain(StructureKind::Stack, 0, &cands, &[(2, 20)]).is_none());
    }

    #[test]
    fn optional_ops_may_be_dropped_but_must_ops_may_not() {
        let inflight = [cand(upd(1, 10), false, 0, None)];
        assert!(explain(StructureKind::Stack, 0, &inflight, &[]).is_some());
        assert!(explain(StructureKind::Stack, 0, &inflight, &[(1, 10)]).is_some());
        let done = [cand(upd(1, 10), true, 0, Some(1))];
        assert!(explain(StructureKind::Stack, 0, &done, &[]).is_none());
    }

    #[test]
    fn real_time_order_is_respected() {
        // A returned before B was invoked, so B cannot be below A in
        // the stack image.
        let cands = [
            cand(upd(1, 10), true, 0, Some(1)),
            cand(upd(2, 20), true, 2, Some(3)),
        ];
        assert!(explain(StructureKind::Stack, 0, &cands, &[(2, 20), (1, 10)]).is_some());
        assert!(explain(StructureKind::Stack, 0, &cands, &[(1, 10), (2, 20)]).is_none());
    }

    #[test]
    fn responses_constrain_the_search() {
        // Pop returned 20: only the B-then-pop-then? order works.
        let mut pop = cand(LinOp::Remove, true, 2, Some(3));
        pop.response = Some(Some(20));
        let cands = [
            cand(upd(1, 10), true, 0, Some(1)),
            cand(upd(2, 20), false, 0, None),
            pop,
        ];
        // Image afterwards: just A => push A, push B, pop 20.
        let order = explain(StructureKind::Stack, 0, &cands, &[(1, 10)]).unwrap();
        assert_eq!(order.len(), 3);
        // If the pop had returned 10 instead, A-only is inexplicable
        // (popping 10 empties past B or contradicts real time).
        let mut pop10 = pop;
        pop10.response = Some(Some(10));
        let cands = [cands[0], cands[1], pop10];
        assert!(explain(StructureKind::Stack, 0, &cands, &[(1, 10)]).is_none());
    }
}
