//! Crash-recovery *resumption*: drive a recovered service back to
//! quiescence, resolving every pending descriptor exactly once.
//!
//! After a crash the descriptor slots partition the in-flight
//! operations:
//!
//! * **`DONE`** — the operation definitely applied (the protocol only
//!   persists `DONE` after the linearizing store is durable); nothing
//!   to do.
//! * **`PENDING` update** — the *applied-check*: the announced
//!   operation stamped its node with the globally unique
//!   `(core << 48) | seq`, so recovery scans the reachable nodes for
//!   that stamp. Found ⇒ the linearizing store landed; complete the
//!   slot. Not found ⇒ re-execute the announced operation (the pinned
//!   sequence number makes the re-execution stamp the *same* node seq,
//!   which is what keeps this exactly-once under repeated crashes).
//!   Either way the update is **promised**: after resume it must be in
//!   the structure.
//! * **`PENDING` remove** — retired without re-execution. A remove that
//!   linearized returned nothing to anyone; one that did not is simply
//!   abandoned. Both outcomes are durably linearizable (the op stays
//!   *optional* in the checker's history), so recovery declines to
//!   guess. This indeterminacy is deliberate and documented — the
//!   alternative (re-executing removes) would double-remove when the
//!   first attempt had linearized.
//!
//! The applied-check is hooked at [`SchedPoint::RecoveryScan`] so the
//! model checker can inject the *skip recovery scan* mutant: bypassing
//! the check re-executes blindly, and a crash that landed after the
//! linearizing persist then applies the update twice.

use supermem_persist::{PMem, SlotState};
use supermem_serve::schedule::{Directive, SchedPoint, Schedule};
use supermem_serve::service::{
    recover, walk, walk_nodes, RecoverError, Service, ServiceLayout, StepResult, OP_REMOVE,
};

/// Step budget for one resumed operation. Resume runs cores one at a
/// time with no interference, so a handful of steps (prepare, at most
/// one tail-help, attempt, fixup) always suffices; exceeding the budget
/// means the protocol livelocked — a checkable bug, not a panic.
const RESUME_STEP_CAP: u32 = 64;

/// What [`recover_resume`] did to bring the image to quiescence.
#[derive(Debug, Clone, Default)]
pub struct ResumeOutcome {
    /// The structure's entries after resume, canonical walk order.
    pub entries: Vec<(u64, u64)>,
    /// Cores whose pending update was re-executed.
    pub resumed: Vec<usize>,
    /// Cores whose pending update the applied-check found already in
    /// the structure (slot completed, nothing re-executed).
    pub found_applied: Vec<usize>,
    /// Cores whose pending remove was retired unresolved.
    pub retired: Vec<usize>,
}

/// Why [`recover_resume`] could not reach quiescence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResumeError {
    /// The image failed verification (corrupt descriptor or structure).
    Refused(RecoverError),
    /// A resumed operation exceeded its step budget.
    Stuck {
        /// The core whose re-execution never completed.
        core: usize,
    },
}

impl std::fmt::Display for ResumeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResumeError::Refused(e) => write!(f, "recovery refused the image: {e}"),
            ResumeError::Stuck { core } => {
                write!(f, "resumed op on core {core} never completed")
            }
        }
    }
}

impl std::error::Error for ResumeError {}

/// Recovers `mem` (a crash image) and resolves every pending
/// descriptor: applied-check + re-execute for updates, retire for
/// removes. Returns the final walked entries.
///
/// The `sched` hook sees [`SchedPoint::RecoveryScan`] before each
/// applied-check ([`Directive::Skip`] bypasses it) and every protocol
/// point of the re-executed operations.
///
/// # Errors
///
/// [`ResumeError::Refused`] when the image fails verification;
/// [`ResumeError::Stuck`] when a re-executed operation does not
/// terminate.
pub fn recover_resume<M: PMem, S: Schedule>(
    mem: &mut M,
    layout: &ServiceLayout,
    sched: &mut S,
) -> Result<ResumeOutcome, ResumeError> {
    let recovered = recover(mem, layout).map_err(ResumeError::Refused)?;
    let nodes = walk_nodes(mem, layout).map_err(|e| ResumeError::Refused(RecoverError::Walk(e)))?;
    let mut svc =
        Service::from_recovered(mem, *layout, &recovered).map_err(ResumeError::Refused)?;
    let mut out = ResumeOutcome::default();
    for view in &recovered.slots {
        if view.state != SlotState::Pending {
            continue;
        }
        let core = view.slot;
        if view.rec.op == OP_REMOVE {
            layout.slots.retire(mem, core);
            out.retired.push(core);
            continue;
        }
        let stamp = ((core as u64) << 48) | view.rec.seq;
        let checked = sched.at(core, SchedPoint::RecoveryScan { slot: core }) != Directive::Skip;
        if checked {
            if let Some(n) = nodes.iter().find(|n| n.seq == stamp) {
                // The linearizing store landed before the crash: the
                // update is applied; only the completion was lost.
                layout.slots.complete(mem, core, n.addr);
                out.found_applied.push(core);
                continue;
            }
        }
        svc.resume_op(core, view);
        let mut steps = 0u32;
        loop {
            if let StepResult::Done { .. } = svc.step_with(mem, core, sched) {
                break;
            }
            steps += 1;
            if steps > RESUME_STEP_CAP {
                return Err(ResumeError::Stuck { core });
            }
        }
        out.resumed.push(core);
    }
    out.entries = walk(mem, layout).map_err(|e| ResumeError::Refused(RecoverError::Walk(e)))?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::ModelMem;
    use supermem_persist::VecMem;
    use supermem_serve::schedule::DetachedSchedule;
    use supermem_serve::service::StructureKind;
    use supermem_serve::traffic::{ReqKind, Request};

    const BASE: u64 = 0x1000;
    const LEN: u64 = 1 << 13;

    fn upd(key: u64, value: u64) -> Request {
        Request {
            at: 0,
            kind: ReqKind::Update,
            key,
            value,
        }
    }

    #[test]
    fn quiescent_image_resumes_to_its_own_entries() {
        let mut mem = VecMem::new();
        let mut svc = Service::new(&mut mem, StructureKind::Stack, BASE, LEN, 2, 0);
        for i in 1..=3u64 {
            svc.start_op(&mut mem, 0, &upd(i, i * 10));
            while svc.step(&mut mem, 0) == StepResult::InFlight {}
        }
        let out = recover_resume(&mut mem, &svc.layout(), &mut DetachedSchedule).unwrap();
        assert_eq!(out.entries, vec![(3, 30), (2, 20), (1, 10)]);
        assert!(out.resumed.is_empty() && out.retired.is_empty());
    }

    #[test]
    fn pending_update_is_re_executed_exactly_once() {
        // Crash right after the announce persist: the update must
        // appear after resume, exactly once.
        let mut mem = ModelMem::new(1);
        let mut svc = Service::new(&mut mem, StructureKind::Stack, BASE, LEN, 1, 0);
        mem.mark_epoch();
        mem.begin_action(1, 0);
        svc.start_op(&mut mem, 0, &upd(7, 70)); // persist 1: announce
        assert_eq!(mem.persist_count(), 1);
        let mut crash = ModelMem::from_image(mem.durable_image_after(1), 1);
        let out = recover_resume(&mut crash, &svc.layout(), &mut DetachedSchedule).unwrap();
        assert_eq!(out.entries, vec![(7, 70)]);
        assert_eq!(out.resumed, vec![0]);
    }

    #[test]
    fn applied_check_stops_a_double_apply() {
        // Crash after the linearizing persist but before completion:
        // the applied-check must find the stamped node and not push a
        // second copy.
        let mut mem = ModelMem::new(1);
        let mut svc = Service::new(&mut mem, StructureKind::Stack, BASE, LEN, 1, 0);
        mem.mark_epoch();
        mem.begin_action(1, 0);
        svc.start_op(&mut mem, 0, &upd(7, 70)); // persist 1: announce
        mem.begin_action(2, 0);
        svc.step(&mut mem, 0); // persist 2: node
        mem.begin_action(3, 0);
        svc.step(&mut mem, 0); // persist 3: head, persist 4: complete
        assert_eq!(mem.persist_count(), 4);
        let mut crash = ModelMem::from_image(mem.durable_image_after(3), 1);
        let out = recover_resume(&mut crash, &svc.layout(), &mut DetachedSchedule).unwrap();
        assert_eq!(out.entries, vec![(7, 70)], "exactly one copy");
        assert_eq!(out.found_applied, vec![0]);
        assert!(out.resumed.is_empty());
    }

    #[test]
    fn pending_remove_is_retired_not_re_executed() {
        let mut mem = ModelMem::new(1);
        let mut svc = Service::new(&mut mem, StructureKind::Stack, BASE, LEN, 1, 0);
        for i in 1..=2u64 {
            svc.start_op(&mut mem, 0, &upd(i, i * 10));
            while svc.step(&mut mem, 0) == StepResult::InFlight {}
        }
        mem.mark_epoch();
        mem.begin_action(1, 0);
        let pop = Request {
            at: 0,
            kind: ReqKind::Remove,
            key: 0,
            value: 0,
        };
        svc.start_op(&mut mem, 0, &pop); // persist 1: announce
        let mut crash = ModelMem::from_image(mem.durable_image_after(1), 1);
        let out = recover_resume(&mut crash, &svc.layout(), &mut DetachedSchedule).unwrap();
        assert_eq!(out.retired, vec![0]);
        assert_eq!(out.entries.len(), 2, "the un-attempted pop removed nothing");
    }
}
