//! The model checker's memory: an exact persistence model with a
//! persist log and per-core coherence.
//!
//! [`ModelMem`] implements [`PMem`] with two images:
//!
//! * the **volatile** image — what loads observe (modulo per-core
//!   caches, below);
//! * the **durable** image — what a crash preserves. `clwb` marks
//!   lines; `sfence` commits every marked line to the durable image
//!   *and appends one [`PersistEntry`] to the persist log* recording
//!   exactly which line values became durable.
//!
//! The log is what makes crash exploration cheap: one execution of a
//! schedule yields *every* crash image — replay the log prefix up to
//! persist `k` over the epoch-base snapshot. (No spontaneous eviction
//! is modeled; the serving protocol persists every store immediately,
//! so its durable image is exact. Eviction-racing bugs are the torture
//! harness's department.)
//!
//! Coherence is modeled with per-core caches: a load fills the reading
//! core's cache, a store updates the volatile image and the writing
//! core's cache and — unless the *drop-invalidation* mutation is armed
//! — invalidates the line in every other core's cache. Healthy
//! execution therefore behaves exactly like a single shared image; the
//! mutation makes stale reads (lost updates) expressible.

use std::collections::{BTreeMap, BTreeSet};

use supermem_persist::PMem;

/// One 64-byte line image.
pub type Line = [u8; 64];

/// One `sfence` that made lines durable: the action (schedule index)
/// it happened in and the line values that became durable.
#[derive(Debug, Clone)]
pub struct PersistEntry {
    /// Index of the schedule action this persist ran inside.
    pub action: u64,
    /// `(line address, durable bytes)` for every line committed.
    pub lines: Vec<(u64, Line)>,
}

/// Exact-persistence, coherence-modeled memory for model checking.
#[derive(Debug, Clone)]
pub struct ModelMem {
    volatile: BTreeMap<u64, Line>,
    durable: BTreeMap<u64, Line>,
    /// Lines `clwb`-marked since the last `sfence`.
    marked: BTreeSet<u64>,
    log: Vec<PersistEntry>,
    /// Durable snapshot at [`mark_epoch`](ModelMem::mark_epoch).
    epoch_base: BTreeMap<u64, Line>,
    /// Log length at the epoch mark.
    epoch_log: usize,
    caches: Vec<BTreeMap<u64, Line>>,
    core: usize,
    drop_invalidation: bool,
    action: u64,
    touched: BTreeSet<u64>,
}

impl ModelMem {
    /// An all-zero memory serving `cores` cores (core 0 active).
    pub fn new(cores: usize) -> Self {
        Self {
            volatile: BTreeMap::new(),
            durable: BTreeMap::new(),
            marked: BTreeSet::new(),
            log: Vec::new(),
            epoch_base: BTreeMap::new(),
            epoch_log: 0,
            caches: vec![BTreeMap::new(); cores.max(1)],
            core: 0,
            drop_invalidation: false,
            action: 0,
            touched: BTreeSet::new(),
        }
    }

    /// A memory whose volatile *and* durable images both equal `image`
    /// — a machine rebooting into a crash image (caches cold).
    pub fn from_image(image: BTreeMap<u64, Line>, cores: usize) -> Self {
        Self {
            volatile: image.clone(),
            durable: image,
            ..Self::new(cores)
        }
    }

    /// Selects the core whose cache subsequent accesses use.
    pub fn set_core(&mut self, core: usize) {
        assert!(core < self.caches.len(), "core {core} out of range");
        self.core = core;
    }

    /// Arms the *drop cross-core invalidation* mutation: stores stop
    /// invalidating other cores' cached lines.
    pub fn set_drop_invalidation(&mut self, drop: bool) {
        self.drop_invalidation = drop;
    }

    /// Starts one schedule action for `core`: persists logged from here
    /// carry `action`, and the footprint resets.
    pub fn begin_action(&mut self, action: u64, core: usize) {
        self.set_core(core);
        self.action = action;
        self.touched.clear();
    }

    /// Lines read or written since [`begin_action`], for independence
    /// checks.
    ///
    /// [`begin_action`]: ModelMem::begin_action
    pub fn take_footprint(&mut self) -> BTreeSet<u64> {
        std::mem::take(&mut self.touched)
    }

    /// Marks the start of the measured epoch: crash points count from
    /// here, over the current durable image.
    pub fn mark_epoch(&mut self) {
        assert!(self.marked.is_empty(), "epoch marked with pending clwbs");
        self.epoch_base = self.durable.clone();
        self.epoch_log = self.log.len();
    }

    /// Number of persists (non-empty `sfence`s) since the epoch mark.
    pub fn persist_count(&self) -> usize {
        self.log.len() - self.epoch_log
    }

    /// The action index the `k`-th post-epoch persist ran inside
    /// (1-based `k`).
    pub fn persist_action(&self, k: usize) -> u64 {
        assert!(
            k >= 1 && k <= self.persist_count(),
            "persist {k} out of range"
        );
        self.log[self.epoch_log + k - 1].action
    }

    /// The durable image after the `k`-th post-epoch persist (`k == 0`
    /// is the epoch-base image; `k == persist_count()` the final one).
    pub fn durable_image_after(&self, k: usize) -> BTreeMap<u64, Line> {
        assert!(k <= self.persist_count(), "persist {k} out of range");
        let mut image = self.epoch_base.clone();
        for entry in &self.log[self.epoch_log..self.epoch_log + k] {
            for &(addr, line) in &entry.lines {
                image.insert(addr, line);
            }
        }
        image
    }

    /// Reads the line through the current core's cache, filling on
    /// miss.
    fn load_line(&mut self, line: u64) -> Line {
        if let Some(&cached) = self.caches[self.core].get(&line) {
            return cached;
        }
        let fresh = self.volatile.get(&line).copied().unwrap_or([0; 64]);
        self.caches[self.core].insert(line, fresh);
        fresh
    }
}

impl PMem for ModelMem {
    fn read(&mut self, addr: u64, buf: &mut [u8]) {
        let mut off = 0usize;
        let mut a = addr;
        while off < buf.len() {
            let line = a & !63;
            let lo = (a - line) as usize;
            let n = (64 - lo).min(buf.len() - off);
            let src = self.load_line(line);
            buf[off..off + n].copy_from_slice(&src[lo..lo + n]);
            self.touched.insert(line);
            off += n;
            a += n as u64;
        }
    }

    fn write(&mut self, addr: u64, bytes: &[u8]) {
        let mut off = 0usize;
        let mut a = addr;
        while off < bytes.len() {
            let line = a & !63;
            let lo = (a - line) as usize;
            let n = (64 - lo).min(bytes.len() - off);
            let mut cur = self.volatile.get(&line).copied().unwrap_or([0; 64]);
            cur[lo..lo + n].copy_from_slice(&bytes[off..off + n]);
            self.volatile.insert(line, cur);
            self.caches[self.core].insert(line, cur);
            if !self.drop_invalidation {
                for (c, cache) in self.caches.iter_mut().enumerate() {
                    if c != self.core {
                        cache.remove(&line);
                    }
                }
            }
            self.touched.insert(line);
            off += n;
            a += n as u64;
        }
    }

    fn clwb(&mut self, addr: u64, len: u64) {
        let mut line = addr & !63;
        while line < addr + len.max(1) {
            self.marked.insert(line);
            line += 64;
        }
    }

    fn sfence(&mut self) {
        if self.marked.is_empty() {
            return;
        }
        let lines: Vec<(u64, Line)> = std::mem::take(&mut self.marked)
            .into_iter()
            .map(|l| (l, self.volatile.get(&l).copied().unwrap_or([0; 64])))
            .collect();
        for &(addr, line) in &lines {
            self.durable.insert(addr, line);
        }
        self.log.push(PersistEntry {
            action: self.action,
            lines,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unpersisted_stores_do_not_reach_the_durable_image() {
        let mut m = ModelMem::new(1);
        m.mark_epoch();
        m.write_u64(0x1000, 7);
        assert_eq!(m.persist_count(), 0);
        let img = m.durable_image_after(0);
        assert!(!img.contains_key(&0x1000));
        m.clwb(0x1000, 8);
        m.sfence();
        assert_eq!(m.persist_count(), 1);
        let img = m.durable_image_after(1);
        assert_eq!(u64::from_le_bytes(img[&0x1000][..8].try_into().unwrap()), 7);
    }

    #[test]
    fn persist_log_replays_prefix_images() {
        let mut m = ModelMem::new(1);
        m.mark_epoch();
        for (i, v) in [(0u64, 10u64), (1, 20), (0, 30)] {
            m.begin_action(i + v, 0); // arbitrary distinct action tags
            m.write_u64(0x2000 + i * 8, v);
            m.clwb(0x2000 + i * 8, 8);
            m.sfence();
        }
        let at = |img: &BTreeMap<u64, Line>, off: usize| {
            u64::from_le_bytes(img[&0x2000][off..off + 8].try_into().unwrap())
        };
        let img1 = m.durable_image_after(1);
        assert_eq!(at(&img1, 0), 10);
        let img3 = m.durable_image_after(3);
        assert_eq!(at(&img3, 0), 30);
        assert_eq!(at(&img3, 8), 20);
    }

    #[test]
    fn empty_sfence_logs_nothing() {
        let mut m = ModelMem::new(1);
        m.mark_epoch();
        m.sfence();
        m.sfence();
        assert_eq!(m.persist_count(), 0);
    }

    #[test]
    fn dropped_invalidation_serves_stale_reads() {
        let mut m = ModelMem::new(2);
        m.set_core(1);
        assert_eq!(m.read_u64(0x3000), 0); // core 1 caches the line
        m.set_core(0);
        m.write_u64(0x3000, 42);
        m.set_core(1);
        assert_eq!(m.read_u64(0x3000), 42, "coherent read sees the store");

        let mut m = ModelMem::new(2);
        m.set_drop_invalidation(true);
        m.set_core(1);
        assert_eq!(m.read_u64(0x3000), 0);
        m.set_core(0);
        m.write_u64(0x3000, 42);
        m.set_core(1);
        assert_eq!(m.read_u64(0x3000), 0, "stale cache survives the store");
        m.set_core(0);
        assert_eq!(m.read_u64(0x3000), 42, "writer sees its own store");
    }

    #[test]
    fn from_image_reboots_with_cold_caches() {
        let mut m = ModelMem::new(2);
        m.mark_epoch();
        m.write_u64(0x4000, 9);
        m.clwb(0x4000, 8);
        m.sfence();
        let mut r = ModelMem::from_image(m.durable_image_after(1), 2);
        assert_eq!(r.read_u64(0x4000), 9);
        assert_eq!(r.persist_count(), 0);
    }
}
