//! `supermem-lincheck`: a durable-linearizability model checker for
//! the serving protocols.
//!
//! The serving engine's torture harness samples crash images under
//! random faults; the invariant checker proves per-component algebra.
//! This crate closes the remaining gap: **interleavings**. It takes
//! control of core scheduling through the [`Schedule`] hook that
//! `supermem-serve` exposes at every shared-memory protocol point,
//! exhaustively enumerates every interleaving of a small multi-core
//! program, injects a crash after every persist and every action of
//! every interleaving, and checks each crash image for *durable
//! linearizability* — the recovered state must be explained by a legal
//! sequential history that contains every operation the protocol
//! promised (returned to its client, durably completed, or promised by
//! recovery) and respects real-time order.
//!
//! * [`mem`] — [`ModelMem`]: an exact persistence model (volatile vs
//!   durable image, persist log, per-core coherence) so one execution
//!   yields every crash image;
//! * [`spec`] — sequential specifications and the WGL-style
//!   linearization search ([`explain`]);
//! * [`recovery`] — [`recover_resume`]: drives a recovered image to
//!   quiescence, resolving pending descriptors exactly once;
//! * [`explore`] — the exhaustive DFS with optional sleep-set
//!   reduction, crash-point checking, and the [`Mutant`] catalog of
//!   injected protocol bugs;
//! * [`shrink`] — reduces a violating configuration to a minimal,
//!   replayable [`Repro`].
//!
//! # Examples
//!
//! ```
//! use supermem_lincheck::{lincheck, LincheckConfig, Mutant};
//! use supermem_serve::service::StructureKind;
//!
//! // The healthy protocol survives every interleaving and crash.
//! let cfg = LincheckConfig::mixed(StructureKind::Stack, 2, 2);
//! assert!(lincheck(&cfg).violation.is_none());
//!
//! // A wounded protocol does not.
//! let mut bad = cfg.clone();
//! bad.mutant = Some(Mutant::SkipLinearize);
//! assert!(lincheck(&bad).violation.is_some());
//! ```
//!
//! [`Schedule`]: supermem_serve::schedule::Schedule

#![warn(missing_docs)]

pub mod explore;
pub mod mem;
pub mod recovery;
pub mod shrink;
pub mod spec;

pub use explore::{
    lincheck, lincheck_minimal, CheckPhase, CrashMode, CrashPoint, LincheckConfig, LincheckReport,
    LincheckStats, Mutant, MutantHook, Violation,
};
pub use mem::{Line, ModelMem, PersistEntry};
pub use recovery::{recover_resume, ResumeError, ResumeOutcome};
pub use shrink::{find_minimal, Repro};
pub use spec::{explain, Candidate, LinOp, SeqSpec};
