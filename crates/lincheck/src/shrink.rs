//! Reproducer shrinking: reduce a violating configuration to a minimal
//! program, schedule, and crash point.
//!
//! The shrinker is delta-debugging over the *configuration* followed by
//! a minimality pass over the *exploration*:
//!
//! 1. drop one operation at a time, keeping any drop that still
//!    violates, until no single drop does (a 1-minimal program);
//! 2. drop cores whose programs emptied;
//! 3. re-explore the reduced configuration exhaustively and keep the
//!    minimal violation — shortest schedule, then fewest context
//!    switches, then earliest crash point.
//!
//! Shrinking always runs the full exhaustive search (no sleep-set
//! reduction): reduced configurations are tiny, and minimality claims
//! should not inherit the reduction's crash-ordering blind spot.

use supermem_serve::service::StructureKind;

use crate::explore::{lincheck, lincheck_minimal, LincheckConfig, Violation};
use crate::spec::LinOp;

/// A minimal, replayable witness of a violation.
#[derive(Debug, Clone)]
pub struct Repro {
    /// Structure under test.
    pub structure: StructureKind,
    /// Hash bucket count (hash only).
    pub nbuckets: u64,
    /// The 1-minimal per-core programs.
    pub programs: Vec<Vec<LinOp>>,
    /// The minimal violation within those programs.
    pub violation: Violation,
}

impl Repro {
    /// One-line replayable summary, e.g.
    /// `stack c0=[u1=257] :: schedule [0,0,0], crash after persist 3,
    /// phase durable-state: ...`.
    pub fn summary(&self) -> String {
        let progs: Vec<String> = self
            .programs
            .iter()
            .enumerate()
            .map(|(c, ops)| {
                let labels: Vec<String> = ops.iter().map(|o| o.label()).collect();
                format!("c{c}=[{}]", labels.join(","))
            })
            .collect();
        format!(
            "{} {} :: {}",
            self.structure,
            progs.join(" "),
            self.violation
        )
    }
}

/// Shrinks `cfg` to a minimal reproducer, or `None` when the
/// configuration has no violation to begin with.
pub fn find_minimal(cfg: &LincheckConfig) -> Option<Repro> {
    let mut cur = cfg.clone();
    cur.reduce = false;
    lincheck(&cur).violation.as_ref()?;
    // 1-minimal programs: retry from the top after every successful
    // drop so earlier ops get reconsidered.
    loop {
        let mut dropped = false;
        'drops: for core in 0..cur.programs.len() {
            for i in 0..cur.programs[core].len() {
                let mut cand = cur.clone();
                cand.programs[core].remove(i);
                if cand.total_ops() > 0 && lincheck(&cand).violation.is_some() {
                    cur = cand;
                    dropped = true;
                    break 'drops;
                }
            }
        }
        if !dropped {
            break;
        }
    }
    // Drop emptied cores (re-verifying: the core count changes the
    // layout, so the violation must be re-established).
    let mut trimmed = cur.clone();
    trimmed.programs.retain(|p| !p.is_empty());
    if !trimmed.programs.is_empty() && lincheck(&trimmed).violation.is_some() {
        cur = trimmed;
    }
    let minimal = lincheck_minimal(&cur).violation?;
    Some(Repro {
        structure: cur.structure,
        nbuckets: cur.nbuckets,
        programs: cur.programs,
        violation: minimal,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{CrashMode, Mutant};

    #[test]
    fn healthy_config_has_nothing_to_shrink() {
        let cfg = LincheckConfig::mixed(StructureKind::Stack, 2, 2);
        assert!(find_minimal(&cfg).is_none());
    }

    #[test]
    fn skip_linearize_shrinks_to_one_push() {
        let mut cfg = LincheckConfig::mixed(StructureKind::Stack, 2, 3);
        cfg.mutant = Some(Mutant::SkipLinearize);
        cfg.crash = CrashMode::All;
        let repro = find_minimal(&cfg).expect("mutant must reproduce");
        assert_eq!(repro.programs.iter().map(Vec::len).sum::<usize>(), 1);
        assert_eq!(repro.programs.len(), 1, "one core suffices");
        assert!(
            matches!(repro.programs[0][0], LinOp::Update { .. }),
            "{}",
            repro.summary()
        );
    }
}
