//! Exhaustive schedule and crash exploration over the serving
//! protocols.
//!
//! The explorer owns the outer loop the engine normally owns: it
//! chooses which core acts at every step, so a depth-first search over
//! those choices enumerates *every* interleaving of a small program
//! (2–3 cores, 2–4 operations). One execution of a schedule yields
//! every crash image for free — [`ModelMem`] logs each persist — so
//! each complete schedule is checked at every crash point:
//!
//! * **after each persist** (mid-action: the acting operation has not
//!   returned, but the persist is durable), and
//! * **after each action** (the durable image is whatever persists have
//!   landed; everything the action returned has returned).
//!
//! Every crash point goes through three phases: *Recovery* (the image
//! must verify), *DurableState* (the recovered entries must be
//! durably-linearizable — see [`explain`]), and *Resume*
//! ([`recover_resume`] resolves pending descriptors, promising pending
//! updates, and the post-resume entries are re-checked with those
//! promises forced). Crash points with identical durable image and
//! per-op status are deduplicated.
//!
//! An optional sleep-set reduction ([`LincheckConfig::reduce`]) prunes
//! schedules that only commute independent actions. It is *opt-in*
//! because two line-disjoint persists are still ordered in the persist
//! log — commuting them permutes the reachable crash images — so the
//! default is the full exhaustive search and the reduction is a faster
//! pre-filter with a documented blind spot.
//!
//! Four [`Mutant`]s wound the protocol through the [`Schedule`] hook
//! (or the memory model), each representing a real crash-consistency
//! bug class the checker must catch.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeSet, HashSet};
use std::hash::{Hash, Hasher};

use supermem_persist::SlotState;
use supermem_serve::schedule::{Directive, SchedPoint, Schedule};
use supermem_serve::service::{recover, Service, StepResult, StructureKind};
use supermem_serve::traffic::{ReqKind, Request};

use crate::mem::ModelMem;
use crate::recovery::{recover_resume, ResumeError};
use crate::spec::{explain, Candidate, LinOp};

/// Service base address inside the model memory.
const BASE: u64 = 0x1000;
/// Region length: metadata + slots + dozens of node lines — far more
/// than any checkable configuration allocates.
const REGION: u64 = 1 << 13;

/// A protocol wound the checker must detect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutant {
    /// The linearizing pointer store is not persisted (volatile-only
    /// publication): a completed op can vanish in a crash.
    SkipLinearize,
    /// The completion record is persisted *before* the linearizing
    /// store: a crash between them forces an op whose effect is gone.
    CompleteBeforeLinearize,
    /// Stores stop invalidating other cores' cached lines: a CAS can
    /// win against a stale read and overwrite a concurrent publication.
    DropInvalidation,
    /// Recovery re-executes pending updates without the applied-check:
    /// an update whose linearizing store landed is applied twice.
    SkipRecoveryScan,
}

impl Mutant {
    /// Every mutant, in display order.
    pub const ALL: [Mutant; 4] = [
        Mutant::SkipLinearize,
        Mutant::CompleteBeforeLinearize,
        Mutant::DropInvalidation,
        Mutant::SkipRecoveryScan,
    ];

    /// Stable CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            Mutant::SkipLinearize => "skip-linearize",
            Mutant::CompleteBeforeLinearize => "complete-first",
            Mutant::DropInvalidation => "drop-invalidate",
            Mutant::SkipRecoveryScan => "skip-scan",
        }
    }

    /// Parses the CLI spelling.
    pub fn parse(s: &str) -> Option<Self> {
        Mutant::ALL
            .into_iter()
            .find(|m| m.name() == s.to_ascii_lowercase())
    }
}

impl std::fmt::Display for Mutant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The [`Schedule`] hook that injects a mutant's directives (and
/// otherwise behaves exactly like the detached hook).
/// [`Mutant::DropInvalidation`] is armed on [`ModelMem`] instead.
#[derive(Debug, Clone, Copy)]
pub struct MutantHook {
    /// The armed mutant, if any.
    pub mutant: Option<Mutant>,
}

impl Schedule for MutantHook {
    fn at(&mut self, _core: usize, point: SchedPoint) -> Directive {
        match (self.mutant, point) {
            (Some(Mutant::SkipLinearize), SchedPoint::Linearize) => Directive::SkipPersist,
            (Some(Mutant::CompleteBeforeLinearize), SchedPoint::Linearize) => {
                Directive::CompleteFirst
            }
            (Some(Mutant::SkipRecoveryScan), SchedPoint::RecoveryScan { .. }) => Directive::Skip,
            _ => Directive::Run,
        }
    }
}

/// Which crash points to check per schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashMode {
    /// After every persist and every action (the full campaign).
    All,
    /// Only the dirty shutdown at quiescence (crash exploration off).
    Final,
    /// Only immediately after the `k`-th persist (1-based) — replaying
    /// one reproducer point.
    AfterPersist(u64),
}

/// Where a checked crash landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Mid-action, immediately after the `k`-th persist (1-based)
    /// became durable.
    AfterPersist(u64),
    /// At the boundary after action `a` (1-based) completed.
    AfterAction(u64),
}

impl std::fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CrashPoint::AfterPersist(k) => write!(f, "after persist {k}"),
            CrashPoint::AfterAction(a) => write!(f, "after action {a}"),
        }
    }
}

/// Which phase of a crash-point check failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckPhase {
    /// The crash image failed verification (corrupt slot or walk).
    Recovery,
    /// The recovered entries are not durably linearizable.
    DurableState,
    /// The post-resume entries are not durably linearizable with the
    /// resume promises forced.
    Resume,
    /// Execution or resume did not terminate within its budget.
    Stuck,
}

impl CheckPhase {
    /// Stable display spelling.
    pub fn name(self) -> &'static str {
        match self {
            CheckPhase::Recovery => "recovery",
            CheckPhase::DurableState => "durable-state",
            CheckPhase::Resume => "resume",
            CheckPhase::Stuck => "stuck",
        }
    }
}

impl std::fmt::Display for CheckPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One durable-linearizability violation, pinned to a schedule and a
/// crash point.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The core sequence that produced it.
    pub schedule: Vec<usize>,
    /// Where the crash landed (`None` when the schedule itself got
    /// stuck before quiescing).
    pub crash: Option<CrashPoint>,
    /// The failing phase.
    pub phase: CheckPhase,
    /// Human-readable description of the inconsistency.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sched: Vec<String> = self.schedule.iter().map(ToString::to_string).collect();
        write!(f, "schedule [{}]", sched.join(","))?;
        if let Some(crash) = self.crash {
            write!(f, ", crash {crash}")?;
        }
        write!(f, ", phase {}: {}", self.phase, self.detail)
    }
}

/// Exploration counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct LincheckStats {
    /// Complete schedules executed.
    pub schedules: u64,
    /// Crash points checked (before dedup).
    pub crash_points: u64,
    /// Crash points skipped as duplicates of an identical
    /// (image, status) pair.
    pub dedup_hits: u64,
    /// Branches pruned by the sleep-set reduction.
    pub sleep_pruned: u64,
    /// Longest schedule seen.
    pub max_actions_seen: u64,
}

/// The verdict of one exploration.
#[derive(Debug, Clone)]
pub struct LincheckReport {
    /// Exploration counters.
    pub stats: LincheckStats,
    /// The violation found, if any (`None` ⇒ every explored crash point
    /// is durably linearizable).
    pub violation: Option<Violation>,
}

/// One checkable configuration.
#[derive(Debug, Clone)]
pub struct LincheckConfig {
    /// Structure under test.
    pub structure: StructureKind,
    /// Hash bucket count (hash only).
    pub nbuckets: u64,
    /// Per-core operation programs; `programs.len()` is the core count.
    pub programs: Vec<Vec<LinOp>>,
    /// Crash points to check.
    pub crash: CrashMode,
    /// Arm the sleep-set reduction (see the module docs for its blind
    /// spot; the default exhaustive search has none).
    pub reduce: bool,
    /// Protocol wound to inject, if any.
    pub mutant: Option<Mutant>,
    /// Abort a schedule exceeding this many actions as [`CheckPhase::Stuck`].
    pub max_actions: u64,
}

impl LincheckConfig {
    /// The standard mixed program: `ops` operations dealt round-robin
    /// to `cores` cores — every third op a remove (where the structure
    /// supports one), the rest updates with distinct values. Hash keys
    /// cycle `1, 3, 2, …` so consecutive ops (which land on different
    /// cores) contend for the same bucket — round-robin `j + 1` keys
    /// would give each core its own bucket parity and no cross-core
    /// conflict at all.
    pub fn mixed(structure: StructureKind, cores: usize, ops: usize) -> Self {
        assert!(cores > 0, "a config needs at least one core");
        let mut programs = vec![Vec::new(); cores];
        for j in 0..ops {
            let j64 = j as u64;
            let op = if j % 3 == 2 && structure != StructureKind::Hash {
                LinOp::Remove
            } else {
                LinOp::Update {
                    key: if structure == StructureKind::Hash {
                        (j64 * 2) % 3 + 1
                    } else {
                        j64 + 1
                    },
                    value: 0x101 * (j64 + 1),
                }
            };
            programs[j % cores].push(op);
        }
        Self {
            structure,
            nbuckets: 2,
            programs,
            crash: CrashMode::All,
            reduce: false,
            mutant: None,
            max_actions: 96,
        }
    }

    /// Total operations across all cores.
    pub fn total_ops(&self) -> usize {
        self.programs.iter().map(Vec::len).sum()
    }
}

fn to_request(op: LinOp) -> Request {
    match op {
        LinOp::Update { key, value } => Request {
            at: 0,
            kind: ReqKind::Update,
            key,
            value,
        },
        LinOp::Remove => Request {
            at: 0,
            kind: ReqKind::Remove,
            key: 0,
            value: 0,
        },
        LinOp::Read { key } => Request {
            at: 0,
            kind: ReqKind::Read,
            key,
            value: 0,
        },
    }
}

/// One invoked operation's observable history in an execution.
#[derive(Debug, Clone, Copy)]
struct OpRec {
    core: usize,
    op: LinOp,
    /// The per-core sequence number its announce carried.
    seq: u64,
    /// Action index of its invocation (1-based).
    inv: u64,
    /// Action index of its return, once done.
    ret: Option<u64>,
    /// The response the client saw, once done: the outer `Option` is
    /// "has it returned", the inner is the operation's own result type
    /// (`pop`/`get` legitimately answer `None`).
    #[allow(clippy::option_option)]
    result: Option<Option<u64>>,
}

/// One point of the depth-first search: a partial execution.
#[derive(Clone)]
struct ExecState {
    mem: ModelMem,
    svc: Service,
    /// Per-core next program index.
    next: Vec<usize>,
    /// Per-core count of started ops (mirrors the service seq counter).
    started: Vec<u64>,
    /// Per-core in-flight op (index into `ops`).
    inflight: Vec<Option<usize>>,
    ops: Vec<OpRec>,
    action: u64,
    schedule: Vec<usize>,
}

impl ExecState {
    fn new(cfg: &LincheckConfig) -> Self {
        let cores = cfg.programs.len();
        let mut mem = ModelMem::new(cores);
        if cfg.mutant == Some(Mutant::DropInvalidation) {
            mem.set_drop_invalidation(true);
        }
        let mut svc = Service::new(&mut mem, cfg.structure, BASE, REGION, cores, cfg.nbuckets);
        // The explorer's oracle is the durable-linearizability check;
        // the inline shadow asserts would fire first under mutants.
        svc.set_strict(false);
        mem.mark_epoch();
        Self {
            mem,
            svc,
            next: vec![0; cores],
            started: vec![0; cores],
            inflight: vec![None; cores],
            ops: Vec::new(),
            action: 0,
            schedule: Vec::new(),
        }
    }

    fn runnable(&self, cfg: &LincheckConfig, core: usize) -> bool {
        self.inflight[core].is_some() || self.next[core] < cfg.programs[core].len()
    }

    /// Executes one action for `core` (admit its next op, or advance
    /// its in-flight one) and returns the lines the action touched.
    fn advance(
        &mut self,
        cfg: &LincheckConfig,
        core: usize,
        hook: &mut MutantHook,
    ) -> BTreeSet<u64> {
        self.action += 1;
        self.schedule.push(core);
        self.mem.begin_action(self.action, core);
        if let Some(opi) = self.inflight[core] {
            if let StepResult::Done { result } = self.svc.step_with(&mut self.mem, core, hook) {
                self.ops[opi].ret = Some(self.action);
                self.ops[opi].result = Some(result);
                self.inflight[core] = None;
            }
        } else {
            let op = cfg.programs[core][self.next[core]];
            self.next[core] += 1;
            self.started[core] += 1;
            let opi = self.ops.len();
            self.ops.push(OpRec {
                core,
                op,
                seq: self.started[core],
                inv: self.action,
                ret: None,
                result: None,
            });
            self.inflight[core] = Some(opi);
            self.svc
                .start_op_with(&mut self.mem, core, &to_request(op), hook);
        }
        self.mem.take_footprint()
    }
}

/// A violation's minimality key: shorter schedules first, then fewer
/// context switches, then the earlier crash point.
type ViolKey = (usize, usize, u64);

fn viol_key(v: &Violation, ordinal: u64) -> ViolKey {
    let switches = v.schedule.windows(2).filter(|w| w[0] != w[1]).count();
    (v.schedule.len(), switches, ordinal)
}

struct Explorer<'a> {
    cfg: &'a LincheckConfig,
    hook: MutantHook,
    seen: HashSet<u64>,
    stats: LincheckStats,
    /// Collect mode: keep the minimal violation instead of stopping.
    collect: bool,
    found: Option<(ViolKey, Violation)>,
}

impl Explorer<'_> {
    /// Records a violation; returns `true` when the search should stop.
    fn violate(&mut self, v: Violation, ordinal: u64) -> bool {
        let key = viol_key(&v, ordinal);
        if self.found.as_ref().is_none_or(|(best, _)| key < *best) {
            self.found = Some((key, v));
        }
        !self.collect
    }

    fn dfs(&mut self, state: &ExecState, sleep: Vec<(usize, BTreeSet<u64>)>) -> bool {
        let cores = self.cfg.programs.len();
        let runnable: Vec<usize> = (0..cores)
            .filter(|&c| state.runnable(self.cfg, c))
            .collect();
        if runnable.is_empty() {
            return self.check_complete(state);
        }
        if state.action >= self.cfg.max_actions {
            let v = Violation {
                schedule: state.schedule.clone(),
                crash: None,
                phase: CheckPhase::Stuck,
                detail: format!(
                    "schedule exceeded {} actions without quiescing",
                    self.cfg.max_actions
                ),
            };
            return self.violate(v, 0);
        }
        let mut sleep = sleep;
        for core in runnable {
            if sleep.iter().any(|&(c, _)| c == core) {
                self.stats.sleep_pruned += 1;
                continue;
            }
            let mut child = state.clone();
            let footprint = child.advance(self.cfg, core, &mut self.hook);
            // A sleeping entry stays asleep only while the executed
            // actions remain line-disjoint from its profiled footprint
            // (a dependent action invalidates the commutation argument).
            let child_sleep = if self.cfg.reduce {
                sleep
                    .iter()
                    .filter(|(_, fp)| fp.is_disjoint(&footprint))
                    .cloned()
                    .collect()
            } else {
                Vec::new()
            };
            if self.dfs(&child, child_sleep) {
                return true;
            }
            if self.cfg.reduce {
                sleep.push((core, footprint));
            }
        }
        false
    }

    /// Checks every crash point of a complete schedule.
    fn check_complete(&mut self, state: &ExecState) -> bool {
        self.stats.schedules += 1;
        self.stats.max_actions_seen = self.stats.max_actions_seen.max(state.action);
        let n = state.mem.persist_count() as u64;
        let total = state.action;
        let points: Vec<CrashPoint> = match self.cfg.crash {
            CrashMode::Final => vec![CrashPoint::AfterAction(total)],
            CrashMode::AfterPersist(k) if (1..=n).contains(&k) => {
                vec![CrashPoint::AfterPersist(k)]
            }
            CrashMode::AfterPersist(_) => Vec::new(),
            CrashMode::All => {
                let mut pts = Vec::new();
                let mut k = 1u64;
                for a in 1..=total {
                    while k <= n && state.mem.persist_action(k as usize) == a {
                        pts.push(CrashPoint::AfterPersist(k));
                        k += 1;
                    }
                    pts.push(CrashPoint::AfterAction(a));
                }
                pts
            }
        };
        for (ordinal, pt) in points.into_iter().enumerate() {
            if self.check_crash(state, pt, ordinal as u64) {
                return true;
            }
        }
        false
    }

    /// Checks one crash point; returns `true` when the search should
    /// stop.
    fn check_crash(&mut self, state: &ExecState, pt: CrashPoint, ordinal: u64) -> bool {
        self.stats.crash_points += 1;
        // Cutoffs: `ret < ret_cut` ⇒ returned, `inv < inv_cut` ⇒
        // invoked. A mid-action crash lands inside action t, so the
        // acting op is invoked but never returned.
        let (k, ret_cut, inv_cut) = match pt {
            CrashPoint::AfterPersist(p) => {
                let t = state.mem.persist_action(p as usize);
                (p, t, t + 1)
            }
            CrashPoint::AfterAction(a) => {
                let n = state.mem.persist_count();
                let k = (1..=n)
                    .take_while(|&i| state.mem.persist_action(i) <= a)
                    .count() as u64;
                (k, a + 1, a + 1)
            }
        };
        let image = state.mem.durable_image_after(k as usize);
        // Dedup: identical durable image + identical per-op statuses
        // (keyed by op identity) ⇒ identical verdict. Disabled in
        // collect mode, where a duplicate might be the minimal one.
        if !self.collect {
            let mut hasher = DefaultHasher::new();
            for (addr, line) in &image {
                addr.hash(&mut hasher);
                line.hash(&mut hasher);
            }
            for rec in &state.ops {
                (rec.core, rec.seq).hash(&mut hasher);
                if rec.inv >= inv_cut {
                    0u8.hash(&mut hasher);
                } else if rec.ret.is_some_and(|r| r < ret_cut) {
                    1u8.hash(&mut hasher);
                    rec.result.hash(&mut hasher);
                } else {
                    2u8.hash(&mut hasher);
                }
            }
            if !self.seen.insert(hasher.finish()) {
                self.stats.dedup_hits += 1;
                return false;
            }
        }

        let cores = self.cfg.programs.len();
        let layout = state.svc.layout();
        let mut cmem = ModelMem::from_image(image, cores);
        if self.cfg.mutant == Some(Mutant::DropInvalidation) {
            cmem.set_drop_invalidation(true);
        }

        // Phase 1: the image must verify.
        let recovered = match recover(&mut cmem, &layout) {
            Ok(r) => r,
            Err(e) => {
                return self.violate(
                    Violation {
                        schedule: state.schedule.clone(),
                        crash: Some(pt),
                        phase: CheckPhase::Recovery,
                        detail: e.to_string(),
                    },
                    ordinal,
                );
            }
        };

        // Build the crash-cut history. Forced: returned ops (response
        // constrained) and ops whose descriptor is durably DONE with a
        // matching seq (the protocol's completion promise).
        let mut cands = Vec::new();
        let mut meta = Vec::new();
        for rec in &state.ops {
            if rec.inv >= inv_cut {
                continue;
            }
            let returned = rec.ret.is_some_and(|r| r < ret_cut);
            let (must, response, ret) = if returned {
                (true, rec.result, rec.ret)
            } else {
                let slot = &recovered.slots[rec.core];
                let done = slot.state == SlotState::Done && slot.rec.seq == rec.seq;
                (done, None, None)
            };
            cands.push(Candidate {
                op: rec.op,
                must,
                response,
                inv: rec.inv,
                ret,
            });
            meta.push((rec.core, rec.seq));
        }

        // Phase 2: the recovered entries must be explainable.
        if explain(layout.kind, layout.nbuckets, &cands, &recovered.entries).is_none() {
            return self.violate(
                Violation {
                    schedule: state.schedule.clone(),
                    crash: Some(pt),
                    phase: CheckPhase::DurableState,
                    detail: unexplained(&cands, &recovered.entries),
                },
                ordinal,
            );
        }

        // Phase 3: resume must quiesce, and its promises (pending
        // updates applied exactly once) must hold.
        match recover_resume(&mut cmem, &layout, &mut self.hook) {
            Err(ResumeError::Refused(e)) => self.violate(
                Violation {
                    schedule: state.schedule.clone(),
                    crash: Some(pt),
                    phase: CheckPhase::Recovery,
                    detail: format!("resume re-verification failed: {e}"),
                },
                ordinal,
            ),
            Err(ResumeError::Stuck { core }) => self.violate(
                Violation {
                    schedule: state.schedule.clone(),
                    crash: Some(pt),
                    phase: CheckPhase::Stuck,
                    detail: format!("resumed op on core {core} never completed"),
                },
                ordinal,
            ),
            Ok(outcome) => {
                let mut cands = cands;
                for (i, &(core, seq)) in meta.iter().enumerate() {
                    let promised = (outcome.resumed.contains(&core)
                        || outcome.found_applied.contains(&core))
                        && recovered.slots[core].rec.seq == seq;
                    if promised {
                        cands[i].must = true;
                    }
                }
                if explain(layout.kind, layout.nbuckets, &cands, &outcome.entries).is_none() {
                    return self.violate(
                        Violation {
                            schedule: state.schedule.clone(),
                            crash: Some(pt),
                            phase: CheckPhase::Resume,
                            detail: unexplained(&cands, &outcome.entries),
                        },
                        ordinal,
                    );
                }
                false
            }
        }
    }
}

/// Renders the inexplicable history for a violation detail line.
fn unexplained(cands: &[Candidate], entries: &[(u64, u64)]) -> String {
    let ops: Vec<String> = cands
        .iter()
        .map(|c| {
            let mark = if c.must { "!" } else { "?" };
            format!("{mark}{}", c.op.label())
        })
        .collect();
    let ent: Vec<String> = entries.iter().map(|(k, v)| format!("{k}={v}")).collect();
    format!(
        "no linearization of [{}] (!=forced, ?=optional) yields entries [{}]",
        ops.join(" "),
        ent.join(" ")
    )
}

/// Explores `cfg` exhaustively, stopping at the first violation.
pub fn lincheck(cfg: &LincheckConfig) -> LincheckReport {
    run(cfg, false)
}

/// Explores `cfg` fully and reports the *minimal* violation (shortest
/// schedule, fewest context switches, earliest crash point) — the
/// shrinker's final pass.
pub fn lincheck_minimal(cfg: &LincheckConfig) -> LincheckReport {
    run(cfg, true)
}

fn run(cfg: &LincheckConfig, collect: bool) -> LincheckReport {
    assert!(!cfg.programs.is_empty(), "a config needs at least one core");
    let mut ex = Explorer {
        cfg,
        hook: MutantHook { mutant: cfg.mutant },
        seen: HashSet::new(),
        stats: LincheckStats::default(),
        collect,
        found: None,
    };
    let root = ExecState::new(cfg);
    ex.dfs(&root, Vec::new());
    LincheckReport {
        stats: ex.stats,
        violation: ex.found.map(|(_, v)| v),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_core_push_is_clean() {
        let cfg = LincheckConfig {
            structure: StructureKind::Stack,
            nbuckets: 2,
            programs: vec![vec![LinOp::Update { key: 1, value: 10 }]],
            crash: CrashMode::All,
            reduce: false,
            mutant: None,
            max_actions: 32,
        };
        let report = lincheck(&cfg);
        assert!(report.violation.is_none(), "{:?}", report.violation);
        assert_eq!(report.stats.schedules, 1);
        assert!(report.stats.crash_points >= 4);
    }

    #[test]
    fn two_core_pushes_explore_all_interleavings() {
        let cfg = LincheckConfig {
            structure: StructureKind::Stack,
            nbuckets: 2,
            programs: vec![
                vec![LinOp::Update { key: 1, value: 10 }],
                vec![LinOp::Update { key: 2, value: 20 }],
            ],
            crash: CrashMode::All,
            reduce: false,
            mutant: None,
            max_actions: 32,
        };
        let report = lincheck(&cfg);
        assert!(report.violation.is_none(), "{:?}", report.violation);
        assert!(report.stats.schedules > 10, "{:?}", report.stats);
        assert!(report.stats.dedup_hits > 0);
    }

    #[test]
    fn skip_linearize_is_caught_on_a_single_push() {
        let cfg = LincheckConfig {
            structure: StructureKind::Stack,
            nbuckets: 2,
            programs: vec![vec![LinOp::Update { key: 1, value: 10 }]],
            crash: CrashMode::All,
            reduce: false,
            mutant: Some(Mutant::SkipLinearize),
            max_actions: 32,
        };
        let v = lincheck(&cfg).violation.expect("mutant must be caught");
        assert_eq!(v.phase, CheckPhase::DurableState, "{v}");
    }

    #[test]
    fn mutant_names_round_trip() {
        for m in Mutant::ALL {
            assert_eq!(Mutant::parse(m.name()), Some(m));
        }
        assert_eq!(Mutant::parse("nonsense"), None);
    }
}
