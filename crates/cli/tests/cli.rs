//! End-to-end tests of the `supermem` binary.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_supermem"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn help_prints_usage() {
    let (ok, stdout, _) = run(&["help"]);
    assert!(ok);
    assert!(stdout.contains("usage:"));
    assert!(stdout.contains("supermem run"));
}

#[test]
fn list_names_all_schemes_and_workloads() {
    let (ok, stdout, _) = run(&["list"]);
    assert!(ok);
    for name in ["Unsec", "WB", "WT+CWC", "SuperMem", "Osiris", "SCA"] {
        assert!(stdout.contains(name), "missing scheme {name}");
    }
    for name in ["array", "queue", "btree", "hash", "rbtree"] {
        assert!(stdout.contains(name), "missing workload {name}");
    }
}

#[test]
fn run_produces_a_result_row() {
    let (ok, stdout, stderr) = run(&[
        "run",
        "--scheme",
        "supermem",
        "--workload",
        "queue",
        "--txns",
        "25",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("SuperMem"));
    assert!(stdout.contains("queue"));
    assert!(stdout.contains("cyc/txn"));
}

#[test]
fn csv_output_is_machine_readable() {
    let (ok, stdout, _) = run(&[
        "run",
        "--scheme",
        "unsec",
        "--workload",
        "queue",
        "--txns",
        "20",
        "--csv",
    ]);
    assert!(ok);
    let mut lines = stdout.lines();
    let header = lines.next().expect("header");
    assert!(header.starts_with("scheme,workload,"));
    let row = lines.next().expect("row");
    assert!(row.starts_with("Unsec,queue,20,"));
}

#[test]
fn sweep_emits_one_row_per_point() {
    let (ok, stdout, stderr) = run(&[
        "sweep",
        "--param",
        "wq",
        "--values",
        "8,32",
        "--workload",
        "queue",
        "--txns",
        "20",
        "--csv",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert_eq!(stdout.lines().count(), 3, "header + 2 rows:\n{stdout}");
}

#[test]
fn profile_prints_latency_attribution() {
    let (ok, stdout, stderr) = run(&[
        "profile",
        "--scheme",
        "supermem",
        "--workload",
        "queue",
        "--txns",
        "20",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("flush phase"));
    assert!(stdout.contains("counter fetch"));
    assert!(stdout.contains("queue admission"));
    assert!(stdout.contains("write queue:"));
}

#[test]
fn profile_json_reconciles_with_txns() {
    let (ok, stdout, stderr) = run(&[
        "profile",
        "--scheme",
        "supermem",
        "--workload",
        "queue",
        "--txns",
        "20",
        "--json",
    ]);
    assert!(ok, "stderr: {stderr}");
    let line = stdout.lines().next().expect("one JSON object");
    assert!(line.starts_with('{') && line.ends_with('}'));
    assert!(line.contains("\"breakdown\":"));
    assert!(line.contains("\"txns\":20"));
    assert!(line.contains("\"histograms\":"));
    assert!(line.contains("\"banks\":["));
}

#[test]
fn profile_rejects_invalid_config() {
    let (ok, _, stderr) = run(&["profile", "--programs", "99"]);
    assert!(!ok);
    assert!(stderr.contains("programs must be in"));
}

#[test]
fn crash_reports_a_verdict() {
    let (ok, stdout, _) = run(&["crash", "--scheme", "supermem"]);
    assert!(ok);
    assert!(stdout.contains("recoverable at every crash point"));
}

#[test]
fn unknown_flags_fail_with_guidance() {
    let (ok, _, stderr) = run(&["run", "--bogus", "1"]);
    assert!(!ok);
    assert!(stderr.contains("unknown flag"));
    assert!(stderr.contains("usage:"));
}

#[test]
fn unknown_command_fails_with_guidance() {
    let (ok, _, stderr) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}
