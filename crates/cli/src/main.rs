//! `supermem` — command-line experiment driver.
//!
//! ```text
//! supermem run   [--scheme S] [--workload W] [--txns N] [--req BYTES]
//!                [--wq ENTRIES] [--cc BYTES] [--programs P] [--seed X]
//!                [--integrity-tree] [--persisted-levels L] [--csv]
//! supermem sweep --param {wq|cc|req|programs} --values a,b,c [run flags]
//! supermem profile [run flags] [--json]
//! supermem crash [--scheme S] [--json]
//! supermem torture [--scheme S] [--fault F|none] [--point K]
//!                  [--seed N] [--seeds COUNT] [--json]
//! supermem torture --tree [--persisted-levels L] [--fault F|tamper|none]
//!                  [--point K] [--seed N] [--seeds COUNT] [--json]
//! supermem serve [--structure S] [--scheme S] [--cores N] [--requests N]
//!                [--read-pct P] [--mean-gap G] [--degraded BANK]
//!                [--torture [--fault F|none] [--point K]] [--json]
//! supermem kv {run|torture|recover} [--scheme S] [--fault F|none]
//!             [--point K] [--seed N] [--requests N] [--json]
//! supermem check [--json] [--txns N] [--config NAME] [--mutate M]
//! supermem lincheck [--structure S|all] [--cores N] [--ops N] [--depth N]
//!                   [--crash {all|none|K}] [--reduce] [--mutate M] [--json]
//! supermem list
//! ```
//!
//! Sizes accept `K`/`M` suffixes (`--cc 256K`). Everything is
//! deterministic in `--seed`.

use std::process::ExitCode;

mod args;
mod commands;

use args::{parse_run_flags, ArgError};

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", usage());
            ExitCode::FAILURE
        }
    }
}

fn usage() -> &'static str {
    "usage:\n  supermem run     [--scheme S] [--workload W] [--txns N] [--req BYTES]\n                   [--wq ENTRIES] [--cc BYTES] [--programs P] [--seed X]\n                   [--integrity-tree] [--persisted-levels L] [--csv]\n  supermem sweep   --param {wq|cc|req|programs} --values a,b,c [run flags]\n  supermem profile [run flags] [--json]\n  supermem crash   [--scheme S] [--json]\n  supermem torture [--scheme S] [--fault F|none] [--point K]\n                   [--seed N] [--seeds COUNT] [--json]\n  supermem torture --tree [--persisted-levels L] [--fault F|tamper|none]\n                   [--point K] [--seed N] [--seeds COUNT] [--json]\n  supermem serve   [--structure {stack|queue|hash}] [--scheme S] [--cores N]\n                   [--requests N] [--read-pct P] [--mean-gap CYC] [--zipf T]\n                   [--keyspace K] [--buckets B] [--seed X] [--channels N]\n                   [--run-threads N] [--degraded BANK] [--json]\n  supermem serve   --torture [--structure S] [--scheme S] [--fault F|none]\n                   [--point K] [--seed N] [--seeds COUNT] [--json]\n  supermem kv      run     [--scheme S] [--requests N] [--read-pct P] [--zipf T]\n                           [--keyspace K] [--snapshot-every N] [--seed X] [--json]\n  supermem kv      torture [--scheme S] [--fault F|none] [--point K] [--seed N]\n                           [--seeds COUNT] [--channels N] [--json]\n  supermem kv      recover [--scheme S] [--point K] [--seed N] [--json]\n  supermem check   [--json] [--txns N] [--config NAME]\n                   [--mutate {wt-off|pair-split|cwc-newest|rsr-skip|\n                            tree-skip|tree-late|tree-double-root}]\n  supermem lincheck [--structure {stack|queue|hash|all}] [--cores N] [--ops N]\n                   [--depth N] [--crash {all|none|K}] [--reduce] [--json]\n                   [--mutate {skip-linearize|complete-first|drop-invalidate|skip-scan}]\n  supermem list\n\nschemes: unsec wb wt wt+cwc wt+xbank supermem wt+samebank osiris sca\nfaults:  torn bit-flip double-flip stuck-at transient-read bank-fail\nworkloads: array queue btree hash rbtree\nsizes accept K/M suffixes (e.g. --cc 256K)"
}

fn dispatch(argv: &[String]) -> Result<(), ArgError> {
    match argv.first().map(String::as_str) {
        Some("run") => commands::cmd_run(parse_run_flags(&argv[1..])?),
        Some("sweep") => commands::cmd_sweep(&argv[1..]),
        Some("profile") => commands::cmd_profile(&argv[1..]),
        Some("crash") => commands::cmd_crash(&argv[1..]),
        Some("torture") => commands::cmd_torture(&argv[1..]),
        Some("serve") => commands::cmd_serve(&argv[1..]),
        Some("kv") => commands::cmd_kv(&argv[1..]),
        Some("check") => commands::cmd_check(&argv[1..]),
        Some("lincheck") => commands::cmd_lincheck(&argv[1..]),
        Some("list") => {
            commands::cmd_list();
            Ok(())
        }
        Some("help" | "--help" | "-h") | None => {
            println!("{}", usage());
            Ok(())
        }
        Some(other) => Err(ArgError(format!("unknown command `{other}`"))),
    }
}
