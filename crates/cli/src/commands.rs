//! Command implementations.

use supermem::metrics::TextTable;
use supermem::persist::{
    recover_osiris, recover_transactions, DirectMem, PMem, RecoveredMemory, RecoveryOutcome,
    TxnManager,
};
use supermem::workloads::spec::ALL_KINDS;
use supermem::{sweep, Experiment, RunConfig, RunResult};

use crate::args::{parse_run_flags, ArgError, Parsed};

/// Validates `rc` up front so the free-run path below cannot panic.
fn validated(rc: &RunConfig) -> Result<(), ArgError> {
    rc.validate().map_err(|e| ArgError(e.to_string()))
}

fn execute(rc: &RunConfig) -> RunResult {
    Experiment::new(rc.clone())
        .expect("config validated before execute")
        .run()
}

fn result_row(r: &RunResult) -> Vec<String> {
    vec![
        r.scheme.name().to_owned(),
        r.workload.clone(),
        r.txns.to_string(),
        format!("{:.0}", r.mean_txn_latency()),
        r.nvm_writes().to_string(),
        r.stats.counter_writes_coalesced.to_string(),
        r.counter_cache_hit_rate()
            .map_or_else(|| "-".to_owned(), |h| format!("{:.1}%", h * 100.0)),
        r.total_cycles.to_string(),
    ]
}

fn result_headers() -> Vec<String> {
    [
        "scheme",
        "workload",
        "txns",
        "cyc/txn",
        "nvm writes",
        "coalesced",
        "cc hit",
        "cycles",
    ]
    .map(str::to_owned)
    .to_vec()
}

/// `supermem run`
pub fn cmd_run(p: Parsed) -> Result<(), ArgError> {
    if let Some(flag) = p.leftover.first() {
        return Err(ArgError(format!("unknown flag `{flag}`")));
    }
    validated(&p.rc)?;
    let r = execute(&p.rc);
    let mut t = TextTable::new(result_headers());
    t.row(result_row(&r));
    print!("{}", if p.csv { t.to_csv() } else { t.render() });
    Ok(())
}

/// `supermem sweep --param P --values a,b,c [run flags]`
pub fn cmd_sweep(argv: &[String]) -> Result<(), ArgError> {
    let p = parse_run_flags(argv)?;
    let mut param = None;
    let mut values = None;
    let mut it = p.leftover.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--param" => param = it.next().cloned(),
            "--values" => values = it.next().cloned(),
            other => return Err(ArgError(format!("unknown flag `{other}`"))),
        }
    }
    let param = param.ok_or_else(|| ArgError("sweep needs --param".into()))?;
    let values = values.ok_or_else(|| ArgError("sweep needs --values".into()))?;
    let points: Vec<u64> = values
        .split(',')
        .map(crate::args::parse_size)
        .collect::<Result<_, _>>()?;
    if points.is_empty() {
        return Err(ArgError("--values must list at least one point".into()));
    }

    let mut jobs = Vec::with_capacity(points.len());
    for &v in &points {
        let mut rc = p.rc.clone();
        match param.as_str() {
            "wq" => rc.write_queue_entries = v as usize,
            "cc" => rc.counter_cache_bytes = v,
            "req" => rc.req_bytes = v,
            "programs" => rc.programs = v as usize,
            other => return Err(ArgError(format!("unknown sweep param `{other}`"))),
        }
        jobs.push(rc);
    }
    for rc in &jobs {
        validated(rc)?;
    }
    // All points run through the parallel sweep engine; results come
    // back in input order, so the table matches the sequential output.
    let results = sweep(&jobs, execute);

    let mut t = TextTable::new(
        std::iter::once(param.clone())
            .chain(result_headers())
            .collect(),
    );
    for (&v, r) in points.iter().zip(&results) {
        let mut row = vec![v.to_string()];
        row.extend(result_row(r));
        t.row(row);
    }
    print!("{}", if p.csv { t.to_csv() } else { t.render() });
    Ok(())
}

/// `supermem profile [run flags] [--json]`: run once with the built-in
/// telemetry observer attached and print the latency attribution.
pub fn cmd_profile(argv: &[String]) -> Result<(), ArgError> {
    let p = parse_run_flags(argv)?;
    let mut json = false;
    for flag in &p.leftover {
        match flag.as_str() {
            "--json" => json = true,
            other => return Err(ArgError(format!("unknown flag `{other}`"))),
        }
    }
    let mut exp = Experiment::new(p.rc.clone())
        .map_err(|e| ArgError(e.to_string()))?
        .observe();
    let r = exp.run();
    let t = r
        .telemetry
        .as_ref()
        .expect("observed run returns telemetry");
    if json {
        println!("{}", t.to_json(r.total_cycles));
        return Ok(());
    }

    let b = &t.breakdown;
    let flush_total = b.counter_fetch_cycles + b.crypto_cycles + b.queue_admission_cycles;
    let share = |c: u64| {
        if flush_total == 0 {
            "-".to_owned()
        } else {
            format!("{:.1}%", 100.0 * c as f64 / flush_total as f64)
        }
    };
    let mut attribution = TextTable::new(
        ["flush phase", "cycles", "share"]
            .map(str::to_owned)
            .to_vec(),
    );
    attribution.row(vec![
        "counter fetch".into(),
        b.counter_fetch_cycles.to_string(),
        share(b.counter_fetch_cycles),
    ]);
    attribution.row(vec![
        "crypto".into(),
        b.crypto_cycles.to_string(),
        share(b.crypto_cycles),
    ]);
    attribution.row(vec![
        "queue admission".into(),
        b.queue_admission_cycles.to_string(),
        share(b.queue_admission_cycles),
    ]);
    println!(
        "{} / {} — {} txns, {} cycles",
        r.scheme, r.workload, r.txns, r.total_cycles
    );
    println!();
    print!("{}", attribution.render());

    let mut hist = TextTable::new(
        ["latency", "count", "mean cyc", "max cyc"]
            .map(str::to_owned)
            .to_vec(),
    );
    for (name, h) in [
        ("txn", &t.txn_latency),
        ("flush", &t.flush_latency),
        ("read", &t.read_latency),
    ] {
        hist.row(vec![
            name.into(),
            h.count().to_string(),
            format!("{:.1}", h.mean()),
            h.max().to_string(),
        ]);
    }
    println!();
    print!("{}", hist.render());

    println!();
    println!(
        "write queue: {} enqueues, {} coalesced, {} stalls ({} cycles), \
         occupancy mean {:.2} max {}",
        t.wq_occupancy.enqueues,
        b.coalesced,
        b.wq_stalls,
        b.wq_stall_cycles,
        t.wq_occupancy.histogram.mean(),
        t.wq_occupancy.max,
    );
    let mut banks = TextTable::new(
        ["bank", "reads", "writes", "busy cyc", "util"]
            .map(str::to_owned)
            .to_vec(),
    );
    for (i, bank) in t.banks.banks().iter().enumerate() {
        banks.row(vec![
            i.to_string(),
            bank.reads.to_string(),
            bank.writes.to_string(),
            bank.busy_cycles.to_string(),
            format!("{:.1}%", 100.0 * t.banks.utilization(i, r.total_cycles)),
        ]);
    }
    println!();
    print!("{}", banks.render());
    Ok(())
}

/// `supermem crash`: sweep a crash over every append boundary of one
/// durable transaction under the chosen scheme.
pub fn cmd_crash(p: Parsed) -> Result<(), ArgError> {
    if let Some(flag) = p.leftover.first() {
        return Err(ArgError(format!("unknown flag `{flag}`")));
    }
    const DATA: u64 = 0x2000;
    const LOG: u64 = 0x10_0000;
    let cfg = p.rc.scheme.apply(supermem::sim::Config::default());
    let mut base = DirectMem::new(&cfg);
    base.persist(DATA, &[0x11; 256]);
    base.shutdown();

    let run_txn = |mem: &mut DirectMem| {
        let mut txm = TxnManager::new(LOG, 4096);
        let mut txn = txm.begin();
        txn.write(DATA, vec![0x22; 256]);
        txn.commit(mem).expect("commit");
    };
    let mut dry = base.clone();
    let before = dry.controller().append_events();
    run_txn(&mut dry);
    dry.shutdown();
    let total = dry.controller().append_events() - before;

    let (mut old, mut new, mut bad) = (0u64, 0u64, 0u64);
    for k in 1..=total {
        let mut mem = base.clone();
        mem.controller_mut().arm_crash_after_appends(k);
        run_txn(&mut mem);
        let image = mem
            .controller_mut()
            .take_crash_image()
            .expect("armed crash fires");
        // Osiris-style schemes reconstruct stale counters from ECC tags
        // before the log scan; strict schemes go straight to recovery.
        let mut rec = if cfg.osiris_window.is_some() {
            recover_osiris(&cfg, image).0
        } else {
            RecoveredMemory::from_image(&cfg, image)
        };
        let outcome = recover_transactions(&mut rec, LOG);
        let mut buf = [0u8; 256];
        rec.read(DATA, &mut buf);
        match () {
            _ if outcome == RecoveryOutcome::CorruptLog => bad += 1,
            _ if buf == [0x11; 256] => old += 1,
            _ if buf == [0x22; 256] => new += 1,
            _ => bad += 1,
        }
    }
    println!(
        "{}: {total} crash points -> {old} rolled back, {new} committed, {bad} unrecoverable",
        p.rc.scheme
    );
    if bad == 0 {
        println!("verdict: recoverable at every crash point");
    } else {
        println!("verdict: UNRECOVERABLE windows exist");
    }
    Ok(())
}

/// `supermem list`
pub fn cmd_list() {
    println!("schemes:");
    for s in [
        supermem::Scheme::Unsec,
        supermem::Scheme::WriteBackIdeal,
        supermem::Scheme::WriteThrough,
        supermem::Scheme::WtCwc,
        supermem::Scheme::WtXbank,
        supermem::Scheme::SuperMem,
        supermem::Scheme::WtSameBank,
        supermem::Scheme::Osiris,
        supermem::Scheme::Sca,
    ] {
        println!("  {s}");
    }
    println!("workloads:");
    for k in ALL_KINDS {
        println!("  {k}");
    }
}
